//! Property-based tests spanning multiple crates: invariants of the
//! architecture comparison, the partition optimiser and the projection that
//! must hold for arbitrary (bounded) workloads, not just the paper's.

use hidwa_core::arch::{NodeArchitecture, WorkloadSpec};
use hidwa_core::partition::{Objective, PartitionContext, PartitionOptimizer};
use hidwa_core::projection::Fig3Projector;
use hidwa_energy::sensing::SensorModality;
use hidwa_isa::layer::{Dense, Relu};
use hidwa_isa::models;
use hidwa_isa::network::Network;
use hidwa_units::DataRate;
use proptest::prelude::*;

fn modality() -> impl Strategy<Value = SensorModality> {
    prop::sample::select(SensorModality::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The human-inspired node never consumes more power than the
    /// conventional node for any workload in the modelled envelope.
    #[test]
    fn human_inspired_never_loses(
        modality in modality(),
        sensor_kbps in 0.1..2000.0f64,
        local_mmacs in 0.1..500.0f64,
        result_kbps in 0.01..10.0f64,
    ) {
        let sensor_rate = DataRate::from_kbps(sensor_kbps);
        let workload = WorkloadSpec::new(
            "random",
            modality,
            sensor_rate,
            local_mmacs * 1e6,
            DataRate::from_kbps(result_kbps.min(sensor_kbps)),
            sensor_rate,
        );
        let conventional = NodeArchitecture::conventional().power_breakdown(&workload).total();
        let human = NodeArchitecture::human_inspired().power_breakdown(&workload).total();
        prop_assert!(human <= conventional);
    }

    /// The partition optimiser's chosen plan is never worse (on its own
    /// objective) than either trivial strategy, for random MLPs.
    #[test]
    fn optimizer_dominates_trivial_strategies(
        hidden in 8usize..128,
        depth in 1usize..5,
        input in 8usize..128,
    ) {
        let mut layers: Vec<Box<dyn hidwa_isa::layer::Layer>> = Vec::new();
        let mut width = input;
        for d in 0..depth {
            layers.push(Box::new(Dense::new(format!("fc{d}"), width, hidden)));
            layers.push(Box::new(Relu));
            width = hidden;
        }
        layers.push(Box::new(Dense::new("out", width, 4)));
        let network = Network::new("random_mlp", layers);
        // Wrap in a WearableModel-like evaluation by reusing the optimiser's
        // cut-point machinery directly through a zoo model's interface is not
        // possible for ad-hoc networks, so check the underlying invariant on
        // cut points instead: leaf MACs + hub MACs constant, transfer bytes
        // positive, and the minimum-energy cut (by exhaustive scan with the
        // Wi-R cost model) is unique and well-defined.
        let shape = [1usize, input];
        let cuts = network.cut_points(&shape).unwrap();
        let total = network.total_macs(&shape);
        let epb = 100e-12f64;
        let e_op = 1e-12f64;
        let energies: Vec<f64> = cuts
            .iter()
            .map(|c| c.leaf_macs as f64 * e_op + c.transfer_bytes as f64 * 8.0 * epb)
            .collect();
        let best = energies.iter().cloned().fold(f64::MAX, f64::min);
        prop_assert!(best <= energies[0] + 1e-18);
        prop_assert!(best <= *energies.last().unwrap() + 1e-18);
        for c in &cuts {
            prop_assert_eq!(c.leaf_macs + c.hub_macs, total);
        }
    }

    /// Fig. 3 battery life is monotone non-increasing in data rate for any
    /// pair of rates.
    #[test]
    fn projection_monotone(r1 in 10.0..1e7f64, r2 in 10.0..1e7f64) {
        let projector = Fig3Projector::paper_defaults();
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        let p_lo = projector.project_rate(DataRate::from_bps(lo));
        let p_hi = projector.project_rate(DataRate::from_bps(hi));
        prop_assert!(p_lo.battery_life >= p_hi.battery_life);
        prop_assert!(p_lo.band >= p_hi.band);
    }

    /// The optimal Wi-R plan for any zoo model never ships more bytes than
    /// the raw offload plan and never computes more MACs than full on-leaf
    /// execution.
    #[test]
    fn optimal_plan_is_bracketed(model_idx in 0usize..5) {
        let model = &models::all_models()[model_idx];
        let optimizer = PartitionOptimizer::new(PartitionContext::wir_default());
        let best = optimizer.optimize(model, Objective::LeafEnergy).unwrap();
        let raw = optimizer.all_on_hub(model).unwrap();
        let full = optimizer.all_on_leaf(model).unwrap();
        prop_assert!(best.leaf_macs <= full.leaf_macs);
        // The optimum only has to dominate extremes that are themselves
        // feasible (the video model cannot run fully on the ISA leaf).
        for extreme in [raw, full] {
            if extreme.feasible {
                prop_assert!(
                    best.leaf_energy
                        <= extreme.leaf_energy + hidwa_units::Energy::from_pico_joules(1.0)
                );
            }
        }
    }
}
