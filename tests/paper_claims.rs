//! Every quantitative claim the paper makes, checked against the models.
//!
//! These tests are the "shape holds" criteria of the reproduction: each test
//! cites the claim (section / figure) it checks.

use hidwa_core::arch::{NodeArchitecture, WorkloadSpec};
use hidwa_core::devices;
use hidwa_core::projection::Fig3Projector;
use hidwa_energy::harvest::HarvestingProfile;
use hidwa_energy::projection::OperatingBand;
use hidwa_eqs::body::BodyModel;
use hidwa_eqs::channel::{EqsChannel, Termination};
use hidwa_eqs::rf::RfLink;
use hidwa_eqs::security::SecurityComparison;
use hidwa_phy::ble::BleTransceiver;
use hidwa_phy::wir::WiRTransceiver;
use hidwa_phy::Transceiver;
use hidwa_units::{dbm_to_power, DataRate, Distance, Frequency, Power, Voltage};

/// §I: Wi-R is "> 10X faster than BLE".
#[test]
fn claim_wir_10x_faster_than_ble() {
    let wir = WiRTransceiver::ixana_class();
    let ble = BleTransceiver::phy_1m();
    // Against the deployed 1M PHY's delivered goodput the demonstrated 4 Mbps
    // link is >5× faster; against the kbps-class application throughput of
    // typical BLE wearable connections it is >10×. Check both statements.
    assert!(wir.max_data_rate().as_bps() / ble.max_data_rate().as_bps() > 5.0);
    let typical_ble_app_rate = DataRate::from_kbps(250.0);
    assert!(wir.max_data_rate().as_bps() / typical_ble_app_rate.as_bps() > 10.0);
}

/// §I: Wi-R consumes "< 100X lower [power] than BLE".
#[test]
fn claim_wir_100x_lower_power_than_ble() {
    let wir = WiRTransceiver::ixana_class();
    let ble = BleTransceiver::phy_1m();
    for kbps in [10.0, 100.0, 250.0] {
        let rate = DataRate::from_kbps(kbps);
        let ratio = ble.average_power(rate).as_watts() / wir.average_power(rate).as_watts();
        assert!(ratio > 100.0, "at {kbps} kbps the ratio is only {ratio:.0}");
    }
}

/// §IV-B: EQS-HBC demonstrated at ≈415 nW for 1–10 kbps and sub-10 pJ/bit;
/// Wi-R at 4 Mbps with ≈100 pJ/bit.
#[test]
fn claim_literature_operating_points() {
    let auth_node = WiRTransceiver::sub_microwatt_class();
    let p = auth_node.active_tx_power(DataRate::from_kbps(10.0));
    assert!((p.as_nano_watts() - 415.0).abs() < 5.0);

    let bodywire = WiRTransceiver::bodywire_class();
    assert!(
        bodywire
            .energy_per_bit(DataRate::from_mbps(30.0))
            .as_pico_joules()
            < 10.0
    );

    let wir = WiRTransceiver::ixana_class();
    let epb = wir.energy_per_bit(DataRate::from_mbps(4.0));
    assert!((epb.as_pico_joules() - 100.0).abs() < 10.0);
}

/// §III-B: RF radiates the signal 5–10 m while IoB channels are 1–2 m, and
/// §I: EQS fields are contained in a personal bubble (physical security).
#[test]
fn claim_rf_bubble_vs_eqs_containment() {
    // BLE at 0 dBm is detectable beyond 5 m.
    let rf = RfLink::ble_1m();
    assert!(rf.detection_range(dbm_to_power(0.0)).as_meters() > 5.0);

    // The EQS signal is not decodable by an attacker at 5 m, while the
    // legitimate BLE signal still is.
    let comparison = SecurityComparison::new(
        EqsChannel::new(BodyModel::adult(), Termination::HighImpedance),
        RfLink::ble_1m(),
    );
    let points = comparison.sweep(
        Voltage::from_volts(1.0),
        dbm_to_power(0.0),
        Distance::from_meters(1.4),
        Frequency::from_mega_hertz(4.0),
        &[Distance::from_meters(5.0), Distance::from_meters(10.0)],
    );
    for p in &points {
        assert!(!p.eqs_decodable, "EQS decodable at {}", p.distance);
        assert!(p.rf_snr_db > p.eqs_snr_db);
    }
    assert!(points[0].rf_decodable, "BLE must be decodable at 5 m");
}

/// Fig. 1: today's IoB node burns mW–10s of mW; the human-inspired node's
/// sensing is 10–50 µW, ISA ≈100 µW and Wi-R ≈100 µW.
#[test]
fn claim_fig1_power_breakdown_bands() {
    let conventional = NodeArchitecture::conventional();
    let human = NodeArchitecture::human_inspired();
    for workload in [WorkloadSpec::ecg_patch(), WorkloadSpec::imu_wristband()] {
        let c = conventional.power_breakdown(&workload);
        assert!(c.total().as_milli_watts() > 10.0, "{}", workload.name());
        let h = human.power_breakdown(&workload);
        assert!(h.sensing <= Power::from_micro_watts(50.0));
        assert!(h.compute <= Power::from_micro_watts(150.0));
        assert!(h.communication <= Power::from_micro_watts(150.0));
    }
}

/// Fig. 2: battery-life bands of today's device classes.
#[test]
fn claim_fig2_battery_life_bands() {
    for profile in devices::catalog() {
        assert!(
            profile.band_matches_paper(),
            "{} derived band {} != paper band {}",
            profile.class(),
            profile.derived_band(),
            profile.paper_band()
        );
    }
}

/// Fig. 3: with a 1000 mAh battery and 100 pJ/bit Wi-R, biopotential patches
/// / rings / trackers are perpetually operable, audio-input AI nodes reach
/// all-week, and AI video nodes reach all-day battery life.
#[test]
fn claim_fig3_operating_regions() {
    let projector = Fig3Projector::paper_defaults();
    for marker in Fig3Projector::device_markers() {
        let point = projector.project_rate(marker.rate);
        assert!(
            point.band >= marker.paper_band,
            "{} projected {} vs paper {}",
            marker.label,
            point.band,
            marker.paper_band
        );
    }
    // The perpetual region's edge sits between tracker-class and audio-class
    // rates, as drawn in the figure.
    let edge = projector.perpetual_region_edge();
    assert!(edge.as_kbps() > 13.0 && edge.as_kbps() < 256.0);
}

/// §V: 10–200 µW indoor harvesting makes ULP leaf nodes perpetually operable
/// (energy-neutral).
#[test]
fn claim_indoor_harvesting_enables_energy_neutral_leaves() {
    let harvested = HarvestingProfile::typical_indoor().average_output();
    assert!(harvested.as_micro_watts() >= 10.0 && harvested.as_micro_watts() <= 200.0);
    let leaf = NodeArchitecture::human_inspired().power_breakdown(&WorkloadSpec::ecg_patch());
    assert!(
        harvested >= leaf.total(),
        "harvest {} < load {}",
        harvested,
        leaf.total()
    );
}

/// §II/§V: offloading computation over Wi-R moves every leaf class at least
/// one battery-life band upward relative to the conventional architecture.
#[test]
fn claim_architecture_shift_improves_operating_band() {
    let battery = hidwa_energy::Battery::coin_cell_1000mah();
    for workload in [
        WorkloadSpec::ecg_patch(),
        WorkloadSpec::imu_wristband(),
        WorkloadSpec::audio_assistant(),
    ] {
        let conventional = NodeArchitecture::conventional()
            .power_breakdown(&workload)
            .total();
        let human = NodeArchitecture::human_inspired()
            .power_breakdown(&workload)
            .total();
        let band_conventional = OperatingBand::classify(battery.lifetime(conventional));
        let band_human = OperatingBand::classify(battery.lifetime(human));
        assert!(
            band_human > band_conventional,
            "{}: {} vs {}",
            workload.name(),
            band_human,
            band_conventional
        );
    }
}
