//! Cross-crate integration tests: full scenarios exercised through the
//! public APIs of every crate in the workspace.

use hidwa_core::arch::{NodeArchitecture, WorkloadSpec};
use hidwa_core::devices::{self, DeviceClass};
use hidwa_core::partition::{Objective, PartitionContext, PartitionOptimizer};
use hidwa_core::projection::Fig3Projector;
use hidwa_core::scenario;
use hidwa_energy::harvest::HarvestingProfile;
use hidwa_energy::projection::{LifetimeProjector, OperatingBand};
use hidwa_energy::Battery;
use hidwa_isa::models;
use hidwa_isa::quant::QuantizedTensor;
use hidwa_isa::tensor::Tensor;
use hidwa_phy::RadioTechnology;
use hidwa_units::{DataRate, Power, TimeSpan};

#[test]
fn end_to_end_ecg_patch_story() {
    // The paper's flagship example end to end: an ECG patch under the
    // human-inspired architecture is perpetually operable.
    // 1. Architecture: the node budget is sub-100 µW.
    let breakdown = NodeArchitecture::human_inspired().power_breakdown(&WorkloadSpec::ecg_patch());
    assert!(breakdown.total().as_micro_watts() < 100.0);

    // 2. Partitioning: the arrhythmia model's optimal cut is feasible on the
    //    ISA engine and its leaf power fits inside that budget.
    let optimizer = PartitionOptimizer::new(PartitionContext::wir_default());
    let plan = optimizer
        .optimize(&models::ecg_arrhythmia_cnn(), Objective::LeafEnergy)
        .expect("a feasible plan exists");
    assert!(plan.feasible);
    assert!(plan.leaf_power.as_micro_watts() < 100.0);

    // 3. Projection: with the 1000 mAh cell the node is perpetual, and with
    //    indoor harvesting it is energy-neutral.
    let projector = LifetimeProjector::new(Battery::coin_cell_1000mah())
        .with_harvesting(HarvestingProfile::typical_indoor());
    let projection = projector.project(breakdown.total());
    assert_eq!(projection.band(), OperatingBand::Perpetual);
    assert!(projection.is_energy_neutral());

    // 4. Network: in the full-body simulation the patch's measured average
    //    power stays within the same budget.
    let mut sim = scenario::standard_body_network(RadioTechnology::WiR);
    let report = sim.run(TimeSpan::from_seconds(30.0));
    let ecg_stats = report
        .node_stats()
        .iter()
        .find(|s| s.name == "ecg-patch")
        .expect("scenario contains the ECG patch");
    assert!(ecg_stats.average_power.as_micro_watts() < 100.0);
    assert_eq!(
        ecg_stats.generated_frames,
        ecg_stats.delivered_frames + ecg_stats.backlog_frames
    );
}

#[test]
fn inference_results_are_identical_wherever_the_cut_is_placed() {
    // Distributing a model across leaf and hub must not change its output:
    // run the prefix on the "leaf", ship the activation, run the suffix on
    // the "hub", and compare against monolithic execution.
    for model in models::all_models() {
        let input = Tensor::full(model.input_shape(), 0.25);
        let monolithic = model.network().forward(&input);
        for cut in 0..=model.network().len() {
            let activation = model.network().forward_prefix(&input, cut).unwrap();
            let mut hub_side = activation;
            for layer in model.network().layers().iter().skip(cut) {
                hub_side = layer.forward(&hub_side).unwrap();
            }
            assert_eq!(hub_side, monolithic, "{} cut {}", model.name(), cut);
        }
    }
}

#[test]
fn quantized_offload_changes_results_only_within_quantization_error() {
    // Shipping an int8-quantized activation to the hub perturbs the final
    // scores by a bounded amount.
    let model = models::ecg_arrhythmia_cnn();
    let input = Tensor::full(model.input_shape(), 0.1);
    let cut = 4;
    let activation = model.network().forward_prefix(&input, cut).unwrap();
    let quantized = QuantizedTensor::quantize(&activation).unwrap();
    let mut exact = activation.clone();
    let mut lossy = quantized.dequantize();
    for layer in model.network().layers().iter().skip(cut) {
        exact = layer.forward(&exact).unwrap();
        lossy = layer.forward(&lossy).unwrap();
    }
    // Same winning class, scores close.
    assert_eq!(exact.argmax(), lossy.argmax());
    for (a, b) in exact.data().iter().zip(lossy.data()) {
        assert!((a - b).abs() < 0.05, "score drift {a} vs {b}");
    }
}

#[test]
fn device_catalog_and_projection_are_mutually_consistent() {
    // The biopotential patch in the device catalogue and the 4 kbps point of
    // the Fig. 3 projection describe the same device: both must be perpetual.
    let patch = devices::profile_for(DeviceClass::BiopotentialPatch).unwrap();
    assert_eq!(patch.derived_band(), OperatingBand::Perpetual);
    let projector = Fig3Projector::paper_defaults();
    let point = projector.project_rate(DataRate::from_kbps(4.0));
    assert_eq!(point.band, OperatingBand::Perpetual);
    // The projected node power is of the same order as the catalogue budget.
    assert!(point.total_power < Power::from_micro_watts(100.0));
}

#[test]
fn whole_body_network_scales_to_many_nodes_on_wir() {
    // Eight extra IMU nodes on top of the standard set still fit in the Wi-R
    // medium's capacity.
    let mut leaves = scenario::standard_leaf_set();
    for i in 0..8 {
        leaves.push(scenario::LeafSpec {
            name: Box::leak(format!("extra-imu-{i}").into_boxed_str()),
            site: hidwa_eqs::body::BodySite::Thigh,
            modality: hidwa_energy::sensing::SensorModality::Inertial,
            traffic: hidwa_netsim::traffic::TrafficPattern::streaming(
                DataRate::from_kbps(13.0),
                512,
            ),
            compute_power: Power::from_micro_watts(5.0),
        });
    }
    let mut sim = scenario::body_network(
        RadioTechnology::WiR,
        &leaves,
        hidwa_netsim::mac::MacPolicy::Polling,
    );
    assert!(sim.offered_load().unwrap() < 1.0);
    let report = sim.run(TimeSpan::from_seconds(10.0));
    assert!(report.delivery_ratio() > 0.95);
    assert_eq!(report.node_stats().len(), 13);
}
