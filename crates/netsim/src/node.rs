//! Node descriptions: leaf sensors/actuators and the on-body hub.

use crate::traffic::TrafficPattern;
use hidwa_eqs::body::BodySite;
use hidwa_units::{DataRate, EnergyPerBit, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// Role of a node in the star network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeRole {
    /// Ultra-low-power leaf (sensor/actuator, optionally with ISA).
    Leaf,
    /// The on-body hub ("wearable brain") that terminates all links.
    Hub,
}

/// Link characteristics between a leaf and the hub, as seen by the simulator.
///
/// The PHY crate computes these from a concrete transceiver + channel pair;
/// the simulator only needs the resulting goodput, delivered energy per bit
/// and wake-up latency, which keeps the simulator independent of the radio
/// technology being evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    goodput: DataRate,
    energy_per_bit: EnergyPerBit,
    wakeup: TimeSpan,
}

impl LinkParams {
    /// Creates link parameters.
    #[must_use]
    pub fn new(goodput: DataRate, energy_per_bit: EnergyPerBit, wakeup: TimeSpan) -> Self {
        Self {
            goodput,
            energy_per_bit,
            wakeup,
        }
    }

    /// Delivered application goodput.
    #[must_use]
    pub fn goodput(&self) -> DataRate {
        self.goodput
    }

    /// Delivered energy per application bit (transmit side).
    #[must_use]
    pub fn energy_per_bit(&self) -> EnergyPerBit {
        self.energy_per_bit
    }

    /// Radio wake-up time before a burst.
    #[must_use]
    pub fn wakeup(&self) -> TimeSpan {
        self.wakeup
    }
}

/// Static configuration of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeConfig {
    name: String,
    role: NodeRole,
    site: BodySite,
    link: LinkParams,
    sensing_power: Power,
    compute_power: Power,
    idle_power: Power,
    traffic: TrafficPattern,
}

impl NodeConfig {
    /// Creates a leaf node with the given uplink parameters.
    #[must_use]
    pub fn leaf(name: impl Into<String>, site: BodySite, link: LinkParams) -> Self {
        Self {
            name: name.into(),
            role: NodeRole::Leaf,
            site,
            link,
            sensing_power: Power::ZERO,
            compute_power: Power::ZERO,
            idle_power: Power::from_micro_watts(1.0),
            traffic: TrafficPattern::Silent,
        }
    }

    /// Creates the hub node.
    #[must_use]
    pub fn hub(name: impl Into<String>, site: BodySite, link: LinkParams) -> Self {
        Self {
            name: name.into(),
            role: NodeRole::Hub,
            site,
            link,
            sensing_power: Power::ZERO,
            compute_power: Power::ZERO,
            idle_power: Power::from_milli_watts(5.0),
            traffic: TrafficPattern::Silent,
        }
    }

    /// Sets the node's always-on sensing power.
    #[must_use]
    pub fn with_sensing_power(mut self, power: Power) -> Self {
        self.sensing_power = power;
        self
    }

    /// Sets the node's average compute (ISA or hub inference) power.
    #[must_use]
    pub fn with_compute_power(mut self, power: Power) -> Self {
        self.compute_power = power;
        self
    }

    /// Sets the node's idle floor power (sleep regulators, RTC).
    #[must_use]
    pub fn with_idle_power(mut self, power: Power) -> Self {
        self.idle_power = power;
        self
    }

    /// Sets the node's uplink traffic pattern.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficPattern) -> Self {
        self.traffic = traffic;
        self
    }

    /// Node name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Node role.
    #[must_use]
    pub fn role(&self) -> NodeRole {
        self.role
    }

    /// Body site the node is worn at.
    #[must_use]
    pub fn site(&self) -> BodySite {
        self.site
    }

    /// Link parameters toward the hub.
    #[must_use]
    pub fn link(&self) -> LinkParams {
        self.link
    }

    /// Always-on sensing power.
    #[must_use]
    pub fn sensing_power(&self) -> Power {
        self.sensing_power
    }

    /// Average compute power.
    #[must_use]
    pub fn compute_power(&self) -> Power {
        self.compute_power
    }

    /// Idle floor power.
    #[must_use]
    pub fn idle_power(&self) -> Power {
        self.idle_power
    }

    /// Uplink traffic pattern.
    #[must_use]
    pub fn traffic(&self) -> &TrafficPattern {
        &self.traffic
    }

    /// Average power excluding the radio (sensing + compute + idle floor).
    #[must_use]
    pub fn baseline_power(&self) -> Power {
        self.sensing_power + self.compute_power + self.idle_power
    }

    /// First-order average radio power for this node's traffic over its link
    /// (energy per bit × average rate).
    #[must_use]
    pub fn average_radio_power(&self) -> Power {
        self.link.energy_per_bit() * self.traffic.average_rate()
    }

    /// First-order total average power (baseline + radio).
    #[must_use]
    pub fn average_power(&self) -> Power {
        self.baseline_power() + self.average_radio_power()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wir_link() -> LinkParams {
        LinkParams::new(
            DataRate::from_mbps(4.0),
            EnergyPerBit::from_pico_joules(100.0),
            TimeSpan::from_micros(100.0),
        )
    }

    #[test]
    fn leaf_builder_chains() {
        let node = NodeConfig::leaf("patch", BodySite::Chest, wir_link())
            .with_sensing_power(Power::from_micro_watts(2.0))
            .with_compute_power(Power::from_micro_watts(10.0))
            .with_idle_power(Power::from_micro_watts(0.5))
            .with_traffic(TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 500));
        assert_eq!(node.role(), NodeRole::Leaf);
        assert_eq!(node.site(), BodySite::Chest);
        assert_eq!(node.name(), "patch");
        assert!((node.baseline_power().as_micro_watts() - 12.5).abs() < 1e-9);
        // 4 kbps × 100 pJ/bit = 0.4 µW of radio power.
        assert!((node.average_radio_power().as_micro_watts() - 0.4).abs() < 1e-6);
        assert!((node.average_power().as_micro_watts() - 12.9).abs() < 1e-6);
        assert_eq!(node.link().goodput(), DataRate::from_mbps(4.0));
        assert_eq!(node.traffic().frame_bytes(), 500);
    }

    #[test]
    fn hub_has_higher_idle_floor() {
        let hub = NodeConfig::hub("brain", BodySite::Waist, wir_link());
        let leaf = NodeConfig::leaf("ring", BodySite::Finger, wir_link());
        assert_eq!(hub.role(), NodeRole::Hub);
        assert!(hub.idle_power() > leaf.idle_power());
    }

    #[test]
    fn silent_node_power_is_baseline_only() {
        let node = NodeConfig::leaf("actuator", BodySite::Ear, wir_link());
        assert_eq!(node.average_radio_power(), Power::ZERO);
        assert_eq!(node.average_power(), node.baseline_power());
    }

    #[test]
    fn link_params_accessors() {
        let link = wir_link();
        assert_eq!(link.energy_per_bit(), EnergyPerBit::from_pico_joules(100.0));
        assert_eq!(link.wakeup(), TimeSpan::from_micros(100.0));
    }
}
