//! Deterministic discrete-event engine.
//!
//! Events are ordered by simulation time with a monotonically increasing
//! sequence number as a tiebreaker, so simulations are fully deterministic
//! regardless of insertion order of simultaneous events.

use hidwa_units::TimeSpan;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events processed by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A node's traffic source produced a frame of `bytes` application data.
    FrameGenerated {
        /// Index of the producing node.
        node: usize,
        /// Application bytes in the frame.
        bytes: usize,
    },
    /// The medium finished carrying the frame at the head of the schedule.
    TransmissionComplete {
        /// Index of the transmitting node.
        node: usize,
        /// Application bytes delivered.
        bytes: usize,
        /// When the frame was generated (for latency accounting).
        generated_at: TimeSpan,
    },
    /// Periodic bookkeeping tick (MAC schedule rollover).
    Tick,
}

/// An event tagged with its firing time and sequence number.
#[derive(Debug, Clone)]
struct Scheduled {
    time: TimeSpan,
    sequence: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_sequence: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at an absolute simulation time.
    pub fn schedule(&mut self, time: TimeSpan, event: Event) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Scheduled {
            time,
            sequence,
            event,
        });
    }

    /// Pops the earliest event, returning its time and payload.
    pub fn pop(&mut self) -> Option<(TimeSpan, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(TimeSpan::from_seconds(2.0), Event::Tick);
        q.schedule(
            TimeSpan::from_seconds(1.0),
            Event::FrameGenerated { node: 0, bytes: 1 },
        );
        q.schedule(TimeSpan::from_seconds(3.0), Event::Tick);
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, TimeSpan::from_seconds(1.0));
        assert!(matches!(e1, Event::FrameGenerated { .. }));
        assert_eq!(q.pop().unwrap().0, TimeSpan::from_seconds(2.0));
        assert_eq!(q.pop().unwrap().0, TimeSpan::from_seconds(3.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_preserve_insertion_order() {
        let mut q = EventQueue::new();
        let t = TimeSpan::from_seconds(1.0);
        q.schedule(t, Event::FrameGenerated { node: 1, bytes: 1 });
        q.schedule(t, Event::FrameGenerated { node: 2, bytes: 2 });
        q.schedule(t, Event::FrameGenerated { node: 3, bytes: 3 });
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::FrameGenerated { node, .. } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(TimeSpan::ZERO, Event::Tick);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }
}
