//! Deterministic discrete-event engine.
//!
//! Events are ordered by simulation time with a monotonically increasing
//! sequence number as a tiebreaker, so simulations are fully deterministic
//! regardless of insertion order of simultaneous events.
//!
//! Two queue implementations share that contract and pop in **identical**
//! order (asserted by `tests/queue_equivalence.rs`):
//!
//! * [`BucketQueue`] — the default: a calendar queue whose bucket storage is
//!   reused across pops, so steady-state simulation allocates nothing per
//!   event.  O(1) amortised schedule/pop for the clustered event times a MAC
//!   schedule produces.
//! * [`BinaryHeapQueue`] — the pre-refactor `std::collections::BinaryHeap`
//!   engine, kept as the exact reference for equivalence tests and for the
//!   `bench_netsim` old-vs-new comparison.
//!
//! [`EventQueue`] aliases the default implementation.

use hidwa_units::TimeSpan;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Events processed by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A node's traffic source produced a frame of `bytes` application data.
    FrameGenerated {
        /// Index of the producing node.
        node: usize,
        /// Application bytes in the frame.
        bytes: usize,
    },
    /// The medium finished carrying the frame at the head of the schedule.
    TransmissionComplete {
        /// Index of the transmitting node.
        node: usize,
        /// Application bytes delivered.
        bytes: usize,
        /// When the frame was generated (for latency accounting).
        generated_at: TimeSpan,
    },
    /// Periodic bookkeeping tick (MAC schedule rollover).
    Tick,
}

/// An event tagged with its firing time and sequence number.
#[derive(Debug, Clone)]
struct Scheduled {
    time: TimeSpan,
    sequence: u64,
    event: Event,
}

impl Scheduled {
    /// `(time, sequence)` lexicographic order — the single source of truth
    /// for pop order in both queue implementations.
    fn sort_key(&self) -> (f64, u64) {
        (self.time.as_seconds(), self.sequence)
    }
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.sequence == other.sequence
    }
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.sequence.cmp(&self.sequence))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The default event queue used by the simulator.
pub type EventQueue = BucketQueue;

/// A time-ordered event queue backed by `std::collections::BinaryHeap`.
///
/// This is the pre-refactor engine: correct and simple, but every push beyond
/// the high-water mark reallocates the heap and each pop re-sifts the tree.
/// It is retained as the behavioural reference — [`BucketQueue`] must pop in
/// exactly this order.
#[derive(Debug, Default)]
pub struct BinaryHeapQueue {
    heap: BinaryHeap<Scheduled>,
    next_sequence: u64,
}

impl BinaryHeapQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at an absolute simulation time.
    pub fn schedule(&mut self, time: TimeSpan, event: Event) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(Scheduled {
            time,
            sequence,
            event,
        });
    }

    /// Pops the earliest event, returning its time and payload.
    pub fn pop(&mut self) -> Option<(TimeSpan, Event)> {
        self.heap.pop().map(|s| (s.time, s.event))
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// One slab entry: a scheduled event plus its *virtual bucket number*
/// `k = ⌊time / width⌋` (fixed at insert so epoch membership is an exact
/// integer comparison — no float drift between the insert-side and pop-side
/// mapping) and the intrusive link to the next entry in the same bucket.
#[derive(Debug, Clone)]
struct SlabSlot {
    k: u64,
    time: TimeSpan,
    sequence: u64,
    /// Next slab index in this bucket's list (or the free list), [`NIL`]
    /// terminated.
    next: u32,
    event: Event,
}

/// Sentinel slab index for "no entry".
const NIL: u32 = u32::MAX;

/// A calendar (bucket) event queue over an index-based slab, reusing storage
/// across pops.
///
/// All entries live in one slab arena; freed indices go to a free list, so
/// the steady state of a simulation (schedule one, pop one) recycles a
/// handful of hot slab slots and never touches the allocator.  Finite-time
/// events are linked into `heads[k & (bucket_count - 1)]` where
/// `k = ⌊time / width⌋` (the *virtual bucket*, fixed at insert); a cursor
/// walks the virtual buckets in increasing `k`, and within one `k` the
/// earliest `(time, sequence)` entry pops first — exactly the
/// [`BinaryHeapQueue`] order.  An occupancy bitmap lets a pop jump straight
/// to the next non-empty bucket with `trailing_zeros` instead of walking
/// empty buckets one at a time.
///
/// Non-finite times (a zero-goodput link schedules completion at `+∞`) are
/// kept in a dedicated overflow list consulted when no finite event remains.
/// Scheduling an event earlier than the cursor rewinds the cursor, so the
/// queue is correct for arbitrary interleavings, not just monotone
/// simulation time.
///
/// Degenerate pile-ups (thousands of entries landing in one bucket, e.g. all
/// at the same key) do **not** degrade pops to a linear scan: a bucket whose
/// unsorted head prefix exceeds a small threshold is sorted lazily on first
/// pop and kept as an ascending suffix, after which each pop examines at most
/// the (small) fresh prefix plus the suffix head.
#[derive(Debug)]
pub struct BucketQueue {
    /// Head slab index per physical bucket ([`NIL`] = empty); power-of-two
    /// length.
    heads: Vec<u32>,
    /// Slab arena holding every pending (and freed) finite-time entry.
    arena: Vec<SlabSlot>,
    /// Head of the freed-slot list within the arena.
    free_head: u32,
    /// Bit `b` of `occupancy[b / 64]` set ⇔ bucket `b` is non-empty.
    occupancy: Vec<u64>,
    /// Per-bucket count of entries at the head of the chain inserted since
    /// the bucket was last sorted; everything after the first
    /// `unsorted[bucket]` entries is an ascending `(k, time, sequence)`
    /// suffix.  Lets a degenerate bucket (thousands of same-`k` entries) be
    /// sorted **once** on first pop instead of linear-scanned on every pop.
    unsorted: Vec<u32>,
    /// Reused scratch buffer for [`Self::sort_bucket`].
    sort_scratch: Vec<u32>,
    /// Events at non-finite times, popped only once the wheel drains.
    far: Vec<Scheduled>,
    width: f64,
    inv_width: f64,
    /// Virtual bucket the cursor is currently draining.
    cursor_k: u64,
    len: usize,
    next_sequence: u64,
}

/// Location of a bucket's minimal entry, as reported by
/// [`BucketQueue::min_in_bucket`]: the entry, its in-chain predecessor, its
/// virtual bucket, and whether it sits in the unsorted head prefix (the
/// bookkeeping [`BucketQueue::unlink_min`] needs to keep the prefix count
/// exact under removals).
#[derive(Clone, Copy)]
struct BucketMin {
    prev: u32,
    index: u32,
    k: u64,
    in_prefix: bool,
}

impl Default for BucketQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketQueue {
    /// Initial bucket count; grows when occupancy exceeds [`Self::GROW_FACTOR`].
    const INITIAL_BUCKETS: usize = 64;
    /// Grow the wheel when `len > bucket_count * GROW_FACTOR`.
    const GROW_FACTOR: usize = 4;
    /// Default bucket width in seconds (1 ms — the order of one frame
    /// service time on a Mbps-class body medium).  Any width is *correct*;
    /// width only affects the constant factor, and it is re-estimated from
    /// the live event-gap distribution whenever the wheel grows.
    const DEFAULT_WIDTH: f64 = 1.0e-3;
    /// Unsorted-prefix length beyond which a pop sorts the bucket chain once
    /// (after which pops examine ≤ this many candidates plus the sorted
    /// suffix head).  MAC-shaped traffic never reaches it; only degenerate
    /// same-key pile-ups pay the sort, amortised to one sort per
    /// `SORT_THRESHOLD` inserts.
    const SORT_THRESHOLD: u32 = 32;

    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heads: vec![NIL; Self::INITIAL_BUCKETS],
            arena: Vec::new(),
            free_head: NIL,
            occupancy: vec![0; Self::INITIAL_BUCKETS.div_ceil(64)],
            unsorted: vec![0; Self::INITIAL_BUCKETS],
            sort_scratch: Vec::new(),
            far: Vec::new(),
            width: Self::DEFAULT_WIDTH,
            inv_width: 1.0 / Self::DEFAULT_WIDTH,
            cursor_k: 0,
            len: 0,
            next_sequence: 0,
        }
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn virtual_bucket(&self, seconds: f64) -> u64 {
        // Multiply by the cached reciprocal; the `as` cast truncates toward
        // zero (= floor for non-negative input) and saturates, so negative
        // times map to k = 0 and astronomically large (but finite) times
        // share the top bucket.  Any monotone time→k mapping is correct —
        // ordering within a bucket still goes by (time, sequence), so
        // clamping never reorders pops.
        (seconds * self.inv_width) as u64
    }

    #[inline]
    fn set_occupied(&mut self, bucket: usize) {
        self.occupancy[bucket >> 6] |= 1u64 << (bucket & 63);
    }

    #[inline]
    fn clear_if_empty(&mut self, bucket: usize) {
        if self.heads[bucket] == NIL {
            self.occupancy[bucket >> 6] &= !(1u64 << (bucket & 63));
        }
    }

    /// Smallest occupied physical bucket in `[from, to)`, or `None`.
    fn next_occupied_in(&self, from: usize, to: usize) -> Option<usize> {
        if from >= to {
            return None;
        }
        let mut word_index = from >> 6;
        let last_word = (to - 1) >> 6;
        let mut word = self.occupancy[word_index] & (u64::MAX << (from & 63));
        loop {
            if word != 0 {
                let bucket = (word_index << 6) + word.trailing_zeros() as usize;
                return (bucket < to).then_some(bucket);
            }
            word_index += 1;
            if word_index > last_word {
                return None;
            }
            word = self.occupancy[word_index];
        }
    }

    /// Takes a slab slot (recycling the free list) and links it at the head
    /// of `bucket`.
    fn link_slot(&mut self, bucket: usize, k: u64, time: TimeSpan, sequence: u64, event: Event) {
        let next = self.heads[bucket];
        let index = if self.free_head != NIL {
            let index = self.free_head;
            let slot = &mut self.arena[index as usize];
            self.free_head = slot.next;
            *slot = SlabSlot {
                k,
                time,
                sequence,
                next,
                event,
            };
            index
        } else {
            assert!(self.arena.len() < NIL as usize, "slab capacity exhausted");
            self.arena.push(SlabSlot {
                k,
                time,
                sequence,
                next,
                event,
            });
            (self.arena.len() - 1) as u32
        };
        self.heads[bucket] = index;
        self.unsorted[bucket] += 1;
        self.set_occupied(bucket);
    }

    /// Unlinks `index` (whose predecessor in its bucket list is `prev`, or
    /// [`NIL`] for the head) and returns its payload; the slot joins the
    /// free list.
    fn unlink_slot(&mut self, bucket: usize, prev: u32, index: u32) -> (TimeSpan, u64, Event) {
        let next = self.arena[index as usize].next;
        if prev == NIL {
            self.heads[bucket] = next;
        } else {
            self.arena[prev as usize].next = next;
        }
        self.clear_if_empty(bucket);
        let slot = &mut self.arena[index as usize];
        slot.next = self.free_head;
        self.free_head = index;
        self.len -= 1;
        (
            slot.time,
            slot.sequence,
            std::mem::replace(&mut slot.event, Event::Tick),
        )
    }

    /// Sorts a bucket's whole chain ascending by `(k, time, sequence)` and
    /// relinks it, zeroing the unsorted prefix.  Slots stay in place in the
    /// arena — only `next` pointers and the bucket head are rewritten.
    fn sort_bucket(&mut self, bucket: usize) {
        let mut scratch = std::mem::take(&mut self.sort_scratch);
        scratch.clear();
        let mut current = self.heads[bucket];
        while current != NIL {
            scratch.push(current);
            current = self.arena[current as usize].next;
        }
        scratch.sort_by(|&a, &b| {
            let a = &self.arena[a as usize];
            let b = &self.arena[b as usize];
            (a.k, a.time.as_seconds(), a.sequence)
                .partial_cmp(&(b.k, b.time.as_seconds(), b.sequence))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut next = NIL;
        for &index in scratch.iter().rev() {
            self.arena[index as usize].next = next;
            next = index;
        }
        self.heads[bucket] = next;
        self.unsorted[bucket] = 0;
        self.sort_scratch = scratch;
    }

    /// Locates the `(k, time, sequence)`-minimal entry of a non-empty bucket.
    ///
    /// Only the unsorted head prefix is scanned, plus the first entry of the
    /// sorted suffix (which, being ascending, is the suffix minimum).  A
    /// prefix past [`Self::SORT_THRESHOLD`] is sorted once first, so a
    /// degenerate same-key bucket costs one `O(n log n)` sort on first pop
    /// and `O(SORT_THRESHOLD)` per pop after, instead of `O(n)` every pop.
    #[inline]
    fn min_in_bucket(&mut self, bucket: usize) -> BucketMin {
        if self.unsorted[bucket] >= Self::SORT_THRESHOLD {
            self.sort_bucket(bucket);
        }
        let prefix_len = self.unsorted[bucket];
        let mut best_prev = NIL;
        let mut best = self.heads[bucket];
        let first = &self.arena[best as usize];
        let (mut best_k, mut best_time, mut best_seq) = (first.k, first.time, first.sequence);
        let mut best_in_prefix = prefix_len > 0;
        let mut prev = best;
        let mut current = first.next;
        // Remaining prefix candidates (the head was position 0), then one
        // suffix-head candidate.
        let mut remaining = prefix_len.saturating_sub(1) + 1;
        while current != NIL && remaining > 0 {
            remaining -= 1;
            let in_prefix = remaining > 0;
            let slot = &self.arena[current as usize];
            if (slot.k, slot.time.as_seconds(), slot.sequence)
                < (best_k, best_time.as_seconds(), best_seq)
            {
                best_prev = prev;
                best = current;
                best_k = slot.k;
                best_time = slot.time;
                best_seq = slot.sequence;
                best_in_prefix = in_prefix;
            }
            prev = current;
            current = slot.next;
        }
        BucketMin {
            prev: best_prev,
            index: best,
            k: best_k,
            in_prefix: best_in_prefix,
        }
    }

    /// Unlinks the entry [`Self::min_in_bucket`] reported, keeping the
    /// unsorted-prefix count exact (a removal from the sorted suffix leaves
    /// the suffix sorted, so only prefix removals decrement).
    fn unlink_min(&mut self, bucket: usize, min: BucketMin) -> (TimeSpan, u64, Event) {
        if min.in_prefix {
            self.unsorted[bucket] -= 1;
        }
        self.unlink_slot(bucket, min.prev, min.index)
    }

    /// Schedules an event at an absolute simulation time.
    #[inline]
    pub fn schedule(&mut self, time: TimeSpan, event: Event) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.schedule_with_sequence(time, sequence, event);
    }

    /// [`BucketQueue::schedule`] with a caller-supplied tiebreak sequence —
    /// for schedulers that share one sequence counter across several
    /// structures (see `sim`'s split scheduler).  Callers must keep
    /// sequences unique; relative pop order among equal times follows the
    /// sequence order exactly as in [`BucketQueue::schedule`].
    #[inline]
    pub(crate) fn schedule_with_sequence(&mut self, time: TimeSpan, sequence: u64, event: Event) {
        let seconds = time.as_seconds();
        if !seconds.is_finite() {
            self.far.push(Scheduled {
                time,
                sequence,
                event,
            });
            self.len += 1;
            return;
        }
        let k = self.virtual_bucket(seconds);
        if k < self.cursor_k || self.wheel_len() == 0 {
            // Rewind (or re-anchor an idle wheel) so the cursor never sits
            // past a pending event.
            self.cursor_k = k;
        }
        self.len += 1;
        let bucket = (k & (self.heads.len() as u64 - 1)) as usize;
        self.link_slot(bucket, k, time, sequence, event);
        if self.len > self.heads.len() * Self::GROW_FACTOR {
            self.grow();
        }
    }

    fn wheel_len(&self) -> usize {
        self.len - self.far.len()
    }

    /// Pops the earliest event, returning its time and payload.
    #[inline]
    pub fn pop(&mut self) -> Option<(TimeSpan, Event)> {
        self.pop_with_sequence()
            .map(|(time, _sequence, event)| (time, event))
    }

    /// [`BucketQueue::pop`] that also returns the entry's tiebreak sequence.
    #[inline]
    pub(crate) fn pop_with_sequence(&mut self) -> Option<(TimeSpan, u64, Event)> {
        if self.len == 0 {
            return None;
        }
        if self.wheel_len() == 0 {
            return self.pop_far();
        }
        // One lap over the *occupied* buckets starting at the cursor: the
        // first bucket whose minimal entry belongs to its current-lap
        // virtual bucket holds the global minimum (a smaller `k` would
        // demand an occupied bucket nearer the cursor, and `k` is monotone
        // in time).  Buckets whose entries are all future-lap are skipped;
        // if a whole lap is future-lap the pending events are sparser than
        // one wheel revolution, so locate the minimum directly.
        let bucket_count = self.heads.len();
        if bucket_count == 64 {
            // Pre-growth wheel (the steady state for body-network queues):
            // the occupancy bitmap is one word, so the lap is a rotate plus
            // trailing_zeros per occupied bucket — no empty-bucket walking.
            let start = (self.cursor_k & 63) as usize;
            let mut rotated = self.occupancy[0].rotate_right(start as u32);
            while rotated != 0 {
                let offset = rotated.trailing_zeros() as usize;
                let bucket = (start + offset) & 63;
                let target_k = self.cursor_k.saturating_add(offset as u64);
                let min = self.min_in_bucket(bucket);
                if min.k == target_k {
                    self.cursor_k = target_k;
                    return Some(self.unlink_min(bucket, min));
                }
                rotated &= rotated - 1;
            }
            return Some(self.take_global_min());
        }
        let start = (self.cursor_k & (bucket_count as u64 - 1)) as usize;
        for (range_start, range_end, base_offset) in
            [(start, bucket_count, 0), (0, start, bucket_count - start)]
        {
            let mut from = range_start;
            while let Some(bucket) = self.next_occupied_in(from, range_end) {
                let offset = base_offset + (bucket - range_start);
                // Saturating: `k` itself saturates for astronomically far
                // times, and a saturated cursor must still match them.
                let target_k = self.cursor_k.saturating_add(offset as u64);
                let min = self.min_in_bucket(bucket);
                if min.k == target_k {
                    self.cursor_k = target_k;
                    return Some(self.unlink_min(bucket, min));
                }
                from = bucket + 1;
            }
        }
        Some(self.take_global_min())
    }

    /// O(pending) fallback: removes the global minimum and re-anchors the
    /// cursor at its virtual bucket.
    fn take_global_min(&mut self) -> (TimeSpan, u64, Event) {
        // `(bucket, min, (k, seconds, sequence))` of the best so far.
        type Candidate = (usize, BucketMin, (u64, f64, u64));
        let mut best: Option<Candidate> = None;
        let mut from = 0;
        while let Some(bucket) = self.next_occupied_in(from, self.heads.len()) {
            let min = self.min_in_bucket(bucket);
            let slot = &self.arena[min.index as usize];
            let key = (slot.k, slot.time.as_seconds(), slot.sequence);
            if best.is_none_or(|(_, _, best_key)| key < best_key) {
                best = Some((bucket, min, key));
            }
            from = bucket + 1;
        }
        let (bucket, min, key) = best.expect("wheel_len() > 0 guarantees a finite entry");
        self.cursor_k = key.0;
        self.unlink_min(bucket, min)
    }

    fn pop_far(&mut self) -> Option<(TimeSpan, u64, Event)> {
        let mut best: Option<(usize, (f64, u64))> = None;
        for (i, entry) in self.far.iter().enumerate() {
            let key = entry.sort_key();
            if best.is_none_or(|(_, best_key)| key < best_key) {
                best = Some((i, key));
            }
        }
        let (i, _) = best?;
        self.len -= 1;
        let entry = self.far.swap_remove(i);
        Some((entry.time, entry.sequence, entry.event))
    }

    /// Doubles the wheel and re-estimates the bucket width from the live
    /// span of pending event times, then re-links every slab entry under the
    /// new `(width, bucket_count)` mapping (slots stay in place — only the
    /// `k` fields, bucket heads and links are rewritten).
    fn grow(&mut self) {
        let new_count = self.heads.len() * 2;
        // Collect the live slab indices by walking every bucket list.
        let mut live: Vec<u32> = Vec::with_capacity(self.wheel_len());
        for &head in &self.heads {
            let mut current = head;
            while current != NIL {
                live.push(current);
                current = self.arena[current as usize].next;
            }
        }
        let (mut min_t, mut max_t) = (f64::INFINITY, f64::NEG_INFINITY);
        for &index in &live {
            let s = self.arena[index as usize].time.as_seconds();
            min_t = min_t.min(s);
            max_t = max_t.max(s);
        }
        if max_t > min_t && !live.is_empty() {
            // Aim for ~one pending event per bucket across the live span.
            self.width = ((max_t - min_t) / live.len() as f64).clamp(1.0e-7, 1.0);
            self.inv_width = 1.0 / self.width;
        }
        self.heads.clear();
        self.heads.resize(new_count, NIL);
        self.occupancy.clear();
        self.occupancy.resize(new_count.div_ceil(64), 0);
        // Relinking is head-insertion, so every rebuilt chain is a fresh
        // unsorted prefix.
        self.unsorted.clear();
        self.unsorted.resize(new_count, 0);
        self.cursor_k = u64::MAX;
        for index in live {
            let k = self.virtual_bucket(self.arena[index as usize].time.as_seconds());
            self.cursor_k = self.cursor_k.min(k);
            let bucket = (k & (new_count as u64 - 1)) as usize;
            let slot = &mut self.arena[index as usize];
            slot.k = k;
            slot.next = self.heads[bucket];
            self.heads[bucket] = index;
            self.unsorted[bucket] += 1;
            self.set_occupied(bucket);
        }
        if self.wheel_len() == 0 {
            self.cursor_k = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(TimeSpan::from_seconds(2.0), Event::Tick);
        q.schedule(
            TimeSpan::from_seconds(1.0),
            Event::FrameGenerated { node: 0, bytes: 1 },
        );
        q.schedule(TimeSpan::from_seconds(3.0), Event::Tick);
        let (t1, e1) = q.pop().unwrap();
        assert_eq!(t1, TimeSpan::from_seconds(1.0));
        assert!(matches!(e1, Event::FrameGenerated { .. }));
        assert_eq!(q.pop().unwrap().0, TimeSpan::from_seconds(2.0));
        assert_eq!(q.pop().unwrap().0, TimeSpan::from_seconds(3.0));
        assert!(q.pop().is_none());
    }

    #[test]
    fn simultaneous_events_preserve_insertion_order() {
        let mut q = EventQueue::new();
        let t = TimeSpan::from_seconds(1.0);
        q.schedule(t, Event::FrameGenerated { node: 1, bytes: 1 });
        q.schedule(t, Event::FrameGenerated { node: 2, bytes: 2 });
        q.schedule(t, Event::FrameGenerated { node: 3, bytes: 3 });
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::FrameGenerated { node, .. } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(TimeSpan::ZERO, Event::Tick);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn infinite_times_pop_last() {
        let mut q = BucketQueue::new();
        q.schedule(
            TimeSpan::from_seconds(f64::INFINITY),
            Event::FrameGenerated { node: 9, bytes: 9 },
        );
        q.schedule(TimeSpan::from_seconds(1.0), Event::Tick);
        assert_eq!(q.pop().unwrap().0, TimeSpan::from_seconds(1.0));
        let (t, e) = q.pop().unwrap();
        assert!(t.as_seconds().is_infinite());
        assert!(matches!(e, Event::FrameGenerated { node: 9, .. }));
        assert!(q.pop().is_none());
    }

    #[test]
    fn rewinds_when_scheduling_before_the_cursor() {
        let mut q = BucketQueue::new();
        q.schedule(TimeSpan::from_seconds(100.0), Event::Tick);
        assert_eq!(q.pop().unwrap().0, TimeSpan::from_seconds(100.0));
        // Cursor now sits at t = 100 s; an earlier insert must still pop
        // first.
        q.schedule(TimeSpan::from_seconds(200.0), Event::Tick);
        q.schedule(
            TimeSpan::from_seconds(0.5),
            Event::FrameGenerated { node: 1, bytes: 1 },
        );
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, TimeSpan::from_seconds(0.5));
        assert!(matches!(e, Event::FrameGenerated { .. }));
        assert_eq!(q.pop().unwrap().0, TimeSpan::from_seconds(200.0));
    }

    #[test]
    fn degenerate_same_key_bucket_pops_in_heap_order() {
        // Thousands of entries at the *same time* land in one virtual bucket:
        // the documented worst case for the calendar queue.  The lazy bucket
        // sort must keep pop order heap-identical (ties broken by insertion
        // sequence) while avoiding the O(n) re-scan per pop.
        let mut bucket = BucketQueue::new();
        let mut heap = BinaryHeapQueue::new();
        let t = TimeSpan::from_millis(0.5);
        for i in 0..5000usize {
            bucket.schedule(t, Event::FrameGenerated { node: i, bytes: 1 });
            heap.schedule(t, Event::FrameGenerated { node: i, bytes: 1 });
        }
        // Interleave pops with fresh same-key inserts so the sorted suffix
        // coexists with a live unsorted prefix.
        for i in 0..2000usize {
            assert_eq!(bucket.pop(), heap.pop());
            if i % 3 == 0 {
                let e = Event::FrameGenerated {
                    node: 10_000 + i,
                    bytes: 2,
                };
                bucket.schedule(t, e.clone());
                heap.schedule(t, e);
            }
        }
        while let Some(expected) = heap.pop() {
            assert_eq!(bucket.pop().unwrap(), expected);
        }
        assert!(bucket.is_empty());
    }

    #[test]
    fn same_key_pile_up_drains_fast() {
        // The pre-fix behaviour was O(n) per pop (O(n²) to drain); with the
        // lazy sort the full stuff-then-drain cycle is O(n log n).  100k
        // entries drain in well under a second even on a loaded machine; the
        // quadratic path would take minutes.
        let n = 100_000usize;
        let mut q = BucketQueue::new();
        let t = TimeSpan::from_millis(0.25);
        for i in 0..n {
            q.schedule(t, Event::FrameGenerated { node: i, bytes: 1 });
        }
        let start = std::time::Instant::now();
        for i in 0..n {
            match q.pop().unwrap().1 {
                Event::FrameGenerated { node, .. } => assert_eq!(node, i),
                other => panic!("unexpected event {other:?}"),
            }
        }
        assert!(q.is_empty());
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "same-key drain took {:?} — linear-scan regression?",
            start.elapsed()
        );
    }

    #[test]
    fn growth_keeps_order_under_load() {
        let mut bucket = BucketQueue::new();
        let mut heap = BinaryHeapQueue::new();
        // Enough events to force several grow() cycles, with clustered and
        // spread-out times plus ties.
        for i in 0..2000u64 {
            let t = TimeSpan::from_seconds(((i * 37) % 500) as f64 * 0.01);
            bucket.schedule(
                t,
                Event::FrameGenerated {
                    node: i as usize,
                    bytes: 1,
                },
            );
            heap.schedule(
                t,
                Event::FrameGenerated {
                    node: i as usize,
                    bytes: 1,
                },
            );
        }
        assert_eq!(bucket.len(), heap.len());
        while let Some(expected) = heap.pop() {
            assert_eq!(bucket.pop().unwrap(), expected);
        }
        assert!(bucket.is_empty());
    }
}
