//! Medium-access control for the shared body medium.
//!
//! Wi-R is a single shared "wire": every wearable couples onto the same
//! conductive body, so simultaneous transmissions collide.  The hub therefore
//! arbitrates access.  Two policies are modelled:
//!
//! * **TDMA** — the hub assigns every leaf a fixed slot in a repeating
//!   superframe.  Predictable latency, some wasted slots when a leaf has
//!   nothing to send.
//! * **Polling** — the hub polls leaves round-robin; a leaf transmits only
//!   when polled and only if it has queued data.  Slightly higher per-frame
//!   overhead, but idle leaves cost almost nothing.
//!
//! The simulator only needs one answer from the policy: *given that the
//! medium is free at time `t`, which node may transmit next, and how much
//! protocol overhead does the grant cost?*

use hidwa_units::TimeSpan;
use serde::{Deserialize, Serialize};

/// Medium-access policy for the shared body-area medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MacPolicy {
    /// Fixed time-division slots assigned per leaf.
    Tdma,
    /// Hub-driven round-robin polling.
    Polling,
}

impl MacPolicy {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MacPolicy::Tdma => "TDMA",
            MacPolicy::Polling => "polling",
        }
    }

    /// Per-grant protocol overhead (beacon/poll frame plus guard time) added
    /// to every transmission opportunity.
    #[must_use]
    pub fn grant_overhead(self) -> TimeSpan {
        match self {
            MacPolicy::Tdma => TimeSpan::from_micros(20.0),
            MacPolicy::Polling => TimeSpan::from_micros(60.0),
        }
    }
}

impl core::fmt::Display for MacPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Round-robin arbiter used by the simulator for both policies.
///
/// TDMA and polling differ (here) only in their per-grant overhead and in
/// whether an idle node consumes its opportunity: under TDMA an empty slot
/// still occupies the guard/beacon time, under polling an idle poll costs the
/// poll overhead only.
#[derive(Debug, Clone)]
pub struct Arbiter {
    policy: MacPolicy,
    node_count: usize,
    next: usize,
    /// `node_count` low bits set (saturated at 64) — hoisted out of
    /// [`grant_masked`](Self::grant_masked) so the per-event path does no
    /// mask rebuild, only an `and`.
    valid_mask: u64,
}

impl Arbiter {
    /// Creates an arbiter over `node_count` leaves.
    #[must_use]
    pub fn new(policy: MacPolicy, node_count: usize) -> Self {
        let valid_mask = match node_count {
            0 => 0,
            1..=63 => (1u64 << node_count) - 1,
            _ => u64::MAX,
        };
        Self {
            policy,
            node_count,
            next: 0,
            valid_mask,
        }
    }

    /// The policy being enforced.
    #[must_use]
    pub fn policy(&self) -> MacPolicy {
        self.policy
    }

    /// Picks the next node allowed to transmit, preferring nodes with queued
    /// data (`has_data[i]`) starting from the round-robin cursor.  Returns
    /// `None` when no node has data (the medium stays idle).
    pub fn grant(&mut self, has_data: &[bool]) -> Option<usize> {
        if self.node_count == 0 || has_data.len() != self.node_count {
            return None;
        }
        for offset in 0..self.node_count {
            let candidate = (self.next + offset) % self.node_count;
            if has_data[candidate] {
                self.next = (candidate + 1) % self.node_count;
                return Some(candidate);
            }
        }
        None
    }

    /// Bitmask fast path of [`Arbiter::grant`] for networks of at most 64
    /// nodes: bit `i` of `ready` set means node `i` has queued data.
    ///
    /// Grants the same node and advances the cursor identically to the slice
    /// form (asserted by `masked_grant_matches_slice_grant` below), but in
    /// O(1) via `trailing_zeros` instead of an O(n) scan — the simulator
    /// maintains the mask incrementally, so per-event arbitration no longer
    /// touches every node.  Returns `None` for networks larger than 64 nodes
    /// (callers fall back to the slice form).
    #[inline]
    pub fn grant_masked(&mut self, ready: u64) -> Option<usize> {
        if self.node_count == 0 || self.node_count > 64 {
            return None;
        }
        let ready = ready & self.valid_mask;
        if ready == 0 {
            return None;
        }
        // `next` < node_count ≤ 64, so both shifts are in range.
        let at_or_after = ready >> self.next;
        let candidate = if at_or_after != 0 {
            self.next + at_or_after.trailing_zeros() as usize
        } else {
            ready.trailing_zeros() as usize
        };
        // candidate < node_count, so the wrap needs a compare, not a `%`.
        let advanced = candidate + 1;
        self.next = if advanced == self.node_count {
            0
        } else {
            advanced
        };
        Some(candidate)
    }

    /// Multi-word extension of [`Arbiter::grant_masked`] for networks larger
    /// than 64 nodes: bit `i % 64` of `ready[i / 64]` set means node `i` has
    /// queued data, and `ready` must hold exactly `⌈node_count / 64⌉` words.
    ///
    /// Grants the same node and advances the cursor identically to the slice
    /// form (`words_grant_matches_slice_grant` below), but the scan is per
    /// 64-node word instead of per node, and the caller maintains the words
    /// incrementally — this is what removes the O(n) readiness-vector rebuild
    /// the simulator previously paid per arbitration beyond the mask width.
    #[inline]
    pub fn grant_words(&mut self, ready: &[u64]) -> Option<usize> {
        let words = self.node_count.div_ceil(64);
        if words == 0 || ready.len() != words {
            return None;
        }
        // Bits at or above `node_count` in the last word are ignored, so a
        // stale caller bit cannot grant a nonexistent node.
        let tail_bits = self.node_count - (words - 1) * 64;
        let tail_mask = if tail_bits == 64 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        let valid = |index: usize| {
            if index == words - 1 {
                ready[index] & tail_mask
            } else {
                ready[index]
            }
        };
        let start_word = self.next / 64;
        let start_bit = (self.next % 64) as u32;
        // First the cursor's own word at or after the cursor bit, then whole
        // words wrapping around, finally the cursor word below the cursor.
        let at_or_after = valid(start_word) & (u64::MAX << start_bit);
        let candidate = if at_or_after != 0 {
            start_word * 64 + at_or_after.trailing_zeros() as usize
        } else {
            let mut found = None;
            for offset in 1..=words {
                let index = (start_word + offset) % words;
                let mut word = valid(index);
                if index == start_word {
                    word &= (1u64 << start_bit) - 1;
                }
                if word != 0 {
                    found = Some(index * 64 + word.trailing_zeros() as usize);
                    break;
                }
            }
            found?
        };
        let advanced = candidate + 1;
        self.next = if advanced == self.node_count {
            0
        } else {
            advanced
        };
        Some(candidate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_is_round_robin_among_ready_nodes() {
        let mut arb = Arbiter::new(MacPolicy::Tdma, 3);
        let all = vec![true, true, true];
        assert_eq!(arb.grant(&all), Some(0));
        assert_eq!(arb.grant(&all), Some(1));
        assert_eq!(arb.grant(&all), Some(2));
        assert_eq!(arb.grant(&all), Some(0));
    }

    #[test]
    fn grant_skips_idle_nodes() {
        let mut arb = Arbiter::new(MacPolicy::Polling, 4);
        assert_eq!(arb.grant(&[false, false, true, false]), Some(2));
        assert_eq!(arb.grant(&[true, false, false, false]), Some(0));
        assert_eq!(arb.grant(&[false, false, false, false]), None);
    }

    #[test]
    fn grant_rejects_mismatched_input() {
        let mut arb = Arbiter::new(MacPolicy::Tdma, 2);
        assert_eq!(arb.grant(&[true]), None);
        let mut empty = Arbiter::new(MacPolicy::Tdma, 0);
        assert_eq!(empty.grant(&[]), None);
    }

    #[test]
    fn no_starvation_under_contention() {
        // With every node always ready, each node gets exactly 1/n of grants.
        let n = 5;
        let mut arb = Arbiter::new(MacPolicy::Tdma, n);
        let mut counts = vec![0usize; n];
        let ready = vec![true; n];
        for _ in 0..1000 {
            counts[arb.grant(&ready).unwrap()] += 1;
        }
        assert!(counts.iter().all(|&c| c == 200));
    }

    #[test]
    fn masked_grant_matches_slice_grant() {
        for node_count in [1usize, 2, 5, 63, 64] {
            let mut slice_arb = Arbiter::new(MacPolicy::Polling, node_count);
            let mut mask_arb = Arbiter::new(MacPolicy::Polling, node_count);
            // Deterministic pseudo-random readiness patterns, including empty
            // and full masks.
            let mut state = 0x9E3779B97F4A7C15u64;
            for round in 0..200 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let ready = match round % 5 {
                    0 => 0,
                    1 => u64::MAX,
                    _ => state,
                };
                let has_data: Vec<bool> = (0..node_count).map(|i| ready >> i & 1 == 1).collect();
                assert_eq!(
                    slice_arb.grant(&has_data),
                    mask_arb.grant_masked(ready),
                    "count {node_count} round {round}"
                );
            }
        }
        // Out-of-range node counts fall back to None.
        assert_eq!(Arbiter::new(MacPolicy::Tdma, 65).grant_masked(1), None);
        assert_eq!(Arbiter::new(MacPolicy::Tdma, 0).grant_masked(1), None);
    }

    #[test]
    fn words_grant_matches_slice_grant() {
        // Word counts straddling every boundary the scan cares about: one
        // word, exactly two, partial tails, and a multi-word middle.
        for node_count in [1usize, 5, 63, 64, 65, 70, 127, 128, 129, 200] {
            let words = node_count.div_ceil(64);
            let mut slice_arb = Arbiter::new(MacPolicy::Polling, node_count);
            let mut words_arb = Arbiter::new(MacPolicy::Polling, node_count);
            let mut state = 0x243F6A8885A308D3u64;
            for round in 0..300 {
                let mut ready = vec![0u64; words];
                for word in ready.iter_mut() {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    *word = match round % 5 {
                        0 => 0,
                        1 => u64::MAX,
                        _ => state,
                    };
                }
                let has_data: Vec<bool> = (0..node_count)
                    .map(|i| ready[i / 64] >> (i % 64) & 1 == 1)
                    .collect();
                assert_eq!(
                    slice_arb.grant(&has_data),
                    words_arb.grant_words(&ready),
                    "count {node_count} round {round}"
                );
            }
            // Stale bits above node_count must never be granted.
            let mut stale = vec![0u64; words];
            let tail_bits = node_count - (words - 1) * 64;
            if tail_bits < 64 {
                stale[words - 1] = u64::MAX << tail_bits;
                assert_eq!(words_arb.grant_words(&stale), None, "count {node_count}");
            }
        }
        // A word slice of the wrong length (or an empty arbiter) is rejected.
        assert_eq!(Arbiter::new(MacPolicy::Tdma, 70).grant_words(&[1]), None);
        assert_eq!(Arbiter::new(MacPolicy::Tdma, 0).grant_words(&[]), None);
    }

    #[test]
    fn policy_overheads_and_names() {
        assert!(MacPolicy::Polling.grant_overhead() > MacPolicy::Tdma.grant_overhead());
        assert_eq!(MacPolicy::Tdma.to_string(), "TDMA");
        assert_eq!(MacPolicy::Polling.name(), "polling");
        assert_eq!(Arbiter::new(MacPolicy::Tdma, 1).policy(), MacPolicy::Tdma);
    }
}
