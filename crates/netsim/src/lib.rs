//! Discrete-event simulator for Internet-of-Bodies (IoB) networks.
//!
//! The paper's distributed architecture (§V) is a star: ultra-low-power leaf
//! nodes scattered over the body, one on-body hub ("wearable brain"), and a
//! shared Wi-R medium connecting them.  Whether that star actually works —
//! can a single 4 Mbps medium carry a ring, a patch, earbuds and a camera at
//! once, and what latency and per-node energy does it deliver — is a
//! scheduling question, which this crate answers by simulation:
//!
//! * [`event`] — a deterministic discrete-event engine (calendar bucket
//!   queue by default, binary-heap reference kept for equivalence).
//! * [`traffic`] — periodic, bursty and streaming traffic sources for the
//!   wearable workloads.
//! * [`node`] — leaf/hub node descriptions: link parameters, sensing and
//!   compute power, body site.
//! * [`mac`] — medium-access schedulers for the shared body medium (TDMA and
//!   hub polling).
//! * [`sim`] — the simulator itself plus per-node statistics (delivered
//!   bytes, latency percentiles, energy breakdown).
//! * [`sketch`] — streaming latency percentile sketch with a documented
//!   1/64 relative error bound, O(1) memory over any horizon.
//!
//! # Example
//!
//! ```
//! use hidwa_netsim::{node::{NodeConfig, LinkParams}, sim::Simulation, traffic::TrafficPattern, mac::MacPolicy};
//! use hidwa_eqs::body::BodySite;
//! use hidwa_units::{DataRate, EnergyPerBit, Power, TimeSpan};
//!
//! let link = LinkParams::new(DataRate::from_mbps(4.0), EnergyPerBit::from_pico_joules(100.0), TimeSpan::from_micros(100.0));
//! let node = NodeConfig::leaf("ecg-patch", BodySite::Chest, link)
//!     .with_sensing_power(Power::from_micro_watts(2.0))
//!     .with_traffic(TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 512));
//! let mut sim = Simulation::new(MacPolicy::Tdma);
//! sim.add_node(node);
//! let report = sim.run(TimeSpan::from_seconds(60.0));
//! assert_eq!(report.node_stats().len(), 1);
//! assert!(report.node_stats()[0].delivered_frames > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod event;
pub mod mac;
pub mod node;
pub mod sim;
pub mod sketch;
pub mod traffic;

pub use error::NetsimError;
