//! Traffic sources: how leaf nodes generate data for the hub.

use hidwa_units::{DataRate, DataVolume, TimeSpan};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A traffic generation pattern for one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// A fixed-size frame every fixed period (sensor streaming with local
    /// buffering): e.g. an ECG patch shipping 512 B every second.
    Periodic {
        /// Frame interval.
        period: TimeSpan,
        /// Application bytes per frame.
        frame_bytes: usize,
    },
    /// A continuous stream at a target rate, chunked into frames of the given
    /// size (audio/video): the period is derived from rate and frame size.
    Streaming {
        /// Sustained application data rate.
        rate: DataRate,
        /// Application bytes per frame.
        frame_bytes: usize,
    },
    /// Poisson-like bursts: exponentially distributed gaps with the given
    /// mean, each burst carrying a fixed payload (event-driven sensors).
    Bursty {
        /// Mean time between bursts.
        mean_interval: TimeSpan,
        /// Application bytes per burst.
        burst_bytes: usize,
    },
    /// No traffic (an actuator that only listens).
    Silent,
}

impl TrafficPattern {
    /// Convenience constructor for [`TrafficPattern::Periodic`].
    #[must_use]
    pub fn periodic(period: TimeSpan, frame_bytes: usize) -> Self {
        TrafficPattern::Periodic {
            period,
            frame_bytes,
        }
    }

    /// Convenience constructor for [`TrafficPattern::Streaming`].
    #[must_use]
    pub fn streaming(rate: DataRate, frame_bytes: usize) -> Self {
        TrafficPattern::Streaming { rate, frame_bytes }
    }

    /// Convenience constructor for [`TrafficPattern::Bursty`].
    #[must_use]
    pub fn bursty(mean_interval: TimeSpan, burst_bytes: usize) -> Self {
        TrafficPattern::Bursty {
            mean_interval,
            burst_bytes,
        }
    }

    /// Long-run average application data rate of the pattern.
    #[must_use]
    pub fn average_rate(&self) -> DataRate {
        match *self {
            TrafficPattern::Periodic {
                period,
                frame_bytes,
            } => {
                if period.as_seconds() <= 0.0 {
                    DataRate::ZERO
                } else {
                    DataVolume::from_bytes(frame_bytes as f64) / period
                }
            }
            TrafficPattern::Streaming { rate, .. } => rate,
            TrafficPattern::Bursty {
                mean_interval,
                burst_bytes,
            } => {
                if mean_interval.as_seconds() <= 0.0 {
                    DataRate::ZERO
                } else {
                    DataVolume::from_bytes(burst_bytes as f64) / mean_interval
                }
            }
            TrafficPattern::Silent => DataRate::ZERO,
        }
    }

    /// Bytes carried by one frame of this pattern.
    #[must_use]
    pub fn frame_bytes(&self) -> usize {
        match *self {
            TrafficPattern::Periodic { frame_bytes, .. }
            | TrafficPattern::Streaming { frame_bytes, .. } => frame_bytes,
            TrafficPattern::Bursty { burst_bytes, .. } => burst_bytes,
            TrafficPattern::Silent => 0,
        }
    }

    /// The same pattern with its long-run offered load scaled by `factor`:
    /// periodic and bursty intervals shrink by `factor`, streaming rates grow
    /// by it, frame sizes stay put (so MAC overhead per byte is unchanged and
    /// a scaled fleet stresses the medium, not the framing).  A non-finite or
    /// non-positive factor is ignored — the pattern is returned unchanged —
    /// so degenerate sweep axes stay simulable instead of panicking.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        if !(factor.is_finite() && factor > 0.0) {
            return self.clone();
        }
        match *self {
            TrafficPattern::Periodic {
                period,
                frame_bytes,
            } => TrafficPattern::Periodic {
                period: TimeSpan::from_seconds(period.as_seconds() / factor),
                frame_bytes,
            },
            TrafficPattern::Streaming { rate, frame_bytes } => TrafficPattern::Streaming {
                rate: DataRate::from_bps(rate.as_bps() * factor),
                frame_bytes,
            },
            TrafficPattern::Bursty {
                mean_interval,
                burst_bytes,
            } => TrafficPattern::Bursty {
                mean_interval: TimeSpan::from_seconds(mean_interval.as_seconds() / factor),
                burst_bytes,
            },
            TrafficPattern::Silent => TrafficPattern::Silent,
        }
    }

    /// Time until the next frame after the current one, or `None` for silent
    /// patterns.  Bursty patterns draw from an exponential distribution using
    /// `rng`; deterministic patterns ignore it.
    pub fn next_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<TimeSpan> {
        match *self {
            TrafficPattern::Periodic { period, .. } => Some(period),
            TrafficPattern::Streaming { rate, frame_bytes } => {
                if rate.as_bps() <= 0.0 {
                    None
                } else {
                    Some(DataVolume::from_bytes(frame_bytes as f64) / rate)
                }
            }
            TrafficPattern::Bursty { mean_interval, .. } => {
                let u: f64 = rng.gen_range(1e-9..1.0);
                Some(mean_interval * (-u.ln()))
            }
            TrafficPattern::Silent => None,
        }
    }
}

/// Draws an index in `0..len` by cumulative weight using a **single**
/// uniform sample, so every call consumes exactly one RNG draw regardless of
/// `len` — the reproducibility contract both [`TrafficMix::sample`] and the
/// population layer's archetype draw rely on.
///
/// Weights are read through `weight(i)`; non-finite or negative weights count
/// as zero.  Returns `None` when every weight is zero (the draw is still
/// consumed, keeping downstream draws aligned).  Float rounding that leaves
/// the target at ~0 after the last entry resolves to the last positively
/// weighted index.
pub fn weighted_index<R, F>(rng: &mut R, len: usize, weight: F) -> Option<usize>
where
    R: Rng + ?Sized,
    F: Fn(usize) -> f64,
{
    let clamped = |i: usize| {
        let w = weight(i);
        if w.is_finite() && w > 0.0 {
            w
        } else {
            0.0
        }
    };
    let total: f64 = (0..len).map(clamped).sum();
    let mut target = rng.gen_range(0.0..1.0) * total;
    if total <= 0.0 {
        return None;
    }
    for i in 0..len {
        target -= clamped(i);
        if target < 0.0 {
            return Some(i);
        }
    }
    (0..len).rev().find(|&i| clamped(i) > 0.0)
}

/// A weighted mix of [`TrafficPattern`]s for one leaf class.
///
/// Real populations do not run one traffic shape per sensor: the same IMU
/// wristband streams continuously on one wearer and batches periodically on
/// another.  A `TrafficMix` captures that spread as `(weight, pattern)`
/// entries; the population layer draws one pattern per body with a single
/// uniform sample, so the draw is a pure function of the RNG state (and
/// therefore of the per-body seed).
///
/// # Example
///
/// ```
/// use hidwa_netsim::traffic::{TrafficMix, TrafficPattern};
/// use hidwa_units::{DataRate, TimeSpan};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mix = TrafficMix::new(vec![
///     (3.0, TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 512)),
///     (1.0, TrafficPattern::streaming(DataRate::from_kbps(13.0), 512)),
/// ]);
/// let mut rng = StdRng::seed_from_u64(7);
/// let drawn = mix.sample(&mut rng);
/// assert!(mix.entries().iter().any(|(_, p)| p == drawn));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMix {
    /// `(weight, pattern)` entries; weights need not be normalised.
    entries: Vec<(f64, TrafficPattern)>,
}

impl TrafficMix {
    /// Creates a mix from `(weight, pattern)` entries.
    ///
    /// Non-finite or negative weights are clamped to zero.  An empty mix (or
    /// one whose weights are all zero) always samples [`TrafficPattern::Silent`]
    /// — it never panics, so degenerate configurations stay simulable.
    #[must_use]
    pub fn new(entries: Vec<(f64, TrafficPattern)>) -> Self {
        let entries = entries
            .into_iter()
            .map(|(w, p)| (if w.is_finite() && w > 0.0 { w } else { 0.0 }, p))
            .collect();
        Self { entries }
    }

    /// A mix that always yields the one given pattern.
    #[must_use]
    pub fn fixed(pattern: TrafficPattern) -> Self {
        Self {
            entries: vec![(1.0, pattern)],
        }
    }

    /// The `(weight, pattern)` entries of the mix.
    #[must_use]
    pub fn entries(&self) -> &[(f64, TrafficPattern)] {
        &self.entries
    }

    /// Weight-averaged long-run application data rate of the mix — the
    /// expected offered load of a leaf drawn from it.
    #[must_use]
    pub fn expected_rate(&self) -> DataRate {
        let total: f64 = self.entries.iter().map(|(w, _)| w).sum();
        if total <= 0.0 {
            return DataRate::ZERO;
        }
        let bps: f64 = self
            .entries
            .iter()
            .map(|(w, p)| w * p.average_rate().as_bps())
            .sum();
        DataRate::from_bps(bps / total)
    }

    /// The same mix with every pattern scaled by `factor` (see
    /// [`TrafficPattern::scaled`]); weights are untouched, so the **draw**
    /// a body makes from the scaled mix lands on the scaled counterpart of
    /// exactly the pattern it would have drawn unscaled — traffic scaling
    /// never perturbs the deterministic sampling stream.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            entries: self
                .entries
                .iter()
                .map(|(w, p)| (*w, p.scaled(factor)))
                .collect(),
        }
    }

    /// Draws one pattern via [`weighted_index`] (one uniform sample per call,
    /// degenerate mixes yield [`TrafficPattern::Silent`]).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> &TrafficPattern {
        static SILENT: TrafficPattern = TrafficPattern::Silent;
        weighted_index(rng, self.entries.len(), |i| self.entries[i].0)
            .map_or(&SILENT, |i| &self.entries[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn periodic_average_rate() {
        let p = TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 500);
        assert!((p.average_rate().as_bps() - 4000.0).abs() < 1e-9);
        assert_eq!(p.frame_bytes(), 500);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.next_interval(&mut rng), Some(TimeSpan::from_seconds(1.0)));
    }

    #[test]
    fn streaming_interval_matches_rate() {
        let s = TrafficPattern::streaming(DataRate::from_kbps(256.0), 1024);
        let mut rng = StdRng::seed_from_u64(1);
        let interval = s.next_interval(&mut rng).unwrap();
        assert!((interval.as_seconds() - 1024.0 * 8.0 / 256_000.0).abs() < 1e-9);
        assert_eq!(s.average_rate(), DataRate::from_kbps(256.0));
        // Zero-rate stream produces nothing.
        let dead = TrafficPattern::streaming(DataRate::ZERO, 1024);
        assert!(dead.next_interval(&mut rng).is_none());
    }

    #[test]
    fn bursty_mean_interval_approximates_configuration() {
        let b = TrafficPattern::bursty(TimeSpan::from_seconds(2.0), 128);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| b.next_interval(&mut rng).unwrap().as_seconds())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean interval {mean}");
        assert!((b.average_rate().as_bps() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn silent_pattern_is_silent() {
        let s = TrafficPattern::Silent;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.next_interval(&mut rng).is_none());
        assert_eq!(s.average_rate(), DataRate::ZERO);
        assert_eq!(s.frame_bytes(), 0);
    }

    #[test]
    fn degenerate_periods_give_zero_rate() {
        assert_eq!(
            TrafficPattern::periodic(TimeSpan::ZERO, 100).average_rate(),
            DataRate::ZERO
        );
        assert_eq!(
            TrafficPattern::bursty(TimeSpan::ZERO, 100).average_rate(),
            DataRate::ZERO
        );
    }

    #[test]
    fn mix_sampling_tracks_weights() {
        let periodic = TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 512);
        let streaming = TrafficPattern::streaming(DataRate::from_kbps(13.0), 512);
        let mix = TrafficMix::new(vec![(3.0, periodic.clone()), (1.0, streaming.clone())]);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let periodic_draws = (0..n).filter(|_| *mix.sample(&mut rng) == periodic).count();
        let fraction = periodic_draws as f64 / f64::from(n);
        assert!((fraction - 0.75).abs() < 0.02, "fraction {fraction}");
        // Expected rate is the weight-blended average.
        let expected = 0.75 * periodic.average_rate().as_bps() + 0.25 * 13_000.0;
        assert!((mix.expected_rate().as_bps() - expected).abs() < 1e-9);
    }

    #[test]
    fn mix_sampling_is_pure_in_the_rng_state() {
        let mix = TrafficMix::new(vec![
            (
                1.0,
                TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 128),
            ),
            (
                1.0,
                TrafficPattern::bursty(TimeSpan::from_seconds(2.0), 256),
            ),
            (1.0, TrafficPattern::Silent),
        ]);
        let draw = |seed| mix.sample(&mut StdRng::seed_from_u64(seed)).clone();
        for seed in 0..50 {
            assert_eq!(draw(seed), draw(seed));
        }
    }

    #[test]
    fn degenerate_mixes_sample_silent_and_consume_one_draw() {
        let empty = TrafficMix::new(Vec::new());
        let zeroed = TrafficMix::new(vec![
            (
                0.0,
                TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 64),
            ),
            (f64::NAN, TrafficPattern::Silent),
            (-3.0, TrafficPattern::Silent),
        ]);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(*empty.sample(&mut rng), TrafficPattern::Silent);
        assert_eq!(*zeroed.sample(&mut rng), TrafficPattern::Silent);
        assert_eq!(empty.expected_rate(), DataRate::ZERO);
        // The degenerate sample still consumed exactly one draw: a fresh RNG
        // advanced by one uniform matches the post-sample stream.
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let _ = empty.sample(&mut a);
        let _: f64 = b.gen_range(0.0..1.0);
        assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
    }

    #[test]
    fn scaling_multiplies_offered_load_and_keeps_frames() {
        let periodic = TrafficPattern::periodic(TimeSpan::from_seconds(2.0), 512);
        let streaming = TrafficPattern::streaming(DataRate::from_kbps(13.0), 512);
        let bursty = TrafficPattern::bursty(TimeSpan::from_seconds(4.0), 256);
        for pattern in [&periodic, &streaming, &bursty] {
            let scaled = pattern.scaled(2.0);
            assert!(
                (scaled.average_rate().as_bps() - 2.0 * pattern.average_rate().as_bps()).abs()
                    < 1e-9,
                "scaling by 2 must double the offered load of {pattern:?}"
            );
            assert_eq!(scaled.frame_bytes(), pattern.frame_bytes());
        }
        assert_eq!(TrafficPattern::Silent.scaled(3.0), TrafficPattern::Silent);
        // Identity scaling is exact (bit-for-bit), not merely approximate.
        assert_eq!(periodic.scaled(1.0), periodic);
        // Degenerate factors are ignored rather than panicking.
        assert_eq!(periodic.scaled(0.0), periodic);
        assert_eq!(periodic.scaled(-2.0), periodic);
        assert_eq!(periodic.scaled(f64::NAN), periodic);
    }

    #[test]
    fn scaled_mix_preserves_weights_and_draw_alignment() {
        let mix = TrafficMix::new(vec![
            (
                3.0,
                TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 512),
            ),
            (
                1.0,
                TrafficPattern::streaming(DataRate::from_kbps(13.0), 512),
            ),
        ]);
        let scaled = mix.scaled(2.0);
        assert!(
            (scaled.expected_rate().as_bps() - 2.0 * mix.expected_rate().as_bps()).abs() < 1e-9
        );
        // Same RNG state draws the scaled counterpart of the same entry.
        for seed in 0..32 {
            let base_pick = mix.sample(&mut StdRng::seed_from_u64(seed)).clone();
            let scaled_pick = scaled.sample(&mut StdRng::seed_from_u64(seed)).clone();
            assert_eq!(scaled_pick, base_pick.scaled(2.0), "seed {seed} misaligned");
        }
    }

    #[test]
    fn fixed_mix_always_yields_its_pattern() {
        let pattern = TrafficPattern::streaming(DataRate::from_kbps(256.0), 1024);
        let mix = TrafficMix::fixed(pattern.clone());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(*mix.sample(&mut rng), pattern);
        }
        assert_eq!(mix.expected_rate(), pattern.average_rate());
    }
}
