//! Traffic sources: how leaf nodes generate data for the hub.

use hidwa_units::{DataRate, DataVolume, TimeSpan};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A traffic generation pattern for one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficPattern {
    /// A fixed-size frame every fixed period (sensor streaming with local
    /// buffering): e.g. an ECG patch shipping 512 B every second.
    Periodic {
        /// Frame interval.
        period: TimeSpan,
        /// Application bytes per frame.
        frame_bytes: usize,
    },
    /// A continuous stream at a target rate, chunked into frames of the given
    /// size (audio/video): the period is derived from rate and frame size.
    Streaming {
        /// Sustained application data rate.
        rate: DataRate,
        /// Application bytes per frame.
        frame_bytes: usize,
    },
    /// Poisson-like bursts: exponentially distributed gaps with the given
    /// mean, each burst carrying a fixed payload (event-driven sensors).
    Bursty {
        /// Mean time between bursts.
        mean_interval: TimeSpan,
        /// Application bytes per burst.
        burst_bytes: usize,
    },
    /// No traffic (an actuator that only listens).
    Silent,
}

impl TrafficPattern {
    /// Convenience constructor for [`TrafficPattern::Periodic`].
    #[must_use]
    pub fn periodic(period: TimeSpan, frame_bytes: usize) -> Self {
        TrafficPattern::Periodic {
            period,
            frame_bytes,
        }
    }

    /// Convenience constructor for [`TrafficPattern::Streaming`].
    #[must_use]
    pub fn streaming(rate: DataRate, frame_bytes: usize) -> Self {
        TrafficPattern::Streaming { rate, frame_bytes }
    }

    /// Convenience constructor for [`TrafficPattern::Bursty`].
    #[must_use]
    pub fn bursty(mean_interval: TimeSpan, burst_bytes: usize) -> Self {
        TrafficPattern::Bursty {
            mean_interval,
            burst_bytes,
        }
    }

    /// Long-run average application data rate of the pattern.
    #[must_use]
    pub fn average_rate(&self) -> DataRate {
        match *self {
            TrafficPattern::Periodic {
                period,
                frame_bytes,
            } => {
                if period.as_seconds() <= 0.0 {
                    DataRate::ZERO
                } else {
                    DataVolume::from_bytes(frame_bytes as f64) / period
                }
            }
            TrafficPattern::Streaming { rate, .. } => rate,
            TrafficPattern::Bursty {
                mean_interval,
                burst_bytes,
            } => {
                if mean_interval.as_seconds() <= 0.0 {
                    DataRate::ZERO
                } else {
                    DataVolume::from_bytes(burst_bytes as f64) / mean_interval
                }
            }
            TrafficPattern::Silent => DataRate::ZERO,
        }
    }

    /// Bytes carried by one frame of this pattern.
    #[must_use]
    pub fn frame_bytes(&self) -> usize {
        match *self {
            TrafficPattern::Periodic { frame_bytes, .. }
            | TrafficPattern::Streaming { frame_bytes, .. } => frame_bytes,
            TrafficPattern::Bursty { burst_bytes, .. } => burst_bytes,
            TrafficPattern::Silent => 0,
        }
    }

    /// Time until the next frame after the current one, or `None` for silent
    /// patterns.  Bursty patterns draw from an exponential distribution using
    /// `rng`; deterministic patterns ignore it.
    pub fn next_interval<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<TimeSpan> {
        match *self {
            TrafficPattern::Periodic { period, .. } => Some(period),
            TrafficPattern::Streaming { rate, frame_bytes } => {
                if rate.as_bps() <= 0.0 {
                    None
                } else {
                    Some(DataVolume::from_bytes(frame_bytes as f64) / rate)
                }
            }
            TrafficPattern::Bursty { mean_interval, .. } => {
                let u: f64 = rng.gen_range(1e-9..1.0);
                Some(mean_interval * (-u.ln()))
            }
            TrafficPattern::Silent => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn periodic_average_rate() {
        let p = TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 500);
        assert!((p.average_rate().as_bps() - 4000.0).abs() < 1e-9);
        assert_eq!(p.frame_bytes(), 500);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(p.next_interval(&mut rng), Some(TimeSpan::from_seconds(1.0)));
    }

    #[test]
    fn streaming_interval_matches_rate() {
        let s = TrafficPattern::streaming(DataRate::from_kbps(256.0), 1024);
        let mut rng = StdRng::seed_from_u64(1);
        let interval = s.next_interval(&mut rng).unwrap();
        assert!((interval.as_seconds() - 1024.0 * 8.0 / 256_000.0).abs() < 1e-9);
        assert_eq!(s.average_rate(), DataRate::from_kbps(256.0));
        // Zero-rate stream produces nothing.
        let dead = TrafficPattern::streaming(DataRate::ZERO, 1024);
        assert!(dead.next_interval(&mut rng).is_none());
    }

    #[test]
    fn bursty_mean_interval_approximates_configuration() {
        let b = TrafficPattern::bursty(TimeSpan::from_seconds(2.0), 128);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| b.next_interval(&mut rng).unwrap().as_seconds())
            .sum::<f64>()
            / f64::from(n);
        assert!((mean - 2.0).abs() < 0.1, "mean interval {mean}");
        assert!((b.average_rate().as_bps() - 512.0).abs() < 1e-9);
    }

    #[test]
    fn silent_pattern_is_silent() {
        let s = TrafficPattern::Silent;
        let mut rng = StdRng::seed_from_u64(1);
        assert!(s.next_interval(&mut rng).is_none());
        assert_eq!(s.average_rate(), DataRate::ZERO);
        assert_eq!(s.frame_bytes(), 0);
    }

    #[test]
    fn degenerate_periods_give_zero_rate() {
        assert_eq!(
            TrafficPattern::periodic(TimeSpan::ZERO, 100).average_rate(),
            DataRate::ZERO
        );
        assert_eq!(
            TrafficPattern::bursty(TimeSpan::ZERO, 100).average_rate(),
            DataRate::ZERO
        );
    }
}
