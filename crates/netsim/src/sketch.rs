//! Streaming latency statistics with a bounded-error percentile sketch.
//!
//! Long-horizon and fleet-scale simulations deliver millions of frames; the
//! exact path (collect every latency in a `Vec`, sort at the end) costs O(n)
//! memory and an O(n log n) finalisation per node.  [`LatencySketch`] replaces
//! it with a fixed-log-bucket histogram: O(1) memory (at most a few thousand
//! `u64` counters), O(1) insertion with no floating-point transcendentals on
//! the hot path, and percentile queries with a *documented, tested* error
//! bound.
//!
//! # Bucketing scheme
//!
//! Positive IEEE-754 doubles sort the same as their bit patterns, and the top
//! bits `(exponent, first SUB_BUCKET_BITS mantissa bits)` partition the
//! positive reals into log-spaced buckets whose relative width is exactly
//! `2^-SUB_BUCKET_BITS`.  With [`SUB_BUCKET_BITS`]` = 6` every bucket spans
//! `[v, v · (1 + 1/64))`, so reporting a bucket's **upper edge** overestimates
//! any value inside it by at most a factor `1 + 1/64` (≈ 1.57 %).
//!
//! # Error bound
//!
//! For any quantile `q`, let `exact` be the value the exact `Vec`-based
//! nearest-rank computation would return.  [`LatencySketch::quantile`]
//! guarantees, for samples within `[`[`MIN_TRACKED`]`, `[`MAX_TRACKED`]`]`
//! seconds:
//!
//! ```text
//! exact ≤ sketch ≤ exact · (1 + RELATIVE_ERROR_BOUND)
//! ```
//!
//! i.e. the sketch never under-reports a percentile and over-reports by at
//! most [`RELATIVE_ERROR_BOUND`] (1/64).  Samples below [`MIN_TRACKED`] (1 ns)
//! are clamped up to it (absolute error ≤ 1 ns — far below anything a
//! body-network MAC produces); samples above [`MAX_TRACKED`] (≈ 31.7 years)
//! are clamped down.  Count, mean, minimum and maximum are tracked exactly.
//! The property tests in `tests/sketch_equivalence.rs` assert the bound
//! against the exact computation across periodic, bursty and streaming
//! traffic shapes.
//!
//! # Example
//!
//! ```
//! use hidwa_netsim::sketch::{LatencySketch, RELATIVE_ERROR_BOUND};
//! use hidwa_units::TimeSpan;
//!
//! let mut sketch = LatencySketch::new();
//! for ms in 1..=1000 {
//!     sketch.record(TimeSpan::from_millis(ms as f64));
//! }
//! let p95 = sketch.quantile(0.95);
//! let exact = TimeSpan::from_millis(950.0);
//! assert!(p95 >= exact);
//! assert!(p95.as_seconds() <= exact.as_seconds() * (1.0 + RELATIVE_ERROR_BOUND));
//! ```

use hidwa_units::TimeSpan;
use serde::{Deserialize, Serialize};

/// Number of mantissa bits used to subdivide each power-of-two range.
pub const SUB_BUCKET_BITS: u32 = 6;

/// Worst-case relative overestimate of [`LatencySketch::quantile`]:
/// `2^-SUB_BUCKET_BITS = 1/64 ≈ 1.57 %`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / (1u64 << SUB_BUCKET_BITS) as f64;

/// Smallest latency (seconds) resolved by the log buckets; smaller samples
/// are clamped up to this value.
pub const MIN_TRACKED: f64 = 1.0e-9;

/// Largest latency (seconds) resolved by the log buckets; larger samples are
/// clamped down to this value.
pub const MAX_TRACKED: f64 = 1.0e9;

/// Bits discarded below the `(exponent, sub-bucket)` key.
const KEY_SHIFT: u32 = 52 - SUB_BUCKET_BITS;

fn key_of(seconds: f64) -> u64 {
    seconds.clamp(MIN_TRACKED, MAX_TRACKED).to_bits() >> KEY_SHIFT
}

fn base_key() -> u64 {
    MIN_TRACKED.to_bits() >> KEY_SHIFT
}

/// Index of the nearest-rank `q`-quantile (`q` clamped to `[0, 1]`) in a
/// sorted sample set of `len` elements: `round((len - 1) · q)`.
///
/// This is the single quantile convention of the workspace — the exact
/// reference path, [`LatencySketch::quantile`] and the fleet layer's
/// cross-body quantiles all use it, and the sketch's documented
/// never-under-report bound is stated relative to it.
///
/// # Panics
/// Panics if `len` is zero (an empty sample set has no quantiles).
#[must_use]
pub fn nearest_rank_index(len: usize, q: f64) -> usize {
    assert!(len > 0, "nearest_rank_index: empty sample set");
    let index = ((len as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    index.min(len - 1)
}

/// Streaming percentile sketch over latency samples.
///
/// See the [module docs](self) for the bucketing scheme and the error bound.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySketch {
    count: u64,
    sum_seconds: f64,
    min_seconds: f64,
    max_seconds: f64,
    /// Key offset of `buckets[0]` relative to [`base_key()`]; meaningful
    /// only while `buckets` is non-empty.
    first_index: u64,
    /// `buckets[i]` counts samples whose key is `base_key() + first_index +
    /// i`.  The vector spans only the observed key range (first and last
    /// entries are always non-zero), so a body whose latencies cluster
    /// around one magnitude holds a few dozen counters, not the full range
    /// down to [`MIN_TRACKED`] — which is what keeps million-body fleet
    /// summaries cheap.
    buckets: Vec<u64>,
}

impl LatencySketch {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            sum_seconds: 0.0,
            min_seconds: f64::INFINITY,
            max_seconds: 0.0,
            first_index: 0,
            buckets: Vec::new(),
        }
    }

    /// Records one latency sample.
    ///
    /// Non-finite or negative samples are treated as zero (clamped up to
    /// [`MIN_TRACKED`]); they never occur in simulator output but must not
    /// poison the histogram.
    #[inline]
    pub fn record(&mut self, latency: TimeSpan) {
        let mut seconds = latency.as_seconds();
        if !seconds.is_finite() || seconds < 0.0 {
            seconds = 0.0;
        }
        self.count += 1;
        self.sum_seconds += seconds;
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
        let index = key_of(seconds) - base_key();
        if self.buckets.is_empty() {
            self.first_index = index;
            self.buckets.push(1);
        } else if index < self.first_index {
            // Rare: a sample below everything seen so far; shift the window.
            let shift = (self.first_index - index) as usize;
            self.buckets.splice(0..0, std::iter::repeat_n(0, shift));
            self.first_index = index;
            self.buckets[0] += 1;
        } else {
            let relative = (index - self.first_index) as usize;
            if relative >= self.buckets.len() {
                self.buckets.resize(relative + 1, 0);
            }
            self.buckets[relative] += 1;
        }
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of live histogram buckets — the sketch's memory footprint in
    /// `u64` counters.  Bounded by the log-bucket resolution of the observed
    /// value range (not by the sample count), which is what fleet-scale
    /// aggregation relies on; `bench_netsim` records it as the streaming
    /// aggregator's peak-memory proxy.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Exact mean of the recorded samples ([`TimeSpan::ZERO`] when empty).
    #[must_use]
    pub fn mean(&self) -> TimeSpan {
        if self.count == 0 {
            return TimeSpan::ZERO;
        }
        TimeSpan::from_seconds(self.sum_seconds / self.count as f64)
    }

    /// Exact minimum recorded sample ([`TimeSpan::ZERO`] when empty).
    #[must_use]
    pub fn min(&self) -> TimeSpan {
        if self.count == 0 {
            return TimeSpan::ZERO;
        }
        TimeSpan::from_seconds(self.min_seconds)
    }

    /// Exact maximum recorded sample ([`TimeSpan::ZERO`] when empty).
    #[must_use]
    pub fn max(&self) -> TimeSpan {
        if self.count == 0 {
            return TimeSpan::ZERO;
        }
        TimeSpan::from_seconds(self.max_seconds)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) with the module-level error
    /// bound: never below the exact nearest-rank value, at most
    /// [`RELATIVE_ERROR_BOUND`] above it.
    ///
    /// Uses the same nearest-rank convention as the exact path it replaces:
    /// the value at sorted position `round((n - 1) · q)`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> TimeSpan {
        if self.count == 0 {
            return TimeSpan::ZERO;
        }
        // 1-based rank of the exact nearest-rank element.
        let rank = nearest_rank_index(self.count as usize, q) as u64 + 1;
        let mut cumulative = 0u64;
        for (index, &bucket_count) in self.buckets.iter().enumerate() {
            cumulative += bucket_count;
            if cumulative >= rank {
                // Upper edge of the bucket: ≥ every sample inside it, and at
                // most (1 + 1/64)× the smallest one.  The exact max caps the
                // top bucket so quantiles never exceed an observed sample.
                let key = base_key() + self.first_index + index as u64 + 1;
                let upper = f64::from_bits(key << KEY_SHIFT);
                return TimeSpan::from_seconds(upper.min(self.max_seconds));
            }
        }
        // Unreachable when counts are consistent; fall back to the exact max.
        TimeSpan::from_seconds(self.max_seconds)
    }

    /// Merges another sketch into this one (exact counts add; min/max/sum
    /// combine exactly), enabling deterministic fleet-wide aggregation.
    pub fn merge(&mut self, other: &LatencySketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum_seconds += other.sum_seconds;
        self.min_seconds = self.min_seconds.min(other.min_seconds);
        self.max_seconds = self.max_seconds.max(other.max_seconds);
        if self.buckets.is_empty() {
            self.first_index = other.first_index;
            self.buckets = other.buckets.clone();
            return;
        }
        // Align the two observed-key windows before adding counts.  Both
        // windows start and end on non-zero buckets, so the merged window is
        // canonical too (equal sample multisets still compare equal).
        if other.first_index < self.first_index {
            let shift = (self.first_index - other.first_index) as usize;
            self.buckets.splice(0..0, std::iter::repeat_n(0, shift));
            self.first_index = other.first_index;
        }
        let offset = (other.first_index - self.first_index) as usize;
        if offset + other.buckets.len() > self.buckets.len() {
            self.buckets.resize(offset + other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets[offset..].iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    #[test]
    fn empty_sketch_reports_zeroes() {
        let s = LatencySketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), TimeSpan::ZERO);
        assert_eq!(s.min(), TimeSpan::ZERO);
        assert_eq!(s.max(), TimeSpan::ZERO);
        assert_eq!(s.quantile(0.95), TimeSpan::ZERO);
    }

    #[test]
    fn quantiles_respect_the_error_bound() {
        let mut sketch = LatencySketch::new();
        let mut values: Vec<f64> = (1..=5000)
            .map(|i| 1e-4 * (1.0 + (i as f64).sin().abs() * 50.0))
            .collect();
        for &v in &values {
            sketch.record(TimeSpan::from_seconds(v));
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let got = sketch.quantile(q).as_seconds();
            assert!(got >= exact - 1e-15, "q={q}: {got} < {exact}");
            assert!(
                got <= exact * (1.0 + RELATIVE_ERROR_BOUND) + 1e-15,
                "q={q}: {got} > bound around {exact}"
            );
        }
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut sketch = LatencySketch::new();
        for v in [0.25, 0.5, 1.0, 2.0] {
            sketch.record(TimeSpan::from_seconds(v));
        }
        assert_eq!(sketch.count(), 4);
        assert!((sketch.mean().as_seconds() - 0.9375).abs() < 1e-12);
        assert_eq!(sketch.min(), TimeSpan::from_seconds(0.25));
        assert_eq!(sketch.max(), TimeSpan::from_seconds(2.0));
        assert_eq!(sketch.quantile(1.0), TimeSpan::from_seconds(2.0));
    }

    #[test]
    fn degenerate_samples_are_clamped_not_poisonous() {
        let mut sketch = LatencySketch::new();
        sketch.record(TimeSpan::from_seconds(-1.0));
        sketch.record(TimeSpan::from_seconds(f64::NAN));
        sketch.record(TimeSpan::from_seconds(f64::INFINITY));
        sketch.record(TimeSpan::from_seconds(1e-12));
        assert_eq!(sketch.count(), 4);
        assert!(sketch.quantile(0.5).as_seconds().is_finite());
        // Tiny samples cost exactly one bucket, not a giant allocation.
        assert!(sketch.buckets.len() <= 1);
    }

    #[test]
    fn bucket_window_spans_only_the_observed_range() {
        // Millisecond-scale latencies must not pay for empty buckets all the
        // way down to the 1 ns floor (fleet summaries hold one sketch per
        // body).
        let mut sketch = LatencySketch::new();
        for us in 900..1100 {
            sketch.record(TimeSpan::from_micros(us as f64));
        }
        assert!(
            sketch.buckets.len() <= 32,
            "window too wide: {} buckets",
            sketch.buckets.len()
        );
        assert!(*sketch.buckets.first().unwrap() > 0);
        assert!(*sketch.buckets.last().unwrap() > 0);
        // A later out-of-window low sample extends the window backwards.
        sketch.record(TimeSpan::from_micros(1.0));
        assert!(*sketch.buckets.first().unwrap() > 0);
        let exact_p50 = TimeSpan::from_micros(999.0);
        assert!(sketch.quantile(0.5) >= exact_p50);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LatencySketch::new();
        let mut b = LatencySketch::new();
        let mut all = LatencySketch::new();
        for i in 0..500 {
            let v = TimeSpan::from_millis(0.1 + i as f64);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        a.merge(&LatencySketch::new());
        // Counts, extrema and buckets combine exactly; the sum is the same
        // set of f64 additions in a different order, so compare the mean to
        // rounding noise rather than bit-for-bit.
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.buckets, all.buckets);
        assert!((a.mean().as_seconds() - all.mean().as_seconds()).abs() < 1e-12);
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }
}
