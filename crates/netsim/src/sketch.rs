//! Streaming latency statistics with a bounded-error percentile sketch.
//!
//! Long-horizon and fleet-scale simulations deliver millions of frames; the
//! exact path (collect every latency in a `Vec`, sort at the end) costs O(n)
//! memory and an O(n log n) finalisation per node.  [`LatencySketch`] replaces
//! it with a fixed-log-bucket histogram: O(1) memory (at most a few thousand
//! `u64` counters), O(1) insertion with no floating-point transcendentals on
//! the hot path, and percentile queries with a *documented, tested* error
//! bound.
//!
//! # Bucketing scheme
//!
//! Positive IEEE-754 doubles sort the same as their bit patterns, and the top
//! bits `(exponent, first SUB_BUCKET_BITS mantissa bits)` partition the
//! positive reals into log-spaced buckets whose relative width is exactly
//! `2^-SUB_BUCKET_BITS`.  With [`SUB_BUCKET_BITS`]` = 6` every bucket spans
//! `[v, v · (1 + 1/64))`, so reporting a bucket's **upper edge** overestimates
//! any value inside it by at most a factor `1 + 1/64` (≈ 1.57 %).
//!
//! # Error bound
//!
//! For any quantile `q`, let `exact` be the value the exact `Vec`-based
//! nearest-rank computation would return.  [`LatencySketch::quantile`]
//! guarantees, for samples within `[`[`MIN_TRACKED`]`, `[`MAX_TRACKED`]`]`
//! seconds:
//!
//! ```text
//! exact ≤ sketch ≤ exact · (1 + RELATIVE_ERROR_BOUND)
//! ```
//!
//! i.e. the sketch never under-reports a percentile and over-reports by at
//! most [`RELATIVE_ERROR_BOUND`] (1/64).  Samples below [`MIN_TRACKED`] (1 ns)
//! are clamped up to it (absolute error ≤ 1 ns — far below anything a
//! body-network MAC produces); samples above [`MAX_TRACKED`] (≈ 31.7 years)
//! are clamped down.  Count, mean, minimum and maximum are tracked exactly.
//! The property tests in `tests/sketch_equivalence.rs` assert the bound
//! against the exact computation across periodic, bursty and streaming
//! traffic shapes.
//!
//! # Example
//!
//! ```
//! use hidwa_netsim::sketch::{LatencySketch, RELATIVE_ERROR_BOUND};
//! use hidwa_units::TimeSpan;
//!
//! let mut sketch = LatencySketch::new();
//! for ms in 1..=1000 {
//!     sketch.record(TimeSpan::from_millis(ms as f64));
//! }
//! let p95 = sketch.quantile(0.95);
//! let exact = TimeSpan::from_millis(950.0);
//! assert!(p95 >= exact);
//! assert!(p95.as_seconds() <= exact.as_seconds() * (1.0 + RELATIVE_ERROR_BOUND));
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hidwa_units::TimeSpan;
use serde::{Deserialize, Serialize};

/// Number of mantissa bits used to subdivide each power-of-two range.
pub const SUB_BUCKET_BITS: u32 = 6;

/// Worst-case relative overestimate of [`LatencySketch::quantile`]:
/// `2^-SUB_BUCKET_BITS = 1/64 ≈ 1.57 %`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / (1u64 << SUB_BUCKET_BITS) as f64;

/// Smallest latency (seconds) resolved by the log buckets; smaller samples
/// are clamped up to this value.
pub const MIN_TRACKED: f64 = 1.0e-9;

/// Largest latency (seconds) resolved by the log buckets; larger samples are
/// clamped down to this value.
pub const MAX_TRACKED: f64 = 1.0e9;

/// Bits discarded below the `(exponent, sub-bucket)` key.
const KEY_SHIFT: u32 = 52 - SUB_BUCKET_BITS;

fn key_of(seconds: f64) -> u64 {
    seconds.clamp(MIN_TRACKED, MAX_TRACKED).to_bits() >> KEY_SHIFT
}

fn base_key() -> u64 {
    MIN_TRACKED.to_bits() >> KEY_SHIFT
}

/// Index of the nearest-rank `q`-quantile (`q` clamped to `[0, 1]`) in a
/// sorted sample set of `len` elements: `round((len - 1) · q)`.
///
/// This is the single quantile convention of the workspace — the exact
/// reference path, [`LatencySketch::quantile`] and the fleet layer's
/// cross-body quantiles all use it, and the sketch's documented
/// never-under-report bound is stated relative to it.
///
/// # Panics
/// Panics if `len` is zero (an empty sample set has no quantiles).
#[must_use]
pub fn nearest_rank_index(len: usize, q: f64) -> usize {
    assert!(len > 0, "nearest_rank_index: empty sample set");
    let index = ((len as f64 - 1.0) * q.clamp(0.0, 1.0)).round() as usize;
    index.min(len - 1)
}

/// Number of 64-bit limbs in an [`ExactSum`]: a fixed-point window from
/// `2^-1074` (the smallest subnormal double) up past `2^1088` — every finite
/// nonnegative `f64` plus 64 bits of carry headroom, so even `2^64` additions
/// of `f64::MAX`-scale values cannot overflow the accumulator.
const SUM_LIMBS: usize = 34;

/// Exact, order-independent accumulator for nonnegative finite `f64` sums.
///
/// Floating-point addition is not associative, which is fatal for a merge
/// algebra: a sharded fold that combines partial sums `(a + b) + (c + d)`
/// produces different low bits than the single-stream `((a + b) + c) + d`.
/// `ExactSum` sidesteps the problem by accumulating into a 2176-bit
/// fixed-point integer (34 × 64-bit limbs, least-significant first, LSB
/// weight `2^-1074`): every `f64` is a 53-bit mantissa shifted by its
/// exponent, so each [`add`](Self::add) is an exact integer addition.
/// Addition of integers **is** associative and commutative, which makes any
/// merge tree over [`add_sum`](Self::add_sum) byte-identical to the serial
/// fold — the property the fleet layer's shard/checkpoint determinism
/// contract rests on.
///
/// [`to_f64`](Self::to_f64) rounds the exact value to the nearest `f64`
/// (ties to even), so two accumulators holding the same multiset of samples
/// report bit-identical totals no matter how the samples were grouped.
///
/// Inputs outside the supported domain (negative, NaN, infinite) are treated
/// as zero, mirroring [`LatencySketch::record`]'s sample hygiene.
#[derive(Clone, PartialEq, Eq)]
pub struct ExactSum {
    limbs: [u64; SUM_LIMBS],
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ExactSum {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExactSum")
            .field("value", &self.to_f64())
            .finish()
    }
}

impl ExactSum {
    /// The empty (zero) sum.
    #[must_use]
    pub fn new() -> Self {
        Self {
            limbs: [0; SUM_LIMBS],
        }
    }

    /// Whether no nonzero value has been accumulated.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&limb| limb == 0)
    }

    /// Adds one `f64` exactly.  Negative, NaN and infinite inputs contribute
    /// zero.
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() || value <= 0.0 {
            return;
        }
        let bits = value.to_bits();
        let exponent = ((bits >> 52) & 0x7FF) as u32;
        let fraction = bits & ((1u64 << 52) - 1);
        // value = mantissa · 2^(bit_position - 1074), mantissa < 2^53.
        let (mantissa, bit_position) = if exponent == 0 {
            (fraction, 0)
        } else {
            (fraction | (1 << 52), exponent - 1)
        };
        let limb = (bit_position / 64) as usize;
        let shift = bit_position % 64;
        let wide = u128::from(mantissa) << shift;
        self.add_limb(limb, wide as u64);
        self.add_limb(limb + 1, (wide >> 64) as u64);
    }

    /// Adds `value` exactly `count` times — bit-identical to calling
    /// [`add`](Self::add) `count` times, in O(1) per 1024 repetitions
    /// instead of O(count).
    ///
    /// The 53-bit mantissa is multiplied by chunks of at most 1024
    /// repetitions, keeping every product below `2^63` so the same two-limb
    /// shifted addition `add` uses stays exact; integer multiplication *is*
    /// repeated integer addition, so the accumulator lands on the identical
    /// limbs.  This is the batched-drain path of
    /// [`LatencySketch::record_run`]: the streaming engine run-length
    /// compresses equal consecutive latencies and flushes each run with one
    /// call.
    pub fn add_scaled(&mut self, value: f64, count: u64) {
        if !value.is_finite() || value <= 0.0 || count == 0 {
            return;
        }
        let bits = value.to_bits();
        let exponent = ((bits >> 52) & 0x7FF) as u32;
        let fraction = bits & ((1u64 << 52) - 1);
        let (mantissa, bit_position) = if exponent == 0 {
            (fraction, 0)
        } else {
            (fraction | (1 << 52), exponent - 1)
        };
        let limb = (bit_position / 64) as usize;
        let shift = bit_position % 64;
        let mut remaining = count;
        while remaining > 0 {
            // mantissa < 2^53 and chunk ≤ 2^10, so the product < 2^63 and the
            // shifted value spans at most two limbs — the invariant `add`'s
            // fast path is built on.
            let chunk = remaining.min(1024);
            remaining -= chunk;
            let wide = u128::from(mantissa * chunk) << shift;
            self.add_limb(limb, wide as u64);
            self.add_limb(limb + 1, (wide >> 64) as u64);
        }
    }

    /// Adds another accumulator exactly (limb-wise integer addition) —
    /// associative and commutative by construction.
    pub fn add_sum(&mut self, other: &ExactSum) {
        let mut carry = false;
        for (mine, &theirs) in self.limbs.iter_mut().zip(&other.limbs) {
            let (sum, overflow_a) = mine.overflowing_add(theirs);
            let (sum, overflow_b) = sum.overflowing_add(u64::from(carry));
            *mine = sum;
            carry = overflow_a || overflow_b;
        }
        debug_assert!(!carry, "ExactSum overflow (beyond 2^64 x f64::MAX)");
    }

    fn add_limb(&mut self, mut index: usize, value: u64) {
        if value == 0 {
            return;
        }
        let (sum, mut carry) = self.limbs[index].overflowing_add(value);
        self.limbs[index] = sum;
        while carry {
            // The 64-bit headroom above the largest finite double makes
            // running off the top limb unreachable for physical workloads;
            // indexing would panic if it ever happened.
            index += 1;
            let (sum, overflow) = self.limbs[index].overflowing_add(1);
            self.limbs[index] = sum;
            carry = overflow;
        }
    }

    /// The accumulated value, rounded to the nearest `f64` (ties to even).
    ///
    /// Deterministic function of the limbs alone: equal sums — however their
    /// samples were grouped across shards or checkpoints — convert to
    /// bit-identical doubles.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let Some(top_limb) = self.limbs.iter().rposition(|&limb| limb != 0) else {
            return 0.0;
        };
        let top_bit = top_limb * 64 + (63 - self.limbs[top_limb].leading_zeros() as usize);
        if top_bit <= 52 {
            // At most 53 significant bits in the bottom limb: the value
            // N · 2^-1074 is exactly representable (subnormal or the first
            // normal binade), and both conversions below are exact.
            return self.limbs[0] as f64 * pow2(-1074);
        }
        // Round the 53 bits below the MSB with guard + sticky.
        let mut mantissa = self.extract_53(top_bit - 52);
        let round = self.bit(top_bit - 53);
        let sticky = self.any_set_below(top_bit - 53);
        let mut exponent = top_bit as i64 - 52 - 1074;
        if round && (sticky || mantissa & 1 == 1) {
            mantissa += 1;
            if mantissa == 1 << 53 {
                mantissa >>= 1;
                exponent += 1;
            }
        }
        // `mantissa` has its top bit at position 52, so the product is a
        // normal double and both factors are exact: no double rounding.
        mantissa as f64 * pow2(exponent as i32)
    }

    /// Bits `start .. start + 53` as an integer (MSB-aligned mantissa).
    fn extract_53(&self, start: usize) -> u64 {
        let limb = start / 64;
        let offset = start % 64;
        let mut value = self.limbs[limb] >> offset;
        if offset != 0 && limb + 1 < SUM_LIMBS {
            value |= self.limbs[limb + 1] << (64 - offset);
        }
        value & ((1u64 << 53) - 1)
    }

    fn bit(&self, index: usize) -> bool {
        (self.limbs[index / 64] >> (index % 64)) & 1 == 1
    }

    fn any_set_below(&self, index: usize) -> bool {
        let limb = index / 64;
        let offset = index % 64;
        self.limbs[..limb].iter().any(|&l| l != 0)
            || (offset != 0 && self.limbs[limb] & ((1u64 << offset) - 1) != 0)
    }

    /// Serializes the limbs (sparse window encoding: offset, length, then the
    /// nonzero span) into `out`.
    pub fn encode(&self, out: &mut BytesMut) {
        let first = self.limbs.iter().position(|&l| l != 0).unwrap_or(0);
        let last = self
            .limbs
            .iter()
            .rposition(|&l| l != 0)
            .map_or(0, |i| i + 1);
        let span = &self.limbs[first.min(last)..last];
        out.put_u32(first.min(last) as u32);
        out.put_u32(span.len() as u32);
        for &limb in span {
            out.put_u64(limb);
        }
    }

    /// Decodes an accumulator previously written by [`encode`](Self::encode).
    ///
    /// # Errors
    /// [`SketchCodecError::Truncated`] if `input` runs out;
    /// [`SketchCodecError::Corrupt`] if the window is out of range or not in
    /// the canonical (trimmed) form `encode` produces.
    pub fn decode(input: &mut Bytes) -> Result<Self, SketchCodecError> {
        let first = take_u32(input)? as usize;
        let len = take_u32(input)? as usize;
        if first + len > SUM_LIMBS {
            return Err(SketchCodecError::Corrupt("ExactSum window out of range"));
        }
        let mut sum = Self::new();
        for limb in &mut sum.limbs[first..first + len] {
            *limb = take_u64(input)?;
        }
        // Enforce the canonical form `encode` produces (zero sums are
        // `(0, 0)`, nonzero windows end on nonzero limbs) so decode→encode
        // is always byte-identity.
        let canonical = if len == 0 {
            first == 0
        } else {
            sum.limbs[first] != 0 && sum.limbs[first + len - 1] != 0
        };
        if !canonical {
            return Err(SketchCodecError::Corrupt("ExactSum window not trimmed"));
        }
        Ok(sum)
    }
}

/// `2^exponent` as an exact `f64`, for `exponent` in `[-1074, 1023]`.
fn pow2(exponent: i32) -> f64 {
    debug_assert!((-1074..=1023).contains(&exponent));
    if exponent >= -1022 {
        f64::from_bits(((exponent + 1023) as u64) << 52)
    } else {
        f64::from_bits(1u64 << (exponent + 1074))
    }
}

/// Why a serialized sketch (or [`ExactSum`]) failed to decode.
///
/// Decoding **never panics**: truncated, bit-flipped or otherwise malformed
/// bytes surface as one of these variants (the fleet checkpoint layer wraps
/// them with its own envelope checks).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchCodecError {
    /// The input ended before the encoded structure was complete.
    Truncated,
    /// The bytes are structurally complete but violate a sketch invariant.
    Corrupt(&'static str),
}

impl std::fmt::Display for SketchCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "sketch bytes truncated"),
            Self::Corrupt(what) => write!(f, "sketch bytes corrupt: {what}"),
        }
    }
}

impl std::error::Error for SketchCodecError {}

fn take_u32(input: &mut Bytes) -> Result<u32, SketchCodecError> {
    if input.remaining() < 4 {
        return Err(SketchCodecError::Truncated);
    }
    Ok(input.get_u32())
}

fn take_u64(input: &mut Bytes) -> Result<u64, SketchCodecError> {
    if input.remaining() < 8 {
        return Err(SketchCodecError::Truncated);
    }
    Ok(input.get_u64())
}

fn take_f64(input: &mut Bytes) -> Result<f64, SketchCodecError> {
    Ok(f64::from_bits(take_u64(input)?))
}

/// Streaming percentile sketch over latency samples.
///
/// See the [module docs](self) for the bucketing scheme and the error bound.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencySketch {
    count: u64,
    /// Exact fixed-point sum of the samples (see [`ExactSum`]): makes the
    /// mean correctly rounded and — crucially — makes [`merge`](Self::merge)
    /// associative, so sharded folds are byte-identical to serial ones.
    sum_seconds: ExactSum,
    min_seconds: f64,
    max_seconds: f64,
    /// Key offset of `buckets[0]` relative to [`base_key()`]; meaningful
    /// only while `buckets` is non-empty.
    first_index: u64,
    /// `buckets[i]` counts samples whose key is `base_key() + first_index +
    /// i`.  The vector spans only the observed key range (first and last
    /// entries are always non-zero), so a body whose latencies cluster
    /// around one magnitude holds a few dozen counters, not the full range
    /// down to [`MIN_TRACKED`] — which is what keeps million-body fleet
    /// summaries cheap.
    buckets: Vec<u64>,
}

impl LatencySketch {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self {
            count: 0,
            sum_seconds: ExactSum::new(),
            min_seconds: f64::INFINITY,
            max_seconds: 0.0,
            first_index: 0,
            buckets: Vec::new(),
        }
    }

    /// Records one latency sample.
    ///
    /// Non-finite or negative samples are treated as zero (clamped up to
    /// [`MIN_TRACKED`]); they never occur in simulator output but must not
    /// poison the histogram.
    #[inline]
    pub fn record(&mut self, latency: TimeSpan) {
        let mut seconds = latency.as_seconds();
        if !seconds.is_finite() || seconds < 0.0 {
            seconds = 0.0;
        }
        self.count += 1;
        self.sum_seconds.add(seconds);
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
        let index = key_of(seconds) - base_key();
        if self.buckets.is_empty() {
            self.first_index = index;
            self.buckets.push(1);
        } else if index < self.first_index {
            // Rare: a sample below everything seen so far; shift the window.
            let shift = (self.first_index - index) as usize;
            self.buckets.splice(0..0, std::iter::repeat_n(0, shift));
            self.first_index = index;
            self.buckets[0] += 1;
        } else {
            let relative = (index - self.first_index) as usize;
            if relative >= self.buckets.len() {
                self.buckets.resize(relative + 1, 0);
            }
            self.buckets[relative] += 1;
        }
    }

    /// Records `count` identical latency samples in O(1) — bit-identical to
    /// calling [`record`](Self::record) `count` times.
    ///
    /// Every per-sample update is exact under batching: the count and the
    /// target bucket gain integer `count`, the [`ExactSum`] takes the scaled
    /// addition ([`ExactSum::add_scaled`], exactly `count` repeated adds),
    /// and min/max are idempotent over equal values.  This is the flush
    /// half of the streaming engine's run-length latency batching: steady
    /// periodic traffic produces long runs of the exact same latency double,
    /// and each run costs one call instead of one per frame.
    #[inline]
    pub fn record_run(&mut self, latency: TimeSpan, count: u64) {
        if count == 0 {
            return;
        }
        let mut seconds = latency.as_seconds();
        if !seconds.is_finite() || seconds < 0.0 {
            seconds = 0.0;
        }
        self.count += count;
        self.sum_seconds.add_scaled(seconds, count);
        self.min_seconds = self.min_seconds.min(seconds);
        self.max_seconds = self.max_seconds.max(seconds);
        let index = key_of(seconds) - base_key();
        if self.buckets.is_empty() {
            self.first_index = index;
            self.buckets.push(count);
        } else if index < self.first_index {
            let shift = (self.first_index - index) as usize;
            self.buckets.splice(0..0, std::iter::repeat_n(0, shift));
            self.first_index = index;
            self.buckets[0] += count;
        } else {
            let relative = (index - self.first_index) as usize;
            if relative >= self.buckets.len() {
                self.buckets.resize(relative + 1, 0);
            }
            self.buckets[relative] += count;
        }
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of live histogram buckets — the sketch's memory footprint in
    /// `u64` counters.  Bounded by the log-bucket resolution of the observed
    /// value range (not by the sample count), which is what fleet-scale
    /// aggregation relies on; `bench_netsim` records it as the streaming
    /// aggregator's peak-memory proxy.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Exact mean of the recorded samples ([`TimeSpan::ZERO`] when empty):
    /// the correctly rounded sum (see [`ExactSum`]) divided by the count, so
    /// the result is independent of the order — or sharding — in which the
    /// samples were accumulated.
    #[must_use]
    pub fn mean(&self) -> TimeSpan {
        if self.count == 0 {
            return TimeSpan::ZERO;
        }
        TimeSpan::from_seconds(self.sum_seconds.to_f64() / self.count as f64)
    }

    /// Exact minimum recorded sample ([`TimeSpan::ZERO`] when empty).
    #[must_use]
    pub fn min(&self) -> TimeSpan {
        if self.count == 0 {
            return TimeSpan::ZERO;
        }
        TimeSpan::from_seconds(self.min_seconds)
    }

    /// Exact maximum recorded sample ([`TimeSpan::ZERO`] when empty).
    #[must_use]
    pub fn max(&self) -> TimeSpan {
        if self.count == 0 {
            return TimeSpan::ZERO;
        }
        TimeSpan::from_seconds(self.max_seconds)
    }

    /// The `q`-quantile (`q` clamped to `[0, 1]`) with the module-level error
    /// bound: never below the exact nearest-rank value, at most
    /// [`RELATIVE_ERROR_BOUND`] above it.
    ///
    /// Uses the same nearest-rank convention as the exact path it replaces:
    /// the value at sorted position `round((n - 1) · q)`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> TimeSpan {
        if self.count == 0 {
            return TimeSpan::ZERO;
        }
        // 1-based rank of the exact nearest-rank element.
        let rank = nearest_rank_index(self.count as usize, q) as u64 + 1;
        let mut cumulative = 0u64;
        for (index, &bucket_count) in self.buckets.iter().enumerate() {
            cumulative += bucket_count;
            if cumulative >= rank {
                // Upper edge of the bucket: ≥ every sample inside it, and at
                // most (1 + 1/64)× the smallest one.  The exact max caps the
                // top bucket so quantiles never exceed an observed sample.
                let key = base_key() + self.first_index + index as u64 + 1;
                let upper = f64::from_bits(key << KEY_SHIFT);
                return TimeSpan::from_seconds(upper.min(self.max_seconds));
            }
        }
        // Unreachable when counts are consistent; fall back to the exact max.
        TimeSpan::from_seconds(self.max_seconds)
    }

    /// Merges another sketch into this one (exact counts add; min/max/sum
    /// combine exactly), enabling deterministic fleet-wide aggregation.
    ///
    /// Merge is **associative and commutative**: counts, buckets and the
    /// [`ExactSum`] are integer additions, min/max are lattice operations.
    /// Any merge tree over the same sketches yields a byte-identical result —
    /// the algebra `hidwa_core`'s sharded fleet fold is built on.
    pub fn merge(&mut self, other: &LatencySketch) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum_seconds.add_sum(&other.sum_seconds);
        self.min_seconds = self.min_seconds.min(other.min_seconds);
        self.max_seconds = self.max_seconds.max(other.max_seconds);
        if self.buckets.is_empty() {
            self.first_index = other.first_index;
            self.buckets = other.buckets.clone();
            return;
        }
        // Align the two observed-key windows before adding counts.  Both
        // windows start and end on non-zero buckets, so the merged window is
        // canonical too (equal sample multisets still compare equal).
        if other.first_index < self.first_index {
            let shift = (self.first_index - other.first_index) as usize;
            self.buckets.splice(0..0, std::iter::repeat_n(0, shift));
            self.first_index = other.first_index;
        }
        let offset = (other.first_index - self.first_index) as usize;
        if offset + other.buckets.len() > self.buckets.len() {
            self.buckets.resize(offset + other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets[offset..].iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// Serializes the full sketch state — count, exact sum, extrema, bucket
    /// window — into `out` (big-endian, fixed layout; see the fleet
    /// checkpoint format in ARCHITECTURE.md).  `decode` restores a
    /// byte-identical sketch: the pair is the transport for checkpoint/resume
    /// and cross-machine shard merges.
    pub fn encode(&self, out: &mut BytesMut) {
        out.put_u64(self.count);
        self.sum_seconds.encode(out);
        out.put_f64(self.min_seconds);
        out.put_f64(self.max_seconds);
        out.put_u64(self.first_index);
        out.put_u64(self.buckets.len() as u64);
        for &bucket in &self.buckets {
            out.put_u64(bucket);
        }
    }

    /// Decodes a sketch previously written by [`encode`](Self::encode),
    /// validating every structural invariant so corrupt bytes are rejected
    /// rather than silently mis-restored.
    ///
    /// # Errors
    /// [`SketchCodecError::Truncated`] when `input` ends early;
    /// [`SketchCodecError::Corrupt`] when the bytes violate a sketch
    /// invariant (bucket counts must sum to `count`, the window must be
    /// trimmed, an empty sketch must be canonical, extrema must be ordered).
    pub fn decode(input: &mut Bytes) -> Result<Self, SketchCodecError> {
        let count = take_u64(input)?;
        let sum_seconds = ExactSum::decode(input)?;
        let min_seconds = take_f64(input)?;
        let max_seconds = take_f64(input)?;
        let first_index = take_u64(input)?;
        let bucket_len = take_u64(input)?;
        // A length prefix larger than the bytes behind it is truncation (or a
        // flipped length bit) — reject before allocating.
        if bucket_len > input.remaining() as u64 / 8 {
            return Err(SketchCodecError::Truncated);
        }
        let mut buckets = Vec::with_capacity(bucket_len as usize);
        for _ in 0..bucket_len {
            buckets.push(take_u64(input)?);
        }
        if count == 0 {
            let empty = buckets.is_empty()
                && sum_seconds.is_zero()
                && min_seconds == f64::INFINITY
                && max_seconds == 0.0
                && first_index == 0;
            if !empty {
                return Err(SketchCodecError::Corrupt("empty sketch not canonical"));
            }
            return Ok(Self::new());
        }
        if buckets.is_empty() || *buckets.first().unwrap() == 0 || *buckets.last().unwrap() == 0 {
            return Err(SketchCodecError::Corrupt("bucket window not trimmed"));
        }
        let bucket_total: u64 = buckets
            .iter()
            .try_fold(0u64, |acc, &b| acc.checked_add(b))
            .ok_or(SketchCodecError::Corrupt("bucket counts overflow"))?;
        if bucket_total != count {
            return Err(SketchCodecError::Corrupt(
                "bucket counts do not sum to count",
            ));
        }
        if !(min_seconds.is_finite() && max_seconds.is_finite() && min_seconds <= max_seconds) {
            return Err(SketchCodecError::Corrupt("extrema out of order"));
        }
        if min_seconds < 0.0 {
            return Err(SketchCodecError::Corrupt("negative minimum"));
        }
        if first_index > key_of(MAX_TRACKED) - base_key() {
            return Err(SketchCodecError::Corrupt("bucket window out of range"));
        }
        Ok(Self {
            count,
            sum_seconds,
            min_seconds,
            max_seconds,
            first_index,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    }

    #[test]
    fn empty_sketch_reports_zeroes() {
        let s = LatencySketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), TimeSpan::ZERO);
        assert_eq!(s.min(), TimeSpan::ZERO);
        assert_eq!(s.max(), TimeSpan::ZERO);
        assert_eq!(s.quantile(0.95), TimeSpan::ZERO);
    }

    #[test]
    fn quantiles_respect_the_error_bound() {
        let mut sketch = LatencySketch::new();
        let mut values: Vec<f64> = (1..=5000)
            .map(|i| 1e-4 * (1.0 + (i as f64).sin().abs() * 50.0))
            .collect();
        for &v in &values {
            sketch.record(TimeSpan::from_seconds(v));
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let got = sketch.quantile(q).as_seconds();
            assert!(got >= exact - 1e-15, "q={q}: {got} < {exact}");
            assert!(
                got <= exact * (1.0 + RELATIVE_ERROR_BOUND) + 1e-15,
                "q={q}: {got} > bound around {exact}"
            );
        }
    }

    #[test]
    fn mean_min_max_are_exact() {
        let mut sketch = LatencySketch::new();
        for v in [0.25, 0.5, 1.0, 2.0] {
            sketch.record(TimeSpan::from_seconds(v));
        }
        assert_eq!(sketch.count(), 4);
        assert!((sketch.mean().as_seconds() - 0.9375).abs() < 1e-12);
        assert_eq!(sketch.min(), TimeSpan::from_seconds(0.25));
        assert_eq!(sketch.max(), TimeSpan::from_seconds(2.0));
        assert_eq!(sketch.quantile(1.0), TimeSpan::from_seconds(2.0));
    }

    #[test]
    fn degenerate_samples_are_clamped_not_poisonous() {
        let mut sketch = LatencySketch::new();
        sketch.record(TimeSpan::from_seconds(-1.0));
        sketch.record(TimeSpan::from_seconds(f64::NAN));
        sketch.record(TimeSpan::from_seconds(f64::INFINITY));
        sketch.record(TimeSpan::from_seconds(1e-12));
        assert_eq!(sketch.count(), 4);
        assert!(sketch.quantile(0.5).as_seconds().is_finite());
        // Tiny samples cost exactly one bucket, not a giant allocation.
        assert!(sketch.buckets.len() <= 1);
    }

    #[test]
    fn bucket_window_spans_only_the_observed_range() {
        // Millisecond-scale latencies must not pay for empty buckets all the
        // way down to the 1 ns floor (fleet summaries hold one sketch per
        // body).
        let mut sketch = LatencySketch::new();
        for us in 900..1100 {
            sketch.record(TimeSpan::from_micros(us as f64));
        }
        assert!(
            sketch.buckets.len() <= 32,
            "window too wide: {} buckets",
            sketch.buckets.len()
        );
        assert!(*sketch.buckets.first().unwrap() > 0);
        assert!(*sketch.buckets.last().unwrap() > 0);
        // A later out-of-window low sample extends the window backwards.
        sketch.record(TimeSpan::from_micros(1.0));
        assert!(*sketch.buckets.first().unwrap() > 0);
        let exact_p50 = TimeSpan::from_micros(999.0);
        assert!(sketch.quantile(0.5) >= exact_p50);
    }

    #[test]
    fn merge_matches_recording_everything_into_one() {
        let mut a = LatencySketch::new();
        let mut b = LatencySketch::new();
        let mut all = LatencySketch::new();
        for i in 0..500 {
            let v = TimeSpan::from_millis(0.1 + i as f64);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        a.merge(&LatencySketch::new());
        // Counts, extrema, buckets AND the sum combine exactly (the sum is
        // an ExactSum fixed-point accumulator, so regrouping the additions
        // cannot perturb low bits): the merged sketch is byte-identical to
        // the single-stream one.
        assert_eq!(a, all);
        assert_eq!(a.mean(), all.mean());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn exact_sum_is_order_and_grouping_independent() {
        let values: Vec<f64> = (1..=400)
            .map(|i| 1e-7 * (i as f64) * (1.0 + (i as f64).sin().abs() * 1e6))
            .collect();
        let mut forward = ExactSum::new();
        for &v in &values {
            forward.add(v);
        }
        let mut backward = ExactSum::new();
        for &v in values.iter().rev() {
            backward.add(v);
        }
        assert_eq!(forward, backward);
        // Any grouping of partial sums merges to the same accumulator.
        for split in [1, 37, 199, 399] {
            let mut left = ExactSum::new();
            let mut right = ExactSum::new();
            for &v in &values[..split] {
                left.add(v);
            }
            for &v in &values[split..] {
                right.add(v);
            }
            left.add_sum(&right);
            assert_eq!(left, forward);
            assert_eq!(left.to_f64().to_bits(), forward.to_f64().to_bits());
        }
        // The rounded readout agrees with naive summation to within its
        // accumulated rounding error.
        let naive: f64 = values.iter().sum();
        assert!((forward.to_f64() - naive).abs() <= naive * 1e-12);
    }

    #[test]
    fn exact_sum_readout_is_correctly_rounded() {
        // Values exactly representable in a shared binade: the sum is exact
        // in f64 too, so to_f64 must reproduce it bit for bit.
        let mut sum = ExactSum::new();
        for i in 1u64..=1000 {
            sum.add(i as f64 * 0.5f64.powi(20));
        }
        let expected = (1000 * 1001 / 2) as f64 * 0.5f64.powi(20);
        assert_eq!(sum.to_f64().to_bits(), expected.to_bits());
        // A sticky tail far below the mantissa must round up across a tie.
        let mut tie = ExactSum::new();
        tie.add(1.0);
        tie.add(f64::EPSILON / 2.0); // exactly halfway to the next double
        assert_eq!(tie.to_f64(), 1.0); // ties to even: mantissa stays even
        tie.add(f64::MIN_POSITIVE * f64::EPSILON); // any sticky bit breaks the tie
        assert_eq!(tie.to_f64(), 1.0 + f64::EPSILON);
        // Degenerate inputs contribute zero.
        let mut hygiene = ExactSum::new();
        hygiene.add(f64::NAN);
        hygiene.add(f64::NEG_INFINITY);
        hygiene.add(-5.0);
        assert!(hygiene.is_zero());
        assert_eq!(hygiene.to_f64(), 0.0);
        // Subnormals accumulate exactly.
        let mut tiny = ExactSum::new();
        for _ in 0..3 {
            tiny.add(f64::from_bits(1));
        }
        assert_eq!(tiny.to_f64().to_bits(), f64::from_bits(3).to_bits());
    }

    #[test]
    fn record_run_matches_repeated_record_bit_for_bit() {
        // Runs spanning the 1024-repetition chunk boundary, subnormals,
        // degenerate inputs and multi-magnitude mixes: the batched path must
        // land on the identical sketch state (PartialEq covers count, exact
        // sum limbs, extrema, window offset and every bucket).
        let runs: &[(f64, u64)] = &[
            (1.3e-3, 1),
            (1.3e-3, 1023),
            (2.75e-4, 1024),
            (9.9e-1, 1025),
            (1.3e-3, 4096),
            (f64::from_bits(3), 2500), // subnormal
            (-1.0, 7),                 // clamped to zero, like record
            (f64::NAN, 3),
            (5.0e2, 2047),
        ];
        let mut batched = LatencySketch::new();
        let mut looped = LatencySketch::new();
        for &(value, count) in runs {
            batched.record_run(TimeSpan::from_seconds(value), count);
            for _ in 0..count {
                looped.record(TimeSpan::from_seconds(value));
            }
        }
        assert_eq!(batched, looped);
        assert_eq!(
            batched.mean().as_seconds().to_bits(),
            looped.mean().as_seconds().to_bits()
        );
        // Zero-count runs are no-ops.
        let before = batched.clone();
        batched.record_run(TimeSpan::from_seconds(1.0), 0);
        assert_eq!(batched, before);
    }

    #[test]
    fn add_scaled_matches_repeated_add() {
        for &(value, count) in &[
            (0.1, 1u64),
            (0.1, 1024),
            (1.0 + f64::EPSILON, 100_000),
            (f64::from_bits(1), 3000),
            (6.626e-34, 2049),
        ] {
            let mut scaled = ExactSum::new();
            scaled.add_scaled(value, count);
            let mut repeated = ExactSum::new();
            for _ in 0..count {
                repeated.add(value);
            }
            assert_eq!(scaled, repeated, "value {value} count {count}");
        }
        // Degenerate values and zero counts contribute nothing.
        let mut hygiene = ExactSum::new();
        hygiene.add_scaled(f64::NAN, 10);
        hygiene.add_scaled(-2.0, 10);
        hygiene.add_scaled(1.0, 0);
        assert!(hygiene.is_zero());
    }

    #[test]
    fn sketch_codec_round_trips_byte_identically() {
        use bytes::BytesMut;
        let mut sketch = LatencySketch::new();
        for i in 0..3000 {
            sketch.record(TimeSpan::from_micros(10.0 + (i as f64) * 7.3));
        }
        let mut out = BytesMut::new();
        sketch.encode(&mut out);
        let encoded = out.freeze();
        let mut input = encoded.clone();
        let decoded = LatencySketch::decode(&mut input).expect("round trip");
        assert_eq!(decoded, sketch);
        assert_eq!(input.remaining(), 0);
        // Re-encoding the decoded sketch reproduces the bytes exactly.
        let mut again = BytesMut::new();
        decoded.encode(&mut again);
        assert_eq!(again.freeze().to_vec(), encoded.to_vec());
        // Empty sketches round-trip too.
        let mut empty_out = BytesMut::new();
        LatencySketch::new().encode(&mut empty_out);
        let mut empty_in = empty_out.freeze();
        assert_eq!(
            LatencySketch::decode(&mut empty_in).expect("empty"),
            LatencySketch::new()
        );
    }

    #[test]
    fn sketch_codec_rejects_truncated_and_corrupt_bytes() {
        use bytes::BytesMut;
        let mut sketch = LatencySketch::new();
        for ms in 1..=64 {
            sketch.record(TimeSpan::from_millis(ms as f64));
        }
        let mut out = BytesMut::new();
        sketch.encode(&mut out);
        let encoded = out.freeze().to_vec();
        // Every proper prefix is truncated, never a panic or a bad sketch.
        for cut in 0..encoded.len() {
            let mut input = bytes::Bytes::from(encoded[..cut].to_vec());
            assert!(
                LatencySketch::decode(&mut input).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        // A flipped bucket count breaks the sum-to-count invariant.
        let mut tampered = encoded.clone();
        let last = tampered.len() - 1;
        tampered[last] ^= 0x01;
        let mut input = bytes::Bytes::from(tampered);
        assert!(matches!(
            LatencySketch::decode(&mut input),
            Err(SketchCodecError::Corrupt(_))
        ));
        // A zero-length ExactSum window with a nonzero offset is complete
        // but non-canonical: decode must reject it, never re-encode
        // different bytes than it consumed.
        let mut crooked = BytesMut::new();
        crooked.put_u32(5);
        crooked.put_u32(0);
        let mut input = crooked.freeze();
        assert!(matches!(
            ExactSum::decode(&mut input),
            Err(SketchCodecError::Corrupt(_))
        ));
    }
}
