//! Error type for the network simulator.

use core::fmt;

/// Errors produced when building or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum NetsimError {
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: String,
    },
    /// A node id was referenced that does not exist in the simulation.
    UnknownNode {
        /// The unknown node id.
        id: usize,
    },
}

impl NetsimError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        NetsimError::InvalidConfig {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for NetsimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetsimError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration {name}: {reason}")
            }
            NetsimError::UnknownNode { id } => write!(f, "unknown node id {id}"),
        }
    }
}

impl std::error::Error for NetsimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetsimError::invalid("x", "y")
            .to_string()
            .contains("invalid configuration"));
        assert!(NetsimError::UnknownNode { id: 3 }.to_string().contains('3'));
    }
}
