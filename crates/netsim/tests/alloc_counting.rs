//! The zero-allocation regression gate for the streaming engine's
//! steady-state loop (referenced from the `sim` module docs and
//! ARCHITECTURE.md "Hot path memory layout").
//!
//! A counting [`GlobalAlloc`] wraps the system allocator; the test runs the
//! same scenario at horizon `H` and at `2 · H` and asserts the allocation
//! counts are **exactly equal**: doubling the event count must not add a
//! single heap allocation, so the per-event allocation count is zero.  Setup
//! (the struct-of-arrays core, node queues reaching their high-water
//! capacity) and report finalization allocate identically at both horizons;
//! anything the drain loop allocated would scale with events and break the
//! equality.
//!
//! Everything lives in one `#[test]` because the counter is process-global:
//! a second concurrently-running test would perturb the counts.

use hidwa_eqs::body::BodySite;
use hidwa_netsim::mac::MacPolicy;
use hidwa_netsim::node::{LinkParams, NodeConfig};
use hidwa_netsim::sim::Simulation;
use hidwa_netsim::traffic::TrafficPattern;
use hidwa_units::{DataRate, EnergyPerBit, TimeSpan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation call (alloc, zeroed, realloc) and delegates to
/// the system allocator.  Deallocations are not counted: the gate is about
/// acquiring memory in the hot loop.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn wir_link() -> LinkParams {
    LinkParams::new(
        DataRate::from_mbps(4.0),
        EnergyPerBit::from_pico_joules(100.0),
        TimeSpan::from_micros(100.0),
    )
}

/// The bench-shaped ten-node body: two periodic sensors plus eight streaming
/// sources at ~42% medium utilization, the same mix `bench_netsim` measures.
fn mixed_body(seed: u64) -> Simulation {
    let mut sim = Simulation::new(MacPolicy::Polling).with_seed(seed);
    for i in 0..2 {
        sim.add_node(
            NodeConfig::leaf(format!("periodic{i}"), BodySite::Chest, wir_link())
                .with_traffic(TrafficPattern::periodic(TimeSpan::from_millis(250.0), 512)),
        );
    }
    for i in 0..8 {
        sim.add_node(
            NodeConfig::leaf(format!("stream{i}"), BodySite::Wrist, wir_link()).with_traffic(
                TrafficPattern::streaming(DataRate::from_kbps(64.0 + 32.0 * i as f64), 512),
            ),
        );
    }
    sim
}

/// A small bursty body exercising the RNG-rescheduling generation path.
fn bursty_body(seed: u64) -> Simulation {
    let mut sim = Simulation::new(MacPolicy::Tdma).with_seed(seed);
    for i in 0..3 {
        sim.add_node(
            NodeConfig::leaf(format!("burst{i}"), BodySite::Wrist, wir_link()).with_traffic(
                TrafficPattern::bursty(TimeSpan::from_millis(40.0 + 10.0 * i as f64), 256),
            ),
        );
    }
    sim
}

/// Allocations performed by building and running `build(seed)` for
/// `horizon_seconds`, including report finalization.
fn allocations_for(build: fn(u64) -> Simulation, horizon_seconds: f64) -> (u64, u64) {
    let mut sim = build(0xA110C);
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let report = sim.run(TimeSpan::from_seconds(horizon_seconds));
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    (after - before, report.events_processed())
}

#[test]
fn steady_state_loop_allocates_zero_per_event() {
    // Warm up lazily-initialized process state (thread-count caches and the
    // like) so the measured windows see only the simulator's own behaviour.
    let _ = allocations_for(mixed_body, 50.0);
    let _ = allocations_for(bursty_body, 50.0);

    // `slack` is the allowed high-water-capacity growth between the two
    // horizons: a node queue or sketch bucket window may grow once more when
    // a rare deeper backlog (or wider latency) first occurs late in the
    // longer run.  That growth is a function of the observed value range —
    // O(log) over a whole run — not of the event count.  The bench-shaped
    // mixed body reaches every high-water mark early, so its gate is exact.
    for (name, build, slack) in [
        ("mixed", mixed_body as fn(u64) -> Simulation, 0u64),
        ("bursty", bursty_body as fn(u64) -> Simulation, 2),
    ] {
        let (alloc_short, events_short) = allocations_for(build, 600.0);
        let (alloc_long, events_long) = allocations_for(build, 1200.0);
        assert!(
            events_long > events_short + 50_000,
            "{name}: horizons must differ by a large event count \
             ({events_short} vs {events_long})"
        );
        // Doubling the horizon doubles the events; the allocation count must
        // not move (beyond the documented high-water slack) — zero heap
        // allocations per steady-state event.
        assert!(
            alloc_long <= alloc_short + slack,
            "{name}: allocation count scaled with events \
             ({alloc_short} allocs @ {events_short} events vs \
             {alloc_long} allocs @ {events_long} events)"
        );
    }
}
