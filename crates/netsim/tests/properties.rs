//! Property-based tests for the network simulator.

use hidwa_eqs::body::BodySite;
use hidwa_netsim::mac::MacPolicy;
use hidwa_netsim::node::{LinkParams, NodeConfig};
use hidwa_netsim::sim::Simulation;
use hidwa_netsim::traffic::TrafficPattern;
use hidwa_units::{DataRate, EnergyPerBit, TimeSpan};
use proptest::prelude::*;

fn wir_link() -> LinkParams {
    LinkParams::new(
        DataRate::from_mbps(4.0),
        EnergyPerBit::from_pico_joules(100.0),
        TimeSpan::from_micros(100.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Conservation: generated = delivered + backlog for every node, and
    /// delivery ratio lies in [0, 1].
    #[test]
    fn frames_are_conserved(
        node_count in 1usize..6,
        period_ms in 50.0..500.0f64,
        frame_bytes in 64usize..2048,
        seconds in 5.0..20.0f64,
    ) {
        let mut sim = Simulation::new(MacPolicy::Tdma);
        for i in 0..node_count {
            sim.add_node(
                NodeConfig::leaf(format!("n{i}"), BodySite::Wrist, wir_link())
                    .with_traffic(TrafficPattern::periodic(TimeSpan::from_millis(period_ms), frame_bytes)),
            );
        }
        let report = sim.run(TimeSpan::from_seconds(seconds));
        for s in report.node_stats() {
            prop_assert_eq!(s.generated_frames, s.delivered_frames + s.backlog_frames);
            prop_assert!(s.p95_latency >= s.mean_latency - TimeSpan::from_micros(1.0));
            prop_assert!(s.max_latency >= s.p95_latency);
        }
        let ratio = report.delivery_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
        prop_assert!((0.0..=1.0).contains(&report.medium_utilization()));
    }

    /// The same seed reproduces identical results; different durations scale
    /// delivered bytes roughly linearly for underloaded networks.
    #[test]
    fn deterministic_and_scales(seed in 0u64..1000) {
        let build = |seed: u64, secs: f64| {
            let mut sim = Simulation::new(MacPolicy::Polling).with_seed(seed);
            sim.add_node(
                NodeConfig::leaf("audio", BodySite::Ear, wir_link())
                    .with_traffic(TrafficPattern::streaming(DataRate::from_kbps(64.0), 512)),
            );
            sim.run(TimeSpan::from_seconds(secs))
        };
        let a = build(seed, 10.0);
        let b = build(seed, 10.0);
        prop_assert_eq!(a.node_stats()[0].delivered_bytes, b.node_stats()[0].delivered_bytes);
        let long = build(seed, 20.0);
        let short_bytes = a.node_stats()[0].delivered_bytes as f64;
        let long_bytes = long.node_stats()[0].delivered_bytes as f64;
        prop_assert!(long_bytes > short_bytes * 1.5);
    }

    /// Radio energy is proportional to delivered volume, so doubling the
    /// frame size (at the same frame rate) roughly doubles radio energy.
    #[test]
    fn radio_energy_scales_with_volume(frame_bytes in 128usize..1024) {
        let run = |bytes: usize| {
            let mut sim = Simulation::new(MacPolicy::Tdma);
            sim.add_node(
                NodeConfig::leaf("n", BodySite::Chest, wir_link())
                    .with_traffic(TrafficPattern::periodic(TimeSpan::from_millis(100.0), bytes)),
            );
            sim.run(TimeSpan::from_seconds(10.0)).node_stats()[0].radio_energy
        };
        let single = run(frame_bytes);
        let double = run(frame_bytes * 2);
        let ratio = double.as_joules() / single.as_joules();
        prop_assert!((ratio - 2.0).abs() < 0.1, "ratio {}", ratio);
    }
}
