//! Property tests asserting the calendar [`BucketQueue`] pops events in
//! exactly the order of the reference [`BinaryHeapQueue`] — including stable
//! tie-breaking of simultaneous events — under arbitrary schedule/pop
//! interleavings, clustered and sparse time distributions, and wheel growth.

use hidwa_netsim::event::{BinaryHeapQueue, BucketQueue, Event};
use hidwa_units::TimeSpan;
use proptest::prelude::*;

/// Drives both queues through the same operation tape and asserts every pop
/// matches.  `ops` entries: `Some(t)` schedules at time `t`, `None` pops.
fn drive(ops: &[Option<f64>]) {
    let mut bucket = BucketQueue::new();
    let mut heap = BinaryHeapQueue::new();
    for (i, op) in ops.iter().enumerate() {
        match op {
            Some(seconds) => {
                let t = TimeSpan::from_seconds(*seconds);
                let event = Event::FrameGenerated { node: i, bytes: i };
                bucket.schedule(t, event.clone());
                heap.schedule(t, event);
            }
            None => {
                assert_eq!(bucket.pop(), heap.pop(), "divergence at op {i}");
                assert_eq!(bucket.len(), heap.len());
            }
        }
    }
    // Drain both completely: full order must match, ties included.
    while let Some(expected) = heap.pop() {
        assert_eq!(bucket.pop().unwrap(), expected);
    }
    assert!(bucket.is_empty());
    assert_eq!(bucket.pop(), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random interleavings over a clustered time range (sub-bucket-width
    /// gaps force heavy tie-style traffic through single buckets).
    #[test]
    fn interleavings_match_clustered(
        raw in prop::collection::vec(0.0..0.25f64, 1..300),
        pop_every in 2usize..6,
    ) {
        let ops: Vec<Option<f64>> = raw
            .iter()
            .enumerate()
            .map(|(i, t)| if i % pop_every == 0 { None } else { Some(*t) })
            .collect();
        drive(&ops);
        prop_assert!(true);
    }

    /// Sparse times spanning ten decades exercise the lap-then-direct-search
    /// fallback and cursor rewinds after far-future pops.
    #[test]
    fn interleavings_match_sparse(
        exponents in prop::collection::vec(-4.0..6.0f64, 1..120),
        pop_every in 2usize..5,
    ) {
        let ops: Vec<Option<f64>> = exponents
            .iter()
            .enumerate()
            .map(|(i, e)| if i % pop_every == 0 { None } else { Some(10f64.powf(*e)) })
            .collect();
        drive(&ops);
        prop_assert!(true);
    }

    /// Exact duplicate timestamps: insertion order (the sequence number) is
    /// the only tiebreaker and must be preserved.
    #[test]
    fn simultaneous_events_keep_insertion_order(
        times in prop::collection::vec(prop::sample::select(vec![0.0f64, 0.5, 0.5, 1.0, 1.0]), 5..60),
    ) {
        let ops: Vec<Option<f64>> = times.iter().map(|t| Some(*t)).collect();
        drive(&ops);
        prop_assert!(true);
    }
}

#[test]
fn infinite_and_finite_mix_matches_heap_order() {
    let mut ops: Vec<Option<f64>> = Vec::new();
    for i in 0..40 {
        ops.push(Some(if i % 7 == 0 {
            f64::INFINITY
        } else {
            (i as f64) * 0.013
        }));
        if i % 3 == 0 {
            ops.push(None);
        }
    }
    drive(&ops);
}
