//! Property tests pinning the [`LatencySketch`] error bound against the
//! exact `Vec`-based percentile computation it replaces, both directly on
//! random sample sets and end-to-end through the simulator across periodic,
//! bursty and streaming traffic.

use hidwa_eqs::body::BodySite;
use hidwa_netsim::mac::MacPolicy;
use hidwa_netsim::node::{LinkParams, NodeConfig};
use hidwa_netsim::sim::Simulation;
use hidwa_netsim::sketch::{LatencySketch, RELATIVE_ERROR_BOUND};
use hidwa_netsim::traffic::TrafficPattern;
use hidwa_units::{DataRate, EnergyPerBit, TimeSpan};
use proptest::prelude::*;

/// The exact nearest-rank quantile the pre-refactor engine computed.
fn exact_quantile(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
    samples[idx.min(samples.len() - 1)]
}

fn wir_link() -> LinkParams {
    LinkParams::new(
        DataRate::from_mbps(4.0),
        EnergyPerBit::from_pico_joules(100.0),
        TimeSpan::from_micros(100.0),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary sample sets spanning six decades, every queried quantile
    /// sits in `[exact, exact · (1 + RELATIVE_ERROR_BOUND)]`.
    #[test]
    fn sketch_quantiles_bracket_the_exact_value(
        exponents in prop::collection::vec(-6.0..1.0f64, 1..400),
        q in 0.0..=1.0f64,
    ) {
        let mut samples: Vec<f64> = exponents.iter().map(|e| 10f64.powf(*e)).collect();
        let mut sketch = LatencySketch::new();
        for &s in &samples {
            sketch.record(TimeSpan::from_seconds(s));
        }
        let exact = exact_quantile(&mut samples, q);
        let got = sketch.quantile(q).as_seconds();
        prop_assert!(got >= exact - 1e-15, "quantile {} under-reported: {} < {}", q, got, exact);
        prop_assert!(
            got <= exact * (1.0 + RELATIVE_ERROR_BOUND) + 1e-15,
            "quantile {} over bound: {} vs exact {}", q, got, exact
        );
    }

    /// Mean, min, max and count are tracked exactly regardless of the input
    /// distribution.
    #[test]
    fn sketch_scalars_are_exact(
        samples in prop::collection::vec(1e-6..10.0f64, 1..300),
    ) {
        let mut sketch = LatencySketch::new();
        let mut sum = 0.0;
        for &s in &samples {
            sketch.record(TimeSpan::from_seconds(s));
            sum += s;
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        prop_assert_eq!(sketch.count(), samples.len() as u64);
        prop_assert_eq!(sketch.min().as_seconds(), min);
        prop_assert_eq!(sketch.max().as_seconds(), max);
        prop_assert!((sketch.mean().as_seconds() - sum / samples.len() as f64).abs() < 1e-12);
    }

    /// End-to-end: the streaming engine's p95 stays within the documented
    /// bound of the reference engine's exact p95 for every traffic shape the
    /// simulator models, while all exact statistics match bit-for-bit.
    #[test]
    fn engines_agree_across_traffic_shapes(
        shape in prop::sample::select(vec![0usize, 1, 2]),
        period_ms in 20.0..200.0f64,
        rate_kbps in 16.0..256.0f64,
        frame_bytes in 64usize..2048,
        seed in 0u64..1000,
    ) {
        let traffic = match shape {
            0 => TrafficPattern::periodic(TimeSpan::from_millis(period_ms), frame_bytes),
            1 => TrafficPattern::bursty(TimeSpan::from_millis(period_ms), frame_bytes),
            _ => TrafficPattern::streaming(DataRate::from_kbps(rate_kbps), frame_bytes),
        };
        let build = |reference: bool| {
            let mut sim = Simulation::new(MacPolicy::Polling)
                .with_seed(seed)
                .with_reference_engine(reference);
            for i in 0..3 {
                sim.add_node(
                    NodeConfig::leaf(format!("n{i}"), BodySite::Wrist, wir_link())
                        .with_traffic(traffic.clone()),
                );
            }
            sim.run(TimeSpan::from_seconds(15.0))
        };
        let reference = build(true);
        let streaming = build(false);
        prop_assert_eq!(reference.events_processed(), streaming.events_processed());
        for (r, s) in reference.node_stats().iter().zip(streaming.node_stats()) {
            prop_assert_eq!(r.generated_frames, s.generated_frames);
            prop_assert_eq!(r.delivered_bytes, s.delivered_bytes);
            prop_assert_eq!(r.radio_energy, s.radio_energy);
            prop_assert_eq!(r.max_latency, s.max_latency);
            prop_assert!(s.p95_latency >= r.p95_latency);
            prop_assert!(
                s.p95_latency.as_seconds()
                    <= r.p95_latency.as_seconds() * (1.0 + RELATIVE_ERROR_BOUND) + 1e-15,
                "p95 {} vs exact {}", s.p95_latency, r.p95_latency
            );
        }
        // Streaming sketches hold exactly one sample per delivered frame;
        // the reference engine keeps its exact path sketch-free.
        for (stats, sketch) in streaming.node_stats().iter().zip(streaming.latency_sketches()) {
            prop_assert_eq!(sketch.count(), stats.delivered_frames as u64);
        }
        prop_assert!(reference.latency_sketches().iter().all(|s| s.count() == 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The struct-of-arrays engine against the exact reference across node
    /// counts on **both sides of the 64-node mask boundary** (single-word
    /// ready mask vs the word-array path) with all three traffic shapes
    /// mixed inside one body: every exact statistic bit-equal, the p95
    /// within the sketch bound.
    #[test]
    fn engines_agree_across_node_counts_and_mixes(
        node_count in prop::sample::select(vec![2usize, 9, 70]),
        period_ms in 20.0..120.0f64,
        rate_kbps in 16.0..128.0f64,
        frame_bytes in 64usize..1024,
        seed in 0u64..500,
    ) {
        let traffic_for = |i: usize| match i % 3 {
            0 => TrafficPattern::periodic(TimeSpan::from_millis(period_ms), frame_bytes),
            1 => TrafficPattern::bursty(TimeSpan::from_millis(period_ms * 1.5), frame_bytes),
            _ => TrafficPattern::streaming(DataRate::from_kbps(rate_kbps), frame_bytes),
        };
        let build = |reference: bool| {
            let mut sim = Simulation::new(MacPolicy::Polling)
                .with_seed(seed)
                .with_reference_engine(reference);
            for i in 0..node_count {
                sim.add_node(
                    NodeConfig::leaf(format!("n{i}"), BodySite::Wrist, wir_link())
                        .with_traffic(traffic_for(i)),
                );
            }
            sim.run(TimeSpan::from_seconds(4.0))
        };
        let reference = build(true);
        let streaming = build(false);
        prop_assert_eq!(reference.events_processed(), streaming.events_processed());
        for (r, s) in reference.node_stats().iter().zip(streaming.node_stats()) {
            prop_assert_eq!(r.generated_frames, s.generated_frames);
            prop_assert_eq!(r.delivered_frames, s.delivered_frames);
            prop_assert_eq!(r.delivered_bytes, s.delivered_bytes);
            prop_assert_eq!(r.backlog_frames, s.backlog_frames);
            prop_assert_eq!(r.radio_energy, s.radio_energy);
            prop_assert_eq!(r.mean_latency, s.mean_latency);
            prop_assert_eq!(r.max_latency, s.max_latency);
            prop_assert!(s.p95_latency >= r.p95_latency);
            prop_assert!(
                s.p95_latency.as_seconds()
                    <= r.p95_latency.as_seconds() * (1.0 + RELATIVE_ERROR_BOUND) + 1e-15,
                "p95 {} vs exact {}", s.p95_latency, r.p95_latency
            );
        }
    }
}
