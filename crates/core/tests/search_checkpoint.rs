//! Corruption sweep of the `HIDWASRC` v1 search-checkpoint format (ISSUE
//! 10 satellite), mirroring what `fleet_checkpoint.rs` does for the fleet
//! v2 format: every-prefix truncation, every-byte bit-flips, a resealed
//! version bump and structural mutations all decode to typed errors —
//! never a panic — and resuming under a different search identity is
//! refused with a `SpecMismatch`.

use hidwa_core::fleet::driver::DriverFleetSpec;
use hidwa_core::fleet::placement::{ChurnSpec, PolicyKind};
use hidwa_core::population::ChurnModel;
use hidwa_core::search::{ObjectiveSpace, SearchCheckpoint, SearchCheckpointError, SearchSpec};
use hidwa_core::sweep::SweepRunner;
use hidwa_netsim::mac::MacPolicy;
use hidwa_phy::RadioTechnology;

/// Local FNV-1a 64 copy, so the tests can re-seal deliberately corrupted
/// blobs without depending on crate internals.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Recomputes the trailing seal after a mutation, so the corruption under
/// test — not the seal — is what the decoder has to catch.
fn reseal(mut blob: Vec<u8>) -> Vec<u8> {
    let split = blob.len() - 8;
    let seal = fnv1a64(&blob[..split]);
    blob[split..].copy_from_slice(&seal.to_be_bytes());
    blob
}

fn search_spec(seed: u64) -> SearchSpec {
    let base = DriverFleetSpec::new(2)
        .with_base_seed(seed)
        .with_horizon(hidwa_units::TimeSpan::from_seconds(0.02))
        .with_churn(ChurnSpec::new(
            ChurnModel::with_rate(0.3).with_epochs(2),
            PolicyKind::StaticAtAdmission,
        ));
    let space = ObjectiveSpace::new()
        .with_mac_axis(&[MacPolicy::Polling, MacPolicy::Tdma])
        .with_radio_axis(&[RadioTechnology::WiR, RadioTechnology::Ble]);
    SearchSpec::new(base, space)
}

/// A populated checkpoint: every grid point evaluated in-process (no spool
/// needed), recorded into a fresh index.
fn populated() -> (SearchSpec, SearchCheckpoint, Vec<u8>) {
    let spec = search_spec(11);
    let runner = SweepRunner::serial();
    let mut checkpoint = SearchCheckpoint::new(&spec);
    for index in 0..spec.space().len() {
        checkpoint.record(spec.evaluation(index).run(&runner));
    }
    let blob = checkpoint.save();
    (spec, checkpoint, blob)
}

const HEADER: usize = 8 + 2 + 8 + 8 + 8;
const RECORD: usize = 5 * 8;

#[test]
fn round_trip_is_exact() {
    let (spec, checkpoint, blob) = populated();
    assert_eq!(checkpoint.len(), 4);
    assert_eq!(blob.len(), HEADER + 4 * RECORD + 8);
    let loaded = SearchCheckpoint::load(&blob).expect("intact blob loads");
    assert_eq!(loaded, checkpoint);
    loaded.verify_spec(&spec).expect("same spec verifies");
    assert_eq!(loaded.save(), blob);
}

#[test]
fn every_prefix_truncation_is_a_typed_error() {
    let (_, _, blob) = populated();
    for cut in 0..blob.len() {
        let result = SearchCheckpoint::load(&blob[..cut]);
        assert!(
            result.is_err(),
            "prefix of {cut} bytes decoded successfully"
        );
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    let (_, _, blob) = populated();
    for position in 0..blob.len() {
        let mut corrupt = blob.clone();
        corrupt[position] ^= 1 << (position % 8);
        let result = SearchCheckpoint::load(&corrupt);
        assert!(
            result.is_err(),
            "bit flip at byte {position} decoded successfully"
        );
    }
}

#[test]
fn resealed_version_bump_is_unsupported() {
    let (_, _, blob) = populated();
    let mut bumped = blob;
    bumped[8..10].copy_from_slice(&2u16.to_be_bytes());
    let bumped = reseal(bumped);
    assert_eq!(
        SearchCheckpoint::load(&bumped),
        Err(SearchCheckpointError::UnsupportedVersion(2))
    );
}

#[test]
fn foreign_magic_is_rejected() {
    let (_, _, blob) = populated();
    let mut foreign = blob;
    foreign[..8].copy_from_slice(b"HIDWAFLT");
    let foreign = reseal(foreign);
    assert_eq!(
        SearchCheckpoint::load(&foreign),
        Err(SearchCheckpointError::BadMagic)
    );
    assert_eq!(
        SearchCheckpoint::load(&[]),
        Err(SearchCheckpointError::Truncated)
    );
}

#[test]
fn structural_mutations_are_corrupt_not_panics() {
    let (_, _, blob) = populated();
    let expect_corrupt = |mutated: Vec<u8>, label: &str| {
        let result = SearchCheckpoint::load(&reseal(mutated));
        assert!(
            matches!(result, Err(SearchCheckpointError::Corrupt(_))),
            "{label}: expected Corrupt, got {result:?}"
        );
    };

    // Trailing byte between the records and the seal.
    let mut trailing = blob.clone();
    trailing.insert(blob.len() - 8, 0);
    expect_corrupt(trailing, "trailing byte");

    // Records swapped out of ascending-point order.
    let mut swapped = blob.clone();
    let (a, b) = (HEADER, HEADER + RECORD);
    for offset in 0..RECORD {
        swapped.swap(a + offset, b + offset);
    }
    expect_corrupt(swapped, "records out of order");

    // A record's point pushed outside the grid.
    let mut outside = blob.clone();
    outside[HEADER..HEADER + 8].copy_from_slice(&99u64.to_be_bytes());
    expect_corrupt(outside, "point outside the grid");

    // Count larger than the grid.
    let mut overcount = blob.clone();
    overcount[26..34].copy_from_slice(&5u64.to_be_bytes());
    expect_corrupt(overcount, "count exceeds grid");

    // A non-finite metric.
    let mut nan = blob;
    nan[HEADER + 8..HEADER + 16].copy_from_slice(&f64::NAN.to_bits().to_be_bytes());
    expect_corrupt(nan, "non-finite energy");
}

#[test]
fn foreign_search_identity_refuses_to_resume() {
    let (spec, checkpoint, _) = populated();
    // Different base fleet (seed) — same grid shape.
    let reseeded = search_spec(12);
    assert_eq!(
        checkpoint.verify_spec(&reseeded),
        Err(SearchCheckpointError::SpecMismatch(
            "base fleet or grid axes differ"
        ))
    );
    // Different grid length.
    let regridded = SearchSpec::new(spec.base().clone(), ObjectiveSpace::new());
    assert_eq!(
        checkpoint.verify_spec(&regridded),
        Err(SearchCheckpointError::SpecMismatch("grid length differs"))
    );
    // Same axes in a different order: same length, different identity.
    let reordered = SearchSpec::new(
        spec.base().clone(),
        ObjectiveSpace::new()
            .with_mac_axis(&[MacPolicy::Tdma, MacPolicy::Polling])
            .with_radio_axis(&[RadioTechnology::WiR, RadioTechnology::Ble]),
    );
    assert_eq!(
        checkpoint.verify_spec(&reordered),
        Err(SearchCheckpointError::SpecMismatch(
            "base fleet or grid axes differ"
        ))
    );
}

#[test]
fn error_display_names_the_failure() {
    assert_eq!(
        SearchCheckpointError::Truncated.to_string(),
        "search checkpoint truncated"
    );
    assert_eq!(
        SearchCheckpointError::BadMagic.to_string(),
        "not a search checkpoint (bad magic)"
    );
    assert_eq!(
        SearchCheckpointError::UnsupportedVersion(7).to_string(),
        "unsupported search checkpoint version 7"
    );
    assert_eq!(
        SearchCheckpointError::Corrupt("seal mismatch").to_string(),
        "corrupt search checkpoint: seal mismatch"
    );
    assert_eq!(
        SearchCheckpointError::SpecMismatch("grid length differs").to_string(),
        "checkpoint from a different search: grid length differs"
    );
}
