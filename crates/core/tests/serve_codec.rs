//! Serve-codec corruption battery, mirroring `fleet_checkpoint.rs`: every
//! prefix truncation, every single-bit flip, resealed version bumps and
//! domain-violating bytes come back as typed [`WireCodecError`]s — never a
//! panic, never a mis-accept — and well-formed envelopes round-trip exactly.

use hidwa_core::partition::Objective;
use hidwa_core::serve::codec::{
    self, quantize_f64, ModelId, PlanRequest, ProjectionRequest, Request, RequestEnvelope,
    Response, ResponseEnvelope, WireCodecError, WireContext, WireLink, WirePlan, WireProjection,
    MAX_BATCH, WIRE_VERSION,
};
use hidwa_eqs::body::BodySite;
use hidwa_phy::RadioTechnology;
use proptest::prelude::*;

/// Re-implementation of the documented FNV-1a 64 seal (ARCHITECTURE.md wire
/// format), so tests can mint structurally valid envelopes with chosen
/// fields.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Re-seals a tampered envelope so only the tampering — not the checksum —
/// decides whether it decodes.
fn reseal(blob: &mut [u8]) {
    let body_len = blob.len() - 8;
    let seal = fnv1a64(&blob[..body_len]);
    blob[body_len..].copy_from_slice(&seal.to_be_bytes());
}

const OBJECTIVES: [Objective; 3] = [
    Objective::LeafEnergy,
    Objective::Latency,
    Objective::EnergyDelayProduct,
];

/// A request batch exercising every query kind, link kind and flag state.
fn representative_requests() -> Vec<Request> {
    let mut requests = Vec::new();
    for (i, model) in ModelId::ALL.into_iter().enumerate() {
        requests.push(Request::Plan(PlanRequest {
            model,
            context: WireContext::of(WireLink::WiR),
            objective: OBJECTIVES[i % 3],
        }));
    }
    requests.push(Request::Plan(PlanRequest {
        model: ModelId::KeywordSpotting,
        context: WireContext::of(WireLink::Ble).without_quantization(),
        objective: Objective::Latency,
    }));
    requests.push(Request::Plan(PlanRequest {
        model: ModelId::EcgArrhythmia,
        context: WireContext::of(WireLink::Site(RadioTechnology::WiR, BodySite::Ankle))
            .with_energy_per_bit_pj(37.5)
            .with_goodput_bps(1.25e6),
        objective: Objective::EnergyDelayProduct,
    }));
    requests.push(Request::Projection(ProjectionRequest { rate_bps: 4000.0 }));
    requests
}

/// A response batch exercising every answer kind.
fn representative_responses() -> Vec<Response> {
    vec![
        Response::Plan(WirePlan {
            model: ModelId::VideoFeature,
            objective: Objective::LeafEnergy,
            cut_index: 3,
            leaf_macs: 1_234_567,
            hub_macs: 89_000_000,
            transfer_bytes: 2048.0,
            leaf_energy_j: 1.25e-6,
            hub_energy_j: 8.5e-5,
            latency_s: 0.0125,
            leaf_power_w: 3.1e-4,
        }),
        Response::Infeasible("no feasible cut: BLE goodput exhausted".to_string()),
        Response::Projection(WireProjection {
            rate_bps: 4000.0,
            total_power_w: 1.9e-4,
            battery_life_s: f64::INFINITY, // perpetual operation is legal
        }),
        Response::Error("bad request: serve envelope corrupt".to_string()),
    ]
}

#[test]
fn request_and_response_envelopes_roundtrip_exactly() {
    let requests = representative_requests();
    let decoded = codec::decode_request(&codec::encode_requests(&requests)).unwrap();
    assert_eq!(decoded, RequestEnvelope::Queries(requests));

    let responses = representative_responses();
    let decoded = codec::decode_response(&codec::encode_responses(&responses)).unwrap();
    assert_eq!(decoded, ResponseEnvelope::Answers(responses));

    assert_eq!(
        codec::decode_request(&codec::encode_shutdown()).unwrap(),
        RequestEnvelope::Shutdown
    );
    assert_eq!(
        codec::decode_response(&codec::encode_bye()).unwrap(),
        ResponseEnvelope::Bye
    );
}

#[test]
fn every_prefix_truncation_is_rejected() {
    let blob = codec::encode_requests(&representative_requests()).to_vec();
    for cut in 0..blob.len() {
        assert!(
            codec::decode_request(&blob[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte request envelope decoded",
            blob.len()
        );
    }
    let blob = codec::encode_responses(&representative_responses()).to_vec();
    for cut in 0..blob.len() {
        assert!(
            codec::decode_response(&blob[..cut]).is_err(),
            "a {cut}-byte prefix of a {}-byte response envelope decoded",
            blob.len()
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let blob = codec::encode_requests(&representative_requests()).to_vec();
    // One flip per byte position, rotating the bit index so all eight bit
    // lanes are exercised: the FNV seal catches every single-bit flip by
    // construction, and the sweep proves no decode path panics or accepts.
    for position in 0..blob.len() {
        let bit = position % 8;
        let mut tampered = blob.clone();
        tampered[position] ^= 1 << bit;
        assert!(
            codec::decode_request(&tampered).is_err(),
            "bit {bit} of byte {position} flipped and the envelope still decoded"
        );
    }
    let blob = codec::encode_responses(&representative_responses()).to_vec();
    for position in 0..blob.len() {
        let bit = position % 8;
        let mut tampered = blob.clone();
        tampered[position] ^= 1 << bit;
        assert!(
            codec::decode_response(&tampered).is_err(),
            "bit {bit} of byte {position} flipped and the envelope still decoded"
        );
    }
}

#[test]
fn every_single_bit_flip_survives_chunked_frame_delivery() {
    // The bit-flip sweep extended through the nonblocking delivery path a
    // reactor connection actually takes: each tampered envelope is framed,
    // the framed stream is cut into 1/3/13-byte chunks and reassembled by
    // `FrameDecoder`, and whatever comes out goes through the decoder
    // codec.  Nothing on the path may panic, and nothing tampered may
    // decode — frame reassembly must be corruption-neutral.
    use hidwa_core::wire::FrameDecoder;
    let blob = codec::encode_requests(&representative_requests()).to_vec();
    for position in 0..blob.len() {
        let bit = position % 8;
        let mut tampered = blob.clone();
        tampered[position] ^= 1 << bit;
        let mut wire = Vec::new();
        hidwa_core::wire::write_frame(&mut wire, position as u64, &tampered).unwrap();
        for chunk_size in [1usize, 3, 13] {
            let mut decoder = FrameDecoder::new(codec::MAX_SERVE_FRAME);
            let mut frames = Vec::new();
            for chunk in wire.chunks(chunk_size) {
                decoder.feed(chunk, &mut frames).expect("framing is intact");
            }
            assert_eq!(frames.len(), 1, "one tampered frame reassembles");
            let (tag, payload) = &frames[0];
            assert_eq!(*tag, position as u64);
            assert_eq!(payload, &tampered, "reassembly must not mask the flip");
            assert!(
                codec::decode_request(payload).is_err(),
                "bit {bit} of byte {position} flipped, chunked at {chunk_size}, still decoded"
            );
        }
    }
}

#[test]
fn version_bump_with_resealed_checksum_is_refused_as_unsupported() {
    let mut future = codec::encode_requests(&representative_requests()).to_vec();
    future[9] = (WIRE_VERSION + 1) as u8; // version u16 BE at offset 8..10
    reseal(&mut future);
    assert_eq!(
        codec::decode_request(&future).unwrap_err(),
        WireCodecError::UnsupportedVersion(WIRE_VERSION + 1)
    );

    let mut future = codec::encode_bye().to_vec();
    future[8] = 0xFF;
    future[9] = 0xFF;
    reseal(&mut future);
    assert_eq!(
        codec::decode_response(&future).unwrap_err(),
        WireCodecError::UnsupportedVersion(0xFFFF)
    );
}

#[test]
fn magic_mismatches_are_typed_and_directional() {
    let request = codec::encode_requests(&representative_requests());
    let response = codec::encode_responses(&representative_responses());
    // A request envelope is not response traffic and vice versa.
    assert_eq!(
        codec::decode_response(&request).unwrap_err(),
        WireCodecError::BadMagic
    );
    assert_eq!(
        codec::decode_request(&response).unwrap_err(),
        WireCodecError::BadMagic
    );
    assert_eq!(
        codec::decode_request(&[]).unwrap_err(),
        WireCodecError::Truncated
    );
    let mut alien = request.to_vec();
    alien[..8].copy_from_slice(b"NOTSERVE");
    reseal(&mut alien);
    assert_eq!(
        codec::decode_request(&alien).unwrap_err(),
        WireCodecError::BadMagic
    );
}

#[test]
fn resealed_domain_violations_are_corrupt_not_accepted() {
    // A checksum-valid envelope whose fields leave their domain must still
    // be refused: the seal authenticates transport, the range checks
    // authenticate semantics.
    let single = |request: Request| codec::encode_requests(&[request]).to_vec();
    let base = single(Request::Plan(PlanRequest {
        model: ModelId::EcgArrhythmia,
        context: WireContext::of(WireLink::WiR),
        objective: Objective::LeafEnergy,
    }));
    // Payload starts after magic(8)+version(2)+kind(1)+count(2) = 13; the
    // plan item is `kind·model·objective·link·tech·site·flags·f64·f64`.
    let corrupt = |position: usize, value: u8| {
        let mut blob = base.clone();
        blob[position] = value;
        reseal(&mut blob);
        codec::decode_request(&blob).unwrap_err()
    };
    assert!(
        matches!(corrupt(13, 9), WireCodecError::Corrupt(_)),
        "item kind"
    );
    assert!(
        matches!(corrupt(14, 5), WireCodecError::Corrupt(_)),
        "model id"
    );
    assert!(
        matches!(corrupt(15, 3), WireCodecError::Corrupt(_)),
        "objective"
    );
    assert!(
        matches!(corrupt(16, 7), WireCodecError::Corrupt(_)),
        "link kind"
    );
    assert!(
        matches!(corrupt(17, 1), WireCodecError::Corrupt(_)),
        "technology byte set on a default link"
    );
    assert!(
        matches!(corrupt(19, 2), WireCodecError::Corrupt(_)),
        "flags"
    );

    // Site-resolved link with out-of-range technology / site bytes.
    let site = single(Request::Plan(PlanRequest {
        model: ModelId::VitalsTrend,
        context: WireContext::of(WireLink::Site(RadioTechnology::Ble, BodySite::Wrist)),
        objective: Objective::Latency,
    }));
    for (position, value) in [(17usize, 4u8), (18, 9)] {
        let mut blob = site.clone();
        blob[position] = value;
        reseal(&mut blob);
        assert!(
            matches!(
                codec::decode_request(&blob).unwrap_err(),
                WireCodecError::Corrupt(_)
            ),
            "byte {position} = {value} accepted on a site link"
        );
    }

    // Non-finite continuous fields: a NaN energy-per-bit override.
    let mut nan = base.clone();
    nan[20..28].copy_from_slice(&f64::NAN.to_bits().to_be_bytes());
    reseal(&mut nan);
    assert!(matches!(
        codec::decode_request(&nan).unwrap_err(),
        WireCodecError::Corrupt(_)
    ));

    // A projection rate of zero is meaningless and refused.
    let mut zero_rate = single(Request::Projection(ProjectionRequest { rate_bps: 8.0 }));
    zero_rate[14..22].copy_from_slice(&0.0f64.to_bits().to_be_bytes());
    reseal(&mut zero_rate);
    assert!(matches!(
        codec::decode_request(&zero_rate).unwrap_err(),
        WireCodecError::Corrupt(_)
    ));

    // Oversized batch count (count u16 at offset 11..13).
    let mut huge = base.clone();
    huge[11..13].copy_from_slice(&((MAX_BATCH as u16) + 1).to_be_bytes());
    reseal(&mut huge);
    assert!(matches!(
        codec::decode_request(&huge).unwrap_err(),
        WireCodecError::Corrupt(_)
    ));

    // Trailing bytes after a complete payload.
    let mut trailing = base.clone();
    let seal_at = trailing.len() - 8;
    trailing.splice(seal_at..seal_at, [0u8; 3]);
    reseal(&mut trailing);
    assert!(matches!(
        codec::decode_request(&trailing).unwrap_err(),
        WireCodecError::Corrupt(_)
    ));

    // A shutdown envelope claiming items.
    let mut shutdown = codec::encode_shutdown().to_vec();
    shutdown[11..13].copy_from_slice(&2u16.to_be_bytes());
    reseal(&mut shutdown);
    assert!(matches!(
        codec::decode_request(&shutdown).unwrap_err(),
        WireCodecError::Corrupt(_)
    ));
}

#[test]
fn quantize_f64_is_idempotent_and_order_preserving() {
    let values = [0.0, 1e-12, 37.5, 1.0e6, 2.4e9, f64::MAX];
    for value in values {
        let quantized = quantize_f64(value);
        assert_eq!(quantize_f64(quantized), quantized, "idempotence at {value}");
        assert!(quantized <= value, "quantization truncates toward zero");
        assert!((value - quantized).abs() <= value.abs() * 5e-7);
    }
    // Two values in the same quantum collapse to one representative.
    assert_eq!(quantize_f64(1.0e6), quantize_f64(1.0e6 * (1.0 + 1e-12)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random well-formed plan queries round-trip exactly (floats compared
    /// through `PartialEq`, which is bit-exact for finite values).
    #[test]
    fn random_plan_requests_roundtrip(
        model in 0usize..5,
        objective in 0usize..3,
        link in 0usize..4,
        site in 0usize..9,
        epb in 0.0f64..1e4,
        goodput in 0.0f64..1e9,
        quantize in any::<bool>(),
    ) {
        let link = match link {
            0 => WireLink::WiR,
            1 => WireLink::Ble,
            2 => WireLink::Site(RadioTechnology::WiR, BodySite::ALL[site]),
            _ => WireLink::Site(RadioTechnology::Nfmi, BodySite::ALL[site]),
        };
        let mut context = WireContext::of(link)
            .with_energy_per_bit_pj(epb)
            .with_goodput_bps(goodput);
        if !quantize {
            context = context.without_quantization();
        }
        let request = Request::Plan(PlanRequest {
            model: ModelId::ALL[model],
            context,
            objective: OBJECTIVES[objective],
        });
        let decoded = codec::decode_request(&codec::encode_requests(&[request]));
        prop_assert_eq!(decoded, Ok(RequestEnvelope::Queries(vec![request])));
    }

    /// Arbitrary garbage of plausible envelope length never panics and never
    /// decodes: the chance of minting a valid FNV seal by accident is 2⁻⁶⁴.
    #[test]
    fn random_garbage_never_decodes(seed in 0u64..u64::MAX, len in 0usize..256) {
        let mut state = seed | 1;
        let garbage: Vec<u8> = (0..len)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 56) as u8
            })
            .collect();
        prop_assert!(codec::decode_request(&garbage).is_err());
        prop_assert!(codec::decode_response(&garbage).is_err());
    }
}
