//! End-to-end determinism of the search layer (ISSUE 10 satellite):
//! random grids × strategies × `SweepRunner` widths × shard layouts produce
//! a byte-identical frontier, checkpoint and per-evaluation fleet state,
//! and a search killed after `k` evaluations (the deterministic
//! `run_with_budget` stand-in) resumes to the identical frontier without
//! re-folding completed evaluations.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use hidwa_core::fleet::driver::{DriverFleetSpec, FleetDriver, InProcessExecutor};
use hidwa_core::fleet::placement::{ChurnSpec, PolicyKind};
use hidwa_core::partition::Objective;
use hidwa_core::population::ChurnModel;
use hidwa_core::search::{ObjectiveSpace, SearchDriver, SearchRun, SearchSpec, SearchStrategy};
use hidwa_core::sweep::SweepRunner;
use hidwa_netsim::mac::MacPolicy;
use hidwa_phy::RadioTechnology;
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch root per invocation, removed by `Scratch::drop`.
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!(
            "hidwa-search-det-{}-{tag}-{case}",
            std::process::id()
        )))
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A small churned base fleet, so the objective and policy axes are live.
fn base_spec(bodies: usize, seed: u64, horizon_ms: u64) -> DriverFleetSpec {
    DriverFleetSpec::new(bodies)
        .with_base_seed(seed)
        .with_horizon(hidwa_units::TimeSpan::from_seconds(
            horizon_ms as f64 / 1000.0,
        ))
        .with_top_k(3)
        .with_churn(
            ChurnSpec::new(
                ChurnModel::with_rate(0.4).with_epochs(3),
                PolicyKind::StaticAtAdmission,
            )
            .with_hysteresis_threshold(0.1),
        )
}

/// Builds a grid from the proptest booleans: each true doubles one axis, so
/// the grid has 1–8 points.
fn space(two_macs: bool, two_radios: bool, two_policies: bool) -> ObjectiveSpace {
    let mut space = ObjectiveSpace::new()
        .with_objective_axis(&[Objective::LeafEnergy, Objective::EnergyDelayProduct]);
    if two_macs {
        space = space.with_mac_axis(&[MacPolicy::Polling, MacPolicy::Tdma]);
    }
    if two_radios {
        space = space.with_radio_axis(&[RadioTechnology::WiR, RadioTechnology::Ble]);
    }
    if two_policies {
        space =
            space.with_churn_policy_axis(&[PolicyKind::StaticAtAdmission, PolicyKind::Hysteresis]);
    }
    space
}

/// Runs the search in a fresh root and returns the run plus the sealed
/// checkpoint bytes it left behind.
fn run_in(
    driver: &SearchDriver,
    runner: &SweepRunner,
    threads: usize,
    root: &Path,
) -> (SearchRun, Vec<u8>) {
    let executor = InProcessExecutor::with_threads(threads);
    let run = driver.run(runner, &executor, root).expect("search runs");
    let bytes = std::fs::read(SearchDriver::checkpoint_path(root)).expect("checkpoint file exists");
    (run, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The frontier, every evaluation outcome (including its fleet-state
    /// fingerprint) and the final checkpoint bytes are identical across
    /// runner widths, per-evaluation shard counts and worker thread
    /// counts, for both strategies.
    #[test]
    fn search_is_identical_across_execution_layouts(
        bodies in 2usize..5,
        seed in 0u64..1000,
        horizon_ms in 40u64..70,
        width in 2usize..4,
        shards in 2usize..4,
        two_macs in any::<bool>(),
        two_radios in any::<bool>(),
        two_policies in any::<bool>(),
        descent in any::<bool>(),
    ) {
        let strategy = if descent {
            SearchStrategy::CoordinateDescent { max_rounds: 2 }
        } else {
            SearchStrategy::ExhaustiveGrid
        };
        let spec = SearchSpec::new(
            base_spec(bodies, seed, horizon_ms),
            space(two_macs, two_radios, two_policies),
        );
        let serial_root = Scratch::new("serial");
        let (serial, serial_bytes) = run_in(
            &SearchDriver::new(spec.clone(), strategy),
            &SweepRunner::serial(),
            1,
            serial_root.path(),
        );
        prop_assert!(serial.complete());
        prop_assert_eq!(serial.folds(), serial.evaluations().len());
        prop_assert!(!serial.frontier().is_empty());

        // Wider runner, more worker threads per evaluation.
        let wide_root = Scratch::new("wide");
        let (wide, wide_bytes) = run_in(
            &SearchDriver::new(spec.clone(), strategy),
            &SweepRunner::with_threads(width),
            2,
            wide_root.path(),
        );
        prop_assert_eq!(serial.evaluations(), wide.evaluations());
        prop_assert_eq!(serial.frontier(), wide.frontier());
        prop_assert_eq!(&serial_bytes, &wide_bytes);

        // Different per-evaluation shard layout: identity excludes it, so
        // even the checkpoint bytes must match.
        let sharded_root = Scratch::new("sharded");
        let (sharded, sharded_bytes) = run_in(
            &SearchDriver::new(spec.clone().with_shards(shards), strategy),
            &SweepRunner::with_threads(width),
            1,
            sharded_root.path(),
        );
        prop_assert_eq!(serial.evaluations(), sharded.evaluations());
        prop_assert_eq!(serial.frontier(), sharded.frontier());
        prop_assert_eq!(&serial_bytes, &sharded_bytes);
    }

    /// Kill-after-k: a budgeted run stops early with a partial index, and
    /// an unbudgeted run on the same root replays the completed
    /// evaluations as cache hits, folds only the remainder, and lands on
    /// the identical frontier and checkpoint bytes.
    #[test]
    fn killed_search_resumes_to_identical_frontier(
        bodies in 2usize..5,
        seed in 0u64..1000,
        horizon_ms in 40u64..70,
        budget in 0usize..6,
        two_macs in any::<bool>(),
        two_radios in any::<bool>(),
        descent in any::<bool>(),
    ) {
        let strategy = if descent {
            SearchStrategy::CoordinateDescent { max_rounds: 2 }
        } else {
            SearchStrategy::ExhaustiveGrid
        };
        let spec = SearchSpec::new(
            base_spec(bodies, seed, horizon_ms),
            space(two_macs, two_radios, false),
        );
        let baseline_root = Scratch::new("baseline");
        let (baseline, baseline_bytes) = run_in(
            &SearchDriver::new(spec.clone(), strategy),
            &SweepRunner::serial(),
            1,
            baseline_root.path(),
        );

        let killed_root = Scratch::new("killed");
        let driver = SearchDriver::new(spec, strategy);
        let runner = SweepRunner::serial();
        let executor = InProcessExecutor::serial();
        let partial = driver
            .run_with_budget(&runner, &executor, killed_root.path(), Some(budget))
            .expect("budgeted search runs");
        prop_assert_eq!(partial.folds(), budget.min(baseline.folds()));
        prop_assert_eq!(partial.complete(), budget >= baseline.folds());

        let resumed = driver
            .run(&runner, &executor, killed_root.path())
            .expect("resumed search runs");
        prop_assert!(resumed.complete());
        prop_assert_eq!(resumed.evaluations(), baseline.evaluations());
        prop_assert_eq!(resumed.frontier(), baseline.frontier());
        prop_assert_eq!(resumed.resumed(), partial.folds());
        prop_assert_eq!(resumed.folds() + partial.folds(), baseline.folds());
        let resumed_bytes = std::fs::read(SearchDriver::checkpoint_path(killed_root.path()))
            .expect("checkpoint file exists");
        prop_assert_eq!(&resumed_bytes, &baseline_bytes);
    }
}

/// Non-property anchor over the full five-axis paper grid: the in-process
/// reference fold, the one-shard driver and the three-shard driver agree
/// on every outcome, and the *merged fleet-state bytes* of a grid point
/// are literally byte-identical across shard layouts (not merely equal
/// fingerprints).
#[test]
fn full_grid_anchor_is_layout_invariant() {
    let spec = SearchSpec::new(base_spec(3, 7, 30), ObjectiveSpace::paper_default());
    assert_eq!(spec.space().len(), 32);
    let runner = SweepRunner::serial();
    let executor = InProcessExecutor::serial();

    let direct_root = Scratch::new("anchor-direct");
    let sharded_root = Scratch::new("anchor-sharded");
    for index in 0..spec.space().len() {
        let evaluation = spec.evaluation(index);
        let reference = evaluation.run(&runner);
        let one = evaluation
            .run_with_driver(1, &executor, direct_root.path())
            .expect("one-shard evaluation");
        let three = evaluation
            .run_with_driver(3, &executor, sharded_root.path())
            .expect("three-shard evaluation");
        assert_eq!(reference, one, "point {index} differs in-process vs driver");
        assert_eq!(one, three, "point {index} differs across shard layouts");
    }

    // Byte-level witness for one point: the merged checkpoint blobs of the
    // two layouts are identical, not just their digests.
    let evaluation = spec.evaluation(17);
    let merged_bytes = |shards: usize, root: &Path| -> Vec<u8> {
        let driver = FleetDriver::new(evaluation.spec().clone(), shards);
        let transport = driver.spool_in(root).expect("spool opens");
        driver
            .run(&executor, &transport)
            .expect("fleet driver runs")
            .state_bytes()
    };
    assert_eq!(
        merged_bytes(1, direct_root.path()),
        merged_bytes(3, sharded_root.path())
    );
}
