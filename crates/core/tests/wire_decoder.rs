//! Equivalence of the incremental [`FrameDecoder`] and the blocking
//! [`read_frame`] — the property the reactor's correctness rests on.
//!
//! A readiness-driven connection sees the same byte stream a blocking one
//! does, just cut into arbitrary chunks by the kernel.  These tests deliver
//! identical streams both ways — whole to `read_frame`, randomly chunked to
//! `FrameDecoder::feed` — and assert byte-identical frames and identical
//! typed errors, including the cap-before-allocate `Oversized` rejection
//! and its sticky replay.

use hidwa_core::wire::{read_frame, write_frame, FrameDecoder, FrameError};
use proptest::prelude::*;

/// Frames drained from a stream plus the `Oversized` payload/cap pair if
/// one was hit (`None` = clean EOF at a frame boundary).
type DrainOutcome = (Vec<(u64, Vec<u8>)>, Option<(u64, u64)>);

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// Drains `wire` through repeated blocking `read_frame` calls, returning
/// the frames plus the `Oversized` payload/cap pair if one was hit
/// (`None` = clean EOF at a frame boundary).
fn blocking_reference(wire: &[u8], cap: u64) -> DrainOutcome {
    let mut reader = wire;
    let mut frames = Vec::new();
    loop {
        match read_frame(&mut reader, cap) {
            Ok(frame) => frames.push(frame),
            Err(FrameError::Oversized { len, cap }) => return (frames, Some((len, cap))),
            Err(FrameError::Io(_)) => return (frames, None),
        }
    }
}

/// Drains `wire` through `FrameDecoder::feed` in pseudo-random chunks of
/// 1..=`max_chunk` bytes, asserting that an `Oversized` error is sticky.
fn chunked_decode(wire: &[u8], cap: u64, mut seed: u64, max_chunk: usize) -> DrainOutcome {
    let mut decoder = FrameDecoder::new(cap);
    let mut frames = Vec::new();
    let mut offset = 0;
    while offset < wire.len() {
        let take = 1 + (lcg(&mut seed) >> 33) as usize % max_chunk;
        let end = (offset + take).min(wire.len());
        match decoder.feed(&wire[offset..end], &mut frames) {
            Ok(()) => offset = end,
            Err(FrameError::Oversized { len, cap }) => {
                // Sticky: any later feed replays the violation and
                // completes no further frames.
                let before = frames.len();
                assert!(matches!(
                    decoder.feed(&[0u8; 4], &mut frames),
                    Err(FrameError::Oversized { .. })
                ));
                assert_eq!(frames.len(), before);
                return (frames, Some((len, cap)));
            }
            Err(FrameError::Io(_)) => unreachable!("feed never does I/O"),
        }
    }
    (frames, None)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random frame sequences over random chunk boundaries: the decoder
    /// reproduces the blocking reader's frames byte-for-byte.
    #[test]
    fn chunked_decoding_matches_blocking_reads(
        payload_lens in prop::collection::vec(0usize..600, 0..7),
        tag_seed in 0u64..u64::MAX,
        chunk_seed in 0u64..u64::MAX,
        max_chunk in 1usize..64,
    ) {
        let mut state = tag_seed;
        let mut wire: Vec<u8> = Vec::new();
        for &len in &payload_lens {
            let tag = lcg(&mut state);
            let payload: Vec<u8> = (0..len).map(|_| (lcg(&mut state) >> 56) as u8).collect();
            write_frame(&mut wire, tag, &payload).unwrap();
        }
        let (expected, expected_error) = blocking_reference(&wire, 1024);
        let (decoded, decoded_error) = chunked_decode(&wire, 1024, chunk_seed, max_chunk);
        prop_assert_eq!(expected_error, None);
        prop_assert_eq!(decoded_error, None);
        prop_assert_eq!(&decoded, &expected);
        prop_assert_eq!(decoded.len(), payload_lens.len());
    }

    /// A stream whose N-th frame lies about its length: both readers
    /// return the same earlier frames and the same typed `Oversized`.
    #[test]
    fn oversized_frames_error_identically(
        good_frames in 0usize..4,
        lie in 1025u64..u64::MAX,
        chunk_seed in 0u64..u64::MAX,
        max_chunk in 1usize..48,
    ) {
        let mut wire: Vec<u8> = Vec::new();
        for index in 0..good_frames {
            write_frame(&mut wire, index as u64, &[0x5A; 33]).unwrap();
        }
        // A hand-built header claiming `lie` payload bytes (never sent).
        wire.extend_from_slice(&77u64.to_be_bytes());
        wire.extend_from_slice(&lie.to_be_bytes());
        let (expected, expected_error) = blocking_reference(&wire, 1024);
        let (decoded, decoded_error) = chunked_decode(&wire, 1024, chunk_seed, max_chunk);
        prop_assert_eq!(expected_error, Some((lie, 1024)));
        prop_assert_eq!(decoded_error, Some((lie, 1024)));
        prop_assert_eq!(&decoded, &expected);
        prop_assert_eq!(decoded.len(), good_frames);
    }
}

#[test]
fn byte_at_a_time_delivery_reassembles_exactly() {
    let mut wire: Vec<u8> = Vec::new();
    write_frame(&mut wire, 1, b"first").unwrap();
    write_frame(&mut wire, u64::MAX, b"").unwrap();
    write_frame(&mut wire, 3, &[0xCD; 257]).unwrap();
    let mut decoder = FrameDecoder::new(1024);
    let mut frames = Vec::new();
    for byte in &wire {
        decoder
            .feed(std::slice::from_ref(byte), &mut frames)
            .unwrap();
    }
    assert_eq!(
        frames,
        vec![
            (1, b"first".to_vec()),
            (u64::MAX, Vec::new()),
            (3, vec![0xCD; 257]),
        ]
    );
    assert!(!decoder.mid_frame());
}

#[test]
fn one_chunk_with_many_frames_completes_them_in_order() {
    let mut wire: Vec<u8> = Vec::new();
    for tag in 0..50u64 {
        write_frame(&mut wire, tag, &tag.to_be_bytes()).unwrap();
    }
    let mut decoder = FrameDecoder::new(64);
    let mut frames = Vec::new();
    decoder.feed(&wire, &mut frames).unwrap();
    assert_eq!(frames.len(), 50);
    for (index, (tag, payload)) in frames.iter().enumerate() {
        assert_eq!(*tag, index as u64);
        assert_eq!(payload.as_slice(), &(index as u64).to_be_bytes());
    }
}

#[test]
fn mid_frame_tracks_partial_headers_and_partial_payloads() {
    let mut wire: Vec<u8> = Vec::new();
    write_frame(&mut wire, 9, b"stalled").unwrap();
    let mut decoder = FrameDecoder::new(1024);
    let mut frames = Vec::new();
    assert!(!decoder.mid_frame());
    // Half a header: mid-frame (the slow-loris signature).
    decoder.feed(&wire[..8], &mut frames).unwrap();
    assert!(decoder.mid_frame());
    // Full header, partial payload: still mid-frame.
    decoder.feed(&wire[8..18], &mut frames).unwrap();
    assert!(decoder.mid_frame());
    assert!(frames.is_empty());
    // Completion clears it.
    decoder.feed(&wire[18..], &mut frames).unwrap();
    assert!(!decoder.mid_frame());
    assert_eq!(frames, vec![(9, b"stalled".to_vec())]);
}
