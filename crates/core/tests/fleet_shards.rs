//! Property tests for the sharded fleet merge algebra: any partition of the
//! body range into contiguous shards, folded independently at any thread
//! width and chunk size, merges — in any grouping — into the byte-identical
//! single-stream fold.  This is the ISSUE 4 tentpole contract.

use hidwa_core::fleet::{FleetAggregator, FleetCheckpoint, FleetConfig, ShardError, ShardPlan};
use hidwa_core::population::PopulationModel;
use hidwa_core::sweep::SweepRunner;
use hidwa_units::TimeSpan;
use proptest::prelude::*;

/// Byte-level fingerprint of an aggregator's full state (via the checkpoint
/// codec), so "identical" below means identical limbs, buckets and low bits —
/// not merely `PartialEq` on the finished report.
fn state_bytes(config: &FleetConfig, aggregator: &FleetAggregator) -> Vec<u8> {
    FleetCheckpoint::capture(config, aggregator, config.bodies())
        .save()
        .to_vec()
}

fn small_fleet(bodies: usize, base_seed: u64) -> FleetConfig {
    FleetConfig::new(bodies)
        .with_population(PopulationModel::mixed_default())
        .with_base_seed(base_seed)
        .with_horizon(TimeSpan::from_seconds(0.5))
        .with_top_k(4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random fleets, shard counts, chunk sizes and thread widths: the
    /// shard-merged aggregator state is byte-identical to the single-stream
    /// fold, and the finished reports compare equal.
    #[test]
    fn sharded_fold_matches_single_stream(
        bodies in 1usize..40,
        shards in 1usize..7,
        chunk in 1usize..9,
        width in 1usize..5,
        base_seed in 0u64..1_000_000,
    ) {
        let config = small_fleet(bodies, base_seed).with_chunk_size(chunk);
        let single = config.run(&SweepRunner::serial());
        let single_state = state_bytes(&config, &ShardPlan::split(config.clone(), 1).fold(&SweepRunner::serial()));
        let plan = ShardPlan::split(config.clone(), shards);
        // Shard ranges partition 0..bodies contiguously.
        let mut cursor = 0;
        for shard in 0..plan.shard_count() {
            let range = plan.range(shard);
            prop_assert_eq!(range.start, cursor);
            cursor = range.end;
        }
        prop_assert_eq!(cursor, bodies);
        let merged = plan.fold(&SweepRunner::with_threads(width));
        prop_assert_eq!(&state_bytes(&config, &merged), &single_state);
        prop_assert_eq!(merged.finish(), single);
    }

    /// Ragged explicit layouts — including empty shards — merge to the same
    /// bytes as the single stream.
    #[test]
    fn ragged_layouts_match_single_stream(
        bodies in 1usize..30,
        cut_seed in 0u64..10_000,
        cuts in prop::collection::vec(0usize..30, 0..4),
    ) {
        let mut boundaries: Vec<usize> = cuts.iter().map(|&c| c % (bodies + 1)).collect();
        boundaries.sort_unstable();
        let config = small_fleet(bodies, cut_seed);
        let plan = ShardPlan::from_boundaries(config.clone(), &boundaries).expect("sorted, in range");
        prop_assert_eq!(plan.shard_count(), boundaries.len() + 1);
        let merged = plan.fold(&SweepRunner::serial());
        let single = ShardPlan::split(config.clone(), 1).fold(&SweepRunner::serial());
        prop_assert_eq!(state_bytes(&config, &merged), state_bytes(&config, &single));
    }

    /// The merge is associative and commutative over ≥3 partial aggregators,
    /// and the empty aggregator is its identity.
    #[test]
    fn merge_is_an_abelian_monoid(
        bodies in 3usize..24,
        cut_a in 1usize..23,
        cut_b in 1usize..23,
        base_seed in 0u64..100_000,
    ) {
        let cut_a = cut_a % bodies;
        let cut_b = cut_b % bodies;
        let (lo, hi) = (cut_a.min(cut_b), cut_a.max(cut_b));
        let config = small_fleet(bodies, base_seed);
        let plan = ShardPlan::from_boundaries(config.clone(), &[lo, hi]).expect("sorted");
        let serial = SweepRunner::serial();
        let p1 = plan.shard(0).fold(&serial);
        let p2 = plan.shard(1).fold(&serial);
        let p3 = plan.shard(2).fold(&serial);

        // (p1 ⊕ p2) ⊕ p3
        let mut left = p1.clone();
        left.merge(p2.clone());
        left.merge(p3.clone());
        // p1 ⊕ (p2 ⊕ p3)
        let mut right_tail = p2.clone();
        right_tail.merge(p3.clone());
        let mut right = p1.clone();
        right.merge(right_tail);
        prop_assert_eq!(state_bytes(&config, &left), state_bytes(&config, &right));

        // Commutativity: p3 ⊕ p1 ⊕ p2 gives the same bytes.
        let mut shuffled = p3;
        shuffled.merge(p1);
        shuffled.merge(p2);
        prop_assert_eq!(state_bytes(&config, &shuffled), state_bytes(&config, &left));

        // Identity: merging the empty aggregator changes nothing.
        let mut with_identity = left.clone();
        with_identity.merge(FleetAggregator::new(config.horizon(), config.top_k()));
        prop_assert_eq!(state_bytes(&config, &with_identity), state_bytes(&config, &left));
    }
}

/// The acceptance-criteria anchor: a 1000-body heterogeneous fleet, three
/// distinct shard layouts plus a mid-stream checkpoint/resume, all
/// byte-identical to the single-stream fold.
#[test]
fn thousand_body_heterogeneous_fleet_is_layout_invariant() {
    let config = FleetConfig::new(1000)
        .with_population(PopulationModel::mixed_default())
        .with_base_seed(0xD15EA5E)
        .with_horizon(TimeSpan::from_seconds(0.5));
    let serial = SweepRunner::serial();
    let single = config.run(&serial);
    let single_state = config.run_until(&serial, 1000).save().to_vec();

    // Three distinct layouts: even 4-way, even 7-way (ragged tail), and an
    // explicit lopsided partition.
    let layouts = [
        ShardPlan::split(config.clone(), 4),
        ShardPlan::split(config.clone(), 7),
        ShardPlan::from_boundaries(config.clone(), &[1, 333, 998]).expect("sorted"),
    ];
    for (index, plan) in layouts.iter().enumerate() {
        let merged = plan.fold(&SweepRunner::with_threads(1 + index));
        let merged_state = FleetCheckpoint::capture(&config, &merged, 1000)
            .save()
            .to_vec();
        assert_eq!(merged_state, single_state, "layout {index} diverged");
        assert_eq!(merged.finish(), single, "layout {index} report diverged");
    }

    // Mid-stream interruption: checkpoint at body 500, serialize, reload,
    // resume — the finished report and final state match both paths above.
    let checkpoint_bytes = config.run_until(&serial, 500).save();
    let restored = FleetCheckpoint::load(&checkpoint_bytes).expect("valid checkpoint");
    assert_eq!(restored.next_body(), 500);
    assert_eq!(restored.bodies_ingested(), 500);
    let resumed = config.resume(&serial, restored).expect("same config");
    assert_eq!(resumed, single);
}

/// Shard runners are pure functions of (config, range): two independently
/// constructed runners for the same shard — as on two different machines —
/// produce byte-identical partial checkpoints, and the coordinator merge of
/// shipped checkpoints equals the single-stream report.
#[test]
fn shard_checkpoints_merge_across_machines() {
    let config = small_fleet(60, 77);
    let serial = SweepRunner::serial();
    let plan = ShardPlan::split(config.clone(), 3);

    // "Machine A" and "machine B" build the same shard independently.
    let a = plan.shard(1).checkpoint(&serial).save().to_vec();
    let b = ShardPlan::split(config.clone(), 3)
        .shard(1)
        .checkpoint(&serial)
        .save()
        .to_vec();
    assert_eq!(a, b);

    // Ship all three partials (as bytes) and merge on the coordinator.
    let parts: Vec<FleetCheckpoint> = (0..3)
        .map(|i| {
            let blob = plan.shard(i).checkpoint(&serial).save();
            FleetCheckpoint::load(&blob).expect("shipped blob loads")
        })
        .collect();
    let merged = plan.merge_checkpoints(parts).expect("full cover");
    assert_eq!(merged, config.run(&serial));

    // A missing shard is caught, not silently under-reported.
    let shard_part = |i: usize| {
        FleetCheckpoint::load(&plan.shard(i).checkpoint(&serial).save()).expect("shard blob loads")
    };
    assert!(plan.merge_checkpoints((0..2).map(shard_part)).is_err());

    // A duplicated shard standing in for a missing one has the right total
    // body count but the wrong coverage — also rejected.
    assert!(plan
        .merge_checkpoints([shard_part(0), shard_part(1), shard_part(1)])
        .is_err());

    // Any order of the correct partials is fine (the merge is commutative).
    let reordered = plan
        .merge_checkpoints([shard_part(2), shard_part(0), shard_part(1)])
        .expect("full cover in any order");
    assert_eq!(reordered, config.run(&serial));

    // A shard partial is not a resumable prefix: resume must refuse it
    // rather than silently skip the bodies the shard never ingested.
    assert_eq!(
        config.resume(&serial, shard_part(1)).unwrap_err(),
        hidwa_core::fleet::CheckpointError::NotResumable
    );
}

/// ISSUE 9 churn determinism anchor: a churned heterogeneous fleet —
/// arrivals, departures, duty cycles and online placement decisions — is
/// byte-identical across thread widths 1 vs 4, across shard layouts, and
/// across a mid-stream save/resume.
#[test]
fn churned_fleet_is_width_and_layout_invariant() {
    use hidwa_core::fleet::{ChurnSpec, PolicyKind};
    use hidwa_core::population::ChurnModel;

    for policy in [
        PolicyKind::StaticAtAdmission,
        PolicyKind::ReoptimizeOnChange,
        PolicyKind::Hysteresis,
    ] {
        let config = small_fleet(120, 0xC0FFEE).with_churn(ChurnSpec::new(
            ChurnModel::with_rate(0.4).with_link_fade(0.8),
            policy,
        ));
        let serial = SweepRunner::serial();
        let single = config.run(&serial);
        let single_state = config.run_until(&serial, 120).save().to_vec();

        // Thread width 1 vs 4 (and an odd chunk size): byte-identical state.
        let wide_state = config
            .clone()
            .with_chunk_size(7)
            .run_until(&SweepRunner::with_threads(4), 120)
            .save()
            .to_vec();
        assert_eq!(wide_state, single_state, "{policy}: width diverged");

        // Shard layouts: even 3-way and a lopsided explicit partition.
        for (index, plan) in [
            ShardPlan::split(config.clone(), 3),
            ShardPlan::from_boundaries(config.clone(), &[1, 40, 119]).expect("sorted"),
        ]
        .iter()
        .enumerate()
        {
            let merged = plan.fold(&SweepRunner::with_threads(2));
            let merged_state = state_bytes(&config, &merged);
            assert_eq!(
                merged_state, single_state,
                "{policy}: layout {index} diverged"
            );
            assert_eq!(
                merged.finish(),
                single,
                "{policy}: layout {index} report diverged"
            );
        }

        // Mid-stream save/resume reproduces the uninterrupted fold.
        let restored =
            FleetCheckpoint::load(&config.run_until(&serial, 60).save()).expect("valid blob");
        let resumed = config.resume(&serial, restored).expect("same config");
        assert_eq!(resumed, single, "{policy}: mid-stream resume diverged");
        assert_eq!(resumed.migrations(), single.migrations());
    }
}

#[test]
fn invalid_layouts_are_rejected_with_typed_errors() {
    let config = small_fleet(10, 1);
    assert_eq!(
        ShardPlan::from_boundaries(config.clone(), &[7, 3]).unwrap_err(),
        ShardError::UnsortedBoundaries
    );
    assert_eq!(
        ShardPlan::from_boundaries(config.clone(), &[11]).unwrap_err(),
        ShardError::BoundaryOutOfRange {
            boundary: 11,
            bodies: 10
        }
    );
    // Clamps and degenerate splits still partition correctly.
    let plan = ShardPlan::split(config.clone(), 0);
    assert_eq!(plan.shard_count(), 1);
    assert_eq!(plan.range(0), 0..10);
    let wide = ShardPlan::split(config, 25);
    assert_eq!(wide.shard_count(), 25);
    let covered: usize = (0..25).map(|i| wide.range(i).len()).sum();
    assert_eq!(covered, 10);
}
