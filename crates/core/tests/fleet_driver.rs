//! Fault-injection and identity tests for the multi-process fleet driver —
//! the ISSUE 5 tentpole contract, exercised in-process so every fault is
//! deterministic: corrupt, truncated, stale and missing blobs are detected
//! and re-run; a killed fold leaves nothing a reader can see; a crashed
//! coordinator resumes from surviving blobs; and through every recovery the
//! merged result stays **byte-identical** to the single-stream fold.
//!
//! The same contracts are asserted against real killed worker *processes*
//! in `crates/bench/tests/driver_process.rs`.

use hidwa_core::fleet::driver::transport::{SocketHub, SocketPublisher, SpoolTransport, Transport};
use hidwa_core::fleet::driver::{
    DriverError, DriverFleetSpec, FleetDriver, InProcessExecutor, PopulationSpec, ShardAssignment,
    ShardExecutor,
};
use hidwa_core::fleet::{FleetAggregator, FleetCheckpoint};
use hidwa_core::sweep::SweepRunner;
use hidwa_units::TimeSpan;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A fresh spool directory under the OS temp dir, unique per test.
fn spool_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hidwa-driver-test-{tag}-{}", std::process::id()))
}

fn small_spec(bodies: usize, base_seed: u64) -> DriverFleetSpec {
    DriverFleetSpec::new(bodies)
        .with_base_seed(base_seed)
        .with_horizon(TimeSpan::from_seconds(0.5))
        .with_top_k(4)
        .with_population(PopulationSpec::Mixed)
}

/// The single-stream fold's full aggregator state bytes for `spec`.
fn single_stream_state(spec: &DriverFleetSpec) -> Vec<u8> {
    let config = spec.to_config();
    config
        .run_until(&SweepRunner::serial(), spec.bodies())
        .save()
        .to_vec()
}

/// The driver result's full state bytes: merge the published blobs exactly
/// as a coordinator does and serialize the merged aggregator.
fn merged_state(spec: &DriverFleetSpec, transport: &dyn Transport, shards: usize) -> Vec<u8> {
    let config = spec.to_config();
    let mut merged = FleetAggregator::new(config.horizon(), config.top_k());
    for shard in 0..shards {
        let bytes = transport
            .fetch(shard)
            .expect("fetch blob")
            .expect("blob present after a completed run");
        let checkpoint = FleetCheckpoint::load(&bytes).expect("published blob loads");
        merged.merge(checkpoint.into_parts().0);
    }
    FleetCheckpoint::capture(&config, &merged, spec.bodies())
        .save()
        .to_vec()
}

#[test]
fn partial_spool_writes_are_invisible_to_readers() {
    let dir = spool_dir("atomic");
    let spool = SpoolTransport::create(&dir).expect("create spool");
    // A worker killed mid-write leaves exactly this: a temp file.
    let temp = spool.write_partial(3, b"half a checkpoint").expect("temp");
    assert!(temp.exists());
    assert!(
        spool.fetch(3).expect("fetch").is_none(),
        "a partial write must never be visible as a published blob"
    );
    // The atomic publish replaces nothing-visible with everything-visible.
    spool.publish(3, b"the whole checkpoint").expect("publish");
    assert_eq!(
        spool.fetch(3).expect("fetch").as_deref(),
        Some(&b"the whole checkpoint"[..])
    );
    // Discard is how the coordinator drops a rejected blob.
    spool.discard(3).expect("discard");
    assert!(spool.fetch(3).expect("fetch").is_none());
    spool.discard(3).expect("discarding a missing blob is fine");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_stale_and_foreign_blobs_are_detected_and_rerun() {
    let spec = small_spec(12, 77);
    let driver = FleetDriver::new(spec.clone(), 3);
    let dir = spool_dir("faults");
    let spool = driver.spool_in(&dir).expect("spool");
    let config = spec.to_config();

    // Shard 0: garbage bytes (not a checkpoint at all).
    spool.publish(0, b"definitely not HIDWAFLT").expect("seed");
    // Shard 1: a *valid* checkpoint of an empty fold — wrong body range for
    // the assignment, as a blob from an older layout would be.
    let empty = FleetAggregator::new(config.horizon(), config.top_k());
    let stale = FleetCheckpoint::capture(&config, &empty, driver.assignment(1).end).save();
    spool.publish(1, &stale).expect("seed");
    // Shard 2: a truncated prefix of a real blob.
    let real = FleetCheckpoint::capture(&config, &empty, 0).save();
    spool.publish(2, &real[..real.len() / 2]).expect("seed");

    let run = driver
        .run(&InProcessExecutor::serial(), &spool)
        .expect("driver recovers all three faults");
    assert_eq!(run.reused_shards(), 0, "no seeded blob was reusable");
    assert_eq!(run.total_attempts(), 3);
    assert!(
        run.recovered_faults() >= 3,
        "each bad blob should be recorded: {:?}",
        run.shards()
    );
    assert_eq!(
        merged_state(&spec, &spool, driver.shard_count()),
        single_stream_state(&spec),
        "recovery must not change the result"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// An executor standing in for killed workers: the chosen shard's first
/// attempt fails in the chosen mode, everything else folds normally.
struct FlakyExecutor {
    inner: InProcessExecutor,
    fail_shard: usize,
    /// 0 = worker dies, nothing published; 1 = worker "succeeds" but
    /// publishes nothing; 2 = worker publishes garbage bytes.
    mode: u8,
    executions: AtomicUsize,
}

impl FlakyExecutor {
    fn new(fail_shard: usize, mode: u8) -> Self {
        Self {
            inner: InProcessExecutor::serial(),
            fail_shard,
            mode,
            executions: AtomicUsize::new(0),
        }
    }
}

impl ShardExecutor for FlakyExecutor {
    fn execute(
        &self,
        spec: &DriverFleetSpec,
        shard: &ShardAssignment,
        attempt: usize,
        transport: &dyn Transport,
    ) -> Result<(), DriverError> {
        self.executions.fetch_add(1, Ordering::SeqCst);
        if shard.index == self.fail_shard && attempt == 0 {
            match self.mode {
                0 => {
                    return Err(DriverError::Worker {
                        shard: shard.index,
                        code: None,
                        stderr: "killed (injected)".to_string(),
                    })
                }
                1 => return Ok(()),
                _ => {
                    transport.publish(shard.index, b"garbage after a crash")?;
                    return Ok(());
                }
            }
        }
        self.inner.execute(spec, shard, attempt, transport)
    }
}

#[test]
fn killed_worker_is_detected_and_rerun() {
    for mode in 0u8..3 {
        let spec = small_spec(10, 500 + u64::from(mode));
        let driver = FleetDriver::with_boundaries(spec.clone(), &[2, 7]).expect("boundaries");
        let dir = spool_dir(&format!("kill-{mode}"));
        let spool = driver.spool_in(&dir).expect("spool");
        let executor = FlakyExecutor::new(1, mode);
        let run = driver.run(&executor, &spool).expect("driver recovers");
        assert_eq!(
            run.shards()[1].attempts,
            2,
            "failed shard re-ran (mode {mode})"
        );
        assert!(!run.shards()[1].recovered.is_empty());
        assert_eq!(run.shards()[0].attempts, 1);
        assert_eq!(run.shards()[2].attempts, 1);
        assert_eq!(
            merged_state(&spec, &spool, driver.shard_count()),
            single_stream_state(&spec)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// An executor that must never run — resumes must come from blobs alone.
struct PanicExecutor;

impl ShardExecutor for PanicExecutor {
    fn execute(
        &self,
        _spec: &DriverFleetSpec,
        _shard: &ShardAssignment,
        _attempt: usize,
        _transport: &dyn Transport,
    ) -> Result<(), DriverError> {
        panic!("resume must not re-fold completed shards");
    }
}

#[test]
fn crashed_coordinator_resumes_from_surviving_blobs() {
    let spec = small_spec(14, 900);
    let driver = FleetDriver::new(spec.clone(), 4);
    let dir = spool_dir("resume");
    let spool = driver.spool_in(&dir).expect("spool");

    // First coordinator completes, then "crashes" after the blobs landed.
    let first = driver
        .run(&InProcessExecutor::serial(), &spool)
        .expect("first run");
    assert_eq!(first.reused_shards(), 0);

    // A second coordinator over the same spool needs no folding at all.
    let resumed = driver.run(&PanicExecutor, &spool).expect("pure resume");
    assert_eq!(resumed.reused_shards(), driver.shard_count());
    assert_eq!(resumed.total_attempts(), 0);
    assert_eq!(resumed.report(), first.report());

    // Lose one blob: only that shard is re-folded.
    spool.discard(2).expect("lose shard 2");
    let executor = FlakyExecutor::new(usize::MAX, 0); // counts, never fails
    let partial = driver.run(&executor, &spool).expect("partial resume");
    assert_eq!(executor.executions.load(Ordering::SeqCst), 1);
    assert_eq!(partial.reused_shards(), driver.shard_count() - 1);
    assert_eq!(partial.report(), first.report());
    assert_eq!(
        merged_state(&spec, &spool, driver.shard_count()),
        single_stream_state(&spec)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// An executor that always fails, to exhaust the recovery budget.
struct AlwaysFail;

impl ShardExecutor for AlwaysFail {
    fn execute(
        &self,
        _spec: &DriverFleetSpec,
        shard: &ShardAssignment,
        _attempt: usize,
        _transport: &dyn Transport,
    ) -> Result<(), DriverError> {
        Err(DriverError::Worker {
            shard: shard.index,
            code: Some(1),
            stderr: "always fails".to_string(),
        })
    }
}

#[test]
fn recovery_budget_exhaustion_is_a_typed_error() {
    let spec = small_spec(4, 1);
    let driver = FleetDriver::new(spec, 2).with_max_attempts(2);
    let dir = spool_dir("exhaust");
    let spool = driver.spool_in(&dir).expect("spool");
    let error = driver.run(&AlwaysFail, &spool).expect_err("must give up");
    match error {
        DriverError::Exhausted {
            shard, attempts, ..
        } => {
            assert_eq!(shard, 0);
            assert_eq!(attempts, 2);
        }
        other => panic!("expected Exhausted, got {other}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn socket_transport_carries_blobs_end_to_end() {
    let spec = small_spec(9, 321);
    let driver = FleetDriver::new(spec.clone(), 3);
    let hub = SocketHub::bind().expect("bind loopback hub");

    // Publish one shard through a real socket round-trip (worker side), the
    // rest through the coordinator-local path — the driver cannot tell.
    let assignment = driver.assignment(0);
    let config = spec.to_config();
    let partial = hidwa_core::fleet::ShardPlan::from_boundaries(config.clone(), &[assignment.end])
        .expect("plan")
        .shard(0)
        .fold(&SweepRunner::serial());
    let blob = FleetCheckpoint::capture(&config, &partial, assignment.end).save();
    SocketPublisher::new(hub.addr().to_string())
        .publish(0, &blob)
        .expect("socket publish");
    assert_eq!(hub.fetch(0).expect("fetch").as_deref(), Some(&blob[..]));

    let run = driver
        .run(&InProcessExecutor::serial(), &hub)
        .expect("driver over the socket hub");
    assert_eq!(run.reused_shards(), 1, "socket-published blob reused");
    assert_eq!(
        merged_state(&spec, &hub, driver.shard_count()),
        single_stream_state(&spec)
    );
}

#[test]
fn socket_hub_drops_malformed_frames() {
    use std::io::Write;
    let hub = SocketHub::bind().expect("bind");
    // A connection that violates the framing: absurd length then EOF.
    {
        let mut stream = std::net::TcpStream::connect(hub.addr()).expect("connect");
        stream.write_all(&0u64.to_be_bytes()).expect("shard");
        stream.write_all(&u64::MAX.to_be_bytes()).expect("length");
    }
    // And one that just disappears mid-header.
    {
        let mut stream = std::net::TcpStream::connect(hub.addr()).expect("connect");
        stream.write_all(&[1, 2, 3]).expect("partial header");
    }
    // Neither stored anything; a well-formed publish still works after.
    SocketPublisher::new(hub.addr().to_string())
        .publish(7, b"fine")
        .expect("publish after garbage");
    assert!(hub.fetch(0).expect("fetch").is_none());
    assert_eq!(hub.fetch(7).expect("fetch").as_deref(), Some(&b"fine"[..]));
}

#[test]
fn publisher_rides_out_a_hub_restart_mid_publish() {
    use hidwa_core::fleet::driver::transport::TransportError;
    use std::time::Duration;

    // Bind once to learn a free port, then take the hub down.
    let addr = {
        let hub = SocketHub::bind().expect("bind");
        hub.addr()
    };
    let publisher = SocketPublisher::new(addr.to_string()).with_retry(8, Duration::from_millis(25));

    // Publish against the dead hub from another thread: the first attempts
    // are refused; the backoff budget must carry it across the restart.
    let worker = std::thread::spawn(move || publisher.publish(4, b"survived the restart"));
    std::thread::sleep(Duration::from_millis(80));
    let hub = SocketHub::bind_addr(addr).expect("rebind the same port");
    worker
        .join()
        .expect("publisher thread")
        .expect("publish across restart");
    assert_eq!(
        hub.fetch(4).expect("fetch").as_deref(),
        Some(&b"survived the restart"[..])
    );

    // A hub that never comes back exhausts the budget with a typed error.
    let gone = {
        let hub = SocketHub::bind().expect("bind");
        hub.addr()
    };
    let err = SocketPublisher::new(gone.to_string())
        .with_retry(2, Duration::from_millis(5))
        .publish(0, b"nope")
        .expect_err("no hub to publish to");
    assert!(matches!(err, TransportError::Io(_)), "{err}");
}

#[test]
fn hub_backpressure_naks_over_budget_blobs_until_drained() {
    use hidwa_core::fleet::driver::transport::{HubLimits, TransportError};
    use std::time::Duration;

    let hub = SocketHub::bind_with(
        ("127.0.0.1", 0),
        HubLimits {
            max_blob: 1024,
            buffer_budget: 100,
        },
    )
    .expect("bind with limits");
    let one_shot = |addr: std::net::SocketAddr| {
        SocketPublisher::new(addr.to_string()).with_retry(1, Duration::from_millis(1))
    };

    // Fill the budget, then watch the next publish get NAK-ed, not stored.
    one_shot(hub.addr()).publish(0, &[0xAA; 80]).expect("fits");
    assert_eq!(hub.buffered_bytes(), 80);
    let err = one_shot(hub.addr())
        .publish(1, &[0xBB; 40])
        .expect_err("over budget");
    assert!(
        matches!(err, TransportError::Protocol(message) if message.contains("budget")),
        "{err}"
    );
    assert!(hub.fetch(1).expect("fetch").is_none(), "NAK stores nothing");
    assert_eq!(hub.buffered_bytes(), 80, "rejected bytes are not buffered");

    // Re-publishing a resident shard frees its old bytes first.
    one_shot(hub.addr())
        .publish(0, &[0xCC; 90])
        .expect("replace in place");
    assert_eq!(hub.buffered_bytes(), 90);

    // Draining (the coordinator consumed the blob) re-opens the budget —
    // the ack-late half of reject-and-ack-late, and what a worker's retry
    // budget rides on.
    hub.discard(0).expect("coordinator drains");
    one_shot(hub.addr())
        .publish(1, &[0xBB; 40])
        .expect("fits after drain");
    assert_eq!(
        hub.fetch(1).expect("fetch").as_deref(),
        Some(&[0xBB; 40][..])
    );

    // A blob over the per-frame cap is a framing violation: dropped with
    // no reply at all, and retries cannot help.
    let err = one_shot(hub.addr())
        .publish(2, &[0xDD; 2048])
        .expect_err("over the frame cap");
    assert!(matches!(err, TransportError::Protocol(_)), "{err}");
    assert!(hub.fetch(2).expect("fetch").is_none());
}

#[test]
fn churned_driver_runs_are_identical_across_1_2_4_shards() {
    use hidwa_core::fleet::{ChurnSpec, PolicyKind};
    use hidwa_core::population::ChurnModel;

    // ISSUE 9: churn — arrivals, departures, duty cycles and online
    // re-placement — flows through the worker CLI (`--churn`) and stays
    // byte-identical whether the fleet is folded in one stream or split
    // across 1, 2 or 4 driver shards.
    let spec = small_spec(30, 0xC0FFEE).with_churn(ChurnSpec::new(
        ChurnModel::with_rate(0.5).with_link_fade(0.8),
        PolicyKind::Hysteresis,
    ));
    let expected = single_stream_state(&spec);
    for shards in [1usize, 2, 4] {
        let driver = FleetDriver::new(spec.clone(), shards);
        let dir = spool_dir(&format!("churn-{shards}"));
        let spool = driver.spool_in(&dir).expect("spool");
        let run = driver
            .run(&InProcessExecutor::serial(), &spool)
            .expect("churned driver run");
        assert_eq!(run.report().bodies(), spec.bodies());
        assert!(
            run.report().mean_occupancy() < 1.0,
            "churn left every body resident for the whole horizon"
        );
        assert_eq!(
            merged_state(&spec, &spool, shards),
            expected,
            "churned fleet diverged at {shards} shards"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn publisher_backoff_saturates_instead_of_overflowing() {
    use hidwa_core::fleet::driver::transport::TransportError;
    use std::time::{Duration, Instant};

    // Regression for the ISSUE 9 backoff bug: `backoff *= 2` each attempt
    // overflows Duration after ~64 doublings and panics mid-retry-loop. The
    // fix saturates and caps, so even an absurd attempt budget against a
    // hub that never comes back must fail with a typed error — quickly,
    // and without panicking.
    let dead = {
        let hub = SocketHub::bind().expect("bind");
        hub.addr()
    };
    let started = Instant::now();
    let err = SocketPublisher::new(dead.to_string())
        .with_retry(200, Duration::from_nanos(1))
        .with_backoff_cap(Duration::from_millis(1))
        .publish(0, b"never lands")
        .expect_err("no hub to publish to");
    assert!(matches!(err, TransportError::Io(_)), "{err}");
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "capped backoff must keep 200 attempts bounded"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random shard layouts × kill modes × kill shards × resume points: the
    /// driver always converges to the byte-identical single-stream state.
    #[test]
    fn driver_is_identical_under_random_faults_and_resume(
        bodies in 3usize..14,
        shards in 1usize..5,
        fail_shard in 0usize..5,
        mode in 0u8..3,
        lose in 0usize..5,
        base_seed in 0u64..100_000,
    ) {
        let spec = small_spec(bodies, base_seed);
        let driver = FleetDriver::new(spec.clone(), shards);
        let dir = spool_dir(&format!("prop-{bodies}-{shards}-{fail_shard}-{mode}-{lose}-{base_seed}"));
        let spool = driver.spool_in(&dir).expect("spool");
        let expected = single_stream_state(&spec);

        // A worker dies on its first attempt somewhere in the fleet.
        let executor = FlakyExecutor::new(fail_shard % driver.shard_count(), mode);
        let run = driver.run(&executor, &spool).expect("driver converges");
        prop_assert_eq!(run.report().bodies(), bodies);
        prop_assert_eq!(&merged_state(&spec, &spool, driver.shard_count()), &expected);

        // The coordinator "crashes"; one blob is lost; a new coordinator
        // resumes and re-folds only what is missing.
        spool.discard(lose % driver.shard_count()).expect("lose one blob");
        let resumed = driver.run(&InProcessExecutor::serial(), &spool).expect("resume");
        prop_assert!(resumed.reused_shards() >= driver.shard_count() - 1);
        prop_assert_eq!(&merged_state(&spec, &spool, driver.shard_count()), &expected);
        std::fs::remove_dir_all(&dir).ok();
    }
}
