//! Edge-case coverage for the population sampling layer: zero-weight
//! archetypes, the single-archetype ⇌ uniform equivalence, and the
//! pure-function regression the shard/checkpoint determinism model depends
//! on.

use hidwa_core::population::{BodyArchetype, BodyScenario, LeafArchetype, PopulationModel};
use hidwa_core::scenario;
use hidwa_netsim::mac::MacPolicy;
use hidwa_phy::RadioTechnology;

fn assert_scenarios_identical(a: &BodyScenario, b: &BodyScenario) {
    assert_eq!(a.body_index(), b.body_index());
    assert_eq!(a.seed(), b.seed());
    assert_eq!(a.archetype(), b.archetype());
    assert_eq!(a.technology(), b.technology());
    assert_eq!(a.policy(), b.policy());
    assert_eq!(a.leaves().len(), b.leaves().len());
    for (x, y) in a.leaves().iter().zip(b.leaves()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.site, y.site);
        assert_eq!(x.modality, y.modality);
        assert_eq!(x.traffic, y.traffic);
        assert_eq!(x.compute_power, y.compute_power);
    }
}

/// A population with one zero-weight archetype wedged between two live ones:
/// the dead class must never be drawn, however many bodies are sampled.
#[test]
fn zero_weight_archetypes_are_never_sampled() {
    let leaves: Vec<LeafArchetype> = scenario::standard_leaf_set()
        .into_iter()
        .map(LeafArchetype::fixed)
        .collect();
    let population = PopulationModel::new(vec![
        BodyArchetype::new(
            "alive-a",
            0.5,
            RadioTechnology::WiR,
            MacPolicy::Polling,
            leaves.clone(),
        ),
        BodyArchetype::new(
            "dead",
            0.0,
            RadioTechnology::Ble,
            MacPolicy::Tdma,
            leaves.clone(),
        ),
        BodyArchetype::new(
            "alive-b",
            0.5,
            RadioTechnology::WiR,
            MacPolicy::Tdma,
            leaves.clone(),
        ),
    ]);
    let mut saw_a = false;
    let mut saw_b = false;
    for body in 0..2000u64 {
        let scenario = population.sample(0xBAD5EED, body);
        assert_ne!(scenario.archetype(), "dead", "body {body} drew weight 0");
        saw_a |= scenario.archetype() == "alive-a";
        saw_b |= scenario.archetype() == "alive-b";
    }
    assert!(saw_a && saw_b, "both live archetypes should appear");

    // Negative and non-finite weights clamp to zero at construction…
    let clamped = BodyArchetype::new(
        "clamped",
        -3.0,
        RadioTechnology::WiR,
        MacPolicy::Polling,
        leaves.clone(),
    );
    assert_eq!(clamped.weight(), 0.0);
    let nan = BodyArchetype::new(
        "nan",
        f64::NAN,
        RadioTechnology::WiR,
        MacPolicy::Polling,
        leaves.clone(),
    );
    assert_eq!(nan.weight(), 0.0);

    // …and the documented degenerate fallback: all-zero weights draw the
    // first archetype (the population stays usable, never panics).
    let degenerate = PopulationModel::new(vec![
        BodyArchetype::new(
            "first",
            0.0,
            RadioTechnology::WiR,
            MacPolicy::Polling,
            leaves.clone(),
        ),
        BodyArchetype::new("second", 0.0, RadioTechnology::Ble, MacPolicy::Tdma, leaves),
    ]);
    for body in 0..64u64 {
        assert_eq!(degenerate.sample(3, body).archetype(), "first");
    }
}

/// A single-archetype population reduces to `PopulationModel::uniform`:
/// same scenarios, body for body, whatever the (positive) weight.
#[test]
fn single_archetype_model_reduces_to_uniform() {
    let leaves = scenario::standard_leaf_set();
    let uniform =
        PopulationModel::uniform(RadioTechnology::WiR, leaves.clone(), MacPolicy::Polling);
    for weight in [0.001, 1.0, 17.5] {
        let single = PopulationModel::new(vec![BodyArchetype::new(
            "uniform",
            weight,
            RadioTechnology::WiR,
            MacPolicy::Polling,
            leaves.iter().cloned().map(LeafArchetype::fixed).collect(),
        )]);
        for body in [0u64, 1, 13, 999] {
            assert_scenarios_identical(
                &single.sample(0xF1EE7, body),
                &uniform.sample(0xF1EE7, body),
            );
        }
    }
}

/// Pure-function regression: `(base_seed, body_index)` fully determines the
/// scenario — across repeated samplings, across clones of the model, and
/// across interleaved sampling orders.
#[test]
fn scenario_sampling_is_a_pure_function() {
    let population = PopulationModel::mixed_default();
    let clone = population.clone();
    for body in 0..128u64 {
        let first = population.sample(2024, body);
        let second = population.sample(2024, body);
        assert_scenarios_identical(&first, &second);
        // A clone of the model and an arbitrary sampling order change
        // nothing: there is no hidden shared state.
        let _ = clone.sample(2024, 1000 - body);
        let from_clone = clone.sample(2024, body);
        assert_scenarios_identical(&first, &from_clone);
    }
    // Different base seeds (or indices) do change the draw somewhere.
    assert!(
        (0..64u64).any(|body| {
            let a = population.sample(1, body);
            let b = population.sample(2, body);
            a.archetype() != b.archetype() || a.leaves().len() != b.leaves().len()
        }),
        "base seed had no observable effect"
    );
}

/// Traffic scaling (the search layer's axis) multiplies every sampled leaf's
/// offered load without perturbing the sampling stream: same archetype, same
/// leaf presence, same mix entry — just the scaled pattern.
#[test]
fn traffic_scaling_is_draw_aligned_and_load_linear() {
    let base = PopulationModel::mixed_default();
    let scaled = PopulationModel::mixed_default().with_traffic_scale(2.0);
    for body in 0..96u64 {
        let a = base.sample(77, body);
        let b = scaled.sample(77, body);
        assert_eq!(a.archetype(), b.archetype(), "body {body} archetype moved");
        assert_eq!(
            a.leaves().len(),
            b.leaves().len(),
            "body {body} leaf set moved"
        );
        for (la, lb) in a.leaves().iter().zip(b.leaves()) {
            assert_eq!(la.name, lb.name);
            assert_eq!(
                lb.traffic,
                la.traffic.scaled(2.0),
                "body {body} leaf {} pattern",
                la.name
            );
        }
    }
    // Degenerate factors leave the population untouched.
    let inert = PopulationModel::mixed_default().with_traffic_scale(f64::NAN);
    for body in 0..16u64 {
        let a = base.sample(5, body);
        let b = inert.sample(5, body);
        assert_eq!(a.leaves().len(), b.leaves().len());
        for (la, lb) in a.leaves().iter().zip(b.leaves()) {
            assert_eq!(la.traffic, lb.traffic);
        }
    }
}
