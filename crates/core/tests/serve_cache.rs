//! Cache-equivalence battery: across a grid of (model × context ×
//! objective), cached answers are **byte-identical** (through the response
//! codec) to uncached recomputation, and the hit counter matches the
//! analytic count for a replayed request log.

use hidwa_core::partition::Objective;
use hidwa_core::serve::codec::{
    self, ModelId, PlanRequest, ProjectionRequest, Request, WireContext, WireLink,
};
use hidwa_core::serve::PlanService;
use hidwa_core::sweep::SweepRunner;
use hidwa_eqs::body::BodySite;
use hidwa_phy::RadioTechnology;

const OBJECTIVES: [Objective; 3] = [
    Objective::LeafEnergy,
    Objective::Latency,
    Objective::EnergyDelayProduct,
];

/// The context axis of the grid.  Entries are chosen so that no two
/// canonicalize to the same cache key (distinct links or distinct override
/// quanta), which makes the analytic hit/miss count exact.
fn context_grid() -> Vec<WireContext> {
    vec![
        WireContext::of(WireLink::WiR),
        WireContext::of(WireLink::WiR).without_quantization(),
        WireContext::of(WireLink::Ble),
        WireContext::of(WireLink::Site(RadioTechnology::WiR, BodySite::Wrist)),
        WireContext::of(WireLink::Site(RadioTechnology::Ble, BodySite::Ankle)),
        WireContext::of(WireLink::WiR)
            .with_energy_per_bit_pj(100.0)
            .with_goodput_bps(2.0e6),
        WireContext::of(WireLink::WiR)
            .with_energy_per_bit_pj(200.0)
            .with_goodput_bps(2.0e6),
    ]
}

fn plan_grid() -> Vec<Request> {
    let mut grid = Vec::new();
    for model in ModelId::ALL {
        for context in context_grid() {
            for objective in OBJECTIVES {
                grid.push(Request::Plan(PlanRequest {
                    model,
                    context,
                    objective,
                }));
            }
        }
    }
    grid
}

#[test]
fn cached_answers_are_byte_identical_to_uncached_across_the_grid() {
    let grid = plan_grid();
    let cached = PlanService::new();
    let uncached = PlanService::new().with_cache(false);

    // First pass populates the cache; second pass answers from it.
    let first = cached.answer_batch(&grid);
    let second = cached.answer_batch(&grid);
    let reference = uncached.answer_batch(&grid);

    // Byte-identical through the wire codec, not merely PartialEq.
    let bytes = |answers: &[_]| codec::encode_responses(answers).to_vec();
    assert_eq!(bytes(&first), bytes(&reference));
    assert_eq!(bytes(&second), bytes(&reference));

    let stats = cached.stats();
    assert_eq!(
        stats.cache_misses,
        grid.len() as u64,
        "every grid point distinct"
    );
    assert_eq!(stats.cache_hits, grid.len() as u64, "second pass all hits");
    assert_eq!(stats.cached_plans, grid.len() as u64);
    assert_eq!(
        uncached.stats().cache_hits + uncached.stats().cache_misses,
        0
    );
}

#[test]
fn hit_counter_matches_analytic_count_for_a_replayed_log() {
    // A deterministic request log with known duplication structure: each
    // grid point appears REPEATS times, interleaved (not back-to-back), plus
    // projections which never touch the plan cache.
    const REPEATS: usize = 3;
    let grid = plan_grid();
    let mut log = Vec::new();
    for round in 0..REPEATS {
        for (i, request) in grid.iter().enumerate() {
            log.push(*request);
            if (i + round) % 5 == 0 {
                log.push(Request::Projection(ProjectionRequest {
                    rate_bps: 1000.0 + i as f64,
                }));
            }
        }
    }

    let service = PlanService::new();
    // Replay in odd-sized batches so batches straddle duplicates.
    for chunk in log.chunks(7) {
        let _ = service.answer_batch(chunk);
    }

    let stats = service.stats();
    let plan_queries = (grid.len() * REPEATS) as u64;
    assert_eq!(stats.plan_queries, plan_queries);
    assert_eq!(
        stats.cache_misses,
        grid.len() as u64,
        "misses = distinct keys"
    );
    assert_eq!(
        stats.cache_hits,
        plan_queries - grid.len() as u64,
        "hits = replayed duplicates"
    );
    assert_eq!(stats.cache_hits + stats.cache_misses, plan_queries);
    let expected_rate = (plan_queries - grid.len() as u64) as f64 / plan_queries as f64;
    assert!((stats.hit_rate() - expected_rate).abs() < 1e-12);
}

#[test]
fn overrides_within_one_quantum_share_a_cache_entry() {
    // Admission quantization collapses near-identical continuous overrides
    // onto one canonical key: the second query is a hit and the answers are
    // byte-identical — the cache is exact, not approximate.
    let service = PlanService::new();
    let base = 1.0e6f64;
    let nudged = base * (1.0 + 1e-12); // same 2⁻²¹ quantum
    let ask = |goodput: f64| {
        Request::Plan(PlanRequest {
            model: ModelId::ImuGesture,
            context: WireContext::of(WireLink::WiR).with_goodput_bps(goodput),
            objective: Objective::LeafEnergy,
        })
    };
    let a = service.answer(&ask(base));
    let b = service.answer(&ask(nudged));
    assert_eq!(
        codec::encode_responses(&[a]).to_vec(),
        codec::encode_responses(&[b]).to_vec()
    );
    let stats = service.stats();
    assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));

    // A genuinely different operating point is a different key.
    let c = service.answer(&ask(base * 2.0));
    assert_eq!(service.stats().cache_misses, 2);
    assert!(matches!(c, codec::Response::Plan(_)));
}

/// The first `n` plan-grid requests, each canonicalizing to a distinct key.
fn distinct_plans(n: usize) -> Vec<Request> {
    let grid = plan_grid();
    assert!(n <= grid.len());
    grid.into_iter().take(n).collect()
}

#[test]
fn bounded_cache_replays_a_cyclic_scan_with_analytic_counters() {
    // A cyclic scan over N keys through a capacity-C cache with N > C is
    // the analytic worst case for any recency-family policy (CLOCK
    // included): the resident set is always the C most recently inserted
    // keys, and the next key in the cycle is N−C insertions old — never
    // resident.  Every access misses; every miss past the first C evicts.
    const N: usize = 12;
    const C: usize = 8;
    const CYCLES: usize = 3;
    let keys = distinct_plans(N);
    let service = PlanService::new().with_cache_capacity(C);
    let reference = PlanService::new().with_cache(false);
    for cycle in 0..CYCLES {
        for request in &keys {
            let answer = service.answer(request);
            assert_eq!(
                codec::encode_responses(&[answer]).to_vec(),
                codec::encode_responses(&[reference.answer(request)]).to_vec(),
                "cycle {cycle} diverged from uncached recomputation"
            );
        }
    }
    let stats = service.stats();
    let accesses = (N * CYCLES) as u64;
    assert_eq!(
        stats.cache_misses, accesses,
        "cyclic scan: every access misses"
    );
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(stats.cache_evictions, accesses - C as u64);
    assert_eq!(
        stats.cached_plans, C as u64,
        "resident set pinned at capacity"
    );
    assert_eq!(stats.hit_rate(), 0.0);
}

#[test]
fn working_set_within_capacity_never_evicts() {
    const N: usize = 6;
    let keys = distinct_plans(N);
    let service = PlanService::new().with_cache_capacity(8);
    let first: Vec<_> = keys.iter().map(|request| service.answer(request)).collect();
    let second: Vec<_> = keys.iter().map(|request| service.answer(request)).collect();
    assert_eq!(
        codec::encode_responses(&first).to_vec(),
        codec::encode_responses(&second).to_vec()
    );
    let stats = service.stats();
    assert_eq!(stats.cache_misses, N as u64);
    assert_eq!(stats.cache_hits, N as u64);
    assert_eq!(stats.cache_evictions, 0, "working set fits: no eviction");
    assert_eq!(stats.cached_plans, N as u64);
}

#[test]
fn evicted_then_refetched_keys_answer_byte_identical() {
    // Capacity 1: two alternating keys evict each other on every access.
    // Eviction must only ever cost recomputation, never change bytes.
    let keys = distinct_plans(2);
    let service = PlanService::new().with_cache_capacity(1);
    let reference = PlanService::new().with_cache(false);
    let reference_bytes: Vec<_> = keys
        .iter()
        .map(|request| codec::encode_responses(&[reference.answer(request)]).to_vec())
        .collect();
    for round in 0..2 {
        for (request, expected) in keys.iter().zip(&reference_bytes) {
            let answer = service.answer(request);
            assert_eq!(
                &codec::encode_responses(&[answer]).to_vec(),
                expected,
                "round {round}: evicted-then-refetched key changed bytes"
            );
        }
    }
    let stats = service.stats();
    assert_eq!(
        stats.cache_misses, 4,
        "every access re-misses at capacity 1"
    );
    assert_eq!(stats.cache_hits, 0);
    assert_eq!(
        stats.cache_evictions, 3,
        "every insert past the first evicts"
    );
    assert_eq!(stats.cached_plans, 1);
}

#[test]
fn cache_equivalence_holds_across_runner_widths() {
    // The batch path evaluates misses through the sweep runner; answers and
    // counters must not depend on its width.
    let grid = plan_grid();
    let serial = PlanService::new().with_runner(SweepRunner::serial());
    let wide = PlanService::new().with_runner(SweepRunner::with_threads(4));
    let a = serial.answer_batch(&grid);
    let b = wide.answer_batch(&grid);
    assert_eq!(
        codec::encode_responses(&a).to_vec(),
        codec::encode_responses(&b).to_vec()
    );
    assert_eq!(serial.stats(), wide.stats());
}
