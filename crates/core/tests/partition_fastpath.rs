//! Equivalence tests for the allocation-free partition fast paths.
//!
//! The streaming [`PartitionOptimizer::optimize`] and the one-cut
//! `all_on_leaf` / `all_on_hub` shortcuts must agree *exactly* (same cut,
//! bit-identical energies) with the naive reference — `evaluate_all`
//! followed by a feasibility filter and `min_by` — for every model, context
//! and objective, and the construction-time model caches must match freshly
//! computed profiles.

use hidwa_core::partition::{Objective, PartitionContext, PartitionOptimizer, PartitionPlan};
use hidwa_core::CoreError;
use hidwa_isa::models;

fn contexts() -> Vec<PartitionContext> {
    vec![
        PartitionContext::wir_default(),
        PartitionContext::ble_default(),
        PartitionContext::wir_default().without_quantization(),
        PartitionContext::ble_default().without_quantization(),
    ]
}

const OBJECTIVES: [Objective; 3] = [
    Objective::LeafEnergy,
    Objective::Latency,
    Objective::EnergyDelayProduct,
];

/// The naive reference the streaming pass must reproduce: materialise every
/// plan, filter to feasible, take the first minimum.
fn reference_optimum(
    optimizer: &PartitionOptimizer,
    model: &models::WearableModel,
    objective: Objective,
) -> Option<PartitionPlan> {
    let key = |plan: &PartitionPlan| match objective {
        Objective::LeafEnergy => plan.leaf_energy.as_joules(),
        Objective::Latency => plan.latency.as_seconds(),
        Objective::EnergyDelayProduct => plan.energy_delay_product(),
    };
    optimizer
        .evaluate_all(model)
        .unwrap()
        .into_iter()
        .filter(|p| p.feasible)
        .min_by(|a, b| {
            key(a)
                .partial_cmp(&key(b))
                .unwrap_or(core::cmp::Ordering::Equal)
        })
}

fn assert_plans_identical(fast: &PartitionPlan, reference: &PartitionPlan, what: &str) {
    assert_eq!(fast.cut_index, reference.cut_index, "{what}: cut index");
    assert_eq!(fast.leaf_macs, reference.leaf_macs, "{what}: leaf MACs");
    assert_eq!(fast.hub_macs, reference.hub_macs, "{what}: hub MACs");
    assert!(
        fast.transfer_bytes.to_bits() == reference.transfer_bytes.to_bits(),
        "{what}: transfer bytes"
    );
    assert!(
        fast.leaf_energy.as_joules().to_bits() == reference.leaf_energy.as_joules().to_bits(),
        "{what}: leaf energy"
    );
    assert!(
        fast.hub_energy.as_joules().to_bits() == reference.hub_energy.as_joules().to_bits(),
        "{what}: hub energy"
    );
    assert!(
        fast.latency.as_seconds().to_bits() == reference.latency.as_seconds().to_bits(),
        "{what}: latency"
    );
    assert_eq!(fast.feasible, reference.feasible, "{what}: feasibility");
    assert_eq!(fast.context, reference.context, "{what}: context label");
    assert_eq!(fast.model, reference.model, "{what}: model label");
}

#[test]
fn streaming_optimize_matches_naive_reference_everywhere() {
    let mut checked = 0;
    for model in models::all_models() {
        for context in contexts() {
            let optimizer = PartitionOptimizer::new(context);
            for objective in OBJECTIVES {
                let reference = reference_optimum(&optimizer, &model, objective);
                match (optimizer.optimize(&model, objective), reference) {
                    (Ok(fast), Some(reference)) => {
                        let what = format!(
                            "{} / {} / {}",
                            model.name(),
                            optimizer.context().label(),
                            objective.name()
                        );
                        assert_plans_identical(&fast, &reference, &what);
                        checked += 1;
                    }
                    (Err(CoreError::WorkloadInfeasible { .. }), None) => {
                        checked += 1;
                    }
                    (fast, reference) => panic!(
                        "{} / {}: fast={fast:?} reference={reference:?} disagree on feasibility",
                        model.name(),
                        objective.name()
                    ),
                }
            }
        }
    }
    // 5 models × 4 contexts × 3 objectives.
    assert_eq!(checked, 60);
}

#[test]
fn extreme_shortcuts_match_evaluate_all_endpoints() {
    // Regression for the old O(layers) behaviour: all_on_leaf/all_on_hub used
    // to materialise every plan and take last/first; they now evaluate one
    // cut, and must return exactly those endpoint plans.
    for model in models::all_models() {
        for context in contexts() {
            let optimizer = PartitionOptimizer::new(context);
            let all = optimizer.evaluate_all(&model).unwrap();
            assert_eq!(all.len(), model.network().len() + 1);
            let leaf = optimizer.all_on_leaf(&model).unwrap();
            let hub = optimizer.all_on_hub(&model).unwrap();
            assert_plans_identical(&leaf, all.last().unwrap(), "all_on_leaf");
            assert_plans_identical(&hub, &all[0], "all_on_hub");
            assert_eq!(leaf.cut_index, model.network().len());
            assert_eq!(hub.cut_index, 0);
        }
    }
}

#[test]
fn model_caches_match_fresh_computation() {
    for model in models::all_models() {
        let fresh_profiles = model.network().profile(model.input_shape()).unwrap();
        assert_eq!(
            model.profiles(),
            fresh_profiles.as_slice(),
            "{}",
            model.name()
        );

        let fresh_cuts = model.network().cut_points(model.input_shape()).unwrap();
        assert_eq!(
            model.cut_points(),
            fresh_cuts.as_slice(),
            "{}",
            model.name()
        );

        assert_eq!(
            model.macs_per_inference(),
            model.network().total_macs(model.input_shape()),
            "{}",
            model.name()
        );
        assert_eq!(
            model.output_shape(),
            model
                .network()
                .output_shape(model.input_shape())
                .unwrap()
                .as_slice(),
            "{}",
            model.name()
        );
        assert_eq!(&**model.interned_name(), model.name());
    }
}
