//! Checkpoint round-trip and corruption tests: a fold interrupted at any
//! body boundary resumes byte-identical, and truncated / bit-flipped /
//! version-bumped / mismatched checkpoints come back as typed errors — never
//! a panic, never a silent mis-restore.

use hidwa_core::fleet::{CheckpointError, ChurnSpec, FleetCheckpoint, FleetConfig, PolicyKind};
use hidwa_core::population::{ChurnModel, PopulationModel};
use hidwa_core::sweep::SweepRunner;
use hidwa_units::TimeSpan;

fn fleet() -> FleetConfig {
    FleetConfig::new(100)
        .with_population(PopulationModel::mixed_default())
        .with_base_seed(424242)
        .with_horizon(TimeSpan::from_seconds(0.5))
        .with_top_k(6)
}

/// Re-implementation of the documented FNV-1a 64 seal (ARCHITECTURE.md wire
/// format), so tests can mint structurally valid blobs with chosen fields.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[test]
fn resume_from_every_body_boundary_is_byte_identical() {
    let config = fleet();
    let serial = SweepRunner::serial();
    let single = config.run(&serial);
    let final_state = config.run_until(&serial, 100).save().to_vec();
    for stop in 0..=100 {
        let blob = config.run_until(&serial, stop).save();
        let restored = FleetCheckpoint::load(&blob).unwrap_or_else(|e| {
            panic!("checkpoint at body {stop} failed to load: {e}");
        });
        assert_eq!(restored.next_body(), stop);
        assert_eq!(restored.bodies_ingested(), stop);
        // Saving the reloaded checkpoint reproduces the bytes exactly.
        assert_eq!(restored.save().to_vec(), blob.to_vec());
        let resumed = config.resume(&serial, restored).expect("same config");
        assert_eq!(resumed, single, "resume from body {stop} diverged");
    }
    // The final state of an interrupted+resumed fold equals the
    // uninterrupted one at the byte level, not just through PartialEq.
    let half = FleetCheckpoint::load(&config.run_until(&serial, 50).save()).unwrap();
    let resumed_report = config.resume(&serial, half).unwrap();
    assert_eq!(resumed_report, single);
    assert_eq!(config.run_until(&serial, 100).save().to_vec(), final_state);
}

#[test]
fn thousand_body_hetero_fleet_state_bytes_are_width_independent() {
    // Fleet-scale determinism gate for the streaming engine: a 1000-body
    // heterogeneous fleet folded at thread width 1 and width 4 serializes to
    // the **same checkpoint bytes** — every per-body simulation, the ingest
    // order and the exact-sum merge algebra are all width-invariant.
    let config = FleetConfig::new(1000)
        .with_population(PopulationModel::mixed_default())
        .with_base_seed(0xF1EE7)
        .with_horizon(TimeSpan::from_seconds(0.25))
        .with_top_k(8);
    let narrow = config
        .run_until(&SweepRunner::with_threads(1), 1000)
        .save()
        .to_vec();
    let wide = config
        .run_until(&SweepRunner::with_threads(4), 1000)
        .save()
        .to_vec();
    assert_eq!(narrow, wide, "fleet state bytes diverged across widths");
    // The blob is a complete fold: restoring it finishes into the same
    // report a direct run produces at either width.
    let restored = FleetCheckpoint::load(&narrow).expect("valid blob");
    assert_eq!(restored.bodies_ingested(), 1000);
    let resumed = config
        .resume(&SweepRunner::serial(), restored)
        .expect("same config");
    assert_eq!(resumed, config.run(&SweepRunner::with_threads(4)));
}

#[test]
fn truncated_checkpoints_error_at_every_cut() {
    let config = fleet();
    let blob = config.run_until(&SweepRunner::serial(), 37).save().to_vec();
    for cut in 0..blob.len() {
        match FleetCheckpoint::load(&blob[..cut]) {
            Err(_) => {}
            Ok(_) => panic!(
                "a {cut}-byte prefix of a {}-byte checkpoint loaded",
                blob.len()
            ),
        }
    }
}

#[test]
fn every_single_bit_flip_is_rejected() {
    let config = fleet();
    let blob = config.run_until(&SweepRunner::serial(), 23).save().to_vec();
    // One flip per byte position (rotating the bit index so all eight bit
    // lanes are exercised): the FNV seal catches every single-bit flip by
    // construction, and this sweep proves no code path panics or accepts one.
    for position in 0..blob.len() {
        let bit = position % 8;
        let mut tampered = blob.clone();
        tampered[position] ^= 1 << bit;
        assert!(
            FleetCheckpoint::load(&tampered).is_err(),
            "bit {bit} of byte {position} flipped and the checkpoint still loaded"
        );
    }
}

#[test]
fn version_and_magic_mismatches_are_typed() {
    let config = fleet();
    let blob = config.run_until(&SweepRunner::serial(), 9).save().to_vec();

    // A future version with a correct checksum must be refused as
    // UnsupportedVersion, not mis-parsed.
    let mut future = blob.clone();
    future[9] = 3; // version u16 big-endian at offset 8..10
    let body_len = future.len() - 8;
    let reseal = fnv1a64(&future[..body_len]);
    future[body_len..].copy_from_slice(&reseal.to_be_bytes());
    assert_eq!(
        FleetCheckpoint::load(&future).unwrap_err(),
        CheckpointError::UnsupportedVersion(3)
    );

    // An *old* (version-1, pre-churn) blob is likewise refused — version 2
    // cannot guess migration or occupancy statistics the old format never
    // measured, so it rejects rather than restoring zeros.
    let mut old = blob.clone();
    old[9] = 1;
    let reseal = fnv1a64(&old[..body_len]);
    old[body_len..].copy_from_slice(&reseal.to_be_bytes());
    assert_eq!(
        FleetCheckpoint::load(&old).unwrap_err(),
        CheckpointError::UnsupportedVersion(1)
    );

    let mut alien = blob.clone();
    alien[..8].copy_from_slice(b"NOTAFLT!");
    assert_eq!(
        FleetCheckpoint::load(&alien).unwrap_err(),
        CheckpointError::BadMagic
    );

    assert_eq!(
        FleetCheckpoint::load(&[]).unwrap_err(),
        CheckpointError::Truncated
    );
    assert_eq!(
        FleetCheckpoint::load(&blob[..12]).unwrap_err(),
        CheckpointError::Truncated
    );

    // Arbitrary garbage of plausible length errors instead of panicking.
    let garbage: Vec<u8> = (0..blob.len()).map(|i| (i * 131 + 7) as u8).collect();
    assert!(FleetCheckpoint::load(&garbage).is_err());
}

#[test]
fn resume_under_a_different_config_is_refused() {
    let config = fleet();
    let serial = SweepRunner::serial();
    let blob = config.run_until(&serial, 40).save();
    let load = || FleetCheckpoint::load(&blob).expect("valid blob");

    let other_seed = config.clone().with_base_seed(7);
    assert!(matches!(
        other_seed.resume(&serial, load()),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    let other_bodies = FleetConfig::new(99)
        .with_population(PopulationModel::mixed_default())
        .with_base_seed(424242)
        .with_horizon(TimeSpan::from_seconds(0.5))
        .with_top_k(6);
    assert!(matches!(
        other_bodies.resume(&serial, load()),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    let other_horizon = config.clone().with_horizon(TimeSpan::from_seconds(1.0));
    assert!(matches!(
        other_horizon.resume(&serial, load()),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    let other_top_k = config.clone().with_top_k(2);
    assert!(matches!(
        other_top_k.resume(&serial, load()),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    // The original config still resumes fine.
    assert!(config.resume(&serial, load()).is_ok());
}

fn churned_fleet() -> FleetConfig {
    fleet().with_churn(ChurnSpec::new(
        ChurnModel::with_rate(0.5).with_link_fade(0.8),
        PolicyKind::ReoptimizeOnChange,
    ))
}

#[test]
fn churned_resume_from_every_body_boundary_is_byte_identical() {
    let config = churned_fleet();
    let serial = SweepRunner::serial();
    let single = config.run(&serial);
    assert!(single.replans() > 0, "churned fixture never re-planned");
    for stop in [0, 1, 17, 50, 99, 100] {
        let blob = config.run_until(&serial, stop).save();
        let restored = FleetCheckpoint::load(&blob).unwrap_or_else(|e| {
            panic!("churned checkpoint at body {stop} failed to load: {e}");
        });
        assert_eq!(restored.save().to_vec(), blob.to_vec());
        let resumed = config.resume(&serial, restored).expect("same config");
        assert_eq!(resumed, single, "churned resume from body {stop} diverged");
        assert_eq!(resumed.migrations(), single.migrations());
        assert_eq!(resumed.replans(), single.replans());
    }
}

#[test]
fn churned_checkpoint_corruption_sweep_never_panics() {
    let config = churned_fleet();
    let blob = config.run_until(&SweepRunner::serial(), 31).save().to_vec();
    // Truncation at every cut.
    for cut in 0..blob.len() {
        assert!(
            FleetCheckpoint::load(&blob[..cut]).is_err(),
            "a {cut}-byte prefix of a churned checkpoint loaded"
        );
    }
    // One bit flip per byte position, rotating through all eight lanes —
    // covers the new migration/replan/active-span/placement-energy fields.
    for position in 0..blob.len() {
        let bit = position % 8;
        let mut tampered = blob.clone();
        tampered[position] ^= 1 << bit;
        assert!(
            FleetCheckpoint::load(&tampered).is_err(),
            "bit {bit} of byte {position} of a churned checkpoint survived"
        );
    }
}

#[test]
fn resume_under_a_different_churn_spec_is_refused() {
    let config = churned_fleet();
    let serial = SweepRunner::serial();
    let blob = config.run_until(&serial, 30).save();
    let load = || FleetCheckpoint::load(&blob).expect("valid blob");

    // Same fleet, no churn: refused.
    assert!(matches!(
        fleet().resume(&serial, load()),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    // Same churn model, different policy: refused.
    let other_policy = fleet().with_churn(ChurnSpec::new(
        ChurnModel::with_rate(0.5).with_link_fade(0.8),
        PolicyKind::StaticAtAdmission,
    ));
    assert!(matches!(
        other_policy.resume(&serial, load()),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    // Different churn rate: refused.
    let other_rate = fleet().with_churn(ChurnSpec::new(
        ChurnModel::with_rate(0.2).with_link_fade(0.8),
        PolicyKind::ReoptimizeOnChange,
    ));
    assert!(matches!(
        other_rate.resume(&serial, load()),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    // A churned blob under a churn-free config and vice versa both refuse;
    // the original config still resumes.
    assert!(matches!(
        churned_fleet().resume(&serial, {
            let plain = fleet().run_until(&serial, 30).save();
            FleetCheckpoint::load(&plain).expect("valid blob")
        }),
        Err(CheckpointError::ConfigMismatch(_))
    ));
    assert!(config.resume(&serial, load()).is_ok());
}

#[test]
fn checkpoint_errors_render_useful_messages() {
    let rendered = [
        CheckpointError::Truncated.to_string(),
        CheckpointError::BadMagic.to_string(),
        CheckpointError::UnsupportedVersion(9).to_string(),
        CheckpointError::Corrupt("checksum mismatch").to_string(),
        CheckpointError::ConfigMismatch("base seed differs").to_string(),
    ];
    assert!(rendered[0].contains("truncated"));
    assert!(rendered[1].contains("magic"));
    assert!(rendered[2].contains('9'));
    assert!(rendered[3].contains("checksum"));
    assert!(rendered[4].contains("base seed"));
}
