//! Replay-exact accounting of the completed-evaluation index (ISSUE 10
//! satellite), mirroring the `PlanCache` counter tests: coordinate descent
//! revisits grid points on every axis scan, and every revisit must hit the
//! index instead of re-folding a fleet — fold count == distinct points,
//! revisit count == cache hits, and a second run over the same spool root
//! folds nothing at all.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use hidwa_core::fleet::driver::{DriverFleetSpec, InProcessExecutor};
use hidwa_core::fleet::placement::{ChurnSpec, PolicyKind};
use hidwa_core::partition::Objective;
use hidwa_core::population::ChurnModel;
use hidwa_core::search::{ObjectiveSpace, SearchDriver, SearchSpec, SearchStrategy};
use hidwa_core::sweep::SweepRunner;
use hidwa_netsim::mac::MacPolicy;
use hidwa_phy::RadioTechnology;

static CASE: AtomicUsize = AtomicUsize::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        Self(std::env::temp_dir().join(format!(
            "hidwa-search-cache-{}-{tag}-{case}",
            std::process::id()
        )))
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A 2×2×2 churned grid: three live multi-valued axes, so every descent
/// axis scan revisits the current point.
fn search_spec() -> SearchSpec {
    let base = DriverFleetSpec::new(3)
        .with_base_seed(5)
        .with_horizon(hidwa_units::TimeSpan::from_seconds(0.04))
        .with_churn(
            ChurnSpec::new(
                ChurnModel::with_rate(0.5).with_epochs(3),
                PolicyKind::StaticAtAdmission,
            )
            .with_hysteresis_threshold(0.15),
        );
    let space = ObjectiveSpace::new()
        .with_mac_axis(&[MacPolicy::Polling, MacPolicy::Tdma])
        .with_objective_axis(&[Objective::LeafEnergy, Objective::EnergyDelayProduct])
        .with_radio_axis(&[RadioTechnology::WiR, RadioTechnology::Ble]);
    SearchSpec::new(base, space)
}

#[test]
fn descent_revisits_hit_the_index_not_the_fleet() {
    let spec = search_spec();
    let driver = SearchDriver::new(spec, SearchStrategy::CoordinateDescent { max_rounds: 3 });
    let runner = SweepRunner::serial();
    let executor = InProcessExecutor::serial();
    let root = Scratch::new("descent");

    let run = driver
        .run(&runner, &executor, root.path())
        .expect("descent runs");
    assert!(run.complete());
    assert_eq!(run.resumed(), 0, "fresh root resumed nothing");
    // The analytic identities: every fold is a distinct grid point, every
    // revisit is a cache hit, and together they are exactly the requests.
    assert_eq!(run.folds(), run.evaluations().len());
    assert_eq!(run.cache_hits(), run.requests() - run.folds());
    // Descent genuinely revisits: the starting point reappears in its own
    // axis scans (five scans per round), so revisits are guaranteed.
    assert!(
        run.requests() > run.folds(),
        "descent issued {} requests over {} folds — no revisit happened",
        run.requests(),
        run.folds()
    );
}

#[test]
fn completed_search_replays_without_folding() {
    let spec = search_spec();
    let driver = SearchDriver::new(spec, SearchStrategy::CoordinateDescent { max_rounds: 3 });
    let runner = SweepRunner::serial();
    let executor = InProcessExecutor::serial();
    let root = Scratch::new("replay");

    let first = driver
        .run(&runner, &executor, root.path())
        .expect("first run");
    let replay = driver
        .run(&runner, &executor, root.path())
        .expect("replay run");
    assert_eq!(replay.folds(), 0, "replay re-folded a completed evaluation");
    assert_eq!(replay.cache_hits(), replay.requests());
    assert_eq!(replay.resumed(), first.evaluations().len());
    assert_eq!(replay.evaluations(), first.evaluations());
    assert_eq!(replay.frontier(), first.frontier());
}

#[test]
fn exhaustive_reuses_descent_evaluations() {
    let spec = search_spec();
    let grid = spec.space().len() as usize;
    let runner = SweepRunner::serial();
    let executor = InProcessExecutor::serial();
    let root = Scratch::new("cross-strategy");

    let descent = SearchDriver::new(
        spec.clone(),
        SearchStrategy::CoordinateDescent { max_rounds: 3 },
    )
    .run(&runner, &executor, root.path())
    .expect("descent runs");

    // The exhaustive pass over the same root only folds the points the
    // descent never visited; the descent's work is reused from the index.
    let exhaustive = SearchDriver::new(spec, SearchStrategy::ExhaustiveGrid)
        .run(&runner, &executor, root.path())
        .expect("exhaustive runs");
    assert_eq!(exhaustive.evaluations().len(), grid);
    assert_eq!(exhaustive.resumed(), descent.evaluations().len());
    assert_eq!(exhaustive.folds(), grid - descent.evaluations().len());
    assert_eq!(exhaustive.cache_hits(), descent.evaluations().len());
    // The exhaustive frontier can only extend the descent's evaluations.
    for outcome in descent.evaluations() {
        assert_eq!(
            exhaustive
                .evaluations()
                .iter()
                .find(|e| e.point() == outcome.point()),
            Some(outcome)
        );
    }
}

#[test]
fn zero_budget_is_an_empty_partial_run() {
    let spec = search_spec();
    let driver = SearchDriver::new(spec, SearchStrategy::ExhaustiveGrid);
    let root = Scratch::new("zero-budget");
    let run = driver
        .run_with_budget(
            &SweepRunner::serial(),
            &InProcessExecutor::serial(),
            root.path(),
            Some(0),
        )
        .expect("zero-budget run");
    assert!(!run.complete());
    assert_eq!(run.folds(), 0);
    assert_eq!(run.requests(), 0);
    assert!(run.evaluations().is_empty());
    assert!(run.frontier().is_empty());
}
