//! Server battery, run against **both thread models** (epoll reactor and
//! legacy thread-per-connection): N concurrent clients receive
//! byte-identical responses to a serial linked-in optimiser (cache on and
//! off), pipelined clients match replies by tag in any consumption order,
//! slow-loris peers are dropped without taking down the server, and the
//! server survives malformed frames, oversized frames and mid-request
//! disconnects without taking down other connections.

use hidwa_core::partition::Objective;
use hidwa_core::serve::codec::{
    self, ModelId, PlanRequest, ProjectionRequest, Request, Response, WireContext, WireLink,
};
use hidwa_core::serve::{PlanClient, PlanServer, PlanService, ServeConfig, ThreadModel};
use hidwa_core::wire;
use hidwa_eqs::body::BodySite;
use hidwa_phy::RadioTechnology;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::thread;
use std::time::Duration;

const OBJECTIVES: [Objective; 3] = [
    Objective::LeafEnergy,
    Objective::Latency,
    Objective::EnergyDelayProduct,
];

/// Both connection-driving models; every test in this battery runs the
/// full matrix so reactor/legacy equivalence is asserted structurally.
const MODES: [ThreadModel; 2] = [ThreadModel::Reactor { event_loops: 2 }, ThreadModel::Legacy];

fn bind_mode(service: PlanService, threads: ThreadModel) -> PlanServer {
    PlanServer::bind_with(
        "127.0.0.1:0",
        service,
        ServeConfig {
            threads,
            ..ServeConfig::default()
        },
    )
    .expect("bind loopback")
}

/// A deterministic query log exercising plans (all models, several links,
/// all objectives, including infeasible combinations) and projections.
fn query_log() -> Vec<Request> {
    let mut log = Vec::new();
    let links = [
        WireLink::WiR,
        WireLink::Ble,
        WireLink::Site(RadioTechnology::WiR, BodySite::Ear),
    ];
    for (i, model) in ModelId::ALL.into_iter().enumerate() {
        for (j, link) in links.into_iter().enumerate() {
            log.push(Request::Plan(PlanRequest {
                model,
                context: WireContext::of(link),
                objective: OBJECTIVES[(i + j) % 3],
            }));
        }
        log.push(Request::Projection(ProjectionRequest {
            rate_bps: 500.0 * (i + 1) as f64,
        }));
    }
    log
}

/// The reference: the same log answered serially by a fresh linked-in
/// service, encoded to response-envelope bytes.
fn serial_reference(log: &[Request]) -> Vec<u8> {
    let service = PlanService::new().with_cache(false);
    codec::encode_responses(&service.answer_batch(log)).to_vec()
}

fn served_bytes_match_serial(cache_enabled: bool, threads: ThreadModel) {
    const CLIENTS: usize = 8;
    let log = query_log();
    let reference = serial_reference(&log);
    let server = bind_mode(PlanService::new().with_cache(cache_enabled), threads);
    let addr = server.addr();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let log = log.clone();
            thread::spawn(move || {
                let mut client = PlanClient::connect(addr).expect("connect");
                // Each client replays the log twice: batched, then singly.
                let batch = client.query(&log).expect("batched answers");
                let mut singles = Vec::with_capacity(log.len());
                for request in &log {
                    singles.push(client.ask(*request).expect("single answer"));
                }
                (
                    codec::encode_responses(&batch).to_vec(),
                    codec::encode_responses(&singles).to_vec(),
                )
            })
        })
        .collect();

    for worker in workers {
        let (batch, singles) = worker.join().expect("client thread");
        assert_eq!(
            batch, reference,
            "batched served bytes diverged from serial ({threads:?})"
        );
        assert_eq!(
            singles, reference,
            "single served bytes diverged from serial ({threads:?})"
        );
    }

    let stats = server.service().stats();
    let plan_queries_per_pass = log
        .iter()
        .filter(|request| matches!(request, Request::Plan(_)))
        .count() as u64;
    assert_eq!(
        stats.plan_queries,
        plan_queries_per_pass * 2 * CLIENTS as u64
    );
    if cache_enabled {
        // Replay-exact counters even under concurrency: misses = distinct
        // keys, regardless of which client got there first.
        assert_eq!(stats.cache_misses, plan_queries_per_pass);
        assert_eq!(
            stats.cache_hits,
            plan_queries_per_pass * (2 * CLIENTS as u64 - 1)
        );
        assert_eq!(stats.cache_evictions, 0, "unbounded cache never evicts");
    } else {
        assert_eq!(stats.cache_hits + stats.cache_misses, 0);
    }
}

#[test]
fn concurrent_clients_get_serial_identical_bytes_with_cache() {
    for threads in MODES {
        served_bytes_match_serial(true, threads);
    }
}

#[test]
fn concurrent_clients_get_serial_identical_bytes_without_cache() {
    for threads in MODES {
        served_bytes_match_serial(false, threads);
    }
}

#[test]
fn pipelined_submissions_match_tags_in_any_consumption_order() {
    let log = query_log();
    let reference = serial_reference(&log);
    for threads in MODES {
        let server = bind_mode(PlanService::new(), threads);
        let mut client = PlanClient::connect(server.addr())
            .expect("connect")
            .with_pipeline(log.len());

        // Submit the whole log as one-in-flight-each, then consume in
        // REVERSE order: every reply must still land on its own tag.
        let tags: Vec<u64> = log
            .iter()
            .map(|request| {
                client
                    .submit(std::slice::from_ref(request))
                    .expect("submit within depth")
            })
            .collect();
        assert_eq!(client.in_flight(), log.len());
        let mut answers = vec![None; log.len()];
        for (index, &tag) in tags.iter().enumerate().rev() {
            let mut batch = client.take(tag).expect("take by tag");
            assert_eq!(batch.len(), 1);
            answers[index] = batch.pop();
        }
        assert_eq!(client.in_flight(), 0);
        let answers: Vec<Response> = answers.into_iter().map(Option::unwrap).collect();
        assert_eq!(
            codec::encode_responses(&answers).to_vec(),
            reference,
            "pipelined answers diverged from serial ({threads:?})"
        );

        // recv() drains in arrival order and flush-before-read prevents
        // a full-pipeline deadlock.
        let tag_a = client.submit(&log[..3]).expect("submit");
        let tag_b = client.submit(&log[3..5]).expect("submit");
        let (first_tag, first) = client.recv().expect("first reply");
        let (second_tag, second) = client.recv().expect("second reply");
        assert_eq!((first_tag, second_tag), (tag_a, tag_b));
        assert_eq!((first.len(), second.len()), (3, 2));
        assert!(matches!(
            client.recv(),
            Err(hidwa_core::serve::ClientError::Protocol(
                "nothing in flight"
            ))
        ));
    }
}

#[test]
fn pipeline_depth_is_enforced_and_one_shot_requires_drained() {
    let server = bind_mode(PlanService::new(), ThreadModel::Reactor { event_loops: 1 });
    let mut client = PlanClient::connect(server.addr())
        .expect("connect")
        .with_pipeline(2);
    let request = Request::Projection(ProjectionRequest { rate_bps: 1000.0 });
    let _tag_a = client.submit(std::slice::from_ref(&request)).expect("1st");
    let _tag_b = client.submit(std::slice::from_ref(&request)).expect("2nd");
    assert!(matches!(
        client.submit(std::slice::from_ref(&request)),
        Err(hidwa_core::serve::ClientError::Protocol("pipeline full"))
    ));
    assert!(matches!(
        client.query(std::slice::from_ref(&request)),
        Err(hidwa_core::serve::ClientError::Protocol(
            "pipeline not drained"
        ))
    ));
    client.recv().expect("drain 1");
    client.recv().expect("drain 2");
    // Drained: the one-shot API works again.
    assert!(matches!(
        client.ask(request).expect("one-shot after drain"),
        Response::Projection(_)
    ));
}

#[test]
fn slow_loris_is_dropped_without_taking_down_the_server() {
    for threads in MODES {
        let server = PlanServer::bind_with(
            "127.0.0.1:0",
            PlanService::new(),
            ServeConfig {
                threads,
                idle_timeout: Some(Duration::from_millis(150)),
            },
        )
        .expect("bind");

        // Half a header, then sleep past the deadline: the server must
        // drop the connection (read returns EOF)...
        let mut loris = TcpStream::connect(server.addr()).expect("connect");
        loris.write_all(&[0xAB; 7]).expect("half a header");
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("probe timeout");
        let mut probe = [0u8; 1];
        assert_eq!(
            loris.read(&mut probe).expect("dropped by the server"),
            0,
            "slow-loris connection must be closed ({threads:?})"
        );

        // ...while other connections keep being served.
        let mut client = PlanClient::connect(server.addr()).expect("connect");
        let answer = client
            .ask(Request::Projection(ProjectionRequest { rate_bps: 2000.0 }))
            .expect("answer after loris drop");
        assert!(matches!(answer, Response::Projection(_)));
    }
}

#[test]
fn idle_between_frames_is_not_a_slow_loris() {
    for threads in MODES {
        let server = PlanServer::bind_with(
            "127.0.0.1:0",
            PlanService::new(),
            ServeConfig {
                threads,
                idle_timeout: Some(Duration::from_millis(150)),
            },
        )
        .expect("bind");
        let mut client = PlanClient::connect(server.addr()).expect("connect");
        let request = Request::Projection(ProjectionRequest { rate_bps: 3000.0 });
        assert!(matches!(
            client.ask(request).expect("first answer"),
            Response::Projection(_)
        ));
        // Quiet for well past the deadline — but *between* frames, so the
        // connection must survive.
        thread::sleep(Duration::from_millis(400));
        assert!(
            matches!(
                client.ask(request).expect("answer after idling"),
                Response::Projection(_)
            ),
            "keep-alive connection dropped while idle between frames ({threads:?})"
        );
    }
}

#[test]
fn malformed_payload_gets_typed_error_and_connection_survives() {
    for threads in MODES {
        let server = bind_mode(PlanService::new(), threads);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");

        // A well-framed frame whose payload is not a serve envelope.
        wire::write_frame(&mut stream, 7, b"definitely not an envelope").expect("send");
        let (tag, payload) = wire::read_frame(&mut stream, codec::MAX_SERVE_FRAME).expect("reply");
        assert_eq!(tag, 7, "reply echoes the request tag");
        match codec::decode_response(&payload).expect("reply decodes") {
            codec::ResponseEnvelope::Answers(answers) => {
                assert_eq!(answers.len(), 1);
                assert!(matches!(
                    &answers[0],
                    Response::Error(message) if message.contains("bad request")
                ));
            }
            other => panic!("expected an error batch, got {other:?}"),
        }

        // The same connection still answers real queries afterwards.
        let request = Request::Projection(ProjectionRequest { rate_bps: 4000.0 });
        wire::write_frame(&mut stream, 8, &codec::encode_requests(&[request])).expect("send");
        let (tag, payload) = wire::read_frame(&mut stream, codec::MAX_SERVE_FRAME).expect("reply");
        assert_eq!(tag, 8);
        match codec::decode_response(&payload).expect("reply decodes") {
            codec::ResponseEnvelope::Answers(answers) => {
                assert!(matches!(answers[0], Response::Projection(_)));
            }
            other => panic!("expected answers, got {other:?}"),
        }
    }
}

#[test]
fn oversized_frame_drops_the_connection_but_not_the_server() {
    for threads in MODES {
        let server = bind_mode(PlanService::new(), threads);

        // A header announcing a payload far beyond MAX_SERVE_FRAME: the
        // server must refuse to allocate and drop the connection.
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        let mut header = Vec::new();
        header.extend_from_slice(&1u64.to_be_bytes());
        header.extend_from_slice(&(codec::MAX_SERVE_FRAME + 1).to_be_bytes());
        stream.write_all(&header).expect("send header");
        stream.flush().expect("flush");
        let mut probe = [0u8; 1];
        assert_eq!(
            stream.read(&mut probe).expect("read EOF"),
            0,
            "server should close an oversized-frame connection ({threads:?})"
        );

        // The server itself stays up for new clients.
        let mut client = PlanClient::connect(server.addr()).expect("reconnect");
        let answer = client
            .ask(Request::Projection(ProjectionRequest { rate_bps: 1000.0 }))
            .expect("answer after oversized-frame peer");
        assert!(matches!(answer, Response::Projection(_)));
    }
}

#[test]
fn mid_request_disconnects_leave_the_server_serving() {
    for threads in MODES {
        let server = bind_mode(PlanService::new(), threads);

        // Half a header, then disconnect.
        {
            let mut stream = TcpStream::connect(server.addr()).expect("connect");
            stream.write_all(&[0xAB; 7]).expect("partial header");
        }
        // A full header, half a payload, then disconnect.
        {
            let mut stream = TcpStream::connect(server.addr()).expect("connect");
            let mut partial = Vec::new();
            partial.extend_from_slice(&3u64.to_be_bytes());
            partial.extend_from_slice(&64u64.to_be_bytes());
            partial.extend_from_slice(&[0u8; 10]);
            stream.write_all(&partial).expect("partial payload");
        }

        let mut client = PlanClient::connect(server.addr()).expect("connect");
        let answer = client
            .ask(Request::Plan(PlanRequest {
                model: ModelId::VitalsTrend,
                context: WireContext::of(WireLink::WiR),
                objective: Objective::LeafEnergy,
            }))
            .expect("answer after disconnected peers");
        assert!(matches!(answer, Response::Plan(_)));
    }
}

#[test]
fn client_timeout_is_typed_when_the_server_never_replies() {
    use hidwa_core::serve::ClientError;
    use std::net::TcpListener;
    use std::time::Instant;

    // Regression for the ISSUE 9 client-hang bug: a server that accepts
    // the connection and reads the request but never replies (killed with
    // replies outstanding, wedged event loop) used to hang `recv()`
    // forever. With a timeout configured, the client must surface a typed
    // `ClientError::Timeout` within the bound — not block, not panic.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind sink");
    let addr = listener.local_addr().expect("addr");
    let sink = thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        // Swallow whatever the client sends; never write a byte back.
        let mut void = [0u8; 1024];
        while let Ok(n) = stream.read(&mut void) {
            if n == 0 {
                break;
            }
        }
    });

    let mut client = PlanClient::connect(addr)
        .expect("connect")
        .with_timeout(Duration::from_millis(100))
        .expect("set timeout")
        .with_pipeline(4);
    let request = Request::Projection(ProjectionRequest { rate_bps: 1000.0 });
    client
        .submit(std::slice::from_ref(&request))
        .expect("submit");

    let started = Instant::now();
    match client.recv() {
        Err(ClientError::Timeout) => {}
        other => panic!("expected ClientError::Timeout, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "timeout must fire near the configured bound, not hang"
    );
    assert!(
        ClientError::Timeout.to_string().contains("timed out"),
        "timeout error renders a useful message"
    );
    drop(client);
    sink.join().expect("sink thread");
}

#[test]
fn client_initiated_shutdown_is_acknowledged_and_stops_the_workers() {
    for threads in MODES {
        let server = bind_mode(PlanService::new(), threads);
        let addr = server.addr();

        let mut client = PlanClient::connect(addr).expect("connect");
        let answer = client
            .ask(Request::Projection(ProjectionRequest { rate_bps: 2000.0 }))
            .expect("answer");
        assert!(matches!(answer, Response::Projection(_)));
        client.shutdown().expect("bye acknowledged");

        // `wait` returns because the shutdown request stopped the workers.
        let service = server.wait();
        assert_eq!(service.stats().projection_queries, 1);
    }
}
