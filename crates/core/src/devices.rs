//! Catalogue of commercial wearable device classes and their battery-life
//! bands — the data behind Fig. 2.
//!
//! Fig. 2 of the paper is a survey chart: pre-2024 wearables (rings, fitness
//! trackers, earbuds, watches, headphones, smartphones) and the 2024 wave of
//! wearable-AI devices (AI pins, pocket assistants, AI necklaces, smart
//! glasses, mixed-reality headsets), each annotated with its typical battery
//! life.  Here each class carries a representative battery capacity and
//! average platform power so the same bands can be *derived* rather than
//! asserted, and so the human-inspired architecture's effect on each class
//! can be computed.

use hidwa_energy::projection::OperatingBand;
use hidwa_energy::Battery;
use hidwa_units::{Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// Product era, matching the two columns of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceEra {
    /// Established wearables (pre-2024).
    Pre2024,
    /// The 2024 wearable-AI wave.
    WearableAi2024,
}

/// Commercial wearable device classes named in Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceClass {
    /// Smart rings (sleep/vitals tracking).
    SmartRing,
    /// Wrist-worn fitness trackers.
    FitnessTracker,
    /// True-wireless earbuds.
    Earbuds,
    /// Smartwatches.
    Smartwatch,
    /// Over-ear wireless headphones.
    Headphones,
    /// Smartphones (the incumbent hub).
    Smartphone,
    /// Chest/lapel AI pins (camera + mic + projector).
    AiPin,
    /// Hand-held AI pocket assistants.
    PocketAssistant,
    /// AI pendants / necklaces (always-listening mics).
    AiNecklace,
    /// Camera-equipped smart glasses.
    SmartGlasses,
    /// Mixed-reality headsets.
    MixedRealityHeadset,
    /// Biopotential sensor patches (the ULP leaf the paper envisions).
    BiopotentialPatch,
}

impl DeviceClass {
    /// All classes shown in Fig. 2 plus the biopotential patch.
    pub const ALL: [DeviceClass; 12] = [
        DeviceClass::SmartRing,
        DeviceClass::FitnessTracker,
        DeviceClass::Earbuds,
        DeviceClass::Smartwatch,
        DeviceClass::Headphones,
        DeviceClass::Smartphone,
        DeviceClass::AiPin,
        DeviceClass::PocketAssistant,
        DeviceClass::AiNecklace,
        DeviceClass::SmartGlasses,
        DeviceClass::MixedRealityHeadset,
        DeviceClass::BiopotentialPatch,
    ];

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            DeviceClass::SmartRing => "smart ring",
            DeviceClass::FitnessTracker => "fitness tracker",
            DeviceClass::Earbuds => "earbuds",
            DeviceClass::Smartwatch => "smartwatch",
            DeviceClass::Headphones => "headphones",
            DeviceClass::Smartphone => "smartphone",
            DeviceClass::AiPin => "AI pin",
            DeviceClass::PocketAssistant => "AI pocket assistant",
            DeviceClass::AiNecklace => "AI necklace",
            DeviceClass::SmartGlasses => "smart glasses",
            DeviceClass::MixedRealityHeadset => "mixed-reality headset",
            DeviceClass::BiopotentialPatch => "biopotential patch",
        }
    }
}

impl core::fmt::Display for DeviceClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A device profile: class, era, battery and average platform power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    class: DeviceClass,
    era: DeviceEra,
    battery: Battery,
    average_power: Power,
    /// Battery-life band the paper's Fig. 2 assigns to this class.
    paper_band: OperatingBand,
}

impl DeviceProfile {
    /// Creates a profile.
    #[must_use]
    pub fn new(
        class: DeviceClass,
        era: DeviceEra,
        battery: Battery,
        average_power: Power,
        paper_band: OperatingBand,
    ) -> Self {
        Self {
            class,
            era,
            battery,
            average_power,
            paper_band,
        }
    }

    /// Device class.
    #[must_use]
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Product era.
    #[must_use]
    pub fn era(&self) -> DeviceEra {
        self.era
    }

    /// Battery model.
    #[must_use]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Average platform power.
    #[must_use]
    pub fn average_power(&self) -> Power {
        self.average_power
    }

    /// Battery-life band the paper assigns (ground truth for the check).
    #[must_use]
    pub fn paper_band(&self) -> OperatingBand {
        self.paper_band
    }

    /// Battery life derived from the profile's battery and power.
    #[must_use]
    pub fn derived_battery_life(&self) -> TimeSpan {
        self.battery.lifetime(self.average_power)
    }

    /// Battery-life band derived from the model.
    #[must_use]
    pub fn derived_band(&self) -> OperatingBand {
        OperatingBand::classify(self.derived_battery_life())
    }

    /// `true` when the derived band matches the paper's assignment.
    #[must_use]
    pub fn band_matches_paper(&self) -> bool {
        self.derived_band() == self.paper_band
    }
}

/// The full Fig. 2 catalogue with representative batteries and power budgets.
///
/// Power budgets are survey midpoints for each product class; capacities are
/// typical shipping configurations.
#[must_use]
pub fn catalog() -> Vec<DeviceProfile> {
    use DeviceClass as C;
    use DeviceEra as E;
    vec![
        // Pre-2024 wearables.
        DeviceProfile::new(
            C::SmartRing,
            E::Pre2024,
            Battery::lipo_mah(20.0),
            Power::from_micro_watts(350.0),
            OperatingBand::AllWeek,
        ),
        DeviceProfile::new(
            C::FitnessTracker,
            E::Pre2024,
            Battery::lipo_mah(160.0),
            Power::from_milli_watts(2.5),
            OperatingBand::AllWeek,
        ),
        DeviceProfile::new(
            C::Earbuds,
            E::Pre2024,
            Battery::lipo_mah(60.0),
            Power::from_milli_watts(8.0),
            OperatingBand::AllDay,
        ),
        DeviceProfile::new(
            C::Smartwatch,
            E::Pre2024,
            Battery::lipo_mah(300.0),
            Power::from_milli_watts(30.0),
            OperatingBand::AllDay,
        ),
        DeviceProfile::new(
            C::Headphones,
            E::Pre2024,
            Battery::lipo_mah(700.0),
            Power::from_milli_watts(60.0),
            OperatingBand::AllDay,
        ),
        DeviceProfile::new(
            C::Smartphone,
            E::Pre2024,
            Battery::lipo_mah(4500.0),
            Power::from_milli_watts(2000.0),
            OperatingBand::SubDay,
        ),
        // 2024 wearable-AI devices.
        DeviceProfile::new(
            C::AiPin,
            E::WearableAi2024,
            Battery::lipo_mah(300.0),
            Power::from_milli_watts(40.0),
            OperatingBand::AllDay,
        ),
        DeviceProfile::new(
            C::PocketAssistant,
            E::WearableAi2024,
            Battery::lipo_mah(1000.0),
            Power::from_milli_watts(120.0),
            OperatingBand::AllDay,
        ),
        DeviceProfile::new(
            C::AiNecklace,
            E::WearableAi2024,
            Battery::lipo_mah(250.0),
            Power::from_milli_watts(30.0),
            OperatingBand::AllDay,
        ),
        DeviceProfile::new(
            C::SmartGlasses,
            E::WearableAi2024,
            Battery::lipo_mah(160.0),
            Power::from_milli_watts(150.0),
            OperatingBand::SubDay,
        ),
        DeviceProfile::new(
            C::MixedRealityHeadset,
            E::WearableAi2024,
            Battery::lipo_mah(5000.0),
            Power::from_milli_watts(4500.0),
            OperatingBand::SubDay,
        ),
        // The ULP leaf the paper envisions (for the Fig. 3 markers).
        DeviceProfile::new(
            C::BiopotentialPatch,
            E::WearableAi2024,
            Battery::coin_cell_1000mah(),
            Power::from_micro_watts(20.0),
            OperatingBand::Perpetual,
        ),
    ]
}

/// Looks up a class in the catalogue.
#[must_use]
pub fn profile_for(class: DeviceClass) -> Option<DeviceProfile> {
    catalog().into_iter().find(|p| p.class() == class)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_every_class() {
        let cat = catalog();
        for class in DeviceClass::ALL {
            assert!(
                cat.iter().any(|p| p.class() == class),
                "missing profile for {class}"
            );
        }
        assert_eq!(cat.len(), DeviceClass::ALL.len());
    }

    #[test]
    fn derived_bands_match_fig2() {
        // The reproduction check for Fig. 2: every derived band equals the
        // band the paper assigns.
        for profile in catalog() {
            assert!(
                profile.band_matches_paper(),
                "{}: derived {} ({} days) but paper says {}",
                profile.class(),
                profile.derived_band(),
                profile.derived_battery_life().as_days(),
                profile.paper_band()
            );
        }
    }

    #[test]
    fn specific_fig2_anchor_points() {
        // Smart glasses and MR headsets: 3–5 h battery life.
        let glasses = profile_for(DeviceClass::SmartGlasses).unwrap();
        let hours = glasses.derived_battery_life().as_hours();
        assert!((3.0..=5.5).contains(&hours), "glasses {hours} h");
        let mr = profile_for(DeviceClass::MixedRealityHeadset).unwrap();
        let hours = mr.derived_battery_life().as_hours();
        assert!((3.0..=5.5).contains(&hours), "MR headset {hours} h");
        // Smartphone: < 10 h under heavy use.
        let phone = profile_for(DeviceClass::Smartphone).unwrap();
        assert!(phone.derived_battery_life().as_hours() < 10.0);
        // Rings and trackers: all-week.
        assert!(
            profile_for(DeviceClass::SmartRing)
                .unwrap()
                .derived_battery_life()
                .as_days()
                >= 7.0
        );
        assert!(
            profile_for(DeviceClass::FitnessTracker)
                .unwrap()
                .derived_battery_life()
                .as_days()
                >= 7.0
        );
    }

    #[test]
    fn eras_are_assigned() {
        let cat = catalog();
        assert!(cat.iter().any(|p| p.era() == DeviceEra::Pre2024));
        assert!(cat.iter().any(|p| p.era() == DeviceEra::WearableAi2024));
    }

    #[test]
    fn accessors_and_display() {
        let ring = profile_for(DeviceClass::SmartRing).unwrap();
        assert_eq!(ring.class().to_string(), "smart ring");
        assert!(ring.average_power() > Power::ZERO);
        assert!(ring.battery().capacity().as_milli_amp_hours() > 0.0);
        assert!(
            profile_for(DeviceClass::BiopotentialPatch)
                .unwrap()
                .paper_band()
                == OperatingBand::Perpetual
        );
    }
}
