//! Error type for the core crate.

use core::fmt;

/// Errors produced by the HIDWA core analyses.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A configuration parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: String,
    },
    /// A requested workload cannot be executed on the selected engine
    /// (e.g. it exceeds the engine's peak throughput).
    WorkloadInfeasible {
        /// Description of the infeasibility.
        reason: String,
    },
}

impl CoreError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        CoreError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            CoreError::WorkloadInfeasible { reason } => {
                write!(f, "workload infeasible: {reason}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::invalid("x", "y")
            .to_string()
            .contains("invalid parameter"));
        let e = CoreError::WorkloadInfeasible {
            reason: "too many MACs".into(),
        };
        assert!(e.to_string().contains("infeasible"));
    }
}
