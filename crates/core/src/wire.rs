//! Length-prefixed TCP framing shared by the fleet blob transport and the
//! plan server.
//!
//! Both long-running socket endpoints in the repo move opaque payloads in the
//! same shape — the fleet coordinator's
//! [`SocketHub`](crate::fleet::driver::transport::SocketHub) receives
//! checkpoint blobs, and the [`serve`](crate::serve) front-end exchanges
//! request/response batches — so the frame layer lives here exactly once:
//!
//! ```text
//! tag      u64 big-endian   (shard index / request correlation id)
//! length   u64 big-endian   (payload bytes that follow)
//! payload  `length` bytes   (opaque to this layer)
//! ```
//!
//! A frame says nothing about what the payload *means*; validation (checkpoint
//! checksums, request codecs) belongs to the layer above, which is why a
//! malformed payload is a recoverable application event while a malformed
//! *frame* tears down the connection — after a framing violation there is no
//! way to know where the next frame starts.
//!
//! Readers must pass a payload cap: a length prefix is attacker-(or bit-rot-)
//! controlled input, and the cap is what turns "allocate 2^63 bytes" into a
//! typed [`FrameError::Oversized`].
//!
//! # Example
//!
//! ```
//! use hidwa_core::wire::{read_frame, write_frame};
//!
//! let mut pipe: Vec<u8> = Vec::new();
//! write_frame(&mut pipe, 7, b"payload").unwrap();
//! let (tag, payload) = read_frame(&mut pipe.as_slice(), 1024).unwrap();
//! assert_eq!((tag, payload.as_slice()), (7, &b"payload"[..]));
//! ```

use std::io::{Read, Write};

/// The single-byte acknowledgement endpoints send after durably storing a
/// frame's payload (used by the blob transport's publish/ack exchange).
pub const ACK: u8 = 0x06;

/// The single-byte *negative* acknowledgement: the frame was well-formed
/// but the receiver refused to store its payload (e.g. the blob hub's
/// buffer budget is exhausted).  The sender may retry later — unlike a
/// framing violation, a NAK leaves the protocol state clean.
pub const NAK: u8 = 0x15;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket or stream operation failed (including EOF in
    /// the middle of a header or payload).
    Io(std::io::Error),
    /// The length prefix exceeds the reader's payload cap — the peer is not
    /// speaking this protocol (or the stream is corrupt), so the connection
    /// cannot be resynchronised.
    Oversized {
        /// Length the prefix claimed.
        len: u64,
        /// Cap the reader enforces.
        cap: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(error) => write!(f, "frame I/O error: {error}"),
            Self::Oversized { len, cap } => {
                write!(f, "frame payload of {len} bytes exceeds the {cap}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(error) => Some(error),
            Self::Oversized { .. } => None,
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(error: std::io::Error) -> Self {
        Self::Io(error)
    }
}

/// Appends one `tag · length · payload` frame to an in-memory buffer
/// without any I/O.
///
/// This is the building block both senders share: the blocking
/// [`write_frame`] wraps it around a single `write_all`, and the pipelined
/// client / reactor write paths accumulate several frames in one buffer so
/// a burst of responses leaves in one syscall.
pub fn append_frame(buffer: &mut Vec<u8>, tag: u64, payload: &[u8]) {
    buffer.reserve(16 + payload.len());
    buffer.extend_from_slice(&tag.to_be_bytes());
    buffer.extend_from_slice(&(payload.len() as u64).to_be_bytes());
    buffer.extend_from_slice(payload);
}

/// Writes one `tag · length · payload` frame and flushes the writer.
///
/// Header and payload go out as a single `write_all`: request/response
/// frames are latency-sensitive, and three small writes on a TCP stream
/// interact pathologically with Nagle's algorithm and delayed ACKs
/// (~40 ms stalls per round trip).
///
/// # Errors
/// [`std::io::Error`] when the writer fails; a frame is only considered sent
/// once the flush returns.
pub fn write_frame(writer: &mut impl Write, tag: u64, payload: &[u8]) -> std::io::Result<()> {
    let mut frame = Vec::with_capacity(16 + payload.len());
    append_frame(&mut frame, tag, payload);
    writer.write_all(&frame)?;
    writer.flush()
}

/// Reads one frame, enforcing `cap` on the payload length *before*
/// allocating anything.
///
/// # Errors
/// * [`FrameError::Io`] — the stream failed or ended mid-frame,
/// * [`FrameError::Oversized`] — the length prefix exceeds `cap`.
pub fn read_frame(reader: &mut impl Read, cap: u64) -> Result<(u64, Vec<u8>), FrameError> {
    let mut header = [0u8; 16];
    reader.read_exact(&mut header)?;
    let tag = u64::from_be_bytes(header[..8].try_into().expect("8-byte half"));
    let len = u64::from_be_bytes(header[8..].try_into().expect("8-byte half"));
    if len > cap {
        return Err(FrameError::Oversized { len, cap });
    }
    let mut payload = vec![0u8; usize::try_from(len).expect("cap fits usize")];
    reader.read_exact(&mut payload)?;
    Ok((tag, payload))
}

/// Incremental, I/O-free frame assembly for nonblocking readers.
///
/// A readiness-driven connection receives bytes in whatever chunks the
/// kernel hands it — half a header, three frames and a prefix, one byte at a
/// time.  The decoder is the state machine that turns that stream back into
/// frames: header-partial → payload-partial → complete, over and over, with
/// the exact semantics of the blocking [`read_frame`]:
///
/// * the payload cap is enforced as soon as the 16 header bytes are
///   assembled, **before** any payload allocation (`cap-before-allocate`);
/// * frames come out in stream order, byte-identical to what repeated
///   [`read_frame`] calls would return (property-tested against it over
///   random chunk boundaries in `crates/core/tests/wire_decoder.rs`);
/// * a violation is sticky — after [`FrameError::Oversized`] the stream has
///   no findable next boundary, so every later [`feed`](Self::feed) repeats
///   the error and the connection must be dropped.
///
/// # Example
///
/// ```
/// use hidwa_core::wire::FrameDecoder;
///
/// let mut wire: Vec<u8> = Vec::new();
/// hidwa_core::wire::write_frame(&mut wire, 7, b"payload").unwrap();
/// let mut decoder = FrameDecoder::new(1024);
/// let mut frames = Vec::new();
/// // Delivered as two arbitrary chunks:
/// decoder.feed(&wire[..5], &mut frames).unwrap();
/// assert!(frames.is_empty() && decoder.mid_frame());
/// decoder.feed(&wire[5..], &mut frames).unwrap();
/// assert_eq!(frames, vec![(7, b"payload".to_vec())]);
/// assert!(!decoder.mid_frame());
/// ```
#[derive(Debug)]
pub struct FrameDecoder {
    cap: u64,
    /// Header bytes assembled so far (meaningful while `payload_need` is
    /// `None`).
    header: [u8; 16],
    header_filled: usize,
    /// `Some(len)` once a header committed to a payload of `len` bytes.
    payload_need: Option<usize>,
    payload: Vec<u8>,
    tag: u64,
    /// A framing violation observed earlier; replayed on every later feed.
    poisoned: Option<(u64, u64)>,
}

impl FrameDecoder {
    /// A decoder enforcing `cap` on every frame's payload length.
    #[must_use]
    pub fn new(cap: u64) -> Self {
        Self {
            cap,
            header: [0u8; 16],
            header_filled: 0,
            payload_need: None,
            payload: Vec::new(),
            tag: 0,
            poisoned: None,
        }
    }

    /// Whether the decoder sits in the middle of a frame (a partial header
    /// or a partial payload).  This is what idle-timeout enforcement keys
    /// on: a peer that stalls *mid-frame* is a slow-loris, a peer idle
    /// *between* frames is just quiet.
    #[must_use]
    pub fn mid_frame(&self) -> bool {
        self.header_filled > 0 || self.payload_need.is_some()
    }

    /// Feeds one received chunk, appending every frame it completes (in
    /// stream order) to `frames`.
    ///
    /// # Errors
    /// [`FrameError::Oversized`] when a header's length prefix exceeds the
    /// cap — raised the moment the header is complete, before any payload
    /// byte arrives or is allocated, and sticky thereafter.
    pub fn feed(
        &mut self,
        mut chunk: &[u8],
        frames: &mut Vec<(u64, Vec<u8>)>,
    ) -> Result<(), FrameError> {
        if let Some((len, cap)) = self.poisoned {
            return Err(FrameError::Oversized { len, cap });
        }
        while !chunk.is_empty() || self.payload_need == Some(0) {
            match self.payload_need {
                None => {
                    let take = (16 - self.header_filled).min(chunk.len());
                    self.header[self.header_filled..self.header_filled + take]
                        .copy_from_slice(&chunk[..take]);
                    self.header_filled += take;
                    chunk = &chunk[take..];
                    if self.header_filled < 16 {
                        break;
                    }
                    self.tag = u64::from_be_bytes(self.header[..8].try_into().expect("8 bytes"));
                    let len = u64::from_be_bytes(self.header[8..].try_into().expect("8 bytes"));
                    if len > self.cap {
                        self.poisoned = Some((len, self.cap));
                        return Err(FrameError::Oversized { len, cap: self.cap });
                    }
                    self.header_filled = 0;
                    let need = usize::try_from(len).expect("cap fits usize");
                    self.payload_need = Some(need);
                    self.payload = Vec::with_capacity(need);
                }
                Some(need) => {
                    let take = (need - self.payload.len()).min(chunk.len());
                    self.payload.extend_from_slice(&chunk[..take]);
                    chunk = &chunk[take..];
                    if self.payload.len() == need {
                        self.payload_need = None;
                        frames.push((self.tag, std::mem::take(&mut self.payload)));
                    } else {
                        break;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, 1, b"first").unwrap();
        write_frame(&mut pipe, u64::MAX, b"").unwrap();
        write_frame(&mut pipe, 2, &[0xAB; 300]).unwrap();
        let mut reader = pipe.as_slice();
        assert_eq!(
            read_frame(&mut reader, 1024).unwrap(),
            (1, b"first".to_vec())
        );
        assert_eq!(read_frame(&mut reader, 1024).unwrap(), (u64::MAX, vec![]));
        assert_eq!(read_frame(&mut reader, 1024).unwrap(), (2, vec![0xAB; 300]));
        assert!(matches!(
            read_frame(&mut reader, 1024),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut pipe: Vec<u8> = Vec::new();
        pipe.extend_from_slice(&3u64.to_be_bytes());
        pipe.extend_from_slice(&u64::MAX.to_be_bytes());
        match read_frame(&mut pipe.as_slice(), 1024) {
            Err(FrameError::Oversized { len, cap }) => {
                assert_eq!((len, cap), (u64::MAX, 1024));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn truncated_header_and_payload_error() {
        // Header cut short.
        assert!(matches!(
            read_frame(&mut &[1u8, 2, 3][..], 1024),
            Err(FrameError::Io(_))
        ));
        // Payload cut short.
        let mut pipe: Vec<u8> = Vec::new();
        write_frame(&mut pipe, 9, b"whole payload").unwrap();
        pipe.truncate(pipe.len() - 4);
        assert!(matches!(
            read_frame(&mut pipe.as_slice(), 1024),
            Err(FrameError::Io(_))
        ));
        let shown = format!(
            "{} / {}",
            FrameError::Oversized { len: 9, cap: 4 },
            FrameError::from(std::io::Error::other("boom"))
        );
        assert!(shown.contains("9 bytes") && shown.contains("boom"));
    }
}
