//! Human-Inspired Distributed Wearable AI (HIDWA): the paper's architecture
//! as a library.
//!
//! The crate assembles the substrates — unit types, energy models, EQS-HBC
//! channel, Wi-R/BLE PHYs, the tiny-DNN library and the network simulator —
//! into the analyses the paper presents:
//!
//! * [`devices`] — a profile catalogue of commercial wearable classes and
//!   their battery-life bands (Fig. 2).
//! * [`arch`] — the two node architectures the paper contrasts: today's
//!   CPU-plus-radio IoB node versus the human-inspired sensor + ISA + Wi-R
//!   leaf node, with per-component power breakdowns (Fig. 1).
//! * [`projection`] — battery life versus data rate under Wi-R with the
//!   sensing-power survey model and the 1000 mAh reference cell (Fig. 3).
//! * [`partition`] — the DNN partitioning optimiser that decides how much of
//!   a wearable AI workload runs on the leaf versus the hub, for a given
//!   radio (the quantitative core of the distributed-intelligence vision).
//! * [`scenario`] — turn-key body-area network scenarios built on the
//!   discrete-event simulator, used by the examples and benches.
//! * [`sweep`] — the parallel sweep runner that fans figure-scale grids
//!   (model × context × objective, multi-seed simulation batches) across
//!   threads with deterministic, serial-identical output ordering.
//! * [`population`] — weighted body archetypes (leaf sets, traffic mixes,
//!   radios, MAC policies) sampled deterministically into per-body scenarios:
//!   heterogeneous fleets as a pure function of `(base_seed, body_index)`.
//! * [`fleet`] — streaming fleet simulation of independent body networks over
//!   the sweep runner: per-body seeds, bounded per-body summaries and a
//!   bounded-memory aggregator whose state is independent of fleet size (the
//!   millions-of-users direction).
//! * [`search`] — fleet-scale configuration search: a discrete objective
//!   grid (MAC × objective × radio × traffic scaling × churn policy), one
//!   exact fleet fold per evaluation, exhaustive-grid and
//!   coordinate-descent strategies, and a sealed resumable index of
//!   completed evaluations (the production question "which config do we
//!   ship to the fleet").
//! * [`wire`] — the length-prefixed socket framing shared by the fleet blob
//!   transport and the plan server (one implementation, capped reads, typed
//!   errors).
//! * [`serve`] — the partition optimiser and Fig. 3 projector as a warm,
//!   long-running TCP service: sealed binary codec, exact interned-key plan
//!   cache, std-only thread-per-connection front-end and matching client.
//!
//! # Caching and ownership model
//!
//! The sweep pipeline is allocation-free on its hot path by construction:
//! [`hidwa_isa::models::WearableModel`] owns per-model caches (layer
//! profiles, cut points, total MACs) computed once at construction, and the
//! [`partition`] optimiser borrows those cached slices rather than
//! re-deriving them.  Labels that appear on every plan (context label, model
//! name) are interned `Arc<str>`s shared between the long-lived owner
//! (context/model) and the plans derived from it, so labelling is a
//! reference-count bump.  See the [`partition`] module docs for the exact
//! fast-path guarantees.
//!
//! # Quick start
//!
//! ```
//! use hidwa_core::arch::{NodeArchitecture, WorkloadSpec};
//! use hidwa_core::projection::Fig3Projector;
//! use hidwa_units::DataRate;
//!
//! // Fig. 1: the same ECG workload on both architectures.
//! let workload = WorkloadSpec::ecg_patch();
//! let conventional = NodeArchitecture::conventional().power_breakdown(&workload);
//! let human_inspired = NodeArchitecture::human_inspired().power_breakdown(&workload);
//! assert!(human_inspired.total() < conventional.total());
//!
//! // Fig. 3: a 4 kbps biopotential node is perpetually operable.
//! let projector = Fig3Projector::paper_defaults();
//! let point = projector.project_rate(DataRate::from_kbps(4.0));
//! assert!(point.battery_life.as_years() > 1.0);
//! ```

// `deny`, not `forbid`: the epoll syscall shim (`serve::sys`) is the single
// module allowed to opt back in — every other line of the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod devices;
mod error;
pub mod fleet;
pub mod partition;
pub mod population;
pub mod projection;
pub mod scenario;
pub mod search;
pub mod serve;
pub mod sweep;
pub mod wire;

pub use error::CoreError;
