//! Parallel sweep execution for figure-scale workloads.
//!
//! Every quantitative figure in the paper is a grid: partition optimisation
//! over (model × context × objective), network simulation over
//! (technology × MAC policy × leaf count × seed), ablations over
//! (workload × parameter step).  [`SweepRunner`] fans such grids out across
//! OS threads and returns results **in deterministic input order**, so a
//! parallel sweep produces byte-identical output to the serial loop it
//! replaces.
//!
//! # Implementation notes
//!
//! The build container has no registry access, so `rayon` cannot be a
//! dependency; the runner ships its own work-stealing-lite pool built on
//! `std::thread::scope` — an atomic work index, one channel for `(index,
//! result)` pairs, results re-slotted by index.  The `map` shape matches
//! `rayon`'s indexed `par_iter().map().collect()`, so swapping the internals
//! for rayon when a registry is available is a one-function change.
//!
//! Worker panics propagate to the caller (the scope joins every thread), and
//! the thread count is capped by `available_parallelism`, overridable with
//! the `HIDWA_SWEEP_THREADS` environment variable (`1` forces serial
//! execution, e.g. when profiling).

use crate::partition::{Objective, PartitionContext, PartitionOptimizer, PartitionPlan};
use hidwa_isa::models::WearableModel;
use hidwa_netsim::sim::{Simulation, SimulationReport};
use hidwa_units::TimeSpan;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

/// One (model × context × objective) cell of a partition sweep.
#[derive(Debug, Clone)]
pub struct PartitionCell {
    /// Index into the sweep's model list.
    pub model_index: usize,
    /// Index into the sweep's context list.
    pub context_index: usize,
    /// Objective this cell optimised for.
    pub objective: Objective,
    /// Interned model name.
    pub model: Arc<str>,
    /// Interned context label.
    pub context: Arc<str>,
    /// Every cut of the model evaluated in this context, in cut order.
    pub plans: Vec<PartitionPlan>,
    /// The streaming optimum (`None` when no cut is feasible).
    pub best: Option<PartitionPlan>,
}

impl PartitionCell {
    /// Cut index of the optimum, if any cut is feasible.
    #[must_use]
    pub fn best_cut(&self) -> Option<usize> {
        self.best.as_ref().map(|p| p.cut_index)
    }
}

/// Deterministic parallel map over sweep grids.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// Runner using every available core (or `HIDWA_SWEEP_THREADS` if set).
    #[must_use]
    pub fn new() -> Self {
        let threads = std::env::var("HIDWA_SWEEP_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Self { threads }
    }

    /// Runner that executes everything on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// Runner with an explicit thread count (minimum 1).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Number of worker threads this runner will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, returning results in item
    /// order.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.map_indexed(items, |_, item| f(item))
    }

    /// [`SweepRunner::map`] with the item index passed to the closure.
    ///
    /// # Panics
    /// Propagates panics from `f` (workers are joined before returning).
    pub fn map_indexed<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync,
    {
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return items
                .iter()
                .enumerate()
                .map(|(index, item)| f(index, item))
                .collect();
        }

        let next = AtomicUsize::new(0);
        let (sender, receiver) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let sender = sender.clone();
                let next = &next;
                let f = &f;
                scope.spawn(move || loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    let value = f(index, &items[index]);
                    if sender.send((index, value)).is_err() {
                        break;
                    }
                });
            }
        });
        drop(sender);

        let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
        for (index, value) in receiver {
            slots[index] = Some(value);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every index was processed by a worker"))
            .collect()
    }

    /// Evaluates the full (model × context × objective) partition grid.
    ///
    /// Cells are returned model-major, then context, then objective — the
    /// same order as the equivalent triple-nested serial loop.
    #[must_use]
    pub fn partition_grid(
        &self,
        models: &[WearableModel],
        contexts: &[PartitionContext],
        objectives: &[Objective],
    ) -> Vec<PartitionCell> {
        let combos: Vec<(usize, usize, usize)> = (0..models.len())
            .flat_map(|m| {
                (0..contexts.len()).flat_map(move |c| (0..objectives.len()).map(move |o| (m, c, o)))
            })
            .collect();
        self.map(&combos, |&(m, c, o)| {
            let model = &models[m];
            let context = &contexts[c];
            let objective = objectives[o];
            let optimizer = PartitionOptimizer::new(context.clone());
            let plans = optimizer
                .evaluate_all(model)
                .expect("cached cut points are always enumerable");
            // `plans` already holds every evaluated cut, so the optimum is a
            // scan over it (same first-minimum/NaN semantics as the streaming
            // `optimize`) rather than a second evaluation pass.
            let key = |p: &PartitionPlan| match objective {
                Objective::LeafEnergy => p.leaf_energy.as_joules(),
                Objective::Latency => p.latency.as_seconds(),
                Objective::EnergyDelayProduct => p.energy_delay_product(),
            };
            let best = plans
                .iter()
                .filter(|p| p.feasible)
                .min_by(|a, b| {
                    key(a)
                        .partial_cmp(&key(b))
                        .unwrap_or(core::cmp::Ordering::Equal)
                })
                .cloned();
            PartitionCell {
                model_index: m,
                context_index: c,
                objective,
                model: Arc::clone(model.interned_name()),
                context: Arc::clone(context.interned_label()),
                plans,
                best,
            }
        })
    }

    /// Runs one simulation per seed, in parallel, reports in seed order.
    ///
    /// `build` constructs a fresh [`Simulation`] for a seed (typically
    /// `scenario::body_network(...).with_seed(seed)`); each worker runs its
    /// own instance for `horizon` of simulated time.
    pub fn simulate_seeds<B>(
        &self,
        seeds: &[u64],
        horizon: TimeSpan,
        build: B,
    ) -> Vec<SimulationReport>
    where
        B: Fn(u64) -> Simulation + Sync,
    {
        self.map(seeds, |&seed| {
            let mut sim = build(seed);
            sim.run(horizon)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;
    use hidwa_isa::models;
    use hidwa_netsim::mac::MacPolicy;
    use hidwa_phy::RadioTechnology;

    #[test]
    fn map_preserves_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for runner in [
            SweepRunner::serial(),
            SweepRunner::with_threads(3),
            SweepRunner::new(),
        ] {
            assert_eq!(runner.map(&items, |&x| x * 3 + 1), expected);
        }
        assert_eq!(SweepRunner::with_threads(0).threads(), 1);
        assert!(SweepRunner::new().threads() >= 1);
    }

    #[test]
    fn map_indexed_passes_true_indices() {
        let items = ["a", "b", "c", "d"];
        let tagged = SweepRunner::with_threads(4).map_indexed(&items, |i, s| format!("{i}{s}"));
        assert_eq!(tagged, vec!["0a", "1b", "2c", "3d"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: Vec<u32> = Vec::new();
        assert!(SweepRunner::new().map(&empty, |&x| x).is_empty());
    }

    #[test]
    fn partition_grid_matches_serial_optimizer() {
        let models = models::all_models();
        let contexts = [
            PartitionContext::wir_default(),
            PartitionContext::ble_default(),
        ];
        let objectives = [Objective::LeafEnergy, Objective::Latency];
        let cells = SweepRunner::new().partition_grid(&models, &contexts, &objectives);
        assert_eq!(
            cells.len(),
            models.len() * contexts.len() * objectives.len()
        );

        let mut iter = cells.iter();
        for (m, model) in models.iter().enumerate() {
            for (c, context) in contexts.iter().enumerate() {
                let optimizer = PartitionOptimizer::new(context.clone());
                for &objective in &objectives {
                    let cell = iter.next().unwrap();
                    assert_eq!((cell.model_index, cell.context_index), (m, c));
                    assert_eq!(cell.objective, objective);
                    assert_eq!(&*cell.model, model.name());
                    assert_eq!(&*cell.context, context.label());
                    assert_eq!(cell.plans.len(), model.cut_points().len());
                    let serial_best = optimizer.optimize(model, objective).ok();
                    assert_eq!(cell.best_cut(), serial_best.map(|p| p.cut_index));
                }
            }
        }
    }

    #[test]
    fn simulate_seeds_is_deterministic_per_seed() {
        let runner = SweepRunner::new();
        let seeds = [1u64, 2, 3, 1];
        let horizon = TimeSpan::from_seconds(3.0);
        let reports = runner.simulate_seeds(&seeds, horizon, |seed| {
            let mut sim = scenario::standard_body_network(RadioTechnology::WiR);
            sim = sim.with_seed(seed);
            sim
        });
        assert_eq!(reports.len(), 4);
        // Same seed, same result — including across different worker threads.
        assert_eq!(
            reports[0].node_stats()[0].delivered_bytes,
            reports[3].node_stats()[0].delivered_bytes
        );
        for report in &reports {
            assert!(report.delivery_ratio() > 0.9);
        }
        let _ = MacPolicy::Polling; // scenario default; referenced for clarity
    }
}
