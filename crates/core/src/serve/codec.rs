//! Versioned, checksummed binary codec for plan-server requests and
//! responses.
//!
//! The wire discipline mirrors the fleet checkpoint format
//! ([`FleetCheckpoint`](crate::fleet::FleetCheckpoint)): every envelope
//! leads with a magic and a format version, ends with an FNV-1a-64 seal over
//! every preceding byte, and decoding **never panics** — truncated,
//! bit-flipped, version-bumped or otherwise malformed bytes come back as a
//! typed [`WireCodecError`], and every enumeration byte is range-checked so
//! a blob that passes the checksum but names an unknown model, objective or
//! link is still rejected.
//!
//! # Envelope layout (version 1, big-endian)
//!
//! Request (magic `b"HIDWAPLQ"`):
//!
//! ```text
//! magic     8 bytes     b"HIDWAPLQ"
//! version   u16         (currently 1)
//! kind      u8          0 = query batch · 1 = shutdown
//! count     u16         queries in the batch (0 for shutdown)
//! items     count × query (see below)
//! checksum  u64         FNV-1a 64 over every preceding byte
//! ```
//!
//! Response (magic `b"HIDWAPLR"`): same shape with kind `0` = answer batch,
//! `1` = shutdown acknowledgement ("bye").
//!
//! Each query item is `kind u8` (`0` plan, `1` projection) followed by the
//! fixed-size body documented on [`PlanRequest`] / [`ProjectionRequest`];
//! each answer item is `kind u8` (`0` plan, `1` infeasible, `2` projection,
//! `3` error) followed by the body documented on [`Response`].  The
//! normative field-by-field table lives in `ARCHITECTURE.md`.

use crate::partition::Objective;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hidwa_eqs::body::BodySite;
use hidwa_phy::RadioTechnology;

/// Leading magic of every request envelope.
pub const REQUEST_MAGIC: &[u8; 8] = b"HIDWAPLQ";

/// Leading magic of every response envelope.
pub const RESPONSE_MAGIC: &[u8; 8] = b"HIDWAPLR";

/// Current serve wire-format version.
pub const WIRE_VERSION: u16 = 1;

/// Payload cap a serve endpoint enforces when reading frames: a maximal
/// batch ([`MAX_BATCH`] worst-case items) fits comfortably, anything larger
/// is garbage, not a query.
pub const MAX_SERVE_FRAME: u64 = 1 << 20;

/// Most queries (or answers) one envelope may carry.
pub const MAX_BATCH: usize = 4096;

/// Bytes of envelope that must exist before payload decoding can start:
/// magic + version + kind + count + trailing checksum.
const ENVELOPE: usize = 8 + 2 + 1 + 2 + 8;

/// Why serve bytes failed to decode.  Decoding never panics and never
/// mis-accepts: every malformed input maps to one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireCodecError {
    /// The input ended before the encoded structure was complete.
    Truncated,
    /// The leading magic matches neither envelope — not serve traffic.
    BadMagic,
    /// The format version is one this build does not understand.
    UnsupportedVersion(u16),
    /// The bytes are structurally complete but fail the checksum or carry a
    /// field outside its domain (unknown model, non-finite rate, …).
    Corrupt(&'static str),
}

impl std::fmt::Display for WireCodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "serve envelope truncated"),
            Self::BadMagic => write!(f, "not a serve envelope (bad magic)"),
            Self::UnsupportedVersion(version) => {
                write!(f, "unsupported serve wire version {version}")
            }
            Self::Corrupt(what) => write!(f, "serve envelope corrupt: {what}"),
        }
    }
}

impl std::error::Error for WireCodecError {}

/// The five models of the wearable zoo, as stable wire identifiers.
///
/// The discriminants are normative: they index the
/// [`PlanService`](super::PlanService)'s pre-built zoo and appear verbatim
/// on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ModelId {
    /// `ecg_arrhythmia_cnn` — single-lead ECG arrhythmia classifier.
    EcgArrhythmia = 0,
    /// `imu_gesture_cnn` — 6-axis IMU gesture recogniser.
    ImuGesture = 1,
    /// `keyword_spotting_cnn` — always-on audio keyword spotter.
    KeywordSpotting = 2,
    /// `video_feature_extractor` — 15 fps glasses-camera feature extractor.
    VideoFeature = 3,
    /// `vitals_trend_mlp` — multi-vital trend MLP.
    VitalsTrend = 4,
}

impl ModelId {
    /// Every model identifier, in wire order (zoo index order).
    pub const ALL: [ModelId; 5] = [
        ModelId::EcgArrhythmia,
        ModelId::ImuGesture,
        ModelId::KeywordSpotting,
        ModelId::VideoFeature,
        ModelId::VitalsTrend,
    ];

    fn from_u8(raw: u8) -> Result<Self, WireCodecError> {
        Self::ALL
            .get(raw as usize)
            .copied()
            .ok_or(WireCodecError::Corrupt("unknown model id"))
    }

    /// Zoo index of this model.
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The link a plan query evaluates against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireLink {
    /// Wi-R at its commercial operating point
    /// ([`PartitionContext::wir_default`](crate::partition::PartitionContext::wir_default)).
    WiR,
    /// BLE 1M ([`PartitionContext::ble_default`](crate::partition::PartitionContext::ble_default)).
    Ble,
    /// A site-resolved link: parameters come from the server's warm
    /// [`LinkCache`](crate::population::LinkCache) for this technology and
    /// leaf position (hub at the waist, as everywhere in the repo).
    Site(RadioTechnology, BodySite),
}

fn technology_to_u8(technology: RadioTechnology) -> u8 {
    match technology {
        RadioTechnology::WiR => 0,
        RadioTechnology::Ble => 1,
        RadioTechnology::Nfmi => 2,
        RadioTechnology::WiFi => 3,
    }
}

fn technology_from_u8(raw: u8) -> Result<RadioTechnology, WireCodecError> {
    match raw {
        0 => Ok(RadioTechnology::WiR),
        1 => Ok(RadioTechnology::Ble),
        2 => Ok(RadioTechnology::Nfmi),
        3 => Ok(RadioTechnology::WiFi),
        _ => Err(WireCodecError::Corrupt("unknown radio technology")),
    }
}

fn site_to_u8(site: BodySite) -> u8 {
    BodySite::ALL
        .iter()
        .position(|&s| s == site)
        .expect("BodySite::ALL is exhaustive") as u8
}

fn site_from_u8(raw: u8) -> Result<BodySite, WireCodecError> {
    BodySite::ALL
        .get(raw as usize)
        .copied()
        .ok_or(WireCodecError::Corrupt("unknown body site"))
}

pub(crate) fn objective_to_u8(objective: Objective) -> u8 {
    match objective {
        Objective::LeafEnergy => 0,
        Objective::Latency => 1,
        Objective::EnergyDelayProduct => 2,
    }
}

fn objective_from_u8(raw: u8) -> Result<Objective, WireCodecError> {
    match raw {
        0 => Ok(Objective::LeafEnergy),
        1 => Ok(Objective::Latency),
        2 => Ok(Objective::EnergyDelayProduct),
        _ => Err(WireCodecError::Corrupt("unknown objective")),
    }
}

/// The execution environment a plan query names, as it travels on the wire.
///
/// Continuous fields use the sentinel `0.0` for "use the link's default";
/// any positive finite value overrides it.  The server *quantizes* both
/// overrides on admission (see [`quantize_f64`]) so that queries within the
/// same quantum are one cache entry — and, by the same token, one answer.
///
/// Wire body (after the item kind byte): `link u8 · technology u8 ·
/// site u8 · flags u8 (bit 0 = quantize activations) · energy-per-bit
/// f64-bits (pJ/bit) · goodput f64-bits (bit/s)`.  Technology and site
/// bytes are only meaningful for [`WireLink::Site`] and must be zero
/// otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireContext {
    /// The link the plan is evaluated against.
    pub link: WireLink,
    /// Delivered energy per bit override in pJ/bit (`0.0` = link default).
    pub energy_per_bit_pj: f64,
    /// Link goodput override in bit/s (`0.0` = link default).
    pub goodput_bps: f64,
    /// Whether activations are int8-quantized before transmission.
    pub quantize_activations: bool,
}

impl WireContext {
    /// A context using `link` at its default operating point.
    #[must_use]
    pub fn of(link: WireLink) -> Self {
        Self {
            link,
            energy_per_bit_pj: 0.0,
            goodput_bps: 0.0,
            quantize_activations: true,
        }
    }

    /// Overrides the delivered energy per bit (pJ/bit).
    #[must_use]
    pub fn with_energy_per_bit_pj(mut self, pj: f64) -> Self {
        self.energy_per_bit_pj = pj;
        self
    }

    /// Overrides the link goodput (bit/s).
    #[must_use]
    pub fn with_goodput_bps(mut self, bps: f64) -> Self {
        self.goodput_bps = bps;
        self
    }

    /// Disables int8 activation quantization.
    #[must_use]
    pub fn without_quantization(mut self) -> Self {
        self.quantize_activations = false;
        self
    }
}

/// One partition-plan query: which model, in which context, minimising what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanRequest {
    /// Model to partition.
    pub model: ModelId,
    /// Execution environment.
    pub context: WireContext,
    /// What the optimiser minimises.
    pub objective: Objective,
}

/// One battery-life projection query (the Fig. 3 curve at a single rate).
///
/// Wire body: `rate f64-bits (bit/s, finite and positive)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectionRequest {
    /// Node data rate to project, in bit/s.
    pub rate_bps: f64,
}

/// One query of a batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request {
    /// Partition-plan query.
    Plan(PlanRequest),
    /// Battery-life projection query.
    Projection(ProjectionRequest),
}

/// A decoded request envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestEnvelope {
    /// A batch of queries, answered in order by one response envelope.
    Queries(Vec<Request>),
    /// Ask the server to stop accepting connections and exit cleanly.
    Shutdown,
}

/// The served optimum for a plan query — the numeric fields of a
/// [`PartitionPlan`](crate::partition::PartitionPlan), with the model named
/// by its wire id instead of an interned string.
///
/// Wire body: `model u8 · objective u8 · cut_index u32 · leaf_macs u64 ·
/// hub_macs u64 · transfer_bytes f64-bits · leaf_energy f64-bits (J) ·
/// hub_energy f64-bits (J) · latency f64-bits (s) · leaf_power f64-bits (W)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePlan {
    /// Model the plan partitions.
    pub model: ModelId,
    /// Objective the plan minimises.
    pub objective: Objective,
    /// Number of layers executed on the leaf.
    pub cut_index: u32,
    /// MACs executed on the leaf per inference.
    pub leaf_macs: u64,
    /// MACs executed on the hub per inference.
    pub hub_macs: u64,
    /// Bytes transmitted per inference (after quantization).
    pub transfer_bytes: f64,
    /// Leaf energy per inference, joules.
    pub leaf_energy_j: f64,
    /// Hub energy per inference, joules.
    pub hub_energy_j: f64,
    /// End-to-end latency per inference, seconds.
    pub latency_s: f64,
    /// Sustained leaf power at the model's inference rate, watts.
    pub leaf_power_w: f64,
}

/// A served battery-life projection.
///
/// Wire body: `rate f64-bits (bit/s) · total_power f64-bits (W) ·
/// battery_life f64-bits (s)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireProjection {
    /// Rate the projection was evaluated at, bit/s.
    pub rate_bps: f64,
    /// Total node power at that rate, watts.
    pub total_power_w: f64,
    /// Projected battery life, seconds.
    pub battery_life_s: f64,
}

/// One answer of a batch, positionally matching the query batch.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The feasible optimum for a plan query.
    Plan(WirePlan),
    /// No cut of the model is feasible in the requested context; the string
    /// is the optimiser's diagnostic.  Wire body: `reason u32-len · UTF-8`.
    Infeasible(String),
    /// The projection for a projection query.
    Projection(WireProjection),
    /// The query (or the whole envelope) could not be served; the string
    /// says why.  Wire body: `message u32-len · UTF-8`.
    Error(String),
}

/// A decoded response envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseEnvelope {
    /// Answers, positionally matching the request batch.
    Answers(Vec<Response>),
    /// Acknowledgement of a shutdown request; the connection then closes.
    Bye,
}

/// Canonicalizes a continuous context field for caching and evaluation:
/// keeps the sign, exponent and top 21 mantissa bits of the IEEE-754
/// representation (relative quantum < 2⁻²¹ ≈ 5·10⁻⁷, far below any
/// physical meaning the link parameters carry).  Quantization happens on
/// *admission*, so a served answer is a pure function of the quantized
/// request — two requests in the same quantum are the same query, which is
/// what makes the plan cache exact rather than approximate.
#[must_use]
pub fn quantize_f64(value: f64) -> f64 {
    if value == 0.0 {
        return 0.0;
    }
    f64::from_bits(value.to_bits() & !((1u64 << 31) - 1))
}

fn finite_non_negative(value: f64, what: &'static str) -> Result<f64, WireCodecError> {
    if value.is_finite() && value >= 0.0 {
        Ok(value)
    } else {
        Err(WireCodecError::Corrupt(what))
    }
}

// --- encoding ---------------------------------------------------------------

fn put_context(out: &mut BytesMut, context: &WireContext) {
    let (link, technology, site) = match context.link {
        WireLink::WiR => (0u8, 0u8, 0u8),
        WireLink::Ble => (1, 0, 0),
        WireLink::Site(technology, site) => (2, technology_to_u8(technology), site_to_u8(site)),
    };
    out.put_u8(link);
    out.put_u8(technology);
    out.put_u8(site);
    out.put_u8(u8::from(context.quantize_activations));
    out.put_f64(context.energy_per_bit_pj);
    out.put_f64(context.goodput_bps);
}

fn put_request(out: &mut BytesMut, request: &Request) {
    match request {
        Request::Plan(plan) => {
            out.put_u8(0);
            out.put_u8(plan.model as u8);
            out.put_u8(objective_to_u8(plan.objective));
            put_context(out, &plan.context);
        }
        Request::Projection(projection) => {
            out.put_u8(1);
            out.put_f64(projection.rate_bps);
        }
    }
}

fn put_string(out: &mut BytesMut, text: &str) {
    let bytes = text.as_bytes();
    out.put_u32(bytes.len() as u32);
    out.put_slice(bytes);
}

fn put_response(out: &mut BytesMut, response: &Response) {
    match response {
        Response::Plan(plan) => {
            out.put_u8(0);
            out.put_u8(plan.model as u8);
            out.put_u8(objective_to_u8(plan.objective));
            out.put_u32(plan.cut_index);
            out.put_u64(plan.leaf_macs);
            out.put_u64(plan.hub_macs);
            out.put_f64(plan.transfer_bytes);
            out.put_f64(plan.leaf_energy_j);
            out.put_f64(plan.hub_energy_j);
            out.put_f64(plan.latency_s);
            out.put_f64(plan.leaf_power_w);
        }
        Response::Infeasible(reason) => {
            out.put_u8(1);
            put_string(out, reason);
        }
        Response::Projection(projection) => {
            out.put_u8(2);
            out.put_f64(projection.rate_bps);
            out.put_f64(projection.total_power_w);
            out.put_f64(projection.battery_life_s);
        }
        Response::Error(message) => {
            out.put_u8(3);
            put_string(out, message);
        }
    }
}

fn seal(mut out: BytesMut) -> Bytes {
    let checksum = crate::fleet::checkpoint::fnv1a64(&out);
    out.put_u64(checksum);
    out.freeze()
}

fn encode_envelope<T>(
    magic: &[u8; 8],
    kind: u8,
    items: &[T],
    put: impl Fn(&mut BytesMut, &T),
) -> Bytes {
    assert!(items.len() <= MAX_BATCH, "batch exceeds MAX_BATCH");
    let mut out = BytesMut::new();
    out.put_slice(magic);
    out.put_u16(WIRE_VERSION);
    out.put_u8(kind);
    out.put_u16(items.len() as u16);
    for item in items {
        put(&mut out, item);
    }
    seal(out)
}

/// Encodes a batch of queries into one sealed request envelope.
///
/// # Panics
/// Panics if `requests` exceeds [`MAX_BATCH`] — a caller bug, not a wire
/// condition (the decoder rejects oversized counts with a typed error).
#[must_use]
pub fn encode_requests(requests: &[Request]) -> Bytes {
    encode_envelope(REQUEST_MAGIC, 0, requests, put_request)
}

/// Encodes a shutdown request envelope.
#[must_use]
pub fn encode_shutdown() -> Bytes {
    encode_envelope::<Request>(REQUEST_MAGIC, 1, &[], |_, _| {})
}

/// Encodes a batch of answers into one sealed response envelope.
///
/// # Panics
/// Panics if `responses` exceeds [`MAX_BATCH`].
#[must_use]
pub fn encode_responses(responses: &[Response]) -> Bytes {
    encode_envelope(RESPONSE_MAGIC, 0, responses, put_response)
}

/// Encodes the shutdown acknowledgement envelope.
#[must_use]
pub fn encode_bye() -> Bytes {
    encode_envelope::<Response>(RESPONSE_MAGIC, 1, &[], |_, _| {})
}

// --- decoding ---------------------------------------------------------------

fn take_u8(input: &mut Bytes) -> Result<u8, WireCodecError> {
    if input.remaining() < 1 {
        return Err(WireCodecError::Truncated);
    }
    Ok(input.get_u8())
}

fn take_u32(input: &mut Bytes) -> Result<u32, WireCodecError> {
    if input.remaining() < 4 {
        return Err(WireCodecError::Truncated);
    }
    Ok(input.get_u32())
}

fn take_u64(input: &mut Bytes) -> Result<u64, WireCodecError> {
    if input.remaining() < 8 {
        return Err(WireCodecError::Truncated);
    }
    Ok(input.get_u64())
}

fn take_f64(input: &mut Bytes) -> Result<f64, WireCodecError> {
    Ok(f64::from_bits(take_u64(input)?))
}

fn take_string(input: &mut Bytes) -> Result<String, WireCodecError> {
    let len = take_u32(input)? as usize;
    if len > input.remaining() {
        return Err(WireCodecError::Truncated);
    }
    String::from_utf8(input.split_to(len).to_vec())
        .map_err(|_| WireCodecError::Corrupt("string not UTF-8"))
}

fn take_context(input: &mut Bytes) -> Result<WireContext, WireCodecError> {
    let link = take_u8(input)?;
    let technology = take_u8(input)?;
    let site = take_u8(input)?;
    let flags = take_u8(input)?;
    if flags > 1 {
        return Err(WireCodecError::Corrupt("unknown context flag set"));
    }
    let link = match link {
        0 | 1 => {
            if technology != 0 || site != 0 {
                return Err(WireCodecError::Corrupt(
                    "technology/site bytes set on a default link",
                ));
            }
            if link == 0 {
                WireLink::WiR
            } else {
                WireLink::Ble
            }
        }
        2 => WireLink::Site(technology_from_u8(technology)?, site_from_u8(site)?),
        _ => return Err(WireCodecError::Corrupt("unknown link kind")),
    };
    Ok(WireContext {
        link,
        energy_per_bit_pj: finite_non_negative(
            take_f64(input)?,
            "energy-per-bit override not finite and non-negative",
        )?,
        goodput_bps: finite_non_negative(
            take_f64(input)?,
            "goodput override not finite and non-negative",
        )?,
        quantize_activations: flags == 1,
    })
}

fn take_request(input: &mut Bytes) -> Result<Request, WireCodecError> {
    match take_u8(input)? {
        0 => {
            let model = ModelId::from_u8(take_u8(input)?)?;
            let objective = objective_from_u8(take_u8(input)?)?;
            let context = take_context(input)?;
            Ok(Request::Plan(PlanRequest {
                model,
                context,
                objective,
            }))
        }
        1 => {
            let rate_bps = take_f64(input)?;
            if !(rate_bps.is_finite() && rate_bps > 0.0) {
                return Err(WireCodecError::Corrupt(
                    "projection rate not finite and positive",
                ));
            }
            Ok(Request::Projection(ProjectionRequest { rate_bps }))
        }
        _ => Err(WireCodecError::Corrupt("unknown query kind")),
    }
}

fn take_response(input: &mut Bytes) -> Result<Response, WireCodecError> {
    match take_u8(input)? {
        0 => {
            let model = ModelId::from_u8(take_u8(input)?)?;
            let objective = objective_from_u8(take_u8(input)?)?;
            let cut_index = take_u32(input)?;
            let leaf_macs = take_u64(input)?;
            let hub_macs = take_u64(input)?;
            let transfer_bytes =
                finite_non_negative(take_f64(input)?, "transfer bytes not finite")?;
            let leaf_energy_j = finite_non_negative(take_f64(input)?, "leaf energy not finite")?;
            let hub_energy_j = finite_non_negative(take_f64(input)?, "hub energy not finite")?;
            let latency_s = finite_non_negative(take_f64(input)?, "latency not finite")?;
            let leaf_power_w = finite_non_negative(take_f64(input)?, "leaf power not finite")?;
            Ok(Response::Plan(WirePlan {
                model,
                objective,
                cut_index,
                leaf_macs,
                hub_macs,
                transfer_bytes,
                leaf_energy_j,
                hub_energy_j,
                latency_s,
                leaf_power_w,
            }))
        }
        1 => Ok(Response::Infeasible(take_string(input)?)),
        2 => {
            let rate_bps = finite_non_negative(take_f64(input)?, "projection rate not finite")?;
            let total_power_w =
                finite_non_negative(take_f64(input)?, "projection power not finite")?;
            let battery_life_s = take_f64(input)?;
            if battery_life_s.is_nan() || battery_life_s < 0.0 {
                return Err(WireCodecError::Corrupt("battery life negative or NaN"));
            }
            Ok(Response::Projection(WireProjection {
                rate_bps,
                total_power_w,
                battery_life_s,
            }))
        }
        3 => Ok(Response::Error(take_string(input)?)),
        _ => Err(WireCodecError::Corrupt("unknown answer kind")),
    }
}

/// Validates the envelope frame (magic, version, checksum) and returns the
/// payload cursor plus the kind and item-count fields.
fn open_envelope(raw: &[u8], magic: &[u8; 8]) -> Result<(Bytes, u8, usize), WireCodecError> {
    if raw.len() < ENVELOPE {
        return Err(WireCodecError::Truncated);
    }
    if &raw[..8] != magic {
        return Err(WireCodecError::BadMagic);
    }
    let version = u16::from_be_bytes([raw[8], raw[9]]);
    if version != WIRE_VERSION {
        return Err(WireCodecError::UnsupportedVersion(version));
    }
    let (body, tail) = raw.split_at(raw.len() - 8);
    let stored = u64::from_be_bytes(tail.try_into().expect("8-byte tail"));
    if crate::fleet::checkpoint::fnv1a64(body) != stored {
        return Err(WireCodecError::Corrupt("checksum mismatch"));
    }
    let mut input = Bytes::from(body[10..].to_vec());
    let kind = take_u8(&mut input)?;
    let count = take_u64_16(&mut input)?;
    if count > MAX_BATCH {
        return Err(WireCodecError::Corrupt("batch larger than MAX_BATCH"));
    }
    Ok((input, kind, count))
}

fn take_u64_16(input: &mut Bytes) -> Result<usize, WireCodecError> {
    if input.remaining() < 2 {
        return Err(WireCodecError::Truncated);
    }
    Ok(input.get_u16() as usize)
}

fn close_envelope(input: &Bytes) -> Result<(), WireCodecError> {
    if input.remaining() != 0 {
        return Err(WireCodecError::Corrupt("trailing bytes after payload"));
    }
    Ok(())
}

/// Decodes and validates a request envelope.
///
/// # Errors
/// [`WireCodecError`] for any malformed input — never panics.
pub fn decode_request(raw: &[u8]) -> Result<RequestEnvelope, WireCodecError> {
    let (mut input, kind, count) = open_envelope(raw, REQUEST_MAGIC)?;
    match kind {
        0 => {
            let mut requests = Vec::with_capacity(count);
            for _ in 0..count {
                requests.push(take_request(&mut input)?);
            }
            close_envelope(&input)?;
            Ok(RequestEnvelope::Queries(requests))
        }
        1 => {
            if count != 0 {
                return Err(WireCodecError::Corrupt("shutdown envelope with items"));
            }
            close_envelope(&input)?;
            Ok(RequestEnvelope::Shutdown)
        }
        _ => Err(WireCodecError::Corrupt("unknown request envelope kind")),
    }
}

/// Decodes and validates a response envelope.
///
/// # Errors
/// [`WireCodecError`] for any malformed input — never panics.
pub fn decode_response(raw: &[u8]) -> Result<ResponseEnvelope, WireCodecError> {
    let (mut input, kind, count) = open_envelope(raw, RESPONSE_MAGIC)?;
    match kind {
        0 => {
            let mut responses = Vec::with_capacity(count);
            for _ in 0..count {
                responses.push(take_response(&mut input)?);
            }
            close_envelope(&input)?;
            Ok(ResponseEnvelope::Answers(responses))
        }
        1 => {
            if count != 0 {
                return Err(WireCodecError::Corrupt("bye envelope with items"));
            }
            close_envelope(&input)?;
            Ok(ResponseEnvelope::Bye)
        }
        _ => Err(WireCodecError::Corrupt("unknown response envelope kind")),
    }
}
