//! The std-only TCP front-end and its pipelined client.
//!
//! Transport is the shared [`wire`] framing (`tag u64 BE ·
//! length u64 BE · payload`) that also carries fleet checkpoint blobs; the
//! payloads are the sealed [`codec`] envelopes.  One frame
//! carries one request batch; the reply frame echoes the request tag so a
//! client can match responses to submissions (and pipeline several).
//!
//! Two thread models serve the same protocol ([`ThreadModel`]):
//!
//! * **Reactor** (Linux default) — a small fixed pool of epoll event-loop
//!   threads drives *all* connections through nonblocking state machines
//!   (see [`reactor`](super::reactor)).  Throughput scales with
//!   connections, not OS threads.
//! * **Legacy** — the original acceptor + one blocking thread per
//!   connection.  Kept as the `--threads legacy` escape hatch and as the
//!   equivalence baseline: both modes answer byte-identical responses,
//!   which the serve test suite asserts across the full matrix.
//!
//! Both modes funnel every completed frame through one `handle_frame`, so
//! protocol semantics cannot drift between them.  Error containment is
//! per-layer:
//!
//! * A **frame** violation (oversized length, truncated header, I/O error)
//!   drops the connection — framing is the resynchronization boundary, and
//!   a stream that lied about a length cannot be trusted about the next
//!   header.  The server itself stays up.
//! * A **codec** violation (bad magic, bad seal, malformed body) is
//!   answered with a single [`Response::Error`] batch and the connection
//!   *stays open* — the frame boundary was intact, so the next frame is
//!   still well-delimited.
//! * A **semantic** error (infeasible workload) is a normal, typed answer.
//! * A peer that stalls **mid-frame** (or refuses to read its responses)
//!   beyond [`ServeConfig::idle_timeout`] is dropped — the slow-loris
//!   guard.  A connection idle *between* frames is left alone.
//!
//! Shutdown is wire-level: any client may send the
//! [`RequestEnvelope::Shutdown`] envelope; the server answers `Bye`, stops
//! accepting, and [`PlanServer::wait`] returns.  (A std-only binary cannot
//! install signal handlers without extra dependencies, so the protocol owns
//! clean shutdown — the `plan_server` binary documents this.)

use super::codec::{
    self, Request, RequestEnvelope, Response, ResponseEnvelope, WireCodecError, MAX_SERVE_FRAME,
};
use super::PlanService;
use crate::wire::{self, FrameDecoder, FrameError};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How connections are driven.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadModel {
    /// Epoll event-loop pool (Linux; [`PlanServer::bind`]'s default there).
    /// On other platforms this model falls back to [`Legacy`](Self::Legacy).
    Reactor {
        /// Event-loop threads sharing the listener (clamped to ≥ 1).
        event_loops: usize,
    },
    /// The original acceptor + thread-per-connection model.
    Legacy,
}

impl ThreadModel {
    /// The platform default: a reactor on Linux with one event loop per
    /// core (capped at 4 — plan serving is I/O-light, so a few loops
    /// saturate well before the core count on big hosts, and a single loop
    /// avoids pointless context switching on small ones), legacy elsewhere.
    #[must_use]
    pub fn default_for_platform() -> Self {
        if cfg!(target_os = "linux") {
            let cores = thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get);
            Self::Reactor {
                event_loops: cores.clamp(1, 4),
            }
        } else {
            Self::Legacy
        }
    }
}

/// Server knobs beyond the bind address.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Connection-driving model (see [`ThreadModel`]).
    pub threads: ThreadModel,
    /// Drop a connection stalled mid-frame (or with unread responses) for
    /// longer than this; `None` disables the guard.  Idle-but-between-frames
    /// connections are never dropped, so keep-alive clients survive.
    pub idle_timeout: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            threads: ThreadModel::default_for_platform(),
            idle_timeout: Some(Duration::from_secs(10)),
        }
    }
}

/// A running plan server: a worker pool (reactor loops, or an acceptor
/// spawning per-connection threads) answering out of one shared
/// [`PlanService`].
#[derive(Debug)]
pub struct PlanServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    service: Arc<PlanService>,
}

impl PlanServer {
    /// Binds an ephemeral loopback port and serves with default config
    /// (reactor mode on Linux).
    pub fn bind(service: PlanService) -> io::Result<Self> {
        Self::bind_addr("127.0.0.1:0", service)
    }

    /// Binds `addr` and serves with default config.
    pub fn bind_addr(addr: impl ToSocketAddrs, service: PlanService) -> io::Result<Self> {
        Self::bind_with(addr, service, ServeConfig::default())
    }

    /// Binds `addr` and serves with explicit [`ServeConfig`].
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: PlanService,
        config: ServeConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(service);
        let workers = match config.threads {
            #[cfg(target_os = "linux")]
            ThreadModel::Reactor { event_loops } => {
                super::reactor::spawn(&listener, &service, &stop, event_loops, config.idle_timeout)?
            }
            #[cfg(not(target_os = "linux"))]
            ThreadModel::Reactor { .. } => {
                spawn_legacy(listener, addr, &stop, &service, config.idle_timeout)?
            }
            ThreadModel::Legacy => {
                spawn_legacy(listener, addr, &stop, &service, config.idle_timeout)?
            }
        };
        Ok(Self {
            addr,
            stop,
            workers,
            service,
        })
    }

    /// The bound address (useful after an ephemeral bind).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for counter snapshots).
    #[must_use]
    pub fn service(&self) -> &PlanService {
        &self.service
    }

    /// Blocks until a client-initiated shutdown stops the workers, then
    /// returns the service for a final counter snapshot.
    pub fn wait(mut self) -> Arc<PlanService> {
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        Arc::clone(&self.service)
    }

    /// Stops the server from the owning side (idempotent; also run by
    /// `Drop`).  Reactor loops notice the flag within one tick and flush
    /// what they owe; the legacy acceptor is poked out of its blocking
    /// `accept` — in-flight answers are never truncated.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if self.workers.is_empty() {
            return;
        }
        // Poke a blocking legacy `accept` so the loop observes the flag
        // (a reactor accepts-then-drops the probe; harmless).
        let _ = TcpStream::connect(self.addr);
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What a handled frame means for the connection's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameDisposition {
    /// Keep answering frames.
    KeepOpen,
    /// Flush the appended reply (`Bye`), then close.
    CloseAfterFlush,
}

/// The single protocol step both thread models share: decode one frame's
/// payload, append the tagged reply frame to `out`, report what happens to
/// the connection next.  Keeping this common is what makes reactor/legacy
/// byte-equivalence structural rather than coincidental.
pub(crate) fn handle_frame(
    service: &PlanService,
    stop: &AtomicBool,
    tag: u64,
    payload: &[u8],
    out: &mut Vec<u8>,
) -> FrameDisposition {
    match codec::decode_request(payload) {
        Ok(RequestEnvelope::Queries(requests)) => {
            let answers = service.answer_batch(&requests);
            wire::append_frame(out, tag, &codec::encode_responses(&answers));
            FrameDisposition::KeepOpen
        }
        Ok(RequestEnvelope::Shutdown) => {
            wire::append_frame(out, tag, &codec::encode_bye());
            stop.store(true, Ordering::SeqCst);
            FrameDisposition::CloseAfterFlush
        }
        Err(error) => {
            // The frame was well-delimited, so the stream is still in
            // sync: answer with a typed error and keep the connection.
            let reply =
                codec::encode_responses(&[Response::Error(format!("bad request: {error}"))]);
            wire::append_frame(out, tag, &reply);
            FrameDisposition::KeepOpen
        }
    }
}

/// Spawns the legacy acceptor thread (which in turn spawns one detached
/// thread per connection).
fn spawn_legacy(
    listener: TcpListener,
    addr: SocketAddr,
    stop: &Arc<AtomicBool>,
    service: &Arc<PlanService>,
    idle_timeout: Option<Duration>,
) -> io::Result<Vec<JoinHandle<()>>> {
    let stop = Arc::clone(stop);
    let service = Arc::clone(service);
    let acceptor = thread::Builder::new()
        .name("serve-acceptor".into())
        .spawn(move || accept_loop(&listener, addr, &stop, &service, idle_timeout))?;
    Ok(vec![acceptor])
}

fn accept_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    stop: &Arc<AtomicBool>,
    service: &Arc<PlanService>,
    idle_timeout: Option<Duration>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Request/response ping-pong: Nagle buys nothing and costs 40 ms
        // stalls when a reply spans segments.
        let _ = stream.set_nodelay(true);
        let stop = Arc::clone(stop);
        let service = Arc::clone(service);
        thread::spawn(move || {
            // Per-connection errors stay on the connection.
            let _ = serve_connection(stream, addr, &stop, &service, idle_timeout);
        });
    }
}

/// Answers frames on one legacy connection until the peer disconnects,
/// violates framing, stalls mid-frame beyond the idle timeout, or requests
/// shutdown.  Runs the same incremental [`FrameDecoder`] as the reactor, so
/// chunked delivery and pipelined bursts behave identically: every frame
/// completed by one read is answered, and the replies leave as one write.
fn serve_connection(
    mut stream: TcpStream,
    addr: SocketAddr,
    stop: &AtomicBool,
    service: &PlanService,
    idle_timeout: Option<Duration>,
) -> Result<(), FrameError> {
    stream.set_read_timeout(idle_timeout)?;
    stream.set_write_timeout(idle_timeout)?;
    let mut decoder = FrameDecoder::new(MAX_SERVE_FRAME);
    let mut buf = [0u8; 16 * 1024];
    let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut out: Vec<u8> = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return Ok(()), // peer EOF
            Ok(got) => {
                frames.clear();
                decoder.feed(&buf[..got], &mut frames)?;
                out.clear();
                let mut close = false;
                for (tag, payload) in frames.drain(..) {
                    match handle_frame(service, stop, tag, &payload, &mut out) {
                        FrameDisposition::KeepOpen => {}
                        FrameDisposition::CloseAfterFlush => {
                            close = true;
                            break;
                        }
                    }
                }
                stream.write_all(&out)?;
                if close {
                    let _ = stream.flush();
                    // Poke the acceptor out of its blocking `accept`.
                    let _ = TcpStream::connect(addr);
                    return Ok(());
                }
            }
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut =>
            {
                // Read timeout fired.  Mid-frame = slow-loris: drop.  Idle
                // between frames: keep waiting for the next request.
                if decoder.mid_frame() {
                    return Err(FrameError::Io(error));
                }
            }
            Err(error) if error.kind() == io::ErrorKind::Interrupted => {}
            Err(error) => return Err(error.into()),
        }
    }
}

/// A client-side protocol violation.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (I/O error, oversized or truncated frame).
    Frame(FrameError),
    /// The server's payload failed to decode.
    Codec(WireCodecError),
    /// The server answered with a well-formed but unexpected envelope, or
    /// the pipeline was misused (full, undrained, unknown tag).
    Protocol(&'static str),
    /// A configured client deadline ([`PlanClient::with_timeout`]) expired
    /// while waiting on the socket — the server died or stalled with replies
    /// outstanding.  Without a timeout the client would block forever.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Frame(error) => write!(f, "transport: {error}"),
            Self::Codec(error) => write!(f, "codec: {error}"),
            Self::Protocol(message) => write!(f, "protocol: {message}"),
            Self::Timeout => write!(f, "timed out waiting for the server"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(error: FrameError) -> Self {
        match error {
            FrameError::Io(io_error) => io_error.into(),
            other => Self::Frame(other),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> Self {
        // With socket timeouts set, a stalled read/write surfaces as
        // WouldBlock (Unix) or TimedOut (Windows); both mean the configured
        // deadline expired, not a broken transport.
        if matches!(
            error.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            return Self::Timeout;
        }
        Self::Frame(FrameError::Io(error))
    }
}

impl From<WireCodecError> for ClientError {
    fn from(error: WireCodecError) -> Self {
        Self::Codec(error)
    }
}

/// Default bound on a client's in-flight request frames.
const DEFAULT_PIPELINE: usize = 32;

/// A blocking, pipelined plan-server client over one TCP connection.
///
/// Two usage styles share the connection state:
///
/// * **One-shot** ([`query`](Self::query) / [`ask`](Self::ask)) — submit,
///   wait, return: exactly the PR 7 API, preserved unchanged.
/// * **Pipelined** ([`submit`](Self::submit) / [`recv`](Self::recv) /
///   [`take`](Self::take)) — up to K tagged request frames ride the socket
///   before the first reply is consumed, amortising syscalls and flight
///   time.  Submissions are buffered and flushed lazily (on
///   [`flush`](Self::flush) or first receive), so a burst of submissions
///   leaves as one write.  Replies are matched by echoed tag:
///   [`take`](Self::take) consumes a *specific* submission's answer
///   regardless of consumption order, stashing any replies that arrive
///   ahead of it — out-of-order completion is safe by construction.
#[derive(Debug)]
pub struct PlanClient {
    stream: TcpStream,
    next_tag: u64,
    /// Buffered request frames not yet written to the socket.
    out: Vec<u8>,
    /// `(tag, expected answer count)` of every unconsumed submission, in
    /// submission order.  A linear scan: the pipeline is bounded and
    /// shallow, so this beats hashing on the per-frame hot path.
    inflight: Vec<(u64, usize)>,
    /// Replies read off the wire but not yet consumed, in arrival order.
    ready: VecDeque<(u64, Vec<Response>)>,
    max_inflight: usize,
    /// Incremental reassembly of reply frames from buffered socket reads.
    decoder: wire::FrameDecoder,
    /// Reply frames reassembled but not yet matched to a submission.
    frames: VecDeque<(u64, Vec<u8>)>,
    /// Reusable socket read buffer: one `read` drains every reply the
    /// kernel has queued, so a deep pipeline costs ~one syscall per burst
    /// rather than two per frame.
    scratch: Vec<u8>,
}

impl PlanClient {
    /// Connects to a running [`PlanServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_tag: 1,
            out: Vec::new(),
            inflight: Vec::new(),
            ready: VecDeque::new(),
            max_inflight: DEFAULT_PIPELINE,
            decoder: wire::FrameDecoder::new(MAX_SERVE_FRAME),
            frames: VecDeque::new(),
            scratch: vec![0u8; 16 * 1024],
        })
    }

    /// Caps the pipeline at `depth` in-flight submissions (clamped to ≥ 1;
    /// default 32).
    #[must_use]
    pub fn with_pipeline(mut self, depth: usize) -> Self {
        self.max_inflight = depth.max(1);
        self
    }

    /// Bounds every socket read and write by `timeout` (clamped to ≥ 1 ms).
    /// A server that dies or stalls with replies outstanding then surfaces
    /// as [`ClientError::Timeout`] instead of blocking
    /// [`recv`](Self::recv) / [`take`](Self::take) forever.  By default no
    /// deadline is set (the PR 7/8 behaviour: reads block indefinitely).
    ///
    /// # Errors
    /// The socket-option failure, as [`io::Error`].
    pub fn with_timeout(self, timeout: Duration) -> io::Result<Self> {
        let timeout = timeout.max(Duration::from_millis(1));
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))?;
        Ok(self)
    }

    /// Unconsumed submissions (including replies already stashed).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len() + self.ready.len()
    }

    /// Queues one request batch, returning its tag for [`take`](Self::take).
    /// The frame is buffered; it reaches the socket on [`flush`](Self::flush)
    /// or the next receive.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] when the pipeline is full.
    pub fn submit(&mut self, requests: &[Request]) -> Result<u64, ClientError> {
        if self.in_flight() >= self.max_inflight {
            return Err(ClientError::Protocol("pipeline full"));
        }
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        wire::append_frame(&mut self.out, tag, &codec::encode_requests(requests));
        self.inflight.push((tag, requests.len()));
        Ok(tag)
    }

    /// Writes every buffered submission to the socket in one write.
    ///
    /// # Errors
    /// The socket write failure, as [`ClientError::Frame`].
    pub fn flush(&mut self) -> Result<(), ClientError> {
        if !self.out.is_empty() {
            self.stream.write_all(&self.out)?;
            self.out.clear();
        }
        Ok(())
    }

    /// The next reply frame off the wire, via buffered reads: blocks until
    /// at least one frame completes, reassembling through the same
    /// [`wire::FrameDecoder`] the reactor uses (identical cap and typed
    /// errors to the blocking [`wire::read_frame`] path).
    fn next_frame(&mut self) -> Result<(u64, Vec<u8>), ClientError> {
        loop {
            if let Some(frame) = self.frames.pop_front() {
                return Ok(frame);
            }
            let got = self.stream.read(&mut self.scratch)?;
            if got == 0 {
                return Err(ClientError::Frame(wire::FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed mid-reply",
                ))));
            }
            let mut batch = Vec::new();
            self.decoder.feed(&self.scratch[..got], &mut batch)?;
            self.frames.extend(batch);
        }
    }

    /// Reads one reply frame into `(tag, answers)`, validating the tag and
    /// answer count against the matching submission.
    fn read_reply(&mut self) -> Result<(u64, Vec<Response>), ClientError> {
        self.flush()?;
        let (tag, payload) = self.next_frame()?;
        let Some(position) = self.inflight.iter().position(|(flying, _)| *flying == tag) else {
            return Err(ClientError::Protocol("reply tag not in flight"));
        };
        let (_, expected) = self.inflight.swap_remove(position);
        match codec::decode_response(&payload)? {
            ResponseEnvelope::Answers(answers) if answers.len() == expected => Ok((tag, answers)),
            ResponseEnvelope::Answers(_) => Err(ClientError::Protocol("answer count mismatch")),
            ResponseEnvelope::Bye => Err(ClientError::Protocol("unsolicited bye")),
        }
    }

    /// The next completed submission in arrival order, as `(tag, answers)`.
    /// Flushes buffered submissions first, so `submit*N` then `recv*N`
    /// cannot deadlock.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] when nothing is in flight; otherwise any
    /// transport/codec failure.
    pub fn recv(&mut self) -> Result<(u64, Vec<Response>), ClientError> {
        if let Some(front) = self.ready.pop_front() {
            return Ok(front);
        }
        if self.inflight.is_empty() {
            return Err(ClientError::Protocol("nothing in flight"));
        }
        self.read_reply()
    }

    /// The answers for one *specific* submission, regardless of the order
    /// replies are consumed in: replies for other tags that arrive first
    /// are stashed and later returned by [`recv`](Self::recv)/`take`.
    ///
    /// # Errors
    /// [`ClientError::Protocol`] when `tag` was never submitted (or already
    /// consumed); otherwise any transport/codec failure.
    pub fn take(&mut self, tag: u64) -> Result<Vec<Response>, ClientError> {
        loop {
            if let Some(position) = self.ready.iter().position(|(ready, _)| *ready == tag) {
                return Ok(self.ready.remove(position).expect("position is valid").1);
            }
            if !self.inflight.iter().any(|(flying, _)| *flying == tag) {
                return Err(ClientError::Protocol("tag not in flight"));
            }
            let reply = self.read_reply()?;
            self.ready.push_back(reply);
        }
    }

    /// Sends one request batch and returns the positional answers (the
    /// one-shot API; requires a drained pipeline).
    ///
    /// # Errors
    /// [`ClientError::Protocol`] on an undrained pipeline or a server
    /// protocol violation; otherwise any transport/codec failure.
    pub fn query(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        if self.in_flight() > 0 {
            return Err(ClientError::Protocol("pipeline not drained"));
        }
        let tag = self.submit(requests)?;
        self.take(tag)
    }

    /// Sends one query (a batch of one).
    ///
    /// # Errors
    /// As [`query`](Self::query).
    pub fn ask(&mut self, request: Request) -> Result<Response, ClientError> {
        Ok(self
            .query(std::slice::from_ref(&request))?
            .pop()
            .expect("one answer per query"))
    }

    /// Requests a server shutdown and consumes the connection; returns once
    /// the server acknowledged with `Bye`.  Undrained pipelined replies are
    /// read and discarded on the way (the server answers earlier frames
    /// before the `Bye`) — drain with [`recv`](Self::recv) first if they
    /// matter.
    ///
    /// # Errors
    /// Any transport/codec failure, or [`ClientError::Protocol`] when the
    /// server answers something other than the expected `Bye`.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        wire::append_frame(&mut self.out, tag, &codec::encode_shutdown());
        self.flush()?;
        loop {
            let (reply_tag, payload) = self.next_frame()?;
            match codec::decode_response(&payload)? {
                ResponseEnvelope::Bye if reply_tag == tag => return Ok(()),
                ResponseEnvelope::Bye => return Err(ClientError::Protocol("bye to a stale tag")),
                ResponseEnvelope::Answers(_) => {
                    // A pipelined reply outrunning the Bye: discard.
                    let Some(position) = self
                        .inflight
                        .iter()
                        .position(|(flying, _)| *flying == reply_tag)
                    else {
                        return Err(ClientError::Protocol("answers to a shutdown request"));
                    };
                    self.inflight.swap_remove(position);
                }
            }
        }
    }
}
