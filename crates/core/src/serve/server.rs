//! The std-only, thread-per-connection TCP front-end and its client.
//!
//! Transport is the shared [`wire`] framing (`tag u64 BE ·
//! length u64 BE · payload`) that also carries fleet checkpoint blobs; the
//! payloads are the sealed [`codec`] envelopes.  One frame
//! carries one request batch; the reply frame echoes the request tag so a
//! client can detect crossed wires.
//!
//! Error containment is per-layer:
//!
//! * A **frame** violation (oversized length, truncated header, I/O error)
//!   drops the connection — framing is the resynchronization boundary, and
//!   a stream that lied about a length cannot be trusted about the next
//!   header.  The server itself stays up.
//! * A **codec** violation (bad magic, bad seal, malformed body) is
//!   answered with a single [`Response::Error`] batch and the connection
//!   *stays open* — the frame boundary was intact, so the next frame is
//!   still well-delimited.
//! * A **semantic** error (infeasible workload) is a normal, typed answer.
//!
//! Shutdown is wire-level: any client may send the
//! [`RequestEnvelope::Shutdown`] envelope; the server answers `Bye`, stops
//! accepting, and [`PlanServer::wait`] returns.  (A std-only binary cannot
//! install signal handlers without extra dependencies, so the protocol owns
//! clean shutdown — the `plan_server` binary documents this.)

use super::codec::{
    self, Request, RequestEnvelope, Response, ResponseEnvelope, WireCodecError, MAX_SERVE_FRAME,
};
use super::PlanService;
use crate::wire::{self, FrameError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

/// A running plan server: an acceptor thread plus one detached thread per
/// live connection, all answering out of one shared [`PlanService`].
#[derive(Debug)]
pub struct PlanServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    service: Arc<PlanService>,
}

impl PlanServer {
    /// Binds an ephemeral loopback port and starts serving.
    pub fn bind(service: PlanService) -> io::Result<Self> {
        Self::bind_addr("127.0.0.1:0", service)
    }

    /// Binds `addr` and starts serving.
    pub fn bind_addr(addr: impl ToSocketAddrs, service: PlanService) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let service = Arc::new(service);
        let acceptor = {
            let stop = Arc::clone(&stop);
            let service = Arc::clone(&service);
            thread::spawn(move || accept_loop(&listener, addr, &stop, &service))
        };
        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            service,
        })
    }

    /// The bound address (useful after an ephemeral bind).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service (for counter snapshots).
    #[must_use]
    pub fn service(&self) -> &PlanService {
        &self.service
    }

    /// Blocks until a client-initiated shutdown stops the acceptor, then
    /// returns the service for a final counter snapshot.
    pub fn wait(mut self) -> Arc<PlanService> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        Arc::clone(&self.service)
    }

    /// Stops the acceptor from the owning side (idempotent; also run by
    /// `Drop`).  Live connections finish their current frame and notice the
    /// flag on the next accept — in-flight answers are never truncated.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            // Poke the blocking `accept` so the loop observes the flag.
            let _ = TcpStream::connect(self.addr);
            let _ = acceptor.join();
        }
    }
}

impl Drop for PlanServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    stop: &Arc<AtomicBool>,
    service: &Arc<PlanService>,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // Request/response ping-pong: Nagle buys nothing and costs 40 ms
        // stalls when a reply spans segments.
        let _ = stream.set_nodelay(true);
        let stop = Arc::clone(stop);
        let service = Arc::clone(service);
        thread::spawn(move || {
            // Per-connection errors stay on the connection.
            let _ = serve_connection(stream, addr, &stop, &service);
        });
    }
}

/// Answers frames on one connection until the peer disconnects, violates
/// framing, or requests shutdown.
fn serve_connection(
    mut stream: TcpStream,
    addr: SocketAddr,
    stop: &AtomicBool,
    service: &PlanService,
) -> Result<(), FrameError> {
    loop {
        let (tag, payload) = wire::read_frame(&mut stream, MAX_SERVE_FRAME)?;
        match codec::decode_request(&payload) {
            Ok(RequestEnvelope::Queries(requests)) => {
                let answers = service.answer_batch(&requests);
                let reply = codec::encode_responses(&answers);
                wire::write_frame(&mut stream, tag, &reply)?;
            }
            Ok(RequestEnvelope::Shutdown) => {
                wire::write_frame(&mut stream, tag, &codec::encode_bye())?;
                stop.store(true, Ordering::SeqCst);
                // Poke the acceptor out of its blocking `accept`.
                let _ = TcpStream::connect(addr);
                return Ok(());
            }
            Err(error) => {
                // The frame was well-delimited, so the stream is still in
                // sync: answer with a typed error and keep the connection.
                let reply =
                    codec::encode_responses(&[Response::Error(format!("bad request: {error}"))]);
                wire::write_frame(&mut stream, tag, &reply)?;
            }
        }
    }
}

/// A client-side protocol violation.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (I/O error, oversized or truncated frame).
    Frame(FrameError),
    /// The server's payload failed to decode.
    Codec(WireCodecError),
    /// The server answered with a well-formed but unexpected envelope.
    Protocol(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Frame(error) => write!(f, "transport: {error}"),
            Self::Codec(error) => write!(f, "codec: {error}"),
            Self::Protocol(message) => write!(f, "protocol: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(error: FrameError) -> Self {
        Self::Frame(error)
    }
}

impl From<io::Error> for ClientError {
    fn from(error: io::Error) -> Self {
        Self::Frame(FrameError::Io(error))
    }
}

impl From<WireCodecError> for ClientError {
    fn from(error: WireCodecError) -> Self {
        Self::Codec(error)
    }
}

/// A blocking plan-server client over one TCP connection.
#[derive(Debug)]
pub struct PlanClient {
    stream: TcpStream,
    next_tag: u64,
}

impl PlanClient {
    /// Connects to a running [`PlanServer`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            next_tag: 1,
        })
    }

    /// Sends one request batch and returns the positional answers.
    pub fn query(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let payload = codec::encode_requests(requests);
        let answers = match self.round_trip(&payload)? {
            ResponseEnvelope::Answers(answers) => answers,
            ResponseEnvelope::Bye => return Err(ClientError::Protocol("unsolicited bye")),
        };
        if answers.len() != requests.len() {
            return Err(ClientError::Protocol("answer count mismatch"));
        }
        Ok(answers)
    }

    /// Sends one query (a batch of one).
    pub fn ask(&mut self, request: Request) -> Result<Response, ClientError> {
        Ok(self
            .query(std::slice::from_ref(&request))?
            .pop()
            .expect("one answer per query"))
    }

    /// Requests a server shutdown and consumes the connection; returns once
    /// the server acknowledged with `Bye`.
    pub fn shutdown(mut self) -> Result<(), ClientError> {
        match self.round_trip(&codec::encode_shutdown())? {
            ResponseEnvelope::Bye => Ok(()),
            ResponseEnvelope::Answers(_) => {
                Err(ClientError::Protocol("answers to a shutdown request"))
            }
        }
    }

    fn round_trip(&mut self, payload: &[u8]) -> Result<ResponseEnvelope, ClientError> {
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        wire::write_frame(&mut self.stream, tag, payload)?;
        let (reply_tag, reply) = wire::read_frame(&mut self.stream, MAX_SERVE_FRAME)?;
        if reply_tag != tag {
            return Err(ClientError::Protocol("reply tag mismatch"));
        }
        Ok(codec::decode_response(&reply)?)
    }
}
