//! The readiness-driven serving core: every connection multiplexed over a
//! small fixed pool of epoll event loops (Linux only).
//!
//! The thread-per-connection front-end (kept as
//! [`ThreadModel::Legacy`](super::server::ThreadModel)) spends one OS thread
//! per live client, so its ceiling is the scheduler, not the hardware.  The
//! reactor inverts that: each of N event-loop threads owns one epoll
//! instance and drives every connection assigned to it through a
//! nonblocking state machine —
//!
//! * **accept** — the shared nonblocking listener is registered in *every*
//!   loop (level-triggered); whichever loop wakes first accepts until
//!   `WouldBlock` and keeps the connection on its own epoll, so there is no
//!   cross-thread handoff and no wake-pipe plumbing.
//! * **read** — readable connections are drained to `WouldBlock`; the bytes
//!   feed the incremental [`FrameDecoder`], and every completed frame is
//!   answered through the same `handle_frame` the legacy path uses, with
//!   the response frames accumulated in a per-connection write buffer (a
//!   burst of pipelined requests leaves as one `write`).
//! * **write / interest re-arming** — the buffer is flushed opportunistically;
//!   when the socket fills, `EPOLLOUT` interest is armed and dropped again
//!   the moment the buffer drains (level-triggered `EPOLLOUT` with nothing
//!   to write would busy-spin the loop).
//! * **timeouts** — every tick (the `epoll_wait` timeout) each loop sweeps
//!   its connections: one that is stalled *mid-frame* (slow loris) or with
//!   *unread responses* for longer than the configured deadline is dropped;
//!   a connection idle between frames is left alone, so keep-alive clients
//!   survive.
//! * **shutdown** — the stop flag (set by a wire-level `Shutdown` envelope
//!   on any connection, or by the owning [`PlanServer`](super::PlanServer))
//!   is observed at the next tick; loops deregister the listener, flush
//!   what remains (bounded by a short drain grace), and exit.
//!
//! Determinism note: connection scheduling is OS-driven and therefore not
//! deterministic, but every *answer* is — responses are a pure function of
//! the canonical query (see [`super::PlanService`]), so reactor and legacy
//! modes are byte-identical per request, which the serve test suite asserts
//! across both modes.

use super::server::{handle_frame, FrameDisposition};
use super::sys::{self, Epoll, EpollEvent};
use super::{codec, PlanService};
use crate::wire::FrameDecoder;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Token the shared listener is registered under in every loop.
const LISTENER_TOKEN: u64 = u64::MAX;

/// `epoll_wait` timeout: the granularity of timeout sweeps and stop-flag
/// observation.
const TICK_MS: i32 = 20;

/// How long a stopping loop keeps pumping to flush pending responses.
const DRAIN_GRACE: Duration = Duration::from_millis(500);

/// Read scratch size; also the upper bound on bytes decoded per `read`.
const SCRATCH: usize = 64 * 1024;

/// One nonblocking connection's state.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Encoded response frames not yet accepted by the socket.
    out: Vec<u8>,
    out_pos: usize,
    /// Last moment the connection made read or write progress.
    last_progress: Instant,
    /// Interest mask currently registered with epoll.
    interest: u32,
    /// Close once `out` drains (set by a `Shutdown` frame's `Bye`).
    closing: bool,
}

impl Conn {
    fn pending_out(&self) -> bool {
        self.out_pos < self.out.len()
    }
}

/// Spawns `event_loops` reactor threads sharing `listener`.  Each loop owns
/// its own epoll instance (created here so a failure surfaces at bind time).
pub(crate) fn spawn(
    listener: &TcpListener,
    service: &Arc<PlanService>,
    stop: &Arc<AtomicBool>,
    event_loops: usize,
    idle_timeout: Option<Duration>,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    listener.set_nonblocking(true)?;
    let mut workers = Vec::new();
    for index in 0..event_loops.max(1) {
        let epoll = Epoll::new()?;
        let listener = listener.try_clone()?;
        epoll.add(listener.as_raw_fd(), sys::EPOLLIN, LISTENER_TOKEN)?;
        let service = Arc::clone(service);
        let stop = Arc::clone(stop);
        workers.push(
            std::thread::Builder::new()
                .name(format!("serve-reactor-{index}"))
                .spawn(move || event_loop(&epoll, &listener, &service, &stop, idle_timeout))?,
        );
    }
    Ok(workers)
}

/// One event-loop thread: wait → dispatch readiness → sweep, until stopped.
fn event_loop(
    epoll: &Epoll,
    listener: &TcpListener,
    service: &PlanService,
    stop: &AtomicBool,
    idle_timeout: Option<Duration>,
) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events = vec![EpollEvent::zeroed(); 128];
    let mut scratch = vec![0u8; SCRATCH];
    let mut frames: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut draining = false;
    let mut drain_deadline = Instant::now();

    loop {
        let Ok(ready) = epoll.wait(&mut events, TICK_MS) else {
            return;
        };
        for event in &events[..ready] {
            // Copy the packed fields out before use.
            let (token, bits) = (event.data, event.events);
            if token == LISTENER_TOKEN {
                if !draining {
                    accept_all(epoll, listener, &mut conns, &mut free);
                }
                continue;
            }
            let slot = token as usize;
            // The slot may have been closed earlier in this batch.
            let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
                continue;
            };
            let mut keep = bits & sys::EPOLLERR == 0;
            if keep && bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP) != 0 {
                keep = on_readable(conn, service, stop, &mut scratch, &mut frames);
            }
            if keep {
                keep = try_flush(conn);
            }
            if keep && conn.closing && !conn.pending_out() {
                keep = false;
            }
            if keep {
                rearm(epoll, conn, slot);
            } else {
                close_slot(epoll, &mut conns, &mut free, slot);
            }
        }

        let now = Instant::now();
        if let Some(deadline) = idle_timeout {
            for slot in 0..conns.len() {
                let stalled = conns[slot].as_ref().is_some_and(|conn| {
                    (conn.decoder.mid_frame() || conn.pending_out())
                        && now.duration_since(conn.last_progress) > deadline
                });
                if stalled {
                    close_slot(epoll, &mut conns, &mut free, slot);
                }
            }
        }

        if stop.load(Ordering::SeqCst) {
            if !draining {
                draining = true;
                drain_deadline = now + DRAIN_GRACE;
                let _ = epoll.delete(listener.as_raw_fd());
            }
            for slot in 0..conns.len() {
                if conns[slot].as_ref().is_some_and(|conn| !conn.pending_out()) {
                    close_slot(epoll, &mut conns, &mut free, slot);
                }
            }
            if conns.iter().all(Option::is_none) || now >= drain_deadline {
                return;
            }
        }
    }
}

/// Accepts until `WouldBlock`; every new connection is nonblocking, Nagle
/// is off, and read interest is registered on this loop's epoll.
fn accept_all(
    epoll: &Epoll,
    listener: &TcpListener,
    conns: &mut Vec<Option<Conn>>,
    free: &mut Vec<usize>,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nodelay(true);
                if sys::set_nonblocking(stream.as_raw_fd()).is_err() {
                    continue; // drop the connection, keep accepting
                }
                let slot = free.pop().unwrap_or_else(|| {
                    conns.push(None);
                    conns.len() - 1
                });
                let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
                if epoll
                    .add(stream.as_raw_fd(), interest, slot as u64)
                    .is_err()
                {
                    free.push(slot);
                    continue;
                }
                conns[slot] = Some(Conn {
                    stream,
                    decoder: FrameDecoder::new(codec::MAX_SERVE_FRAME),
                    out: Vec::new(),
                    out_pos: 0,
                    last_progress: Instant::now(),
                    interest,
                    closing: false,
                });
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Drains the socket to `WouldBlock`, feeding the decoder and answering
/// every completed frame into the write buffer.  Returns `false` when the
/// connection must close (EOF, I/O error, framing violation).
fn on_readable(
    conn: &mut Conn,
    service: &PlanService,
    stop: &AtomicBool,
    scratch: &mut [u8],
    frames: &mut Vec<(u64, Vec<u8>)>,
) -> bool {
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => return false, // peer EOF
            Ok(got) => {
                conn.last_progress = Instant::now();
                frames.clear();
                if conn.decoder.feed(&scratch[..got], frames).is_err() {
                    // Framing violation: no way to find the next boundary.
                    return false;
                }
                for (tag, payload) in frames.drain(..) {
                    match handle_frame(service, stop, tag, &payload, &mut conn.out) {
                        FrameDisposition::KeepOpen => {}
                        FrameDisposition::CloseAfterFlush => {
                            conn.closing = true;
                            return true; // stop reading; flush the Bye
                        }
                    }
                }
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return true,
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Writes as much pending output as the socket accepts.  Returns `false`
/// on a fatal write error.
fn try_flush(conn: &mut Conn) -> bool {
    while conn.pending_out() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(wrote) => {
                conn.out_pos += wrote;
                conn.last_progress = Instant::now();
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    if !conn.pending_out() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    true
}

/// Re-arms interest: write interest exactly while output is pending.
fn rearm(epoll: &Epoll, conn: &mut Conn, slot: usize) {
    let mut want = sys::EPOLLIN | sys::EPOLLRDHUP;
    if conn.pending_out() {
        want |= sys::EPOLLOUT;
    }
    if want != conn.interest
        && epoll
            .modify(conn.stream.as_raw_fd(), want, slot as u64)
            .is_ok()
    {
        conn.interest = want;
    }
}

/// Deregisters and drops a connection, recycling its slab slot.
fn close_slot(epoll: &Epoll, conns: &mut [Option<Conn>], free: &mut Vec<usize>, slot: usize) {
    if let Some(conn) = conns[slot].take() {
        let _ = epoll.delete(conn.stream.as_raw_fd());
        free.push(slot);
    }
}
