//! Minimal epoll/fcntl syscall shim for the serve reactor (Linux only).
//!
//! The repo's shim policy (`crates/shims/*`) exists because the build
//! container has no crates.io registry: anything a real dependency would
//! provide is reimplemented std-only.  The same policy applies here — std
//! already links libc on Linux, so the four syscalls the readiness loop
//! needs are declared as raw `extern "C"` items rather than pulled in via
//! the `libc` crate, and everything `unsafe` stays behind the safe
//! [`Epoll`] wrapper in this module (the reactor itself contains no
//! `unsafe`).
//!
//! Only the constants the reactor actually uses are defined; values are the
//! stable Linux UAPI ones (`<sys/epoll.h>`, `<fcntl.h>`).
#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;

/// `EPOLL_CTL_ADD` — register a new fd with an epoll instance.
const EPOLL_CTL_ADD: c_int = 1;
/// `EPOLL_CTL_DEL` — remove a registered fd.
const EPOLL_CTL_DEL: c_int = 2;
/// `EPOLL_CTL_MOD` — change a registered fd's interest set.
const EPOLL_CTL_MOD: c_int = 3;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`; always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (`EPOLLHUP`; always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// `EPOLL_CLOEXEC` (== `O_CLOEXEC`): spawned workers must not inherit the
/// reactor's epoll fd.
const EPOLL_CLOEXEC: c_int = 0o2000000;
/// `F_GETFL` — read a descriptor's file status flags.
const F_GETFL: c_int = 3;
/// `F_SETFL` — write a descriptor's file status flags.
const F_SETFL: c_int = 4;
/// `O_NONBLOCK` file status flag.
const O_NONBLOCK: c_int = 0o4000;

/// One `struct epoll_event`: an interest/readiness mask plus the caller's
/// 64-bit token (the reactor stores connection-slab slots there).
///
/// On x86-64 the kernel ABI declares the struct packed; other architectures
/// use natural alignment — mirrored here so `epoll_wait` writes land on the
/// fields Rust reads.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Debug, Clone, Copy)]
pub struct EpollEvent {
    /// Readiness (from `wait`) or interest (to `add`/`modify`) mask.
    pub events: u32,
    /// Caller-chosen token identifying the fd.
    pub data: u64,
}

impl EpollEvent {
    /// An all-zero event (buffer fill for [`Epoll::wait`]).
    #[must_use]
    pub fn zeroed() -> Self {
        Self { events: 0, data: 0 }
    }
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn close(fd: c_int) -> c_int;
}

fn check(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance.  All `unsafe` in the reactor funnels through
/// these four methods; the fd is closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: c_int,
}

impl Epoll {
    /// Creates a close-on-exec epoll instance.
    ///
    /// # Errors
    /// The `epoll_create1` errno as an [`io::Error`].
    pub fn new() -> io::Result<Self> {
        // SAFETY: epoll_create1 takes a flag word and returns a new fd (or
        // -1); no pointers are involved.
        let fd = check(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self { fd })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut event = EpollEvent {
            events,
            data: token,
        };
        // SAFETY: `self.fd` is a live epoll fd (owned, closed only in
        // Drop), `fd` is a caller-supplied open descriptor, and the event
        // pointer is valid for the duration of the call.
        check(unsafe { epoll_ctl(self.fd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers `fd` with interest `events` under `token`.
    ///
    /// # Errors
    /// The `epoll_ctl` errno as an [`io::Error`].
    pub fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Re-arms `fd`'s interest set (the write-side interest toggle).
    ///
    /// # Errors
    /// The `epoll_ctl` errno as an [`io::Error`].
    pub fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Deregisters `fd`.
    ///
    /// # Errors
    /// The `epoll_ctl` errno as an [`io::Error`].
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits up to `timeout_ms` for readiness, filling `events` from the
    /// front; returns how many entries are valid.
    ///
    /// # Errors
    /// The `epoll_wait` errno as an [`io::Error`] (`EINTR` is retried
    /// internally).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        loop {
            // SAFETY: the buffer pointer/length describe a live mutable
            // slice, and maxevents never exceeds its length.
            let got = unsafe {
                epoll_wait(
                    self.fd,
                    events.as_mut_ptr(),
                    c_int::try_from(events.len()).unwrap_or(c_int::MAX),
                    timeout_ms,
                )
            };
            if got < 0 {
                let error = io::Error::last_os_error();
                if error.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(error);
            }
            return Ok(got as usize);
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `self.fd` is owned and not closed anywhere else.
        let _ = unsafe { close(self.fd) };
    }
}

/// Sets `O_NONBLOCK` on `fd` via `fcntl` (the reactor's sockets must never
/// park an event-loop thread in the kernel).
///
/// # Errors
/// The `fcntl` errno as an [`io::Error`].
pub fn set_nonblocking(fd: RawFd) -> io::Result<()> {
    // SAFETY: fcntl with F_GETFL/F_SETFL takes and returns plain integers
    // on an open descriptor; no pointers are involved.
    let flags = check(unsafe { fcntl(fd, F_GETFL, 0) })?;
    check(unsafe { fcntl(fd, F_SETFL, flags | O_NONBLOCK) })?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn epoll_reports_readability_and_honours_tokens() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut accepted, _) = listener.accept().unwrap();

        let epoll = Epoll::new().unwrap();
        epoll.add(accepted.as_raw_fd(), EPOLLIN, 42).unwrap();

        // Nothing to read yet: a short wait times out empty.
        let mut events = [EpollEvent::zeroed(); 4];
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        let got = epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(got, 1);
        // Copy the packed fields out before asserting (a reference into a
        // packed struct is ill-formed on x86-64).
        let (data, bits) = (events[0].data, events[0].events);
        assert_eq!(data, 42);
        assert_ne!(bits & EPOLLIN, 0);

        let mut buf = [0u8; 4];
        accepted.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        // Re-arm for write interest, then deregister cleanly.
        epoll
            .modify(accepted.as_raw_fd(), EPOLLIN | EPOLLOUT, 42)
            .unwrap();
        assert!(epoll.wait(&mut events, 1000).unwrap() >= 1);
        epoll.delete(accepted.as_raw_fd()).unwrap();
        assert_eq!(epoll.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn set_nonblocking_makes_reads_return_wouldblock() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut accepted, _) = listener.accept().unwrap();
        set_nonblocking(accepted.as_raw_fd()).unwrap();
        let mut buf = [0u8; 1];
        let err = accepted.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    }
}
