//! Interned-key memoization of served partition plans.
//!
//! A plan answer is a pure function of `(model, resolved-and-quantized
//! context, objective)` — the service canonicalizes every query on admission
//! (link defaults resolved, continuous overrides quantized, see
//! [`codec::quantize_f64`](super::codec::quantize_f64)), so the cache key
//! can be an exact, `Copy`, hash-friendly tuple of the canonical bits and a
//! hit is *guaranteed* to be byte-identical to recomputation.  The cache
//! never approximates: two keys differ iff the optimiser could be asked two
//! different questions.
//!
//! Hit/miss counters follow serial replay semantics regardless of how many
//! connections hammer the service: the service holds the cache lock across
//! a batch's scan-evaluate-insert cycle, so `misses` is exactly the number
//! of distinct keys ever asked and `hits + misses` the number of plan
//! queries served (see the cache-equivalence tests).

use super::codec::Response;
use std::collections::HashMap;

/// Canonical identity of a plan query: the zoo index, the objective wire
/// byte, the resolved link operating point as IEEE-754 bit patterns
/// (quantized on admission), and the activation-quantization flag.
///
/// Two queries with equal keys are the *same question* by construction —
/// the interned form is what makes memoization exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Wire id of the model (zoo index).
    pub model: u8,
    /// Wire byte of the objective.
    pub objective: u8,
    /// Resolved, quantized delivered energy per bit, as `f64::to_bits`.
    pub energy_per_bit_bits: u64,
    /// Resolved, quantized goodput, as `f64::to_bits`.
    pub goodput_bits: u64,
    /// Whether activations are int8-quantized before transmission.
    pub quantize_activations: bool,
}

/// Memoized plan answers plus replay-exact hit/miss counters.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: HashMap<PlanKey, Response>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized answer for `key`, counting a hit when present and a
    /// miss when absent.
    pub fn lookup(&mut self, key: PlanKey) -> Option<Response> {
        match self.entries.get(&key) {
            Some(response) => {
                self.hits += 1;
                Some(response.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The memoized answer for `key` **without** touching the counters —
    /// used by the batch path, which counts an in-batch duplicate of a
    /// pending key as a hit (exactly what a serial replay would record).
    #[must_use]
    pub fn peek(&self, key: PlanKey) -> Option<&Response> {
        self.entries.get(&key)
    }

    /// Records a hit the batch path resolved without [`lookup`](Self::lookup)
    /// (a duplicate of a key evaluated earlier in the same batch).
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Memoizes the freshly computed answer for `key`.
    pub fn insert(&mut self, key: PlanKey, response: Response) {
        self.entries.insert(key, response);
    }

    /// Distinct keys currently memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that found a memoized answer.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh optimisation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(model: u8) -> PlanKey {
        PlanKey {
            model,
            objective: 0,
            energy_per_bit_bits: 42.0f64.to_bits(),
            goodput_bits: 1.0e6f64.to_bits(),
            quantize_activations: true,
        }
    }

    #[test]
    fn counters_follow_serial_replay_semantics() {
        let mut cache = PlanCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.lookup(key(0)), None);
        cache.insert(key(0), Response::Error("stub".into()));
        assert_eq!(cache.lookup(key(0)), Some(Response::Error("stub".into())));
        assert_eq!(cache.lookup(key(1)), None);
        cache.insert(key(1), Response::Error("other".into()));
        assert_eq!(cache.lookup(key(0)), Some(Response::Error("stub".into())));
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
        assert_eq!(cache.len(), 2);
    }
}
