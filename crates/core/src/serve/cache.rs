//! Interned-key memoization of served partition plans, optionally bounded
//! by deterministic CLOCK (second-chance) eviction.
//!
//! A plan answer is a pure function of `(model, resolved-and-quantized
//! context, objective)` — the service canonicalizes every query on admission
//! (link defaults resolved, continuous overrides quantized, see
//! [`codec::quantize_f64`](super::codec::quantize_f64)), so the cache key
//! can be an exact, `Copy`, hash-friendly tuple of the canonical bits and a
//! hit is *guaranteed* to be byte-identical to recomputation.  The cache
//! never approximates: two keys differ iff the optimiser could be asked two
//! different questions, and an evicted-then-refetched key re-optimises to
//! the same bytes.
//!
//! # Bounded mode: CLOCK eviction
//!
//! An unbounded memo is fine for a zoo of five models, but the north-star
//! workload is millions of wearers with per-wearer context overrides — the
//! key space is unbounded, so [`PlanCache::bounded`] caps the resident set.
//! The replacement policy is CLOCK (second-chance): entries live in a fixed
//! ring of slots, each with a `referenced` bit that lookups (and inserts)
//! set; on insert-at-capacity a hand sweeps the ring clearing set bits
//! until it finds a clear one, evicts that slot and takes it.  CLOCK is
//! chosen over LRU for exactly one reason this repo cares about:
//! **determinism** — the victim is a pure function of the hit/insert
//! sequence (no timestamps), so a replayed trace produces replay-exact
//! `hits`/`misses`/`evictions` counters, which the eviction tests assert
//! analytically.
//!
//! Hit/miss counters follow serial replay semantics regardless of how many
//! connections hammer the service: the service holds the cache lock across
//! a batch's scan-evaluate-insert cycle, so `misses` is exactly the number
//! of distinct keys asked while absent and `hits + misses` the number of
//! plan queries served (see the cache-equivalence tests).  The batch path's
//! counter-only [`record_hit`](PlanCache::record_hit) stays CLOCK-exact
//! because [`insert`](PlanCache::insert) already sets the referenced bit —
//! precisely the state a serial replay's `lookup` hit would leave.

use super::codec::Response;
use std::collections::HashMap;

/// Canonical identity of a plan query: the zoo index, the objective wire
/// byte, the resolved link operating point as IEEE-754 bit patterns
/// (quantized on admission), and the activation-quantization flag.
///
/// Two queries with equal keys are the *same question* by construction —
/// the interned form is what makes memoization exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Wire id of the model (zoo index).
    pub model: u8,
    /// Wire byte of the objective.
    pub objective: u8,
    /// Resolved, quantized delivered energy per bit, as `f64::to_bits`.
    pub energy_per_bit_bits: u64,
    /// Resolved, quantized goodput, as `f64::to_bits`.
    pub goodput_bits: u64,
    /// Whether activations are int8-quantized before transmission.
    pub quantize_activations: bool,
}

/// One ring slot: a memoized answer plus its CLOCK reference bit.
#[derive(Debug)]
struct CacheSlot {
    key: PlanKey,
    response: Response,
    referenced: bool,
}

/// Memoized plan answers plus replay-exact hit/miss/eviction counters.
/// Unbounded by default; [`bounded`](Self::bounded) caps the resident set
/// with CLOCK eviction.
#[derive(Debug, Default)]
pub struct PlanCache {
    /// `None` = unbounded (never evicts).
    capacity: Option<usize>,
    /// Key → slot position in the ring.
    index: HashMap<PlanKey, usize>,
    /// The CLOCK ring (grows to `capacity`, then recycles).
    slots: Vec<CacheSlot>,
    /// The CLOCK hand: where the next eviction sweep starts.
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache holding at most `capacity` entries (clamped to ≥ 1),
    /// evicting by CLOCK beyond that.
    #[must_use]
    pub fn bounded(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// The capacity bound, or `None` when unbounded.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// The memoized answer for `key`, counting a hit when present and a
    /// miss when absent.  A hit sets the slot's reference bit (its second
    /// chance against the sweeping hand).
    pub fn lookup(&mut self, key: PlanKey) -> Option<Response> {
        match self.index.get(&key) {
            Some(&slot) => {
                self.hits += 1;
                self.slots[slot].referenced = true;
                Some(self.slots[slot].response.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// The memoized answer for `key` **without** touching counters or
    /// reference bits — used by tests asserting byte-identity without
    /// perturbing replay state.
    #[must_use]
    pub fn peek(&self, key: PlanKey) -> Option<&Response> {
        self.index.get(&key).map(|&slot| &self.slots[slot].response)
    }

    /// Records a hit the batch path resolved without [`lookup`](Self::lookup)
    /// (a duplicate of a key evaluated earlier in the same batch).  Counter
    /// only: the insert that satisfied the duplicate already set the
    /// reference bit, so CLOCK state matches a serial replay exactly.
    pub fn record_hit(&mut self) {
        self.hits += 1;
    }

    /// Memoizes the freshly computed answer for `key`, evicting the CLOCK
    /// victim first when at capacity.  The new entry starts referenced
    /// (a serial replay's lookup hit would set the bit immediately).
    pub fn insert(&mut self, key: PlanKey, response: Response) {
        if let Some(&slot) = self.index.get(&key) {
            // Re-insert of a resident key: refresh in place.
            self.slots[slot].response = response;
            self.slots[slot].referenced = true;
            return;
        }
        let at_capacity = self
            .capacity
            .is_some_and(|capacity| self.slots.len() >= capacity);
        if at_capacity {
            // Sweep: clear reference bits until an unreferenced victim
            // turns up.  Terminates within two revolutions (after one full
            // sweep every bit is clear).
            while self.slots[self.hand].referenced {
                self.slots[self.hand].referenced = false;
                self.hand = (self.hand + 1) % self.slots.len();
            }
            let victim = self.hand;
            self.hand = (victim + 1) % self.slots.len();
            self.index.remove(&self.slots[victim].key);
            self.evictions += 1;
            self.index.insert(key, victim);
            self.slots[victim] = CacheSlot {
                key,
                response,
                referenced: true,
            };
        } else {
            self.index.insert(key, self.slots.len());
            self.slots.push(CacheSlot {
                key,
                response,
                referenced: true,
            });
        }
    }

    /// Distinct keys currently memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether nothing is memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Lookups that found a memoized answer.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that required a fresh optimisation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced by CLOCK to admit a new key (always 0 unbounded).
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(model: u8) -> PlanKey {
        PlanKey {
            model,
            objective: 0,
            energy_per_bit_bits: 42.0f64.to_bits(),
            goodput_bits: 1.0e6f64.to_bits(),
            quantize_activations: true,
        }
    }

    fn answer(model: u8) -> Response {
        Response::Error(format!("stub-{model}"))
    }

    #[test]
    fn counters_follow_serial_replay_semantics() {
        let mut cache = PlanCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), None);
        assert_eq!(cache.lookup(key(0)), None);
        cache.insert(key(0), answer(0));
        assert_eq!(cache.lookup(key(0)), Some(answer(0)));
        assert_eq!(cache.lookup(key(1)), None);
        cache.insert(key(1), answer(1));
        assert_eq!(cache.lookup(key(0)), Some(answer(0)));
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (2, 2, 0));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn clock_evicts_the_first_unreferenced_slot_deterministically() {
        let mut cache = PlanCache::bounded(2);
        assert_eq!(cache.capacity(), Some(2));
        cache.insert(key(0), answer(0));
        cache.insert(key(1), answer(1));
        // Both slots referenced; the hand strips both bits and takes
        // slot 0 (the full sweep ends where it began).
        cache.insert(key(2), answer(2));
        assert_eq!(cache.evictions(), 1);
        assert!(cache.peek(key(0)).is_none());
        assert_eq!(cache.peek(key(1)), Some(&answer(1)));
        // Hand now rests one past the victim (slot 1).  Re-arm key(1) with
        // a hit; the next insert sweeps from slot 1: clears key(1)'s bit,
        // clears key(2)'s, revolves back to the now-clear slot 1 — with
        // every bit set, the hand's starting slot is the victim.
        assert_eq!(cache.lookup(key(1)), Some(answer(1)));
        cache.insert(key(3), answer(3));
        assert_eq!(cache.evictions(), 2);
        assert!(cache.peek(key(1)).is_none());
        assert_eq!(cache.peek(key(2)), Some(&answer(2)));
        assert_eq!(cache.peek(key(3)), Some(&answer(3)));
        assert_eq!(cache.len(), 2);

        // Second-chance proper: key(2)'s bit is clear, key(3)'s set — the
        // hand (at key(2)'s slot) takes the unreferenced key(2)
        // immediately, sparing the referenced key(3).
        cache.insert(key(4), answer(4));
        assert_eq!(cache.evictions(), 3);
        assert!(cache.peek(key(2)).is_none());
        assert_eq!(cache.peek(key(3)), Some(&answer(3)));
    }

    #[test]
    fn reinserting_a_resident_key_refreshes_without_eviction() {
        let mut cache = PlanCache::bounded(1);
        cache.insert(key(0), answer(0));
        cache.insert(key(0), answer(7));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.peek(key(0)), Some(&answer(7)));
        assert_eq!(cache.len(), 1);
    }
}
