//! The two node architectures the paper contrasts (Fig. 1): today's IoB node
//! (sensor + on-board CPU + radiative radio) versus the human-inspired node
//! (sensor + optional ISA + Wi-R to the on-body hub).

use crate::CoreError;
use hidwa_energy::compute::{ComputeClass, ComputeEngine};
use hidwa_energy::sensing::{SensingModel, SensorModality};
use hidwa_phy::ble::BleTransceiver;
use hidwa_phy::wir::WiRTransceiver;
use hidwa_phy::Transceiver;
use hidwa_units::{DataRate, Power};
use serde::{Deserialize, Serialize};

/// A workload as seen by one leaf node: what it senses, how hard its local
/// model works, and what it must transmit under each architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    name: String,
    modality: SensorModality,
    /// Raw sensor output rate.
    sensor_rate: DataRate,
    /// Sustained local-inference load if the node computes locally (MAC/s).
    local_macs_per_second: f64,
    /// Data rate that must be transmitted when computation happens on the
    /// node (results / summaries only).
    tx_rate_after_local_compute: DataRate,
    /// Data rate that must be transmitted when computation is offloaded to
    /// the hub (raw or lightly compressed sensor stream).
    tx_rate_for_offload: DataRate,
}

impl WorkloadSpec {
    /// Creates a workload specification.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        modality: SensorModality,
        sensor_rate: DataRate,
        local_macs_per_second: f64,
        tx_rate_after_local_compute: DataRate,
        tx_rate_for_offload: DataRate,
    ) -> Self {
        Self {
            name: name.into(),
            modality,
            sensor_rate,
            local_macs_per_second,
            tx_rate_after_local_compute,
            tx_rate_for_offload,
        }
    }

    /// ECG chest patch running arrhythmia detection (4 kbps raw stream,
    /// ~0.5 MMAC/s local model, 100 bps of classifications).
    #[must_use]
    pub fn ecg_patch() -> Self {
        Self::new(
            "ECG patch",
            SensorModality::Biopotential,
            DataRate::from_kbps(4.0),
            0.5e6,
            DataRate::from_bps(100.0),
            DataRate::from_kbps(4.0),
        )
    }

    /// Wrist IMU gesture controller.
    #[must_use]
    pub fn imu_wristband() -> Self {
        Self::new(
            "IMU wristband",
            SensorModality::Inertial,
            DataRate::from_kbps(13.0),
            1.0e6,
            DataRate::from_bps(200.0),
            DataRate::from_kbps(13.0),
        )
    }

    /// Always-listening audio node (keyword spotting locally, or streaming
    /// 256 kbps compressed audio for hub-side transcription).
    #[must_use]
    pub fn audio_assistant() -> Self {
        Self::new(
            "audio AI node",
            SensorModality::Audio,
            DataRate::from_kbps(256.0),
            20.0e6,
            DataRate::from_kbps(2.0),
            DataRate::from_kbps(256.0),
        )
    }

    /// First-person camera node (local feature extraction at ~0.5 GMAC/s, or
    /// streaming MJPEG-compressed video at ~2 Mbps for hub-side vision).
    #[must_use]
    pub fn video_glasses() -> Self {
        Self::new(
            "video AI node",
            SensorModality::Vision,
            DataRate::from_mbps(10.0),
            500.0e6,
            DataRate::from_kbps(50.0),
            DataRate::from_mbps(2.0),
        )
    }

    /// The four workloads used in the Fig. 1 reproduction.
    #[must_use]
    pub fn paper_set() -> Vec<Self> {
        vec![
            Self::ecg_patch(),
            Self::imu_wristband(),
            Self::audio_assistant(),
            Self::video_glasses(),
        ]
    }

    /// Workload name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sensor modality.
    #[must_use]
    pub fn modality(&self) -> SensorModality {
        self.modality
    }

    /// Raw sensor output rate.
    #[must_use]
    pub fn sensor_rate(&self) -> DataRate {
        self.sensor_rate
    }

    /// Local compute load (MAC/s) when inference runs on the node.
    #[must_use]
    pub fn local_macs_per_second(&self) -> f64 {
        self.local_macs_per_second
    }

    /// Transmit rate when computing locally.
    #[must_use]
    pub fn tx_rate_after_local_compute(&self) -> DataRate {
        self.tx_rate_after_local_compute
    }

    /// Transmit rate when offloading to the hub.
    #[must_use]
    pub fn tx_rate_for_offload(&self) -> DataRate {
        self.tx_rate_for_offload
    }
}

/// Per-component power breakdown of one leaf node (one bar group of Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Sensing front-end power.
    pub sensing: Power,
    /// On-node compute power (CPU or ISA).
    pub compute: Power,
    /// Communication power.
    pub communication: Power,
}

impl PowerBreakdown {
    /// Total node power.
    #[must_use]
    pub fn total(&self) -> Power {
        self.sensing + self.compute + self.communication
    }

    /// The dominant component by power.
    #[must_use]
    pub fn dominant(&self) -> &'static str {
        let s = self.sensing.as_watts();
        let c = self.compute.as_watts();
        let r = self.communication.as_watts();
        if r >= s && r >= c {
            "communication"
        } else if c >= s {
            "compute"
        } else {
            "sensing"
        }
    }
}

/// Which of the paper's two architectures a node follows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeArchitecture {
    /// Today's IoB node: every wearable carries an application-class CPU and
    /// a BLE radio, computes locally and uploads results.
    Conventional {
        /// The on-board compute engine.
        cpu: ComputeEngine,
        /// The radiative radio.
        radio: BleTransceiver,
    },
    /// The paper's human-inspired node: sensing plus (at most) a ~100 µW ISA
    /// block, with everything else offloaded to the hub over Wi-R.
    HumanInspired {
        /// The in-sensor-analytics accelerator (used only when local
        /// pre-processing pays for itself).
        isa: ComputeEngine,
        /// The Wi-R transceiver.
        radio: WiRTransceiver,
        /// Fraction of the local compute load the ISA actually runs
        /// (0 = pure offload, 1 = full local inference on the ISA).
        isa_fraction: f64,
    },
}

impl NodeArchitecture {
    /// The conventional architecture with survey-midpoint components.
    #[must_use]
    pub fn conventional() -> Self {
        NodeArchitecture::Conventional {
            cpu: ComputeEngine::of_class(ComputeClass::ApplicationProcessor),
            radio: BleTransceiver::phy_1m(),
        }
    }

    /// The human-inspired architecture with survey-midpoint components and a
    /// light ISA share (10 % of the local model run as on-sensor
    /// pre-processing / compression).
    #[must_use]
    pub fn human_inspired() -> Self {
        NodeArchitecture::HumanInspired {
            isa: ComputeEngine::of_class(ComputeClass::IsaAccelerator),
            radio: WiRTransceiver::ixana_class(),
            isa_fraction: 0.1,
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            NodeArchitecture::Conventional { .. } => "conventional IoB node (CPU + BLE)",
            NodeArchitecture::HumanInspired { .. } => "human-inspired node (ISA + Wi-R)",
        }
    }

    /// Sets the ISA fraction (human-inspired only).
    ///
    /// # Errors
    /// Returns [`CoreError`] if `fraction` is outside `[0, 1]` or the
    /// architecture is conventional.
    pub fn with_isa_fraction(self, fraction: f64) -> Result<Self, CoreError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(CoreError::invalid("isa_fraction", "must be in [0, 1]"));
        }
        match self {
            NodeArchitecture::HumanInspired { isa, radio, .. } => {
                Ok(NodeArchitecture::HumanInspired {
                    isa,
                    radio,
                    isa_fraction: fraction,
                })
            }
            NodeArchitecture::Conventional { .. } => Err(CoreError::invalid(
                "architecture",
                "conventional nodes have no ISA fraction",
            )),
        }
    }

    /// Power breakdown of a leaf node running `workload` under this
    /// architecture (the Fig. 1 bars).
    #[must_use]
    pub fn power_breakdown(&self, workload: &WorkloadSpec) -> PowerBreakdown {
        let sensing =
            SensingModel::for_modality(workload.modality()).power_at(workload.sensor_rate());
        match self {
            NodeArchitecture::Conventional { cpu, radio } => {
                let compute = cpu.average_power(workload.local_macs_per_second());
                let communication = radio.average_power(workload.tx_rate_after_local_compute());
                PowerBreakdown {
                    sensing,
                    compute,
                    communication,
                }
            }
            NodeArchitecture::HumanInspired {
                isa,
                radio,
                isa_fraction,
            } => {
                // The ISA runs a fraction of the local model (pre-processing /
                // compression); the rest of the stream is offloaded. The
                // transmit rate interpolates between the full offload rate and
                // the post-inference rate according to that fraction.
                let compute = isa.average_power(workload.local_macs_per_second() * isa_fraction);
                let tx_rate = DataRate::from_bps(
                    workload.tx_rate_for_offload().as_bps() * (1.0 - isa_fraction)
                        + workload.tx_rate_after_local_compute().as_bps() * isa_fraction,
                );
                let communication = radio.average_power(tx_rate);
                PowerBreakdown {
                    sensing,
                    compute,
                    communication,
                }
            }
        }
    }

    /// Power reduction factor of the human-inspired architecture over the
    /// conventional one for a workload (conventional total / human-inspired
    /// total).
    #[must_use]
    pub fn reduction_factor(workload: &WorkloadSpec) -> f64 {
        let conventional = Self::conventional().power_breakdown(workload).total();
        let human = Self::human_inspired().power_breakdown(workload).total();
        conventional.as_watts() / human.as_watts().max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_conventional_node_is_milliwatt_class() {
        // Fig. 1 left: sensors ~100s µW, CPU ~mW, radio ~10s mW → total is
        // dominated by CPU + radio in the mW–10s mW range.
        let breakdown =
            NodeArchitecture::conventional().power_breakdown(&WorkloadSpec::ecg_patch());
        assert!(
            breakdown.compute.as_milli_watts() >= 1.0,
            "CPU {}",
            breakdown.compute
        );
        assert!(
            breakdown.total().as_milli_watts() >= 10.0,
            "total {}",
            breakdown.total()
        );
        assert_ne!(breakdown.dominant(), "sensing");
    }

    #[test]
    fn fig1_human_inspired_node_is_sub_milliwatt() {
        // Fig. 1 right: sensing 10–50 µW, ISA ~100 µW, Wi-R ~100 µW class.
        for workload in [WorkloadSpec::ecg_patch(), WorkloadSpec::imu_wristband()] {
            let b = NodeArchitecture::human_inspired().power_breakdown(&workload);
            assert!(
                b.sensing.as_micro_watts() <= 50.0,
                "{}: sensing {}",
                workload.name(),
                b.sensing
            );
            assert!(
                b.compute.as_micro_watts() <= 150.0,
                "{}: ISA {}",
                workload.name(),
                b.compute
            );
            assert!(
                b.communication.as_micro_watts() <= 150.0,
                "{}: Wi-R {}",
                workload.name(),
                b.communication
            );
            assert!(b.total().as_micro_watts() < 500.0);
        }
    }

    #[test]
    fn human_inspired_wins_for_every_paper_workload() {
        // Every workload benefits; nodes whose power is not dominated by the
        // camera front end improve by well over an order of magnitude.
        for workload in WorkloadSpec::paper_set() {
            let factor = NodeArchitecture::reduction_factor(&workload);
            assert!(
                factor > 5.0,
                "{}: reduction only {factor:.1}×",
                workload.name()
            );
        }
        for workload in [
            WorkloadSpec::ecg_patch(),
            WorkloadSpec::imu_wristband(),
            WorkloadSpec::audio_assistant(),
        ] {
            let factor = NodeArchitecture::reduction_factor(&workload);
            assert!(
                factor > 20.0,
                "{}: reduction only {factor:.1}×",
                workload.name()
            );
        }
    }

    #[test]
    fn reduction_ordering_follows_sensing_floor() {
        // The win is bounded by the irreducible sensing front end: the ECG
        // patch (µW sensing) gains the most, the camera node (mW imager) the
        // least — which is exactly why Fig. 3 puts video nodes in the all-day
        // rather than the perpetual region.
        let ecg = NodeArchitecture::reduction_factor(&WorkloadSpec::ecg_patch());
        let audio = NodeArchitecture::reduction_factor(&WorkloadSpec::audio_assistant());
        let video = NodeArchitecture::reduction_factor(&WorkloadSpec::video_glasses());
        assert!(ecg > audio);
        assert!(audio > video);
        assert!(video > 1.0);
    }

    #[test]
    fn isa_fraction_validation_and_effect() {
        let arch = NodeArchitecture::human_inspired();
        assert!(arch.clone().with_isa_fraction(1.5).is_err());
        assert!(NodeArchitecture::conventional()
            .with_isa_fraction(0.5)
            .is_err());
        // For the audio workload, running *more* of the model locally cuts
        // the transmit rate: communication power falls as isa_fraction rises.
        let low = NodeArchitecture::human_inspired()
            .with_isa_fraction(0.0)
            .unwrap()
            .power_breakdown(&WorkloadSpec::audio_assistant());
        let high = NodeArchitecture::human_inspired()
            .with_isa_fraction(1.0)
            .unwrap()
            .power_breakdown(&WorkloadSpec::audio_assistant());
        assert!(high.communication < low.communication);
        assert!(high.compute > low.compute);
    }

    #[test]
    fn breakdown_total_is_component_sum() {
        let b =
            NodeArchitecture::human_inspired().power_breakdown(&WorkloadSpec::audio_assistant());
        let sum = b.sensing + b.compute + b.communication;
        assert!((b.total().as_watts() - sum.as_watts()).abs() < 1e-15);
        assert!(!NodeArchitecture::human_inspired().name().is_empty());
        assert_eq!(WorkloadSpec::paper_set().len(), 4);
    }

    #[test]
    fn workload_accessors() {
        let w = WorkloadSpec::video_glasses();
        assert_eq!(w.modality(), SensorModality::Vision);
        assert!(w.sensor_rate().as_mbps() > 1.0);
        assert!(w.local_macs_per_second() > 1e8);
        assert!(w.tx_rate_for_offload() > w.tx_rate_after_local_compute());
        assert_eq!(w.name(), "video AI node");
    }
}
