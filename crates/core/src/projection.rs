//! Fig. 3: projected battery life of Wi-R-connected wearable nodes versus
//! data rate.
//!
//! The paper's assumptions, reproduced verbatim by [`Fig3Projector::paper_defaults`]:
//!
//! * 1000 mAh battery (high-capacity coin cell),
//! * Wi-R communication at 100 pJ/bit,
//! * sensing power as a function of data rate from a literature survey,
//! * computation power considered negligible (first-order approximation),
//! * devices with more than a year of battery life counted as perpetually
//!   operable.

use hidwa_energy::projection::{LifetimeProjector, OperatingBand};
use hidwa_energy::sensing::SensingModel;
use hidwa_energy::Battery;
use hidwa_phy::wir::WiRTransceiver;
use hidwa_phy::Transceiver;
use hidwa_units::{DataRate, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 3 curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectionPoint {
    /// Node data rate.
    pub rate: DataRate,
    /// Sensing power at this rate (survey model).
    pub sensing_power: Power,
    /// Wi-R communication power at this rate.
    pub communication_power: Power,
    /// Total node power (sensing + communication; compute neglected).
    pub total_power: Power,
    /// Projected battery life.
    pub battery_life: TimeSpan,
    /// Operating band of the projected life.
    pub band: OperatingBand,
}

/// A named device marker placed on the Fig. 3 curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceMarker {
    /// Marker label as used in the figure.
    pub label: &'static str,
    /// Data rate the device class operates at.
    pub rate: DataRate,
    /// Operating band the paper claims for this class under Wi-R.
    pub paper_band: OperatingBand,
}

/// The Fig. 3 projection engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Projector {
    battery: Battery,
    sensing: SensingModel,
    radio: WiRTransceiver,
}

impl Fig3Projector {
    /// Creates a projector from explicit components.
    #[must_use]
    pub fn new(battery: Battery, sensing: SensingModel, radio: WiRTransceiver) -> Self {
        Self {
            battery,
            sensing,
            radio,
        }
    }

    /// The paper's exact assumptions: 1000 mAh cell, survey sensing model,
    /// 100 pJ/bit Wi-R.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self::new(
            Battery::coin_cell_1000mah(),
            SensingModel::survey(),
            WiRTransceiver::ixana_class(),
        )
    }

    /// The battery used in the projection.
    #[must_use]
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Total node power at a data rate (sensing + Wi-R communication).
    #[must_use]
    pub fn node_power(&self, rate: DataRate) -> Power {
        self.sensing.power_at(rate) + self.radio.average_power(rate)
    }

    /// Projects a single data-rate point.
    #[must_use]
    pub fn project_rate(&self, rate: DataRate) -> ProjectionPoint {
        let sensing_power = self.sensing.power_at(rate);
        let communication_power = self.radio.average_power(rate);
        let total_power = sensing_power + communication_power;
        let projector = LifetimeProjector::new(self.battery.clone());
        let projection = projector.project(total_power);
        ProjectionPoint {
            rate,
            sensing_power,
            communication_power,
            total_power,
            battery_life: projection.lifetime(),
            band: projection.band(),
        }
    }

    /// The logarithmically spaced rate axis of the Fig. 3 sweep:
    /// `points_per_decade` samples per decade from `min_rate` to `max_rate`
    /// (degenerate inputs collapse to the single `min_rate` point).  The one
    /// definition of the x-axis, shared by [`sweep`](Self::sweep) and the
    /// `SweepRunner`-parallel grid in `hidwa_bench::figs`, so the two paths
    /// cannot drift apart.
    #[must_use]
    pub fn sweep_axis(
        min_rate: DataRate,
        max_rate: DataRate,
        points_per_decade: usize,
    ) -> Vec<DataRate> {
        let lo = min_rate.as_bps().max(1.0).log10();
        let hi = max_rate.as_bps().max(1.0).log10();
        if hi <= lo || points_per_decade == 0 {
            return vec![min_rate];
        }
        let total_points = ((hi - lo) * points_per_decade as f64).ceil() as usize + 1;
        (0..total_points)
            .map(|i| {
                let exp = lo + (hi - lo) * i as f64 / (total_points - 1) as f64;
                DataRate::from_bps(10f64.powf(exp))
            })
            .collect()
    }

    /// Projects a full sweep of logarithmically spaced rates from
    /// `min_rate` to `max_rate` with `points_per_decade` samples per decade —
    /// the Fig. 3 x-axis ([`sweep_axis`](Self::sweep_axis)).
    #[must_use]
    pub fn sweep(
        &self,
        min_rate: DataRate,
        max_rate: DataRate,
        points_per_decade: usize,
    ) -> Vec<ProjectionPoint> {
        Self::sweep_axis(min_rate, max_rate, points_per_decade)
            .into_iter()
            .map(|rate| self.project_rate(rate))
            .collect()
    }

    /// The device-class markers the paper places on the figure.
    #[must_use]
    pub fn device_markers() -> Vec<DeviceMarker> {
        vec![
            DeviceMarker {
                label: "biopotential sensor patch",
                rate: DataRate::from_kbps(4.0),
                paper_band: OperatingBand::Perpetual,
            },
            DeviceMarker {
                label: "smart ring / fitness tracker",
                rate: DataRate::from_kbps(13.0),
                paper_band: OperatingBand::Perpetual,
            },
            DeviceMarker {
                label: "audio-input wearable AI (pins, pocket assistants, ExG)",
                rate: DataRate::from_kbps(256.0),
                paper_band: OperatingBand::AllWeek,
            },
            DeviceMarker {
                label: "AI video node",
                rate: DataRate::from_mbps(4.0),
                paper_band: OperatingBand::AllDay,
            },
        ]
    }

    /// The largest data rate that still yields a perpetual (> 1 year) node —
    /// the right-hand edge of the paper's "perpetually operable region".
    #[must_use]
    pub fn perpetual_region_edge(&self) -> DataRate {
        // Bisection on the monotone battery-life-vs-rate curve.
        let mut lo = 1.0f64;
        let mut hi = 1e8f64;
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            let life = self.project_rate(DataRate::from_bps(mid)).battery_life;
            if life.as_years() > 1.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        DataRate::from_bps((lo * hi).sqrt())
    }
}

impl Default for Fig3Projector {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biopotential_and_tracker_nodes_are_perpetual() {
        // Fig. 3: biopotential patches, smart rings and fitness trackers fall
        // in the perpetually operable region.
        let projector = Fig3Projector::paper_defaults();
        for rate_kbps in [1.0, 4.0, 13.0] {
            let point = projector.project_rate(DataRate::from_kbps(rate_kbps));
            assert_eq!(
                point.band,
                OperatingBand::Perpetual,
                "{rate_kbps} kbps node got {}",
                point.band
            );
        }
    }

    #[test]
    fn audio_nodes_reach_all_week_and_video_all_day() {
        let projector = Fig3Projector::paper_defaults();
        let audio = projector.project_rate(DataRate::from_kbps(256.0));
        assert!(
            audio.battery_life.as_days() >= 7.0,
            "audio node life {} days",
            audio.battery_life.as_days()
        );
        let video = projector.project_rate(DataRate::from_mbps(4.0));
        assert!(
            video.battery_life.as_days() >= 1.0,
            "video node life {} days",
            video.battery_life.as_days()
        );
        assert!(video.battery_life < audio.battery_life);
    }

    #[test]
    fn all_paper_markers_meet_their_bands() {
        let projector = Fig3Projector::paper_defaults();
        for marker in Fig3Projector::device_markers() {
            let point = projector.project_rate(marker.rate);
            assert!(
                point.band >= marker.paper_band,
                "{}: projected {} but paper claims {}",
                marker.label,
                point.band,
                marker.paper_band
            );
        }
    }

    #[test]
    fn battery_life_is_monotone_decreasing_in_rate() {
        let projector = Fig3Projector::paper_defaults();
        let sweep = projector.sweep(DataRate::from_bps(10.0), DataRate::from_mbps(10.0), 6);
        assert!(sweep.len() > 30);
        for w in sweep.windows(2) {
            assert!(w[0].battery_life >= w[1].battery_life);
            assert!(w[0].rate <= w[1].rate);
            assert!(w[1].total_power >= w[0].total_power);
        }
    }

    #[test]
    fn perpetual_region_edge_is_between_tracker_and_audio_rates() {
        // The paper draws the perpetual boundary between the tracker-class
        // rates (≈ 10 kbps) and the audio-class rates (≈ 256 kbps).
        let projector = Fig3Projector::paper_defaults();
        let edge = projector.perpetual_region_edge();
        assert!(
            edge.as_kbps() > 13.0 && edge.as_kbps() < 256.0,
            "edge at {edge}"
        );
        // And the edge actually separates the two regimes.
        let just_below = projector.project_rate(DataRate::from_bps(edge.as_bps() * 0.9));
        let just_above = projector.project_rate(DataRate::from_bps(edge.as_bps() * 1.1));
        assert_eq!(just_below.band, OperatingBand::Perpetual);
        assert!(just_above.band < OperatingBand::Perpetual);
    }

    #[test]
    fn point_components_sum_and_sweep_degenerates_gracefully() {
        let projector = Fig3Projector::default();
        let p = projector.project_rate(DataRate::from_kbps(100.0));
        assert!(
            (p.total_power.as_watts() - (p.sensing_power + p.communication_power).as_watts()).abs()
                < 1e-15
        );
        let degenerate = projector.sweep(DataRate::from_kbps(1.0), DataRate::from_kbps(1.0), 5);
        assert_eq!(degenerate.len(), 1);
        assert_eq!(projector.battery().name(), "1000 mAh coin cell");
        assert!(projector.node_power(DataRate::from_kbps(100.0)) > Power::ZERO);
    }
}
