//! DNN partitioning across the body-area network: how much of a wearable AI
//! model runs on the leaf node versus the on-body hub.
//!
//! This is the quantitative core of the paper's distributed-intelligence
//! vision.  For every *cut point* of a model (leaf runs the first `k` layers,
//! ships the activation, hub runs the rest) the optimiser computes the leaf
//! energy per inference, the end-to-end latency and the sustained leaf power,
//! and picks the cut that minimises the chosen objective.  Comparing the
//! optimum under a Wi-R link against a BLE link (and against running
//! everything on the node) reproduces the architectural claim: with a
//! ~100 pJ/bit link the optimal cut moves towards "ship early, compute on the
//! hub", which is exactly the human-inspired architecture.
//!
//! # Performance model
//!
//! This module sits on the hottest path of the repo — the figure sweeps call
//! [`PartitionOptimizer::optimize`] for every (model × context × objective)
//! cell — so the evaluation pipeline is built to do no per-call allocation:
//!
//! * cut points come from the [`WearableModel`]'s construction-time cache
//!   ([`WearableModel::cut_points`]), never from re-profiling the network;
//! * [`PartitionOptimizer::optimize`] is a single streaming pass over that
//!   cached slice, tracking the best cut by scalar objective key and
//!   materialising exactly one winning [`PartitionPlan`] at the end — no
//!   intermediate `Vec<PartitionPlan>`;
//! * [`PartitionOptimizer::all_on_leaf`] / [`PartitionOptimizer::all_on_hub`]
//!   evaluate exactly one cut each;
//! * context and model labels are interned `Arc<str>`s, so labelling a plan
//!   is a reference-count bump rather than a `String` clone.
//!
//! [`PartitionOptimizer::evaluate_all`] remains available as the naive
//! reference (and for table-style figure output); the workspace equivalence
//! tests assert the streaming pass matches it exactly.

use crate::CoreError;
use hidwa_energy::compute::{ComputeClass, ComputeEngine};
use hidwa_isa::models::WearableModel;
use hidwa_isa::network::CutPoint;
use hidwa_phy::ble::BleTransceiver;
use hidwa_phy::wir::WiRTransceiver;
use hidwa_phy::Transceiver;
use hidwa_units::{DataRate, DataVolume, Energy, EnergyPerBit, Power, TimeSpan};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// What the optimiser minimises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimise leaf-node energy per inference (battery life of the leaf).
    LeafEnergy,
    /// Minimise end-to-end latency per inference.
    Latency,
    /// Minimise the product of leaf energy and latency.
    EnergyDelayProduct,
}

impl Objective {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Objective::LeafEnergy => "leaf energy",
            Objective::Latency => "latency",
            Objective::EnergyDelayProduct => "energy-delay product",
        }
    }
}

/// The execution environment a partition is evaluated in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionContext {
    /// Compute engine available on the leaf node.
    leaf_engine: ComputeEngine,
    /// Compute engine available on the hub.
    hub_engine: ComputeEngine,
    /// Delivered energy per application bit on the leaf→hub link.
    link_energy_per_bit: EnergyPerBit,
    /// Delivered goodput of the leaf→hub link.
    link_goodput: DataRate,
    /// Whether activations are quantized to int8 before transmission.
    quantize_activations: bool,
    /// Descriptive label ("Wi-R", "BLE"), interned for cheap plan labelling.
    label: Arc<str>,
}

impl PartitionContext {
    /// Creates a context from explicit components.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        leaf_engine: ComputeEngine,
        hub_engine: ComputeEngine,
        link_energy_per_bit: EnergyPerBit,
        link_goodput: DataRate,
    ) -> Self {
        Self {
            leaf_engine,
            hub_engine,
            link_energy_per_bit,
            link_goodput,
            quantize_activations: true,
            label: Arc::from(label.into()),
        }
    }

    /// The human-inspired context: ISA accelerator on the leaf, edge NPU on
    /// the hub, Wi-R link at its commercial operating point.
    #[must_use]
    pub fn wir_default() -> Self {
        let wir = WiRTransceiver::ixana_class();
        let rate = wir.max_data_rate();
        Self::new(
            "Wi-R",
            ComputeEngine::of_class(ComputeClass::IsaAccelerator),
            ComputeEngine::of_class(ComputeClass::EdgeNpu),
            wir.energy_per_bit(rate),
            rate,
        )
    }

    /// The conventional-radio context: same compute engines, BLE 1M link.
    #[must_use]
    pub fn ble_default() -> Self {
        let ble = BleTransceiver::phy_1m();
        let rate = ble.max_data_rate();
        Self::new(
            "BLE",
            ComputeEngine::of_class(ComputeClass::IsaAccelerator),
            ComputeEngine::of_class(ComputeClass::EdgeNpu),
            ble.energy_per_bit(rate),
            rate,
        )
    }

    /// Disables int8 quantization of transmitted activations.
    #[must_use]
    pub fn without_quantization(mut self) -> Self {
        self.quantize_activations = false;
        self
    }

    /// Derates the leaf→hub link to `factor` of its nominal operating point
    /// (clamped to `[0.001, 1]`): goodput scales down by `factor` and energy
    /// per delivered bit scales up by `1 / factor`, modelling a faded channel
    /// that needs more retransmissions per application bit.  The label is
    /// kept, so derated plans still report their base context.
    ///
    /// This is the knob the churn layer turns per context epoch: a derated
    /// link shifts both the feasibility frontier and the optimal cut, which
    /// is what makes online re-planning (and hence placement policies) a
    /// meaningful axis.
    #[must_use]
    pub fn with_link_derating(mut self, factor: f64) -> Self {
        let factor = if factor.is_finite() {
            factor.clamp(1e-3, 1.0)
        } else {
            1.0
        };
        self.link_goodput = DataRate::from_bps(self.link_goodput.as_bps() * factor);
        self.link_energy_per_bit =
            EnergyPerBit::from_pico_joules(self.link_energy_per_bit.as_pico_joules() / factor);
        self
    }

    /// Context label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Context label as a shared, cheaply-cloneable `Arc<str>`.
    #[must_use]
    pub fn interned_label(&self) -> &Arc<str> {
        &self.label
    }

    /// Bytes actually transmitted for a cut (after optional quantization).
    #[must_use]
    fn wire_bytes(&self, cut: &CutPoint) -> f64 {
        if self.quantize_activations {
            // f32 → int8 plus a 5-byte scale header.
            cut.transfer_bytes as f64 / 4.0 + 5.0
        } else {
            cut.transfer_bytes as f64
        }
    }
}

/// A fully evaluated partition of one model in one context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionPlan {
    /// Context label ("Wi-R", "BLE", …), shared with the originating
    /// [`PartitionContext`].
    pub context: Arc<str>,
    /// Model name, shared with the originating
    /// [`WearableModel`].
    pub model: Arc<str>,
    /// Number of layers executed on the leaf.
    pub cut_index: usize,
    /// MACs executed on the leaf per inference.
    pub leaf_macs: u64,
    /// MACs executed on the hub per inference.
    pub hub_macs: u64,
    /// Bytes transmitted per inference (after quantization, with framing
    /// ignored — framing is accounted in the link model when simulated).
    pub transfer_bytes: f64,
    /// Leaf energy per inference (compute + transmit).
    pub leaf_energy: Energy,
    /// Hub energy per inference (receive side compute only).
    pub hub_energy: Energy,
    /// End-to-end latency per inference.
    pub latency: TimeSpan,
    /// Sustained leaf power at the model's inference rate.
    pub leaf_power: Power,
    /// Whether the leaf engine can sustain this cut at the model's rate.
    pub feasible: bool,
}

impl PartitionPlan {
    /// Energy-delay product (J·s) used by [`Objective::EnergyDelayProduct`].
    #[must_use]
    pub fn energy_delay_product(&self) -> f64 {
        self.leaf_energy.as_joules() * self.latency.as_seconds()
    }
}

/// Evaluates and optimises partitions of wearable models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionOptimizer {
    context: PartitionContext,
}

impl PartitionOptimizer {
    /// Creates an optimiser for a context.
    #[must_use]
    pub fn new(context: PartitionContext) -> Self {
        Self { context }
    }

    /// The context being optimised for.
    #[must_use]
    pub fn context(&self) -> &PartitionContext {
        &self.context
    }

    /// Evaluates every cut point of a model (the naive reference path).
    ///
    /// The streaming [`PartitionOptimizer::optimize`] does not call this; it
    /// exists for table-style output and as the ground truth the equivalence
    /// tests compare the fast paths against.
    ///
    /// # Errors
    /// Kept for API stability; cut points come from the model's
    /// construction-time cache, so this cannot currently fail.
    pub fn evaluate_all(&self, model: &WearableModel) -> Result<Vec<PartitionPlan>, CoreError> {
        Ok(model
            .cut_points()
            .iter()
            .map(|cut| self.evaluate(model, cut))
            .collect())
    }

    /// Scalar costs of one cut, computed without building a plan.
    fn cut_metrics(&self, model: &WearableModel, cut: &CutPoint) -> CutMetrics {
        let ctx = &self.context;
        let wire_bytes = ctx.wire_bytes(cut);
        let wire_volume = DataVolume::from_bytes(wire_bytes);

        let leaf_compute_energy = ctx.leaf_engine.energy_for_ops(cut.leaf_macs as f64);
        let tx_energy = ctx.link_energy_per_bit * wire_volume;
        let leaf_energy = leaf_compute_energy + tx_energy;
        let hub_energy = ctx.hub_engine.energy_for_ops(cut.hub_macs as f64);

        let leaf_latency = ctx.leaf_engine.latency_for_ops(cut.leaf_macs as f64);
        let transfer_latency = if ctx.link_goodput.as_bps() > 0.0 {
            wire_volume / ctx.link_goodput
        } else {
            TimeSpan::from_seconds(f64::INFINITY)
        };
        let hub_latency = ctx.hub_engine.latency_for_ops(cut.hub_macs as f64);
        let latency = leaf_latency + transfer_latency + hub_latency;

        let rate = model.inferences_per_second();
        let leaf_power = Power::from_watts(leaf_energy.as_joules() * rate);
        let feasible = ctx.leaf_engine.can_sustain(cut.leaf_macs as f64 * rate)
            && ctx.link_goodput.as_bps() >= wire_bytes * 8.0 * rate;

        CutMetrics {
            wire_bytes,
            leaf_energy,
            hub_energy,
            latency,
            leaf_power,
            feasible,
        }
    }

    /// Evaluates one cut point.
    #[must_use]
    pub fn evaluate(&self, model: &WearableModel, cut: &CutPoint) -> PartitionPlan {
        let metrics = self.cut_metrics(model, cut);
        PartitionPlan {
            context: Arc::clone(&self.context.label),
            model: Arc::clone(model.interned_name()),
            cut_index: cut.index,
            leaf_macs: cut.leaf_macs,
            hub_macs: cut.hub_macs,
            transfer_bytes: metrics.wire_bytes,
            leaf_energy: metrics.leaf_energy,
            hub_energy: metrics.hub_energy,
            latency: metrics.latency,
            leaf_power: metrics.leaf_power,
            feasible: metrics.feasible,
        }
    }

    /// Finds the feasible cut that minimises the objective.
    ///
    /// Single streaming pass over the model's cached cut points: each cut is
    /// reduced to its scalar objective key, the arg-min index is tracked, and
    /// exactly one [`PartitionPlan`] (the winner) is materialised.  Ties keep
    /// the earliest cut, matching the naive `evaluate_all` + `min_by`
    /// reference.
    ///
    /// # Errors
    /// Returns [`CoreError::WorkloadInfeasible`] if no cut is feasible (the
    /// model cannot run at its required rate in this context at all).
    pub fn optimize(
        &self,
        model: &WearableModel,
        objective: Objective,
    ) -> Result<PartitionPlan, CoreError> {
        let cuts = model.cut_points();
        let mut best: Option<(usize, f64)> = None;
        for (index, cut) in cuts.iter().enumerate() {
            let metrics = self.cut_metrics(model, cut);
            if !metrics.feasible {
                continue;
            }
            let key = metrics.key(objective);
            let better = match best {
                None => true,
                // Strict `<` keeps the earliest minimum; incomparable (NaN)
                // keys never displace the incumbent — both exactly as the
                // reference `min_by` behaves.
                Some((_, best_key)) => {
                    key.partial_cmp(&best_key) == Some(core::cmp::Ordering::Less)
                }
            };
            if better {
                best = Some((index, key));
            }
        }
        best.map(|(index, _)| self.evaluate(model, &cuts[index]))
            .ok_or_else(|| CoreError::WorkloadInfeasible {
                reason: format!(
                    "no feasible cut for {} over {} at {:.1} inferences/s",
                    model.name(),
                    self.context.label,
                    model.inferences_per_second()
                ),
            })
    }

    /// Convenience: the "everything on the leaf" plan (the conventional
    /// wearable), regardless of feasibility on the ISA engine.
    ///
    /// Evaluates exactly the final cut of the cached table.
    ///
    /// # Errors
    /// Returns [`CoreError`] if the model has no cut points (requires a
    /// pathological zero-layer model with an empty cache).
    pub fn all_on_leaf(&self, model: &WearableModel) -> Result<PartitionPlan, CoreError> {
        model
            .cut_points()
            .last()
            .map(|cut| self.evaluate(model, cut))
            .ok_or_else(|| CoreError::invalid("model", "model has no cut points"))
    }

    /// Convenience: the "raw offload" plan (leaf ships the raw input).
    ///
    /// Evaluates exactly the first cut of the cached table.
    ///
    /// # Errors
    /// Returns [`CoreError`] if the model has no cut points (requires a
    /// pathological zero-layer model with an empty cache).
    pub fn all_on_hub(&self, model: &WearableModel) -> Result<PartitionPlan, CoreError> {
        model
            .cut_points()
            .first()
            .map(|cut| self.evaluate(model, cut))
            .ok_or_else(|| CoreError::invalid("model", "model has no cut points"))
    }
}

/// Scalar per-cut costs used by the streaming optimiser; building one of
/// these allocates nothing.
#[derive(Debug, Clone, Copy)]
struct CutMetrics {
    wire_bytes: f64,
    leaf_energy: Energy,
    hub_energy: Energy,
    latency: TimeSpan,
    leaf_power: Power,
    feasible: bool,
}

impl CutMetrics {
    fn key(&self, objective: Objective) -> f64 {
        match objective {
            Objective::LeafEnergy => self.leaf_energy.as_joules(),
            Objective::Latency => self.latency.as_seconds(),
            Objective::EnergyDelayProduct => {
                self.leaf_energy.as_joules() * self.latency.as_seconds()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidwa_isa::models;

    #[test]
    fn wir_optimum_is_no_worse_than_either_feasible_extreme() {
        let optimizer = PartitionOptimizer::new(PartitionContext::wir_default());
        for model in models::all_models() {
            let best = optimizer.optimize(&model, Objective::LeafEnergy).unwrap();
            assert!(best.feasible, "{}", model.name());
            let all_leaf = optimizer.all_on_leaf(&model).unwrap();
            let all_hub = optimizer.all_on_hub(&model).unwrap();
            for extreme in [all_leaf, all_hub] {
                if extreme.feasible {
                    assert!(
                        best.leaf_energy <= extreme.leaf_energy + Energy::from_pico_joules(1.0),
                        "{}: optimum {} > extreme {}",
                        model.name(),
                        best.leaf_energy,
                        extreme.leaf_energy
                    );
                }
            }
        }
    }

    #[test]
    fn optimum_matches_brute_force() {
        let optimizer = PartitionOptimizer::new(PartitionContext::wir_default());
        let model = models::ecg_arrhythmia_cnn();
        let plans = optimizer.evaluate_all(&model).unwrap();
        let brute = plans
            .iter()
            .filter(|p| p.feasible)
            .min_by(|a, b| a.leaf_energy.partial_cmp(&b.leaf_energy).unwrap())
            .unwrap();
        let best = optimizer.optimize(&model, Objective::LeafEnergy).unwrap();
        assert_eq!(best.cut_index, brute.cut_index);
    }

    #[test]
    fn wir_leaf_energy_beats_ble_for_every_model() {
        // The architectural claim: with Wi-R the leaf spends less energy per
        // inference than with BLE at each link's own optimal cut, and the gap
        // approaches the ~100× per-bit gap when the strategy is pure offload
        // (which is what the human-inspired architecture does).
        let wir = PartitionOptimizer::new(PartitionContext::wir_default());
        let ble = PartitionOptimizer::new(PartitionContext::ble_default());
        for model in models::all_models() {
            let wir_best = wir.optimize(&model, Objective::LeafEnergy).unwrap();
            match ble.optimize(&model, Objective::LeafEnergy) {
                Ok(ble_best) => {
                    let ratio = ble_best.leaf_energy.as_joules() / wir_best.leaf_energy.as_joules();
                    assert!(
                        ratio > 1.5,
                        "{}: BLE/Wi-R leaf energy ratio {ratio:.1}",
                        model.name()
                    );
                }
                // The strongest form of the claim: some workloads (15 fps
                // video) cannot run over BLE with an ISA-class leaf at all,
                // while Wi-R supports them.
                Err(CoreError::WorkloadInfeasible { .. }) => {
                    assert!(wir_best.feasible, "{}", model.name());
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
            let wir_offload = wir.all_on_hub(&model).unwrap();
            let ble_offload = ble.all_on_hub(&model).unwrap();
            let offload_ratio =
                ble_offload.leaf_energy.as_joules() / wir_offload.leaf_energy.as_joules();
            assert!(
                offload_ratio > 50.0,
                "{}: raw-offload BLE/Wi-R energy ratio {offload_ratio:.1}",
                model.name()
            );
        }
    }

    #[test]
    fn cheap_link_pushes_cut_towards_hub() {
        // With a ~100 pJ/bit link, early offload is optimal (small cut index);
        // with a nJ/bit link the optimiser keeps more layers on the leaf to
        // shrink the transfer (cut index never decreases).
        for model in [models::ecg_arrhythmia_cnn(), models::keyword_spotting_cnn()] {
            let wir_cut = PartitionOptimizer::new(PartitionContext::wir_default())
                .optimize(&model, Objective::LeafEnergy)
                .unwrap()
                .cut_index;
            let ble_cut = PartitionOptimizer::new(PartitionContext::ble_default())
                .optimize(&model, Objective::LeafEnergy)
                .unwrap()
                .cut_index;
            assert!(
                ble_cut >= wir_cut,
                "{}: BLE cut {ble_cut} < Wi-R cut {wir_cut}",
                model.name()
            );
        }
    }

    #[test]
    fn latency_objective_prefers_faster_plans() {
        let optimizer = PartitionOptimizer::new(PartitionContext::wir_default());
        let model = models::keyword_spotting_cnn();
        let fastest = optimizer.optimize(&model, Objective::Latency).unwrap();
        let lowest_energy = optimizer.optimize(&model, Objective::LeafEnergy).unwrap();
        assert!(fastest.latency <= lowest_energy.latency);
        let edp = optimizer
            .optimize(&model, Objective::EnergyDelayProduct)
            .unwrap();
        assert!(edp.energy_delay_product() <= fastest.energy_delay_product() + 1e-18);
        assert_eq!(Objective::LeafEnergy.name(), "leaf energy");
    }

    #[test]
    fn quantization_reduces_transfer_and_energy() {
        let model = models::ecg_arrhythmia_cnn();
        let with_quant = PartitionOptimizer::new(PartitionContext::wir_default())
            .all_on_hub(&model)
            .unwrap();
        let without =
            PartitionOptimizer::new(PartitionContext::wir_default().without_quantization())
                .all_on_hub(&model)
                .unwrap();
        assert!(with_quant.transfer_bytes < without.transfer_bytes);
        assert!(with_quant.leaf_energy < without.leaf_energy);
    }

    #[test]
    fn video_model_is_infeasible_fully_on_the_isa_leaf() {
        // 15 fps feature extraction exceeds a 50 MMAC/s ISA accelerator: the
        // all-on-leaf plan must be flagged infeasible, while the optimiser
        // still finds a feasible (offload-heavy) plan.
        let optimizer = PartitionOptimizer::new(PartitionContext::wir_default());
        let model = models::video_feature_extractor();
        let all_leaf = optimizer.all_on_leaf(&model).unwrap();
        assert!(!all_leaf.feasible);
        let best = optimizer.optimize(&model, Objective::LeafEnergy).unwrap();
        assert!(best.feasible);
        assert!(best.cut_index < model.network().len());
    }

    #[test]
    fn link_derating_raises_cost_and_can_move_the_cut() {
        let model = models::keyword_spotting_cnn();
        let nominal = PartitionOptimizer::new(PartitionContext::wir_default());
        let faded =
            PartitionOptimizer::new(PartitionContext::wir_default().with_link_derating(0.5));
        // A fixed offload-heavy cut gets strictly slower and more expensive
        // on a derated link.
        let cut = &model.cut_points()[0];
        let before = nominal.evaluate(&model, cut);
        let after = faded.evaluate(&model, cut);
        assert!(after.latency > before.latency);
        assert!(after.leaf_energy > before.leaf_energy);
        // Factor 1.0 is the identity.
        let identity =
            PartitionOptimizer::new(PartitionContext::wir_default().with_link_derating(1.0));
        assert_eq!(identity.evaluate(&model, cut), before);
        // A severe fade pushes the energy-optimal cut at least as far toward
        // the leaf as the nominal link (the BLE-vs-Wi-R monotonicity, local).
        let severe =
            PartitionOptimizer::new(PartitionContext::wir_default().with_link_derating(0.001));
        let nominal_cut = nominal.optimize(&model, Objective::LeafEnergy).unwrap();
        if let Ok(faded_best) = severe.optimize(&model, Objective::LeafEnergy) {
            assert!(faded_best.cut_index >= nominal_cut.cut_index);
        }
    }

    #[test]
    fn plan_fields_are_consistent() {
        let optimizer = PartitionOptimizer::new(PartitionContext::wir_default());
        let model = models::imu_gesture_cnn();
        for plan in optimizer.evaluate_all(&model).unwrap() {
            assert_eq!(plan.leaf_macs + plan.hub_macs, model.macs_per_inference());
            assert!(plan.leaf_energy >= Energy::ZERO);
            assert!(plan.latency > TimeSpan::ZERO);
            assert_eq!(&*plan.context, "Wi-R");
            assert_eq!(&*plan.model, model.name());
            assert!(plan.leaf_power >= Power::ZERO);
        }
        assert_eq!(optimizer.context().label(), "Wi-R");
    }
}
