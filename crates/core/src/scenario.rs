//! Turn-key body-area network scenarios built on the discrete-event
//! simulator — used by the examples and the scaling/ablation benches.

use hidwa_energy::sensing::{Sensor, SensorModality};
use hidwa_energy::Battery;
use hidwa_eqs::body::{BodyModel, BodySite};
use hidwa_eqs::capacity::CapacityEstimator;
use hidwa_eqs::channel::{EqsChannel, Termination};
use hidwa_eqs::noise::NoiseModel;
use hidwa_eqs::rf::RfLink;
use hidwa_netsim::mac::MacPolicy;
use hidwa_netsim::node::{LinkParams, NodeConfig};
use hidwa_netsim::sim::{NodeStats, Simulation};
use hidwa_netsim::traffic::TrafficPattern;
use hidwa_phy::ble::BleTransceiver;
use hidwa_phy::link::Link;
use hidwa_phy::wir::WiRTransceiver;
use hidwa_phy::{RadioTechnology, Transceiver};
use hidwa_units::{DataRate, Power, TimeSpan, Voltage};

/// Builds the link parameters (goodput, delivered energy per bit, wake-up)
/// that the simulator needs for a leaf at `site` talking to a hub at
/// `hub_site` over the given radio technology.
///
/// # Panics
/// Never panics for the supported technologies ([`RadioTechnology::WiR`] and
/// [`RadioTechnology::Ble`]); other technologies fall back to BLE-class
/// parameters.
#[must_use]
pub fn link_params_for(
    technology: RadioTechnology,
    site: BodySite,
    hub_site: BodySite,
) -> LinkParams {
    let distance = site.path_to(hub_site);
    match technology {
        RadioTechnology::WiR => {
            let transceiver = WiRTransceiver::ixana_class();
            let estimator = CapacityEstimator::new(
                EqsChannel::new(BodyModel::adult(), Termination::HighImpedance),
                NoiseModel::wearable_receiver(),
            );
            let rate = transceiver.max_data_rate();
            match Link::wir_on_body(
                transceiver,
                &estimator,
                Voltage::from_volts(1.0),
                distance,
                rate,
            ) {
                Ok(link) => LinkParams::new(
                    link.goodput(),
                    link.delivered_energy_per_bit(),
                    link.transceiver().wakeup_time(),
                ),
                Err(_) => LinkParams::new(
                    DataRate::from_mbps(4.0),
                    hidwa_units::EnergyPerBit::from_pico_joules(100.0),
                    TimeSpan::from_micros(100.0),
                ),
            }
        }
        _ => {
            let transceiver = BleTransceiver::phy_1m();
            let rate = transceiver.max_data_rate();
            match Link::ble_around_body(
                transceiver,
                &RfLink::ble_1m(),
                hidwa_units::dbm_to_power(0.0),
                distance,
                rate,
            ) {
                Ok(link) => LinkParams::new(
                    link.goodput(),
                    link.delivered_energy_per_bit(),
                    link.transceiver().wakeup_time(),
                ),
                Err(_) => LinkParams::new(
                    DataRate::from_kbps(780.0),
                    hidwa_units::EnergyPerBit::from_nano_joules(10.0),
                    TimeSpan::from_millis(2.0),
                ),
            }
        }
    }
}

/// A leaf node specification used by the standard scenarios.
#[derive(Debug, Clone)]
pub struct LeafSpec {
    /// Node name.
    pub name: &'static str,
    /// Body site the node is worn at.
    pub site: BodySite,
    /// Sensor modality (sets the sensing power).
    pub modality: SensorModality,
    /// Uplink traffic pattern.
    pub traffic: TrafficPattern,
    /// On-node compute power (ISA, codec).
    pub compute_power: Power,
}

/// The standard full-body leaf set used by the examples and benches: an ECG
/// patch, a smart ring, an IMU wristband, always-listening earbuds and camera
/// glasses.
#[must_use]
pub fn standard_leaf_set() -> Vec<LeafSpec> {
    vec![
        LeafSpec {
            name: "ecg-patch",
            site: BodySite::Chest,
            modality: SensorModality::Biopotential,
            traffic: TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 512),
            compute_power: Power::from_micro_watts(5.0),
        },
        LeafSpec {
            name: "smart-ring",
            site: BodySite::Finger,
            modality: SensorModality::Environmental,
            traffic: TrafficPattern::periodic(TimeSpan::from_seconds(10.0), 128),
            compute_power: Power::from_micro_watts(1.0),
        },
        LeafSpec {
            name: "imu-wristband",
            site: BodySite::Wrist,
            modality: SensorModality::Inertial,
            traffic: TrafficPattern::streaming(DataRate::from_kbps(13.0), 512),
            compute_power: Power::from_micro_watts(5.0),
        },
        LeafSpec {
            name: "earbuds-audio",
            site: BodySite::Ear,
            modality: SensorModality::Audio,
            traffic: TrafficPattern::streaming(DataRate::from_kbps(256.0), 1024),
            compute_power: Power::from_micro_watts(50.0),
        },
        LeafSpec {
            name: "camera-glasses",
            site: BodySite::Face,
            modality: SensorModality::Vision,
            traffic: TrafficPattern::streaming(DataRate::from_mbps(2.0), 4096),
            compute_power: Power::from_micro_watts(500.0),
        },
    ]
}

/// Materialises one leaf as a simulator [`NodeConfig`] over a pre-derived
/// link: sensing power from the modality's typical sensor, compute power and
/// traffic from the spec.  Shared by [`body_network`] and the population
/// layer's [`BodyScenario`](crate::population::BodyScenario).
#[must_use]
pub fn leaf_node(leaf: &LeafSpec, link: LinkParams) -> NodeConfig {
    NodeConfig::leaf(leaf.name, leaf.site, link)
        .with_sensing_power(Sensor::typical(leaf.modality).power())
        .with_compute_power(leaf.compute_power)
        .with_traffic(leaf.traffic.clone())
}

/// Builds a star-topology body network over the given radio technology.
///
/// The hub sits at the waist (smartphone / wearable-brain position); every
/// leaf from `leaves` is connected with link parameters derived from the
/// channel model for its body site.
#[must_use]
pub fn body_network(
    technology: RadioTechnology,
    leaves: &[LeafSpec],
    policy: MacPolicy,
) -> Simulation {
    let hub_site = BodySite::Waist;
    let mut sim = Simulation::new(policy);
    for leaf in leaves {
        let link = link_params_for(technology, leaf.site, hub_site);
        sim.add_node(leaf_node(leaf, link));
    }
    sim
}

/// The standard whole-body scenario (five leaves, hub at the waist).
#[must_use]
pub fn standard_body_network(technology: RadioTechnology) -> Simulation {
    body_network(technology, &standard_leaf_set(), MacPolicy::Polling)
}

/// Battery life a node would achieve if its simulated average power were
/// sustained from the given battery.
#[must_use]
pub fn node_battery_life(stats: &NodeStats, battery: &Battery) -> TimeSpan {
    battery.lifetime(stats.average_power)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wir_links_have_picojoule_efficiency_and_mbps_goodput() {
        let link = link_params_for(RadioTechnology::WiR, BodySite::Chest, BodySite::Waist);
        assert!(link.goodput().as_mbps() > 3.0, "goodput {}", link.goodput());
        assert!(link.energy_per_bit().as_pico_joules() < 200.0);
        let ble = link_params_for(RadioTechnology::Ble, BodySite::Chest, BodySite::Waist);
        assert!(ble.energy_per_bit().as_nano_joules() > 1.0);
        assert!(ble.goodput() < link.goodput());
    }

    #[test]
    fn standard_network_runs_and_wir_carries_all_traffic() {
        let mut sim = standard_body_network(RadioTechnology::WiR);
        assert_eq!(sim.nodes().len(), 5);
        assert!(sim.offered_load().unwrap() < 1.0);
        let report = sim.run(TimeSpan::from_seconds(10.0));
        assert!(
            report.delivery_ratio() > 0.95,
            "{}",
            report.delivery_ratio()
        );
        // The ULP leaves stay in the µW class even while the camera streams.
        let ecg = &report.node_stats()[0];
        assert!(
            ecg.average_power.as_micro_watts() < 50.0,
            "{}",
            ecg.average_power
        );
    }

    #[test]
    fn ble_network_cannot_carry_the_camera_stream() {
        // 2 Mbps of compressed video over a ~0.78 Mbps BLE goodput: the BLE
        // body network saturates, which is part of the paper's motivation.
        let mut sim = standard_body_network(RadioTechnology::Ble);
        assert!(sim.offered_load().unwrap() > 1.0);
        let report = sim.run(TimeSpan::from_seconds(10.0));
        assert!(report.delivery_ratio() < 0.95);
    }

    #[test]
    fn node_battery_life_uses_average_power() {
        let mut sim = standard_body_network(RadioTechnology::WiR);
        let report = sim.run(TimeSpan::from_seconds(5.0));
        let ecg = &report.node_stats()[0];
        let life = node_battery_life(ecg, &Battery::coin_cell_1000mah());
        assert!(
            life.as_days() > 365.0,
            "ECG patch life {} days",
            life.as_days()
        );
        let glasses = &report.node_stats()[4];
        let glasses_life = node_battery_life(glasses, &Battery::lipo_mah(160.0));
        assert!(glasses_life < life);
    }

    #[test]
    fn leaf_set_covers_distinct_sites_and_modalities() {
        let leaves = standard_leaf_set();
        assert_eq!(leaves.len(), 5);
        let mut sites: Vec<_> = leaves.iter().map(|l| l.site).collect();
        sites.dedup();
        assert_eq!(sites.len(), 5);
        assert!(leaves.iter().any(|l| l.modality == SensorModality::Vision));
    }
}
