//! Versioned, std-only binary checkpoints of a fleet fold.
//!
//! A [`FleetCheckpoint`] snapshots a partial [`FleetAggregator`] — merged
//! latency sketches with their exact fixed-point sums, running totals, the
//! exact top-K worst bodies — plus the index of the next body to fold and a
//! fingerprint of the [`FleetConfig`] it belongs to.  Because scenario
//! sampling is a pure function of `(base_seed, body_index)` and the
//! aggregator is a commutative merge monoid, a checkpoint is all the state a
//! resume (or another machine) needs: [`FleetConfig::resume`] finishes the
//! fold byte-identical to an uninterrupted run, and completed shard
//! checkpoints merge into the same bytes the single stream produces.
//!
//! # Wire format (version 2)
//!
//! Big-endian throughout, written with the `bytes` cursors.  The layout is
//! documented normatively in `ARCHITECTURE.md`; in short:
//!
//! ```text
//! magic  b"HIDWAFLT"              8 bytes
//! version u16                     (currently 2)
//! config fingerprint              base_seed u64 · bodies u64 ·
//!                                 horizon f64-bits · top_k u32 ·
//!                                 churn fingerprint u64 (0 = no churn)
//! next_body u64
//! aggregator state                bodies u64 · generated u64 ·
//!                                 delivered u64 · delivered_bytes u64 ·
//!                                 events u64 · min_delivery_ratio f64 ·
//!                                 migrations u64 · replans u64 ·
//!                                 energy ExactSum · active ExactSum ·
//!                                 placement-energy ExactSum ·
//!                                 fleet sketch · body-p95 sketch ·
//!                                 worst list
//! checksum u64                    FNV-1a 64 over every preceding byte
//! ```
//!
//! Version 2 (PR 9) added the churn fingerprint to the config identity and
//! the migration / re-plan / active-span / placement-energy statistics to
//! the aggregator state and each retained body summary.  Version-1 blobs are
//! rejected with [`CheckpointError::UnsupportedVersion`] — re-fold rather
//! than guess zeroes for fields the old format never measured.
//!
//! Sketches and [`ExactSum`]s use their own codecs in
//! [`hidwa_netsim::sketch`].  [`FleetCheckpoint::load`] **never panics**:
//! truncated, bit-flipped, version-bumped or otherwise malformed bytes come
//! back as a typed [`CheckpointError`], and structural invariants (bucket
//! counts summing to sample counts, a sorted worst list, the per-body-p95
//! count matching the ingested body count) are re-validated so a checkpoint
//! that passes the checksum but violates the algebra is still rejected.

use super::{ranks_before, BodySummary, FleetAggregator, FleetConfig};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hidwa_netsim::sketch::{ExactSum, LatencySketch, SketchCodecError};
use hidwa_units::{Energy, TimeSpan};
use std::sync::Arc;

/// Leading magic of every checkpoint blob.
const MAGIC: &[u8; 8] = b"HIDWAFLT";

/// Current checkpoint format version.
const VERSION: u16 = 2;

/// Bytes of envelope that must exist before payload decoding can start:
/// magic + version + trailing checksum.
const ENVELOPE: usize = MAGIC.len() + 2 + 8;

/// Why checkpoint bytes failed to load, or a loaded checkpoint failed to
/// resume.  Loading never panics and never silently mis-restores: every
/// malformed input maps to one of these variants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The input ended before the encoded structure was complete.
    Truncated,
    /// The leading magic is not `b"HIDWAFLT"` — not a fleet checkpoint.
    BadMagic,
    /// The format version is one this build does not understand.
    UnsupportedVersion(u16),
    /// The bytes are structurally complete but fail the checksum or violate
    /// an aggregator invariant.
    Corrupt(&'static str),
    /// The checkpoint belongs to a different [`FleetConfig`] than the one
    /// asked to resume (or merge) it.
    ConfigMismatch(&'static str),
    /// The checkpoint is a shard partial (its ingested body count does not
    /// equal its next-body cursor, so it does not describe a `0..next_body`
    /// prefix) — mergeable via
    /// [`ShardPlan::merge_checkpoints`](super::ShardPlan::merge_checkpoints),
    /// but not resumable.
    NotResumable,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "checkpoint bytes truncated"),
            Self::BadMagic => write!(f, "not a fleet checkpoint (bad magic)"),
            Self::UnsupportedVersion(version) => {
                write!(f, "unsupported checkpoint version {version}")
            }
            Self::Corrupt(what) => write!(f, "checkpoint corrupt: {what}"),
            Self::ConfigMismatch(what) => {
                write!(f, "checkpoint belongs to a different fleet config: {what}")
            }
            Self::NotResumable => write!(
                f,
                "checkpoint is a shard partial, not a resumable 0..n prefix"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SketchCodecError> for CheckpointError {
    fn from(error: SketchCodecError) -> Self {
        match error {
            SketchCodecError::Truncated => Self::Truncated,
            SketchCodecError::Corrupt(what) => Self::Corrupt(what),
        }
    }
}

/// A resumable snapshot of a fleet fold: the partial aggregator, the next
/// body index, and the fingerprint of the configuration that produced it.
#[derive(Debug, Clone)]
pub struct FleetCheckpoint {
    base_seed: u64,
    bodies: u64,
    horizon: TimeSpan,
    top_k: u32,
    churn_fp: u64,
    next_body: u64,
    aggregator: FleetAggregator,
}

impl FleetCheckpoint {
    /// Captures the state of a fold over `config` with `aggregator` having
    /// ingested bodies up to (exclusive) `next_body`.
    #[must_use]
    pub fn capture(config: &FleetConfig, aggregator: &FleetAggregator, next_body: usize) -> Self {
        Self {
            base_seed: config.base_seed,
            bodies: config.bodies as u64,
            horizon: config.horizon,
            top_k: config.top_k as u32,
            churn_fp: config.churn_fingerprint(),
            next_body: next_body.min(config.bodies) as u64,
            aggregator: aggregator.clone(),
        }
    }

    /// Index of the first body the resumed fold will simulate.
    #[must_use]
    pub fn next_body(&self) -> usize {
        self.next_body as usize
    }

    /// Bodies the captured aggregator has already ingested.
    #[must_use]
    pub fn bodies_ingested(&self) -> usize {
        self.aggregator.bodies()
    }

    /// The captured partial aggregator.
    #[must_use]
    pub fn aggregator(&self) -> &FleetAggregator {
        &self.aggregator
    }

    /// Consumes the checkpoint into `(aggregator, next_body)`.
    #[must_use]
    pub fn into_parts(self) -> (FleetAggregator, usize) {
        (self.aggregator, self.next_body as usize)
    }

    /// Checks that the checkpoint was captured under `config`.
    ///
    /// # Errors
    /// [`CheckpointError::ConfigMismatch`] naming the first disagreeing
    /// field (bodies, base seed, horizon, top-K or churn spec).
    pub fn verify_config(&self, config: &FleetConfig) -> Result<(), CheckpointError> {
        if self.bodies != config.bodies as u64 {
            return Err(CheckpointError::ConfigMismatch("fleet size differs"));
        }
        if self.base_seed != config.base_seed {
            return Err(CheckpointError::ConfigMismatch("base seed differs"));
        }
        if self.horizon.as_seconds().to_bits() != config.horizon.as_seconds().to_bits() {
            return Err(CheckpointError::ConfigMismatch("horizon differs"));
        }
        if self.top_k != config.top_k as u32 {
            return Err(CheckpointError::ConfigMismatch("top-K differs"));
        }
        if self.churn_fp != config.churn_fingerprint() {
            return Err(CheckpointError::ConfigMismatch("churn spec differs"));
        }
        Ok(())
    }

    /// Serializes the checkpoint into a self-validating binary blob (see the
    /// module docs for the layout).
    #[must_use]
    pub fn save(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_slice(MAGIC);
        out.put_u16(VERSION);
        out.put_u64(self.base_seed);
        out.put_u64(self.bodies);
        out.put_f64(self.horizon.as_seconds());
        out.put_u32(self.top_k);
        out.put_u64(self.churn_fp);
        out.put_u64(self.next_body);
        let aggregator = &self.aggregator;
        out.put_u64(aggregator.bodies as u64);
        out.put_u64(aggregator.total_generated as u64);
        out.put_u64(aggregator.total_delivered as u64);
        out.put_u64(aggregator.total_delivered_bytes as u64);
        out.put_u64(aggregator.total_events);
        out.put_f64(aggregator.min_body_delivery_ratio);
        out.put_u64(aggregator.total_migrations);
        out.put_u64(aggregator.total_replans);
        aggregator.total_energy.encode(&mut out);
        aggregator.active_span.encode(&mut out);
        aggregator.placement_energy.encode(&mut out);
        aggregator.fleet_latency.encode(&mut out);
        aggregator.body_p95.encode(&mut out);
        out.put_u32(aggregator.worst.len() as u32);
        for summary in &aggregator.worst {
            encode_summary(summary, &mut out);
        }
        let checksum = fnv1a64(&out);
        out.put_u64(checksum);
        out.freeze()
    }

    /// Decodes and validates a checkpoint previously written by
    /// [`save`](Self::save).
    ///
    /// # Errors
    /// * [`CheckpointError::Truncated`] — the blob ends early,
    /// * [`CheckpointError::BadMagic`] — not a fleet checkpoint,
    /// * [`CheckpointError::UnsupportedVersion`] — written by a different
    ///   format revision,
    /// * [`CheckpointError::Corrupt`] — checksum mismatch, trailing bytes,
    ///   or any violated aggregator invariant (bit flips that survive the
    ///   checksum cannot survive the invariants).
    pub fn load(raw: &[u8]) -> Result<Self, CheckpointError> {
        if raw.len() < ENVELOPE {
            return Err(CheckpointError::Truncated);
        }
        if &raw[..MAGIC.len()] != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = u16::from_be_bytes([raw[MAGIC.len()], raw[MAGIC.len() + 1]]);
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let (body, tail) = raw.split_at(raw.len() - 8);
        let stored = u64::from_be_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(body) != stored {
            return Err(CheckpointError::Corrupt("checksum mismatch"));
        }
        let mut input = Bytes::from(body[MAGIC.len() + 2..].to_vec());
        let base_seed = take_u64(&mut input)?;
        let bodies = take_u64(&mut input)?;
        let horizon_seconds = take_f64(&mut input)?;
        if !(horizon_seconds.is_finite() && horizon_seconds >= 0.0) {
            return Err(CheckpointError::Corrupt("horizon not a finite duration"));
        }
        let top_k = take_u32(&mut input)?;
        if top_k == 0 {
            return Err(CheckpointError::Corrupt("top-K of zero"));
        }
        let churn_fp = take_u64(&mut input)?;
        let next_body = take_u64(&mut input)?;
        if next_body > bodies {
            return Err(CheckpointError::Corrupt("next body beyond the fleet"));
        }
        let ingested = take_u64(&mut input)?;
        let total_generated = take_u64(&mut input)?;
        let total_delivered = take_u64(&mut input)?;
        let total_delivered_bytes = take_u64(&mut input)?;
        let total_events = take_u64(&mut input)?;
        let min_body_delivery_ratio = take_f64(&mut input)?;
        if !min_body_delivery_ratio.is_finite() || !(0.0..=1.0).contains(&min_body_delivery_ratio) {
            return Err(CheckpointError::Corrupt("delivery ratio out of range"));
        }
        let total_migrations = take_u64(&mut input)?;
        let total_replans = take_u64(&mut input)?;
        if total_migrations > total_replans {
            return Err(CheckpointError::Corrupt(
                "more migrations than optimiser re-runs",
            ));
        }
        let total_energy = ExactSum::decode(&mut input)?;
        let active_span = ExactSum::decode(&mut input)?;
        let placement_energy = ExactSum::decode(&mut input)?;
        if active_span.to_f64() < 0.0 {
            return Err(CheckpointError::Corrupt("negative active span"));
        }
        if placement_energy.to_f64() < 0.0 {
            return Err(CheckpointError::Corrupt("negative placement energy"));
        }
        let fleet_latency = LatencySketch::decode(&mut input)?;
        let body_p95 = LatencySketch::decode(&mut input)?;
        let worst_len = take_u32(&mut input)? as usize;
        if worst_len > top_k as usize || worst_len as u64 > ingested {
            return Err(CheckpointError::Corrupt("worst list longer than allowed"));
        }
        let mut worst = Vec::with_capacity(worst_len);
        for _ in 0..worst_len {
            worst.push(decode_summary(&mut input)?);
        }
        if input.remaining() != 0 {
            return Err(CheckpointError::Corrupt("trailing bytes after payload"));
        }
        // Cross-field invariants of the fold algebra.
        if body_p95.count() != ingested {
            return Err(CheckpointError::Corrupt(
                "per-body p95 count does not match ingested bodies",
            ));
        }
        if ingested > next_body {
            return Err(CheckpointError::Corrupt("more bodies ingested than folded"));
        }
        for pair in worst.windows(2) {
            if !ranks_before(&pair[0], &pair[1]) {
                return Err(CheckpointError::Corrupt("worst list out of order"));
            }
        }
        for summary in &worst {
            if summary.body_index as u64 >= bodies {
                return Err(CheckpointError::Corrupt("worst body outside the fleet"));
            }
        }
        let mut aggregator =
            FleetAggregator::new(TimeSpan::from_seconds(horizon_seconds), top_k as usize);
        aggregator.bodies = ingested as usize;
        aggregator.total_generated = total_generated as usize;
        aggregator.total_delivered = total_delivered as usize;
        aggregator.total_delivered_bytes = total_delivered_bytes as usize;
        aggregator.total_events = total_events;
        aggregator.min_body_delivery_ratio = min_body_delivery_ratio;
        aggregator.total_migrations = total_migrations;
        aggregator.total_replans = total_replans;
        aggregator.total_energy = total_energy;
        aggregator.active_span = active_span;
        aggregator.placement_energy = placement_energy;
        aggregator.fleet_latency = fleet_latency;
        aggregator.body_p95 = body_p95;
        aggregator.worst = worst;
        Ok(Self {
            base_seed,
            bodies,
            horizon: TimeSpan::from_seconds(horizon_seconds),
            top_k,
            churn_fp,
            next_body,
            aggregator,
        })
    }
}

fn encode_summary(summary: &BodySummary, out: &mut BytesMut) {
    out.put_u64(summary.body_index as u64);
    out.put_u64(summary.seed);
    let label = summary.archetype.as_bytes();
    out.put_u32(label.len() as u32);
    out.put_slice(label);
    out.put_u64(summary.nodes as u64);
    out.put_u64(summary.generated_frames as u64);
    out.put_u64(summary.delivered_frames as u64);
    out.put_u64(summary.delivered_bytes as u64);
    out.put_u64(summary.events_processed);
    out.put_f64(summary.delivery_ratio);
    out.put_f64(summary.total_energy.as_joules());
    out.put_f64(summary.worst_p95_latency.as_seconds());
    out.put_f64(summary.active_span.as_seconds());
    out.put_u64(summary.migrations);
    out.put_u64(summary.replans);
    out.put_f64(summary.placement_energy.as_joules());
    summary.latency.encode(out);
}

fn decode_summary(input: &mut Bytes) -> Result<BodySummary, CheckpointError> {
    let body_index = take_u64(input)?;
    let seed = take_u64(input)?;
    let label_len = take_u32(input)? as usize;
    if label_len > input.remaining() {
        return Err(CheckpointError::Truncated);
    }
    let label_bytes = input.split_to(label_len).to_vec();
    let label = String::from_utf8(label_bytes)
        .map_err(|_| CheckpointError::Corrupt("archetype label not UTF-8"))?;
    let nodes = take_u64(input)?;
    let generated_frames = take_u64(input)?;
    let delivered_frames = take_u64(input)?;
    let delivered_bytes = take_u64(input)?;
    let events_processed = take_u64(input)?;
    let delivery_ratio = take_f64(input)?;
    if !delivery_ratio.is_finite() || !(0.0..=1.0).contains(&delivery_ratio) {
        return Err(CheckpointError::Corrupt("body delivery ratio out of range"));
    }
    let energy_joules = take_f64(input)?;
    if !energy_joules.is_finite() || energy_joules < 0.0 {
        return Err(CheckpointError::Corrupt("body energy not a finite amount"));
    }
    let worst_p95_seconds = take_f64(input)?;
    if !worst_p95_seconds.is_finite() || worst_p95_seconds < 0.0 {
        return Err(CheckpointError::Corrupt("body p95 not a finite latency"));
    }
    let active_seconds = take_f64(input)?;
    if !active_seconds.is_finite() || active_seconds < 0.0 {
        return Err(CheckpointError::Corrupt("body active span not finite"));
    }
    let migrations = take_u64(input)?;
    let replans = take_u64(input)?;
    if migrations > replans {
        return Err(CheckpointError::Corrupt(
            "body migrations exceed optimiser re-runs",
        ));
    }
    let placement_joules = take_f64(input)?;
    if !placement_joules.is_finite() || placement_joules < 0.0 {
        return Err(CheckpointError::Corrupt(
            "body placement energy not a finite amount",
        ));
    }
    let latency = LatencySketch::decode(input)?;
    if latency.count() != delivered_frames {
        return Err(CheckpointError::Corrupt(
            "body sketch count does not match delivered frames",
        ));
    }
    Ok(BodySummary {
        body_index: body_index as usize,
        seed,
        archetype: Arc::from(label.as_str()),
        nodes: nodes as usize,
        generated_frames: generated_frames as usize,
        delivered_frames: delivered_frames as usize,
        delivered_bytes: delivered_bytes as usize,
        events_processed,
        delivery_ratio,
        total_energy: Energy::from_joules(energy_joules),
        worst_p95_latency: TimeSpan::from_seconds(worst_p95_seconds),
        latency,
        active_span: TimeSpan::from_seconds(active_seconds),
        migrations,
        replans,
        placement_energy: Energy::from_joules(placement_joules),
    })
}

/// FNV-1a 64-bit digest — the checkpoint's corruption seal, also reused by
/// the driver's run fingerprints.  Not cryptographic (the threat model is
/// bit rot and truncation, not forgery), but any single-bit flip anywhere in
/// the blob changes it.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn take_u32(input: &mut Bytes) -> Result<u32, CheckpointError> {
    if input.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    Ok(input.get_u32())
}

fn take_u64(input: &mut Bytes) -> Result<u64, CheckpointError> {
    if input.remaining() < 8 {
        return Err(CheckpointError::Truncated);
    }
    Ok(input.get_u64())
}

fn take_f64(input: &mut Bytes) -> Result<f64, CheckpointError> {
    Ok(f64::from_bits(take_u64(input)?))
}
