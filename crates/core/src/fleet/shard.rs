//! Sharded fleet ingestion: contiguous body-index shards folded
//! independently and merged through the aggregator's commutative monoid.
//!
//! A [`ShardPlan`] splits a [`FleetConfig`]'s body range `0..bodies` into
//! contiguous sub-ranges.  Because every body's scenario and seed are pure
//! functions of `(base_seed, body_index)`, a [`ShardRunner`] needs nothing
//! but the config and its range — shard `i` can fold on another process or
//! machine with no coordination, ship its partial state as a
//! [`FleetCheckpoint`] blob, and the coordinator merges the partials in
//! shard order (any grouping works; the merge is associative and
//! commutative) into a [`FleetReport`] byte-identical to the single-stream
//! fold.
//!
//! # Example
//!
//! ```
//! use hidwa_core::fleet::{FleetConfig, ShardPlan};
//! use hidwa_core::sweep::SweepRunner;
//! use hidwa_units::TimeSpan;
//!
//! let fleet = FleetConfig::new(12).with_horizon(TimeSpan::from_seconds(1.0));
//! let single = fleet.run(&SweepRunner::serial());
//! let plan = ShardPlan::split(fleet, 3);
//! let sharded = plan.run(&SweepRunner::serial());
//! assert_eq!(single, sharded); // byte-identical, not just "close"
//! ```

use super::checkpoint::{CheckpointError, FleetCheckpoint};
use super::{FleetAggregator, FleetConfig, FleetReport};
use crate::population::LinkCache;
use crate::sweep::SweepRunner;
use std::ops::Range;

/// Why a shard layout was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Boundaries must be non-decreasing (each shard a contiguous,
    /// forward-moving range).
    UnsortedBoundaries,
    /// A boundary pointed past the end of the fleet.
    BoundaryOutOfRange {
        /// The offending boundary.
        boundary: usize,
        /// Number of bodies in the fleet.
        bodies: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsortedBoundaries => write!(f, "shard boundaries must be non-decreasing"),
            Self::BoundaryOutOfRange { boundary, bodies } => {
                write!(
                    f,
                    "shard boundary {boundary} beyond the {bodies}-body fleet"
                )
            }
        }
    }
}

impl std::error::Error for ShardError {}

/// A partition of a fleet's body range into contiguous shards.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    config: FleetConfig,
    /// Exclusive end of each shard, in shard order; shard `i` spans
    /// `ends[i - 1] .. ends[i]` (with `ends[-1] = 0`).
    ends: Vec<usize>,
}

impl ShardPlan {
    /// Splits the fleet into `shards` near-equal contiguous ranges (the
    /// first `bodies % shards` shards take one extra body).  A shard count
    /// of zero is clamped to one; shards beyond the body count come out
    /// empty, which the merge treats as the monoid identity.
    #[must_use]
    pub fn split(config: FleetConfig, shards: usize) -> Self {
        let shards = shards.max(1);
        let bodies = config.bodies();
        let base = bodies / shards;
        let extra = bodies % shards;
        let mut ends = Vec::with_capacity(shards);
        let mut cursor = 0;
        for shard in 0..shards {
            cursor += base + usize::from(shard < extra);
            ends.push(cursor);
        }
        Self { config, ends }
    }

    /// Builds a plan from explicit interior boundaries: `boundaries = [3, 7]`
    /// over a 10-body fleet yields shards `0..3`, `3..7`, `7..10`.  Ragged —
    /// even empty — shards are fine; decreasing or out-of-range boundaries
    /// are not.
    ///
    /// # Errors
    /// [`ShardError::UnsortedBoundaries`] or
    /// [`ShardError::BoundaryOutOfRange`].
    pub fn from_boundaries(config: FleetConfig, boundaries: &[usize]) -> Result<Self, ShardError> {
        let bodies = config.bodies();
        let mut previous = 0;
        for &boundary in boundaries {
            if boundary < previous {
                return Err(ShardError::UnsortedBoundaries);
            }
            if boundary > bodies {
                return Err(ShardError::BoundaryOutOfRange { boundary, bodies });
            }
            previous = boundary;
        }
        let mut ends = boundaries.to_vec();
        ends.push(bodies);
        Ok(Self { config, ends })
    }

    /// The fleet configuration the plan partitions.
    #[must_use]
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Number of shards in the plan.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.ends.len()
    }

    /// Body range of shard `shard`.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    #[must_use]
    pub fn range(&self, shard: usize) -> Range<usize> {
        let start = if shard == 0 { 0 } else { self.ends[shard - 1] };
        start..self.ends[shard]
    }

    /// A standalone runner for shard `shard` — self-contained (it owns a
    /// config clone), so it can be constructed identically on any machine
    /// from the same plan parameters.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    #[must_use]
    pub fn shard(&self, shard: usize) -> ShardRunner {
        let range = self.range(shard);
        ShardRunner {
            config: self.config.clone(),
            shard_index: shard,
            range,
        }
    }

    /// Folds every shard in-process (sharing one link cache) and merges the
    /// partials in shard order into one aggregator.
    #[must_use]
    pub fn fold(&self, runner: &SweepRunner) -> FleetAggregator {
        let links = LinkCache::for_population(self.config.population());
        let mut merged = FleetAggregator::new(self.config.horizon(), self.config.top_k());
        for shard in 0..self.shard_count() {
            let mut partial = FleetAggregator::new(self.config.horizon(), self.config.top_k());
            self.config
                .fold_range(runner, &links, &mut partial, self.range(shard));
            merged.merge(partial);
        }
        merged
    }

    /// Runs the whole plan and finalises the merged aggregate — byte-
    /// identical to [`FleetConfig::run`] on the same config (property-tested
    /// across layouts, widths and chunk sizes in `tests/fleet_shards.rs`).
    #[must_use]
    pub fn run(&self, runner: &SweepRunner) -> FleetReport {
        self.fold(runner).finish()
    }

    /// Merges checkpoints of completed shards — e.g. shipped back from other
    /// machines, in any order — and finalises the fleet report.
    ///
    /// Each checkpoint implies its shard's body range (`next_body -
    /// ingested .. next_body`, which is how [`ShardRunner::checkpoint`]
    /// captures it); the ranges must tile `0..bodies` exactly, so a
    /// missing, duplicated or overlapping shard is rejected rather than
    /// silently under- or double-counted.
    ///
    /// # Errors
    /// [`CheckpointError::ConfigMismatch`] if any checkpoint was captured
    /// under a different fleet configuration or the implied ranges do not
    /// partition the fleet.
    pub fn merge_checkpoints(
        &self,
        parts: impl IntoIterator<Item = FleetCheckpoint>,
    ) -> Result<FleetReport, CheckpointError> {
        let mut merged = FleetAggregator::new(self.config.horizon(), self.config.top_k());
        let mut ranges: Vec<(usize, usize)> = Vec::new();
        for part in parts {
            part.verify_config(&self.config)?;
            ranges.push((part.next_body() - part.bodies_ingested(), part.next_body()));
            let (partial, _) = part.into_parts();
            merged.merge(partial);
        }
        ranges.sort_unstable();
        let mut cursor = 0;
        for &(start, end) in &ranges {
            if start == end {
                continue; // an empty shard covers nothing, anywhere
            }
            if start != cursor {
                return Err(CheckpointError::ConfigMismatch(
                    "shard partials overlap or leave a gap",
                ));
            }
            cursor = end;
        }
        if cursor != self.config.bodies() {
            return Err(CheckpointError::ConfigMismatch(
                "merged shard partials do not cover the fleet",
            ));
        }
        Ok(merged.finish())
    }
}

/// One shard of a [`ShardPlan`]: a fleet config plus a contiguous body
/// range.  Everything it folds is a pure function of the config's base seed
/// and the body indices, so equal runners on different machines produce
/// byte-identical partials.
#[derive(Debug, Clone)]
pub struct ShardRunner {
    config: FleetConfig,
    shard_index: usize,
    range: Range<usize>,
}

impl ShardRunner {
    /// Position of this shard in its plan.
    #[must_use]
    pub fn shard_index(&self) -> usize {
        self.shard_index
    }

    /// The body range this shard folds.
    #[must_use]
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Folds this shard's bodies into a partial aggregator.
    #[must_use]
    pub fn fold(&self, runner: &SweepRunner) -> FleetAggregator {
        let links = LinkCache::for_population(self.config.population());
        let mut partial = FleetAggregator::new(self.config.horizon(), self.config.top_k());
        self.config
            .fold_range(runner, &links, &mut partial, self.range.clone());
        partial
    }

    /// Folds this shard and wraps the partial as a transportable
    /// [`FleetCheckpoint`] (the `next_body` is the shard's range end), ready
    /// to ship to the coordinator for
    /// [`ShardPlan::merge_checkpoints`].
    #[must_use]
    pub fn checkpoint(&self, runner: &SweepRunner) -> FleetCheckpoint {
        FleetCheckpoint::capture(&self.config, &self.fold(runner), self.range.end)
    }
}
