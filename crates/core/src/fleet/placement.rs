//! Online placement policies for a fleet under churn.
//!
//! A static fleet decides each body's partition point once, offline.  A
//! *living* fleet cannot: bodies arrive and depart
//! ([`ChurnModel`]), and a body's link fades
//! and recovers across context epochs, so the cut that was optimal at
//! admission drifts off-optimum over the residency.  This module is the
//! decision layer that reacts: a [`PlacementPolicy`] watches each context
//! epoch and chooses between *keeping* the current cut and *migrating* to a
//! freshly optimised one, with every adopted change counted as a migration
//! carrying an explicit energy cost (state transfer, model reload, dropped
//! in-flight activations).
//!
//! The shape mirrors ccicconetti/stateful-faas-sim (SNIPPETS.md): competing
//! policies replayed over the same deterministic event stream, compared by a
//! reported migration rate.  Here the "event stream" is the per-body churn
//! sample — a pure function of `(base_seed, body_index)` — so policy A vs
//! policy B at 10k bodies is an exactly reproducible experiment at any
//! thread width, shard layout or process boundary.
//!
//! Three built-in policies span the design space:
//!
//! * [`StaticAtAdmission`] — plan once when the body arrives, never touch it
//!   again (the do-nothing baseline: zero migrations, maximum drift);
//! * [`ReoptimizeOnChange`] — re-run the optimiser every context epoch and
//!   always adopt the winner (the oracle baseline: minimum drift, maximum
//!   migration churn);
//! * [`Hysteresis`] — re-run the optimiser but migrate only when the
//!   improvement beats a relative threshold, trading a bounded drift for a
//!   bounded migration rate.
//!
//! [`PolicyKind`] names the built-ins for CLI flags and bench rows;
//! [`ChurnSpec`] bundles churn model + policy + objective + migration cost
//! into the one value a [`FleetConfig`](super::FleetConfig) (and the
//! process-boundary [`DriverFleetSpec`](super::DriverFleetSpec)) carries.

use crate::partition::{Objective, PartitionContext, PartitionOptimizer, PartitionPlan};
use crate::population::{BodyScenario, ChurnModel, ChurnSample};
use hidwa_isa::models::{self, WearableModel};
use hidwa_phy::RadioTechnology;
use hidwa_units::Energy;

/// An online placement policy: given the retained plan re-evaluated in the
/// *new* epoch's context and an optimiser for that context, decide what the
/// body runs next epoch.
///
/// Implementations must be pure functions of their arguments — placement
/// runs inside the fleet's deterministic per-body fold, so any hidden state
/// or entropy would break byte-identity across thread widths and shards.
pub trait PlacementPolicy {
    /// Stable policy name (CLI tag, bench row label).
    fn name(&self) -> &'static str;

    /// Decides the plan for the next epoch.  `retained` is the currently
    /// deployed cut re-costed under the new context (its energy/latency
    /// reflect the epoch's faded link, its `feasible` flag tells the policy
    /// whether the old cut still sustains the model's rate).
    fn decide(
        &self,
        optimizer: &PartitionOptimizer,
        model: &WearableModel,
        objective: Objective,
        retained: &PartitionPlan,
    ) -> PlacementDecision;
}

/// What a policy chose for the next epoch.
#[derive(Debug, Clone)]
pub struct PlacementDecision {
    /// The plan the body runs next epoch.
    pub plan: PartitionPlan,
    /// Whether the optimiser was re-run to make this decision (a *re-plan*;
    /// it becomes a *migration* only if the adopted cut actually changed).
    pub replanned: bool,
}

/// Plan once at admission, never re-plan.  Zero migrations by construction;
/// the retained cut silently degrades (or goes infeasible) as the link
/// fades.
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticAtAdmission;

impl PlacementPolicy for StaticAtAdmission {
    fn name(&self) -> &'static str {
        "static-at-admission"
    }

    fn decide(
        &self,
        _optimizer: &PartitionOptimizer,
        _model: &WearableModel,
        _objective: Objective,
        retained: &PartitionPlan,
    ) -> PlacementDecision {
        PlacementDecision {
            plan: retained.clone(),
            replanned: false,
        }
    }
}

/// Re-run the optimiser every context epoch and always adopt its winner.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReoptimizeOnChange;

impl PlacementPolicy for ReoptimizeOnChange {
    fn name(&self) -> &'static str {
        "reoptimize-on-change"
    }

    fn decide(
        &self,
        optimizer: &PartitionOptimizer,
        model: &WearableModel,
        objective: Objective,
        retained: &PartitionPlan,
    ) -> PlacementDecision {
        let plan = optimizer
            .optimize(model, objective)
            .unwrap_or_else(|_| retained.clone());
        PlacementDecision {
            plan,
            replanned: true,
        }
    }
}

/// Re-run the optimiser every epoch but migrate only when the candidate
/// improves the objective by more than `threshold` (relative), or the
/// retained cut has gone infeasible.  `threshold = 0` degenerates to
/// [`ReoptimizeOnChange`]; `threshold → ∞` to [`StaticAtAdmission`] (with
/// re-planning cost but no migrations).
#[derive(Debug, Clone, Copy)]
pub struct Hysteresis {
    /// Relative improvement required before a migration is adopted.
    pub threshold: f64,
}

impl PlacementPolicy for Hysteresis {
    fn name(&self) -> &'static str {
        "hysteresis"
    }

    fn decide(
        &self,
        optimizer: &PartitionOptimizer,
        model: &WearableModel,
        objective: Objective,
        retained: &PartitionPlan,
    ) -> PlacementDecision {
        let Ok(candidate) = optimizer.optimize(model, objective) else {
            return PlacementDecision {
                plan: retained.clone(),
                replanned: true,
            };
        };
        let retained_key = objective_key(retained, objective);
        let candidate_key = objective_key(&candidate, objective);
        let adopt = !retained.feasible || candidate_key < retained_key * (1.0 - self.threshold);
        PlacementDecision {
            plan: if adopt { candidate } else { retained.clone() },
            replanned: true,
        }
    }
}

/// The scalar a plan is judged by under an objective — the same quantity the
/// streaming optimiser minimises.
#[must_use]
pub fn objective_key(plan: &PartitionPlan, objective: Objective) -> f64 {
    match objective {
        Objective::LeafEnergy => plan.leaf_energy.as_joules(),
        Objective::Latency => plan.latency.as_seconds(),
        Objective::EnergyDelayProduct => plan.energy_delay_product(),
    }
}

/// Names the built-in policies across CLI flags, bench rows and the driver's
/// process boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// [`StaticAtAdmission`].
    StaticAtAdmission,
    /// [`ReoptimizeOnChange`].
    ReoptimizeOnChange,
    /// [`Hysteresis`] (threshold carried by [`ChurnSpec`]).
    Hysteresis,
}

impl PolicyKind {
    /// The flag/row tag naming this policy.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::StaticAtAdmission => "static-at-admission",
            Self::ReoptimizeOnChange => "reoptimize-on-change",
            Self::Hysteresis => "hysteresis",
        }
    }

    /// Parses a policy tag.
    ///
    /// # Errors
    /// A human-readable message for an unknown tag.
    pub fn parse(tag: &str) -> Result<Self, String> {
        match tag {
            "static-at-admission" | "static" => Ok(Self::StaticAtAdmission),
            "reoptimize-on-change" | "reoptimize" => Ok(Self::ReoptimizeOnChange),
            "hysteresis" => Ok(Self::Hysteresis),
            other => Err(format!(
                "unknown placement policy {other:?} (expected \
                 \"static-at-admission\", \"reoptimize-on-change\" or \"hysteresis\")"
            )),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// Everything the churn-and-placement layer needs, bundled: the churn model
/// bodies are sampled under, the policy that reacts, the objective it
/// optimises, the relative hysteresis threshold (used only by
/// [`PolicyKind::Hysteresis`]) and the energy charged per adopted migration.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    churn: ChurnModel,
    policy: PolicyKind,
    objective: Objective,
    hysteresis_threshold: f64,
    migration_cost: Energy,
}

impl ChurnSpec {
    /// Default energy charged per adopted migration: ~10 mJ, the order of
    /// re-shipping a small model partition and its state over a body link.
    pub const DEFAULT_MIGRATION_COST_J: f64 = 0.01;

    /// A spec over `churn` driven by `policy`, with the energy-delay-product
    /// objective, a 10 % hysteresis threshold and the default migration cost.
    #[must_use]
    pub fn new(churn: ChurnModel, policy: PolicyKind) -> Self {
        Self {
            churn,
            policy,
            objective: Objective::EnergyDelayProduct,
            hysteresis_threshold: 0.1,
            migration_cost: Energy::from_joules(Self::DEFAULT_MIGRATION_COST_J),
        }
    }

    /// Sets the objective online re-planning minimises.
    #[must_use]
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the relative improvement [`Hysteresis`] requires before
    /// migrating (clamped to `[0, ∞)`; non-finite values become 0).
    #[must_use]
    pub fn with_hysteresis_threshold(mut self, threshold: f64) -> Self {
        self.hysteresis_threshold = if threshold.is_finite() {
            threshold.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Sets the energy charged per adopted migration.
    #[must_use]
    pub fn with_migration_cost(mut self, cost: Energy) -> Self {
        self.migration_cost = cost.max(Energy::ZERO);
        self
    }

    /// The churn model bodies are sampled under.
    #[must_use]
    pub fn churn(&self) -> &ChurnModel {
        &self.churn
    }

    /// The policy driving online decisions.
    #[must_use]
    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    /// The objective online re-planning minimises.
    #[must_use]
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// The hysteresis threshold (meaningful under [`PolicyKind::Hysteresis`]).
    #[must_use]
    pub fn hysteresis_threshold(&self) -> f64 {
        self.hysteresis_threshold
    }

    /// The energy charged per adopted migration.
    #[must_use]
    pub fn migration_cost(&self) -> Energy {
        self.migration_cost
    }

    /// The built-in policy object this spec names.
    #[must_use]
    pub fn build_policy(&self) -> Box<dyn PlacementPolicy> {
        match self.policy {
            PolicyKind::StaticAtAdmission => Box::new(StaticAtAdmission),
            PolicyKind::ReoptimizeOnChange => Box::new(ReoptimizeOnChange),
            PolicyKind::Hysteresis => Box::new(Hysteresis {
                threshold: self.hysteresis_threshold,
            }),
        }
    }

    /// The canonical, bit-exact flag encoding
    /// (`--churn <value>` on the worker CLI): every `f64` crosses as raw
    /// bits, so a parsed spec reproduces this one exactly — the property the
    /// multi-process identity tests rely on.
    #[must_use]
    pub fn flag_value(&self) -> String {
        let (duty_min, duty_max) = self.churn.duty_cycle();
        format!(
            "{}:{}:{}:{}:{}:{}:{}:{}:{}",
            self.churn.rate().to_bits(),
            duty_min.to_bits(),
            duty_max.to_bits(),
            self.churn.epochs(),
            self.churn.link_fade().to_bits(),
            self.policy.tag(),
            self.hysteresis_threshold.to_bits(),
            objective_tag(self.objective),
            self.migration_cost.as_joules().to_bits(),
        )
    }

    /// Parses a [`flag_value`](Self::flag_value) encoding.
    ///
    /// # Errors
    /// A human-readable message naming the malformed field.
    pub fn parse_flag(value: &str) -> Result<Self, String> {
        let parts: Vec<&str> = value.split(':').collect();
        if parts.len() != 9 {
            return Err(format!(
                "--churn expects 9 colon-separated fields, got {}",
                parts.len()
            ));
        }
        let bits = |field: &str, name: &str| -> Result<f64, String> {
            let raw: u64 = field
                .parse()
                .map_err(|_| format!("churn field {name} is not a u64 bit pattern"))?;
            let value = f64::from_bits(raw);
            if value.is_finite() {
                Ok(value)
            } else {
                Err(format!("churn field {name} does not encode a finite value"))
            }
        };
        let rate = bits(parts[0], "rate")?;
        let duty_min = bits(parts[1], "duty-min")?;
        let duty_max = bits(parts[2], "duty-max")?;
        let epochs: u32 = parts[3]
            .parse()
            .map_err(|_| "churn field epochs is not a u32".to_string())?;
        let fade = bits(parts[4], "link-fade")?;
        let policy = PolicyKind::parse(parts[5])?;
        let threshold = bits(parts[6], "hysteresis-threshold")?;
        let objective = parse_objective_tag(parts[7])?;
        let migration_cost = bits(parts[8], "migration-cost")?;
        if migration_cost < 0.0 {
            return Err("churn field migration-cost is negative".to_string());
        }
        let churn = ChurnModel::with_rate(rate)
            .with_duty_cycle(duty_min, duty_max)
            .with_epochs(epochs)
            .with_link_fade(fade);
        Ok(Self::new(churn, policy)
            .with_objective(objective)
            .with_hysteresis_threshold(threshold)
            .with_migration_cost(Energy::from_joules(migration_cost)))
    }

    /// 64-bit fingerprint of the spec (FNV-1a over the canonical flag
    /// encoding) — what the checkpoint format stores so blobs folded under
    /// different churn/policy configurations never merge.  By convention a
    /// churn-free fleet fingerprints as 0.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        super::checkpoint::fnv1a64(self.flag_value().as_bytes())
    }
}

/// The flag/row tag of an objective.
#[must_use]
pub fn objective_tag(objective: Objective) -> &'static str {
    match objective {
        Objective::LeafEnergy => "leaf-energy",
        Objective::Latency => "latency",
        Objective::EnergyDelayProduct => "edp",
    }
}

/// Parses an objective tag.
///
/// # Errors
/// A human-readable message for an unknown tag.
pub fn parse_objective_tag(tag: &str) -> Result<Objective, String> {
    match tag {
        "leaf-energy" => Ok(Objective::LeafEnergy),
        "latency" => Ok(Objective::Latency),
        "edp" => Ok(Objective::EnergyDelayProduct),
        other => Err(format!(
            "unknown objective {other:?} (expected \"leaf-energy\", \"latency\" or \"edp\")"
        )),
    }
}

/// The wearable model a body's archetype runs — the workload the placement
/// layer partitions.  Archetype names come from
/// [`PopulationModel`](crate::population::PopulationModel) sampling; unknown
/// archetypes (including `"uniform"`) default to the keyword-spotting CNN.
#[must_use]
pub fn model_for_archetype(name: &str) -> WearableModel {
    match name {
        "health-patch" => models::ecg_arrhythmia_cnn(),
        "ar-assistant" => models::video_feature_extractor(),
        "ble-minimal" => models::imu_gesture_cnn(),
        _ => models::keyword_spotting_cnn(),
    }
}

/// What one body's residency cost under a policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementOutcome {
    /// Times the optimiser was re-run after admission.
    pub replans: u64,
    /// Times the adopted cut actually changed (each charged
    /// [`ChurnSpec::migration_cost`]).
    pub migrations: u64,
    /// Inference energy over the residency plus migration costs.
    pub energy: Energy,
    /// The cut the body ran in its final epoch.
    pub final_cut: usize,
}

/// Replays one body's residency through the spec's policy: admission plan in
/// epoch 0, then one [`PlacementPolicy::decide`] per subsequent context
/// epoch, accumulating inference energy (plan leaf energy × inferences in
/// the epoch) and migration costs.
///
/// Pure: the outcome is a function of `(spec, scenario, sample)` only, so it
/// inherits the churn sample's determinism across threads, shards and
/// processes.
#[must_use]
pub fn simulate_placement(
    spec: &ChurnSpec,
    scenario: &BodyScenario,
    sample: &ChurnSample,
) -> PlacementOutcome {
    let model = model_for_archetype(scenario.archetype());
    let policy = spec.build_policy();
    let base_context = match scenario.technology() {
        RadioTechnology::Ble => PartitionContext::ble_default(),
        _ => PartitionContext::wir_default(),
    };
    let epochs = sample.link_derate.len().max(1);
    let epoch_seconds = sample.active().as_seconds() / epochs as f64;
    let inference_rate = model.inferences_per_second();

    let epoch_optimizer = |epoch: usize| {
        let derate = sample.link_derate.get(epoch).copied().unwrap_or(1.0);
        PartitionOptimizer::new(base_context.clone().with_link_derating(derate))
    };

    // Admission: optimise in the arrival epoch's context; a workload with no
    // feasible cut at all is admitted on the raw-offload plan (every model
    // in the zoo has a first cut), flagged infeasible in its metrics.
    let admission = epoch_optimizer(0);
    let mut current = admission
        .optimize(&model, spec.objective())
        .or_else(|_| admission.all_on_hub(&model))
        .expect("wearable models always expose cut points");

    let mut replans = 0u64;
    let mut migrations = 0u64;
    let mut energy_joules = current.leaf_energy.as_joules() * inference_rate * epoch_seconds;

    for epoch in 1..epochs {
        let optimizer = epoch_optimizer(epoch);
        // Re-cost the deployed cut under the new context so the policy sees
        // its true current cost (and feasibility).
        let retained = model
            .cut_points()
            .iter()
            .find(|cut| cut.index == current.cut_index)
            .map_or_else(|| current.clone(), |cut| optimizer.evaluate(&model, cut));
        let decision = policy.decide(&optimizer, &model, spec.objective(), &retained);
        if decision.replanned {
            replans += 1;
        }
        if decision.plan.cut_index != current.cut_index {
            migrations += 1;
            energy_joules += spec.migration_cost().as_joules();
        }
        current = decision.plan;
        energy_joules += current.leaf_energy.as_joules() * inference_rate * epoch_seconds;
    }

    PlacementOutcome {
        replans,
        migrations,
        energy: Energy::from_joules(energy_joules),
        final_cut: current.cut_index,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationModel;
    use hidwa_units::TimeSpan;

    fn sample_with_derates(derates: &[f64]) -> ChurnSample {
        ChurnSample {
            arrival: TimeSpan::ZERO,
            departure: TimeSpan::from_seconds(10.0),
            duty: 1.0,
            link_derate: derates.to_vec(),
        }
    }

    fn spec(policy: PolicyKind) -> ChurnSpec {
        ChurnSpec::new(ChurnModel::with_rate(0.5), policy)
    }

    fn scenario_of(archetype: &str) -> BodyScenario {
        let population = PopulationModel::mixed_default();
        (0..512u64)
            .map(|i| population.sample(5, i))
            .find(|s| s.archetype() == archetype)
            .unwrap_or_else(|| panic!("mixed population samples {archetype}"))
    }

    #[test]
    fn static_policy_never_migrates() {
        let scenario = scenario_of("health-patch");
        let sample = sample_with_derates(&[1.0, 0.2, 1.0, 0.2]);
        let outcome = simulate_placement(&spec(PolicyKind::StaticAtAdmission), &scenario, &sample);
        assert_eq!(outcome.migrations, 0);
        assert_eq!(outcome.replans, 0);
        assert!(outcome.energy > Energy::ZERO);
    }

    #[test]
    fn reoptimize_replans_every_epoch_and_migrates_on_fades() {
        let scenario = scenario_of("health-patch");
        // Alternating hard fades move the ECG model's EDP optimum between
        // raw offload (cut 0, healthy link) and compute-on-leaf (faded).
        let sample = sample_with_derates(&[1.0, 0.2, 1.0, 0.2, 1.0, 0.2]);
        let outcome = simulate_placement(&spec(PolicyKind::ReoptimizeOnChange), &scenario, &sample);
        assert_eq!(outcome.replans, 5);
        assert!(
            outcome.migrations > 0,
            "severe link fades never moved the cut"
        );
    }

    #[test]
    fn hysteresis_migrates_no_more_than_reoptimize() {
        let scenario = scenario_of("health-patch");
        let sample = sample_with_derates(&[1.0, 0.2, 0.9, 0.25, 1.0, 0.5]);
        let eager = simulate_placement(&spec(PolicyKind::ReoptimizeOnChange), &scenario, &sample);
        let cautious = simulate_placement(
            &spec(PolicyKind::Hysteresis).with_hysteresis_threshold(10.0),
            &scenario,
            &sample,
        );
        assert!(cautious.migrations <= eager.migrations);
        // An effectively infinite threshold only migrates to escape
        // infeasibility, and it still pays the re-planning work.
        assert_eq!(cautious.replans, 5);
    }

    #[test]
    fn placement_is_pure() {
        let scenario = scenario_of("ar-assistant");
        let sample = ChurnModel::with_rate(0.6).sample(42, 3, TimeSpan::from_seconds(8.0));
        let spec = spec(PolicyKind::Hysteresis);
        let a = simulate_placement(&spec, &scenario, &sample);
        let b = simulate_placement(&spec, &scenario, &sample);
        assert_eq!(a, b);
    }

    #[test]
    fn churn_spec_flag_round_trips_bit_exactly() {
        let spec = ChurnSpec::new(
            ChurnModel::with_rate(0.37)
                .with_duty_cycle(0.6, 0.8)
                .with_epochs(6)
                .with_link_fade(0.45),
            PolicyKind::Hysteresis,
        )
        .with_objective(Objective::Latency)
        .with_hysteresis_threshold(0.25)
        .with_migration_cost(Energy::from_milli_joules(3.0));
        let parsed = ChurnSpec::parse_flag(&spec.flag_value()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.fingerprint(), spec.fingerprint());
        assert_eq!(parsed.flag_value(), spec.flag_value());
    }

    #[test]
    fn malformed_churn_flags_are_rejected() {
        for bad in [
            "",
            "1:2:3",
            "x:0:0:4:0:static:0:edp:0",
            "0:0:0:4:0:warp:0:edp:0",
            "0:0:0:4:0:static:0:speed:0",
            "0:0:0:nope:0:static:0:edp:0",
        ] {
            assert!(ChurnSpec::parse_flag(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn policy_tags_round_trip() {
        for kind in [
            PolicyKind::StaticAtAdmission,
            PolicyKind::ReoptimizeOnChange,
            PolicyKind::Hysteresis,
        ] {
            assert_eq!(PolicyKind::parse(kind.tag()).unwrap(), kind);
            assert_eq!(kind.to_string(), kind.tag());
        }
        assert!(PolicyKind::parse("best-fit").is_err());
    }

    #[test]
    fn archetype_models_cover_the_population() {
        for name in ["health-patch", "ar-assistant", "ble-minimal", "uniform"] {
            let model = model_for_archetype(name);
            assert!(!model.cut_points().is_empty(), "{name}");
        }
    }
}
