//! Checkpoint transports: how shard workers ship
//! [`FleetCheckpoint`](super::super::FleetCheckpoint) blobs back to the
//! coordinator.
//!
//! A transport is the *only* thing that crosses the process boundary — the
//! blobs themselves are the self-validating binary checkpoints of
//! [`super::super::checkpoint`], so a transport needs no understanding of
//! their contents.  Two implementations ship:
//!
//! * [`SpoolTransport`] — a spool **directory** on a filesystem both sides
//!   can reach.  Publication is atomic (write to a temp name, `fsync`,
//!   `rename` into place), so a reader either sees a complete blob or no
//!   blob at all; a worker killed mid-write leaves only an ignored temp
//!   file.  This is the default, and the only transport whose blobs survive
//!   a coordinator restart — which is what makes driver runs resumable.
//! * [`SocketHub`] / [`SocketPublisher`] — a loopback TCP hub the
//!   coordinator binds and workers connect to, for runs where no shared
//!   filesystem exists.  Blobs land in coordinator memory; a restarted
//!   coordinator starts empty.
//!
//! Both sides of each transport implement the same [`Transport`] trait, and
//! [`Transport::worker_flags`] closes the loop: a transport knows which CLI
//! flags a spawned worker needs to construct its own end (see the worker
//! protocol in [`super`]).
//!
//! # Example
//!
//! ```
//! use hidwa_core::fleet::driver::transport::{SpoolTransport, Transport};
//!
//! let dir = std::env::temp_dir().join(format!("hidwa-spool-doc-{}", std::process::id()));
//! let spool = SpoolTransport::create(&dir).unwrap();
//! assert!(spool.fetch(0).unwrap().is_none());
//! spool.publish(0, b"blob bytes").unwrap();
//! assert_eq!(spool.fetch(0).unwrap().as_deref(), Some(&b"blob bytes"[..]));
//! assert_eq!(spool.worker_flags(), vec!["--spool".to_string(), dir.display().to_string()]);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use crate::wire::{self, FrameError};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Largest blob a [`SocketHub`] will accept (a fleet checkpoint is a few
/// kilobytes; anything near this cap is garbage, not a checkpoint).
pub const MAX_SOCKET_BLOB: u64 = 256 * 1024 * 1024;

/// Default bound on the total bytes a [`SocketHub`] keeps buffered across
/// all stored blobs before it starts NAK-ing publishes.
pub const DEFAULT_HUB_BUDGET: u64 = 1024 * 1024 * 1024;

/// Resource bounds a [`SocketHub`] enforces per connection and in aggregate.
#[derive(Debug, Clone, Copy)]
pub struct HubLimits {
    /// Largest single blob accepted; a frame claiming more is a framing
    /// violation and drops the connection ([`MAX_SOCKET_BLOB`] by default).
    pub max_blob: u64,
    /// Total bytes buffered across all stored blobs.  A well-formed publish
    /// that would exceed this is answered with [`wire::NAK`] and *not*
    /// stored — reject-and-ack-late: the worker backs off and retries once
    /// the coordinator has drained (fetched + discarded) earlier blobs.
    pub buffer_budget: u64,
}

impl Default for HubLimits {
    fn default() -> Self {
        Self {
            max_blob: MAX_SOCKET_BLOB,
            buffer_budget: DEFAULT_HUB_BUDGET,
        }
    }
}

/// Why a transport operation failed.
#[derive(Debug)]
pub enum TransportError {
    /// The underlying filesystem or socket operation failed.
    Io(std::io::Error),
    /// The remote end violated the framing protocol (socket transport).
    Protocol(&'static str),
    /// The operation is not meaningful on this side of the transport (e.g.
    /// fetching through a worker-side [`SocketPublisher`]).
    Unsupported(&'static str),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(error) => write!(f, "transport I/O error: {error}"),
            Self::Protocol(what) => write!(f, "transport protocol violation: {what}"),
            Self::Unsupported(what) => write!(f, "transport operation unsupported: {what}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(error) => Some(error),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TransportError {
    fn from(error: std::io::Error) -> Self {
        Self::Io(error)
    }
}

/// How checkpoint blobs move between shard workers and the coordinator.
///
/// The contract every implementation must honour:
///
/// * **Atomic publication** — a concurrent [`fetch`](Self::fetch) returns
///   either the complete blob or `None`, never a prefix.  A publisher killed
///   mid-[`publish`](Self::publish) must leave nothing a `fetch` can see.
/// * **Last write wins** — re-publishing a shard replaces its blob.
/// * **No interpretation** — blobs are opaque bytes; validation (checksum,
///   config fingerprint, range) is the coordinator's job, which is why a
///   corrupt blob is a *recoverable* driver event, not a transport error.
pub trait Transport: Send + Sync {
    /// Makes `blob` visible to the coordinator as shard `shard`'s result.
    ///
    /// # Errors
    /// [`TransportError`] when the blob could not be durably published; the
    /// shard then counts as missing and the driver re-runs it.
    fn publish(&self, shard: usize, blob: &[u8]) -> Result<(), TransportError>;

    /// Returns shard `shard`'s published blob, or `None` if none is visible.
    ///
    /// # Errors
    /// [`TransportError`] on I/O failure (distinct from "no blob yet").
    fn fetch(&self, shard: usize) -> Result<Option<Vec<u8>>, TransportError>;

    /// Removes shard `shard`'s published blob (used by the coordinator to
    /// drop a corrupt or stale blob before re-running the shard).  Removing
    /// a blob that does not exist is not an error.
    ///
    /// # Errors
    /// [`TransportError`] on I/O failure.
    fn discard(&self, shard: usize) -> Result<(), TransportError>;

    /// The CLI flags a spawned worker process needs to construct its end of
    /// this transport (`--spool <dir>` or `--connect <addr>`; see the
    /// normative worker protocol in [`super`]).
    fn worker_flags(&self) -> Vec<String>;
}

/// Filesystem spool-directory transport.
///
/// Layout inside the directory (normative, also documented in
/// `ARCHITECTURE.md` and `DEPLOYMENT.md`):
///
/// * `shard-<index>.ckpt` — a complete, published checkpoint blob.
/// * `shard-<index>.ckpt.tmp-<pid>` — an in-flight write.  Readers must
///   ignore every name that is not exactly `shard-<index>.ckpt`; the writer
///   renames the temp file into place only after the bytes are written and
///   synced, and `rename(2)` within one directory is atomic on POSIX
///   filesystems.
///
/// The coordinator conventionally places the directory at
/// `<spool_root>/<run_fingerprint>/` (see
/// [`FleetDriver::spool_in`](super::FleetDriver::spool_in)) so blobs from a
/// differently-configured run can never collide with the current one.
#[derive(Debug, Clone)]
pub struct SpoolTransport {
    dir: PathBuf,
}

impl SpoolTransport {
    /// Opens (creating if needed) the spool directory `dir`.
    ///
    /// # Errors
    /// [`std::io::Error`] when the directory cannot be created.
    pub fn create(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self { dir })
    }

    /// The spool directory blobs are published into.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of shard `shard`'s published blob (`shard-<index>.ckpt`).
    #[must_use]
    pub fn blob_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.ckpt"))
    }

    fn temp_path(&self, shard: usize) -> PathBuf {
        self.dir
            .join(format!("shard-{shard}.ckpt.tmp-{}", std::process::id()))
    }

    /// Fault-injection helper: writes the temp file a killed-mid-write
    /// worker would leave behind, **without** renaming it into place.  A
    /// [`fetch`](Transport::fetch) must not see it — which the fault
    /// tests assert.  Returns the temp path so tests can clean it up.
    ///
    /// # Errors
    /// [`std::io::Error`] when the temp file cannot be written.
    pub fn write_partial(&self, shard: usize, blob: &[u8]) -> std::io::Result<PathBuf> {
        let temp = self.temp_path(shard);
        std::fs::write(&temp, blob)?;
        Ok(temp)
    }
}

impl Transport for SpoolTransport {
    fn publish(&self, shard: usize, blob: &[u8]) -> Result<(), TransportError> {
        let temp = self.temp_path(shard);
        {
            let mut file = std::fs::File::create(&temp)?;
            file.write_all(blob)?;
            // Durability before visibility: the rename must never expose a
            // name whose bytes could still be lost to a crash.
            file.sync_all()?;
        }
        std::fs::rename(&temp, self.blob_path(shard))?;
        Ok(())
    }

    fn fetch(&self, shard: usize) -> Result<Option<Vec<u8>>, TransportError> {
        match std::fs::read(self.blob_path(shard)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(error) => Err(error.into()),
        }
    }

    fn discard(&self, shard: usize) -> Result<(), TransportError> {
        match std::fs::remove_file(self.blob_path(shard)) {
            Ok(()) => Ok(()),
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(error) => Err(error.into()),
        }
    }

    fn worker_flags(&self) -> Vec<String> {
        vec!["--spool".to_string(), self.dir.display().to_string()]
    }
}

/// Coordinator side of the loopback-socket transport: binds an ephemeral
/// `127.0.0.1` TCP port, accepts worker connections on a background thread
/// and collects their framed blobs in memory.
///
/// Frames use the shared [`wire`] framing (big-endian
/// `shard u64 · blob length u64 · blob bytes`); the hub replies with a
/// single [`wire::ACK`] byte once the blob is stored, and the worker treats
/// the publish as durable only after reading it.  Connections that violate
/// the framing (or exceed [`MAX_SOCKET_BLOB`]) are dropped without storing
/// anything — the shard simply stays missing and is re-run.
///
/// # Example
///
/// ```
/// use hidwa_core::fleet::driver::transport::{SocketHub, SocketPublisher, Transport};
///
/// let hub = SocketHub::bind().unwrap();
/// let publisher = SocketPublisher::new(hub.addr().to_string());
/// publisher.publish(3, b"shard three").unwrap();
/// assert_eq!(hub.fetch(3).unwrap().as_deref(), Some(&b"shard three"[..]));
/// ```
#[derive(Debug)]
pub struct SocketHub {
    addr: SocketAddr,
    blobs: Arc<Mutex<HashMap<usize, Vec<u8>>>>,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl SocketHub {
    /// Binds a hub on an ephemeral loopback port with default limits and
    /// starts accepting.
    ///
    /// # Errors
    /// [`std::io::Error`] when the loopback listener cannot be bound.
    pub fn bind() -> std::io::Result<Self> {
        Self::bind_with(("127.0.0.1", 0), HubLimits::default())
    }

    /// Binds a hub on an explicit address with default limits — the restart
    /// path: a coordinator that crashed can rebind the port its workers are
    /// still retrying against.
    ///
    /// # Errors
    /// [`std::io::Error`] when the listener cannot be bound.
    pub fn bind_addr(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with(addr, HubLimits::default())
    }

    /// Binds a hub with explicit [`HubLimits`].
    ///
    /// # Errors
    /// [`std::io::Error`] when the listener cannot be bound.
    pub fn bind_with(
        addr: impl std::net::ToSocketAddrs,
        limits: HubLimits,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let blobs: Arc<Mutex<HashMap<usize, Vec<u8>>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let blobs = Arc::clone(&blobs);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Ingest is serial: one worker publishes a few KiB and
                    // disconnects, so fairness is a non-issue and a stalled
                    // client is bounded by the read timeout.
                    let _ = Self::ingest(stream, &blobs, limits);
                }
            })
        };
        Ok(Self {
            addr,
            blobs,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The address workers should `--connect` to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total bytes currently buffered across stored blobs.
    #[must_use]
    pub fn buffered_bytes(&self) -> u64 {
        Self::buffered(&self.blobs.lock().expect("hub blob map poisoned"))
    }

    fn buffered(map: &HashMap<usize, Vec<u8>>) -> u64 {
        map.values().map(|blob| blob.len() as u64).sum()
    }

    /// Stores `blob` under `shard` iff the budget allows it (a re-publish
    /// frees the bytes it replaces first).
    fn store(
        blobs: &Mutex<HashMap<usize, Vec<u8>>>,
        shard: usize,
        blob: Vec<u8>,
        budget: u64,
    ) -> bool {
        let mut map = blobs.lock().expect("hub blob map poisoned");
        let replaced = map.get(&shard).map_or(0, |old| old.len() as u64);
        if Self::buffered(&map) - replaced + blob.len() as u64 > budget {
            return false;
        }
        map.insert(shard, blob);
        true
    }

    fn ingest(
        mut stream: TcpStream,
        blobs: &Mutex<HashMap<usize, Vec<u8>>>,
        limits: HubLimits,
    ) -> Result<(), FrameError> {
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        let (shard, blob) = wire::read_frame(&mut stream, limits.max_blob)?;
        let shard = usize::try_from(shard).unwrap_or(usize::MAX);
        let reply = if Self::store(blobs, shard, blob, limits.buffer_budget) {
            wire::ACK
        } else {
            // Well-formed but over budget: reject so the worker retries
            // once the coordinator has drained earlier blobs.
            wire::NAK
        };
        stream.write_all(&[reply])?;
        stream.flush()?;
        Ok(())
    }
}

impl Drop for SocketHub {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a throwaway connection, then join it.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Transport for SocketHub {
    fn publish(&self, shard: usize, blob: &[u8]) -> Result<(), TransportError> {
        // Coordinator-local publish (e.g. an in-process executor running
        // over the hub) skips the socket and stores directly.
        self.blobs
            .lock()
            .expect("hub blob map poisoned")
            .insert(shard, blob.to_vec());
        Ok(())
    }

    fn fetch(&self, shard: usize) -> Result<Option<Vec<u8>>, TransportError> {
        Ok(self
            .blobs
            .lock()
            .expect("hub blob map poisoned")
            .get(&shard)
            .cloned())
    }

    fn discard(&self, shard: usize) -> Result<(), TransportError> {
        self.blobs
            .lock()
            .expect("hub blob map poisoned")
            .remove(&shard);
        Ok(())
    }

    fn worker_flags(&self) -> Vec<String> {
        vec!["--connect".to_string(), self.addr.to_string()]
    }
}

/// Worker side of the loopback-socket transport: connects to a
/// [`SocketHub`] per publish and streams one framed blob.
///
/// Publishes are retried under a small backoff budget: a refused or dropped
/// connection (the hub restarting), a connection that died before the ack,
/// and a [`wire::NAK`] (the hub's buffer budget exhausted) all back off and
/// try again; only an outright protocol violation (an ack byte that is
/// neither ACK nor NAK) fails immediately.  The default budget — 5 attempts
/// starting at 25 ms and doubling, never past a 5 s ceiling — rides out a
/// coordinator restart without masking a hub that is actually gone.
#[derive(Debug, Clone)]
pub struct SocketPublisher {
    addr: String,
    attempts: u32,
    initial_backoff: Duration,
    max_backoff: Duration,
}

/// Whether a failed publish attempt is worth retrying.
enum PublishFailure {
    Retry(TransportError),
    Fatal(TransportError),
}

impl SocketPublisher {
    /// A publisher that will connect to `addr` (`host:port`) with the
    /// default retry budget.
    #[must_use]
    pub fn new(addr: String) -> Self {
        Self {
            addr,
            attempts: 5,
            initial_backoff: Duration::from_millis(25),
            max_backoff: Self::DEFAULT_MAX_BACKOFF,
        }
    }

    /// Ceiling the exponential backoff saturates at.  Doubling unboundedly
    /// would overflow `Duration` within a few dozen attempts (a panic
    /// mid-retry); anything past a few seconds adds latency without adding
    /// information about a hub that is still down.
    pub const DEFAULT_MAX_BACKOFF: Duration = Duration::from_secs(5);

    /// Overrides the retry budget: up to `attempts` tries (clamped to ≥ 1),
    /// sleeping `initial_backoff` before the second and doubling after —
    /// saturating at the backoff ceiling, never overflowing.
    #[must_use]
    pub fn with_retry(mut self, attempts: u32, initial_backoff: Duration) -> Self {
        self.attempts = attempts.max(1);
        self.initial_backoff = initial_backoff;
        self
    }

    /// Overrides the backoff ceiling (clamped to at least 1 ms).
    #[must_use]
    pub fn with_backoff_cap(mut self, max_backoff: Duration) -> Self {
        self.max_backoff = max_backoff.max(Duration::from_millis(1));
        self
    }

    fn try_publish(&self, shard: usize, blob: &[u8]) -> Result<(), PublishFailure> {
        let connect = |error: std::io::Error| PublishFailure::Retry(error.into());
        let mut stream = TcpStream::connect(self.addr.as_str()).map_err(connect)?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(connect)?;
        wire::write_frame(&mut stream, shard as u64, blob)
            .map_err(|error| PublishFailure::Retry(TransportError::Io(error)))?;
        let mut ack = [0u8; 1];
        stream.read_exact(&mut ack).map_err(|_| {
            PublishFailure::Retry(TransportError::Protocol(
                "hub closed before acknowledging the blob",
            ))
        })?;
        match ack[0] {
            wire::ACK => Ok(()),
            wire::NAK => Err(PublishFailure::Retry(TransportError::Protocol(
                "hub rejected the blob: buffer budget exhausted",
            ))),
            _ => Err(PublishFailure::Fatal(TransportError::Protocol(
                "hub sent an unexpected ack byte",
            ))),
        }
    }
}

impl Transport for SocketPublisher {
    fn publish(&self, shard: usize, blob: &[u8]) -> Result<(), TransportError> {
        let mut backoff = self.initial_backoff.min(self.max_backoff);
        let mut last = None;
        for attempt in 0..self.attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2).min(self.max_backoff);
            }
            match self.try_publish(shard, blob) {
                Ok(()) => return Ok(()),
                Err(PublishFailure::Retry(error)) => last = Some(error),
                Err(PublishFailure::Fatal(error)) => return Err(error),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    fn fetch(&self, _shard: usize) -> Result<Option<Vec<u8>>, TransportError> {
        Err(TransportError::Unsupported(
            "worker-side socket transport cannot fetch blobs",
        ))
    }

    fn discard(&self, _shard: usize) -> Result<(), TransportError> {
        Err(TransportError::Unsupported(
            "worker-side socket transport cannot discard blobs",
        ))
    }

    fn worker_flags(&self) -> Vec<String> {
        vec!["--connect".to_string(), self.addr.clone()]
    }
}
