//! Multi-process fleet driver: a coordinator that spawns shard **worker
//! processes**, ships their partial folds back as checkpoint blobs, and
//! merges them through the exact fleet algebra.
//!
//! PR 4 made [`FleetAggregator`] a commutative merge monoid and gave shard
//! partials a self-validating wire format ([`FleetCheckpoint`]); this module
//! is the runtime that actually crosses the process boundary with them:
//!
//! * [`DriverFleetSpec`] — the subset of a [`FleetConfig`] that can cross a
//!   process boundary as CLI flags (bodies, base seed, horizon *bits*,
//!   top-K, a named population).  Both sides of the protocol rebuild the
//!   exact same config from it, which is what makes a multi-process run
//!   byte-identical to the in-process fold.
//! * [`WorkerRequest`] — the normative worker CLI protocol: parse flags,
//!   fold the assigned contiguous body range, publish the checkpoint blob
//!   through a [`Transport`].  [`worker_main`] wraps it into a ready-made
//!   binary entry point (`shard_worker` in the bench crate, and the
//!   `--worker` modes of `fleet_driver`, `bench_netsim` and the
//!   `distributed_fleet` example all delegate here).
//! * [`FleetDriver`] — the coordinator: assigns contiguous ranges, runs
//!   shards through a [`ShardExecutor`] ([`ProcessExecutor`] spawns worker
//!   processes via [`std::process::Command`]; [`InProcessExecutor`] folds in
//!   the calling process, for tests and as the bench baseline), validates
//!   every returned blob (checksum, config fingerprint, range), re-runs
//!   missing / corrupt / killed shards, and merges the survivors via
//!   [`ShardPlan::merge_checkpoints`].
//!
//! # Fault tolerance and resume
//!
//! The driver treats the transport as the source of truth: before running
//! anything it fetches whatever blobs already exist, keeps the valid ones
//! and re-runs the rest.  Consequently a coordinator that crashes and is
//! re-run over the same spool directory resumes from the surviving blobs —
//! and a worker killed at *any* point leaves either nothing (publication is
//! atomic) or a complete valid blob, never a partial one.  Every recovered
//! fault is recorded in the [`DriverRun`]'s per-shard outcomes; a shard that
//! stays broken after [`max_attempts`](FleetDriver::with_max_attempts)
//! executions fails the run with a typed [`DriverError`].
//!
//! Determinism: which process folded a shard, how often it was re-run, and
//! which transport carried the blob are all invisible in the result — the
//! merged report is byte-identical to [`FleetConfig::run`] on the same
//! spec (property-tested in `crates/core/tests/fleet_driver.rs` across
//! random shard layouts × kill points × resumes, and asserted against real
//! killed processes in `crates/bench/tests/driver_process.rs`).
//!
//! # Example
//!
//! ```
//! use hidwa_core::fleet::driver::{DriverFleetSpec, FleetDriver, InProcessExecutor};
//! use hidwa_core::sweep::SweepRunner;
//! use hidwa_units::TimeSpan;
//!
//! let spec = DriverFleetSpec::new(6).with_horizon(TimeSpan::from_seconds(0.5));
//! let driver = FleetDriver::new(spec.clone(), 2);
//! let root = std::env::temp_dir().join(format!("hidwa-driver-doc-{}", std::process::id()));
//! let spool = driver.spool_in(&root).unwrap();
//!
//! let run = driver.run(&InProcessExecutor::serial(), &spool).unwrap();
//! assert_eq!(run.report().bodies(), 6);
//! // Byte-identical to the plain single-stream fold of the same spec.
//! assert_eq!(run.report(), &spec.to_config().run(&SweepRunner::serial()));
//! // A second coordinator over the same spool resumes: all blobs reused.
//! let resumed = driver.run(&InProcessExecutor::serial(), &spool).unwrap();
//! assert_eq!(resumed.reused_shards(), 2);
//! std::fs::remove_dir_all(&root).ok();
//! ```

use super::checkpoint::{fnv1a64, CheckpointError, FleetCheckpoint};
use super::placement::ChurnSpec;
use super::shard::ShardPlan;
use super::{FleetAggregator, FleetConfig, FleetReport};
use crate::population::{LinkCache, PopulationModel};
use crate::sweep::SweepRunner;
use hidwa_netsim::mac::MacPolicy;
use hidwa_phy::RadioTechnology;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::Command;

pub mod transport;

pub use transport::{SocketHub, SocketPublisher, SpoolTransport, Transport, TransportError};

/// Exit code a worker process uses for an **injected** crash
/// (`--fail-after-bodies`), distinct from real failures so tests can tell
/// "simulated kill" from "bug".
pub const SIMULATED_CRASH_EXIT: u8 = 13;

/// Usage text for the normative worker CLI (printed by worker binaries on
/// argument errors; the flag reference lives in `DEPLOYMENT.md`).
pub const WORKER_USAGE: &str = "\
usage: shard_worker --bodies <n> --shard-index <i> --shard-start <a> --shard-end <b>
                    (--spool <dir> | --connect <host:port>)
                    [--base-seed <u64>] [--horizon-s <f64> | --horizon-bits <u64>]
                    [--top-k <n>] [--population <uniform|mixed>] [--threads <n>]
                    [--mac <tdma|polling>] [--radio <wi-r|ble|nfmi|wifi>]
                    [--traffic-scale <f64> | --traffic-scale-bits <u64>]
                    [--churn <rate:dmin:dmax:epochs:fade:policy:thresh:objective:cost>]
                    [--fail-after-bodies <n>] [--fail-with-partial]";

/// The `--mac` flag tag of a [`MacPolicy`] (the search layer's MAC axis
/// crosses the process boundary with these).
#[must_use]
pub fn mac_tag(policy: MacPolicy) -> &'static str {
    match policy {
        MacPolicy::Tdma => "tdma",
        MacPolicy::Polling => "polling",
    }
}

/// Parses a `--mac` flag value.
///
/// # Errors
/// A human-readable message for an unknown tag.
pub fn parse_mac_tag(tag: &str) -> Result<MacPolicy, String> {
    match tag {
        "tdma" => Ok(MacPolicy::Tdma),
        "polling" => Ok(MacPolicy::Polling),
        other => Err(format!(
            "unknown MAC policy {other:?} (expected \"tdma\" or \"polling\")"
        )),
    }
}

/// The `--radio` flag tag of a [`RadioTechnology`].
#[must_use]
pub fn radio_tag(technology: RadioTechnology) -> &'static str {
    match technology {
        RadioTechnology::WiR => "wi-r",
        RadioTechnology::Ble => "ble",
        RadioTechnology::Nfmi => "nfmi",
        RadioTechnology::WiFi => "wifi",
    }
}

/// Parses a `--radio` flag value.
///
/// # Errors
/// A human-readable message for an unknown tag.
pub fn parse_radio_tag(tag: &str) -> Result<RadioTechnology, String> {
    match tag {
        "wi-r" => Ok(RadioTechnology::WiR),
        "ble" => Ok(RadioTechnology::Ble),
        "nfmi" => Ok(RadioTechnology::Nfmi),
        "wifi" => Ok(RadioTechnology::WiFi),
        other => Err(format!(
            "unknown radio {other:?} (expected \"wi-r\", \"ble\", \"nfmi\" or \"wifi\")"
        )),
    }
}

/// Why a driver run (or a worker invocation) failed.
///
/// Blob-level problems ([`Blob`](Self::Blob), [`Missing`](Self::Missing))
/// and worker-level problems ([`Spawn`](Self::Spawn),
/// [`Worker`](Self::Worker)) are *recoverable*: the driver records them and
/// re-runs the shard.  Only [`Exhausted`](Self::Exhausted) (recovery budget
/// spent), [`Transport`](Self::Transport) (the transport itself broke),
/// [`Merge`](Self::Merge) (validated blobs that still do not tile the
/// fleet) and [`Usage`](Self::Usage) (malformed CLI) abort a run.
#[derive(Debug)]
pub enum DriverError {
    /// The worker CLI arguments were malformed (see [`WORKER_USAGE`]).
    Usage(String),
    /// The transport failed mechanically (I/O, protocol violation).
    Transport(TransportError),
    /// A worker process could not be spawned at all.
    Spawn {
        /// Shard whose worker failed to spawn.
        shard: usize,
        /// Operating-system error message.
        message: String,
    },
    /// A worker process exited unsuccessfully (killed, crashed, or failed).
    Worker {
        /// Shard the worker was folding.
        shard: usize,
        /// Exit code, if the process exited (rather than being signalled).
        code: Option<i32>,
        /// Trailing stderr of the worker, for the operator.
        stderr: String,
    },
    /// A published blob failed validation (checksum, config fingerprint, or
    /// an implied body range that does not match the shard's assignment).
    Blob {
        /// Shard whose blob was rejected.
        shard: usize,
        /// The underlying checkpoint rejection.
        source: CheckpointError,
    },
    /// A worker reported success but no blob became visible.
    Missing {
        /// Shard whose blob never appeared.
        shard: usize,
    },
    /// A shard still had no valid blob after the recovery budget.
    Exhausted {
        /// The failing shard.
        shard: usize,
        /// Worker executions attempted for it this run.
        attempts: usize,
        /// The last recorded failure.
        last: Box<DriverError>,
    },
    /// Validated blobs that nevertheless do not merge into the fleet (e.g.
    /// ranges that no longer tile `0..bodies` after a plan change).
    Merge(CheckpointError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Usage(what) => write!(f, "invalid worker arguments: {what}"),
            Self::Transport(error) => write!(f, "{error}"),
            Self::Spawn { shard, message } => {
                write!(f, "shard {shard}: failed to spawn worker: {message}")
            }
            Self::Worker {
                shard,
                code,
                stderr,
            } => {
                write!(f, "shard {shard}: worker ")?;
                match code {
                    Some(code) => write!(f, "exited with code {code}")?,
                    None => write!(f, "was terminated by a signal")?,
                }
                if stderr.is_empty() {
                    Ok(())
                } else {
                    write!(f, " (stderr: {})", stderr.trim_end())
                }
            }
            Self::Blob { shard, source } => {
                write!(f, "shard {shard}: published blob rejected: {source}")
            }
            Self::Missing { shard } => {
                write!(f, "shard {shard}: worker succeeded but published no blob")
            }
            Self::Exhausted {
                shard,
                attempts,
                last,
            } => write!(
                f,
                "shard {shard}: no valid blob after {attempts} worker attempt(s); last error: {last}"
            ),
            Self::Merge(error) => write!(f, "merging shard blobs failed: {error}"),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Transport(error) => Some(error),
            Self::Blob { source, .. } | Self::Merge(source) => Some(source),
            Self::Exhausted { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<TransportError> for DriverError {
    fn from(error: TransportError) -> Self {
        Self::Transport(error)
    }
}

/// The populations a [`DriverFleetSpec`] can name across a process boundary.
///
/// A [`PopulationModel`] is arbitrary data and cannot ride on CLI flags, so
/// the worker protocol restricts itself to named populations both sides can
/// rebuild bit-identically.  Custom populations still shard fine — within
/// one process via [`ShardPlan`], or by extending this enum alongside the
/// worker flag table in `DEPLOYMENT.md`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PopulationSpec {
    /// The homogeneous default: every body the standard five-leaf Wi-R
    /// polling network ([`FleetConfig::new`]'s population).
    Uniform,
    /// [`PopulationModel::mixed_default`]: health-patch / AR-assistant /
    /// BLE-minimal archetypes.
    Mixed,
}

impl PopulationSpec {
    /// The flag value naming this population (`--population <tag>`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::Uniform => "uniform",
            Self::Mixed => "mixed",
        }
    }

    /// Parses a `--population` flag value.
    ///
    /// # Errors
    /// [`DriverError::Usage`] for an unknown tag.
    pub fn parse(tag: &str) -> Result<Self, DriverError> {
        match tag {
            "uniform" => Ok(Self::Uniform),
            "mixed" => Ok(Self::Mixed),
            other => Err(DriverError::Usage(format!(
                "unknown population {other:?} (expected \"uniform\" or \"mixed\")"
            ))),
        }
    }
}

impl std::fmt::Display for PopulationSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

/// The process-boundary-safe description of a fleet: everything a worker
/// needs to rebuild the coordinator's exact [`FleetConfig`] from CLI flags.
///
/// The horizon crosses the boundary as raw `f64` **bits**, so the rebuilt
/// config is bit-identical even for horizons with no short decimal form —
/// the checkpoint fingerprint compares horizon bits, so anything less would
/// make workers' blobs unmergeable.
#[derive(Debug, Clone, PartialEq)]
pub struct DriverFleetSpec {
    bodies: usize,
    base_seed: u64,
    horizon_bits: u64,
    top_k: usize,
    population: PopulationSpec,
    /// Overrides the named population's MAC policy on every archetype
    /// (`--mac`); `None` keeps the population's own policies.
    mac: Option<MacPolicy>,
    /// Overrides the radio technology on every archetype (`--radio`).
    radio: Option<RadioTechnology>,
    /// Traffic-scale factor as raw `f64` bits (`--traffic-scale-bits`);
    /// `1.0` is the identity.  Bits, not decimals, for the same reason the
    /// horizon crosses as bits: both sides must rebuild the exact config.
    traffic_scale_bits: u64,
    churn: Option<ChurnSpec>,
}

// Every float a `ChurnSpec` carries is validated finite at construction and
// at `--churn` parse time, so `PartialEq` is total here.
impl Eq for DriverFleetSpec {}

impl DriverFleetSpec {
    /// A spec with [`FleetConfig::new`]'s defaults: uniform population,
    /// base seed `0xF1EE7`, 60 s horizon, top-K of 8.
    #[must_use]
    pub fn new(bodies: usize) -> Self {
        let defaults = FleetConfig::new(bodies);
        Self {
            bodies,
            base_seed: defaults.base_seed(),
            horizon_bits: defaults.horizon().as_seconds().to_bits(),
            top_k: defaults.top_k(),
            population: PopulationSpec::Uniform,
            mac: None,
            radio: None,
            traffic_scale_bits: 1.0f64.to_bits(),
            churn: None,
        }
    }

    /// Sets the base seed per-body scenarios derive from.
    #[must_use]
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the simulated horizon per body.
    #[must_use]
    pub fn with_horizon(mut self, horizon: hidwa_units::TimeSpan) -> Self {
        self.horizon_bits = horizon.as_seconds().to_bits();
        self
    }

    /// Sets how many worst bodies the aggregator keeps exactly.
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k.max(1);
        self
    }

    /// Selects the named population bodies are drawn from.
    #[must_use]
    pub fn with_population(mut self, population: PopulationSpec) -> Self {
        self.population = population;
        self
    }

    /// Overrides the MAC policy on every archetype of the named population
    /// (the search layer's MAC axis; crosses the boundary as `--mac`).
    #[must_use]
    pub fn with_mac(mut self, mac: MacPolicy) -> Self {
        self.mac = Some(mac);
        self
    }

    /// Overrides the radio technology on every archetype (`--radio`).
    #[must_use]
    pub fn with_radio(mut self, radio: RadioTechnology) -> Self {
        self.radio = Some(radio);
        self
    }

    /// Scales every leaf's offered traffic load by `factor`
    /// ([`PopulationModel::with_traffic_scale`]); non-finite or non-positive
    /// factors reset to the identity.  Crosses the boundary as
    /// `--traffic-scale-bits`, bit-exactly.
    #[must_use]
    pub fn with_traffic_scale(mut self, factor: f64) -> Self {
        self.traffic_scale_bits = if factor.is_finite() && factor > 0.0 {
            factor.to_bits()
        } else {
            1.0f64.to_bits()
        };
        self
    }

    /// The MAC-policy override, if one is set.
    #[must_use]
    pub fn mac(&self) -> Option<MacPolicy> {
        self.mac
    }

    /// The radio-technology override, if one is set.
    #[must_use]
    pub fn radio(&self) -> Option<RadioTechnology> {
        self.radio
    }

    /// The traffic-scale factor (1.0 = identity).
    #[must_use]
    pub fn traffic_scale(&self) -> f64 {
        f64::from_bits(self.traffic_scale_bits)
    }

    /// The traffic-scale factor as raw bits (what crosses the boundary).
    #[must_use]
    pub fn traffic_scale_bits(&self) -> u64 {
        self.traffic_scale_bits
    }

    /// The base seed per-body scenarios derive from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The per-body horizon as raw `f64` seconds bits.
    #[must_use]
    pub fn horizon_bits(&self) -> u64 {
        self.horizon_bits
    }

    /// How many worst bodies the aggregator keeps exactly.
    #[must_use]
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Attaches a churn-and-placement spec; it crosses the process boundary
    /// as the bit-exact `--churn` flag, so workers rebuild the exact same
    /// churned [`FleetConfig`].
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// The churn-and-placement spec, if the fleet is churned.
    #[must_use]
    pub fn churn(&self) -> Option<&ChurnSpec> {
        self.churn.as_ref()
    }

    /// Number of bodies in the fleet.
    #[must_use]
    pub fn bodies(&self) -> usize {
        self.bodies
    }

    /// The named population bodies are drawn from.
    #[must_use]
    pub fn population(&self) -> PopulationSpec {
        self.population
    }

    /// Builds the [`FleetConfig`] this spec describes — the same one on
    /// every machine that evaluates it.
    #[must_use]
    pub fn to_config(&self) -> FleetConfig {
        let config = FleetConfig::new(self.bodies)
            .with_base_seed(self.base_seed)
            .with_horizon(hidwa_units::TimeSpan::from_seconds(f64::from_bits(
                self.horizon_bits,
            )))
            .with_top_k(self.top_k);
        let mut config = match self.population {
            PopulationSpec::Uniform => config,
            PopulationSpec::Mixed => config.with_population(PopulationModel::mixed_default()),
        };
        if let Some(mac) = self.mac {
            config = config.with_policy(mac);
        }
        if let Some(radio) = self.radio {
            config = config.with_technology(radio);
        }
        if self.traffic_scale_bits != 1.0f64.to_bits() {
            let scaled = config
                .population()
                .clone()
                .with_traffic_scale(f64::from_bits(self.traffic_scale_bits));
            config = config.with_population(scaled);
        }
        match &self.churn {
            None => config,
            Some(churn) => config.with_churn(churn.clone()),
        }
    }

    /// The standard worker CLI flags for folding `shard` of this fleet —
    /// transport flags (see [`Transport::worker_flags`]) come on top.
    #[must_use]
    pub fn worker_args(&self, shard: &ShardAssignment) -> Vec<String> {
        let mut args = vec![
            "--base-seed".into(),
            self.base_seed.to_string(),
            "--bodies".into(),
            self.bodies.to_string(),
            "--horizon-bits".into(),
            self.horizon_bits.to_string(),
            "--top-k".into(),
            self.top_k.to_string(),
            "--population".into(),
            self.population.tag().into(),
        ];
        if let Some(mac) = self.mac {
            args.push("--mac".into());
            args.push(mac_tag(mac).into());
        }
        if let Some(radio) = self.radio {
            args.push("--radio".into());
            args.push(radio_tag(radio).into());
        }
        if self.traffic_scale_bits != 1.0f64.to_bits() {
            args.push("--traffic-scale-bits".into());
            args.push(self.traffic_scale_bits.to_string());
        }
        if let Some(churn) = &self.churn {
            args.push("--churn".into());
            args.push(churn.flag_value());
        }
        args.extend([
            "--shard-index".into(),
            shard.index.to_string(),
            "--shard-start".into(),
            shard.start.to_string(),
            "--shard-end".into(),
            shard.end.to_string(),
        ]);
        args
    }
}

/// One contiguous body range assigned to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardAssignment {
    /// Position of the shard in the plan (names the blob: `shard-<index>`).
    pub index: usize,
    /// First body (inclusive) the worker folds.
    pub start: usize,
    /// End body (exclusive) the worker folds.
    pub end: usize,
}

impl ShardAssignment {
    /// The assignment's body range.
    #[must_use]
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }
}

/// Which transport end a worker should construct (from `--spool` /
/// `--connect`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerTransport {
    /// Publish into a spool directory (atomic write-to-temp + rename).
    Spool(PathBuf),
    /// Connect to a coordinator's [`SocketHub`] at `host:port`.
    Connect(String),
}

/// What a worker invocation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The shard folded and its blob was durably published.
    Completed {
        /// Bodies the shard folded.
        bodies: usize,
        /// Size of the published checkpoint blob.
        blob_bytes: usize,
    },
    /// Fault injection (`--fail-after-bodies`) stopped the worker before it
    /// published anything; the binary exits with [`SIMULATED_CRASH_EXIT`].
    SimulatedCrash,
}

/// A parsed worker invocation: the normative CLI protocol of the
/// coordinator/worker boundary (flag reference in `DEPLOYMENT.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerRequest {
    /// The fleet the shard belongs to.
    pub spec: DriverFleetSpec,
    /// The shard this worker folds.
    pub shard: ShardAssignment,
    /// Where the checkpoint blob goes.
    pub transport: WorkerTransport,
    /// Thread width of the worker's internal [`SweepRunner`] (default 1:
    /// parallelism normally comes from running many workers).
    pub threads: usize,
    /// Fault injection: fold only this many bodies, then exit without
    /// publishing — a deterministic stand-in for `kill -9`.
    pub fail_after: Option<usize>,
    /// Fault injection: additionally leave a partial temp blob in the spool
    /// (requires `--spool`), as a worker killed mid-write would.
    pub fail_with_partial: bool,
}

impl WorkerRequest {
    /// Parses the worker CLI flags (everything after the program name /
    /// `--worker` subcommand).
    ///
    /// # Errors
    /// [`DriverError::Usage`] describing the first malformed, missing or
    /// unknown flag.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, DriverError> {
        let mut args = args.into_iter();
        let mut bodies = None;
        let mut base_seed = None;
        let mut horizon_bits = None;
        let mut top_k = None;
        let mut population = None;
        let mut mac = None;
        let mut radio = None;
        let mut traffic_scale_bits = None;
        let mut churn = None;
        let mut shard_index = None;
        let mut shard_start = None;
        let mut shard_end = None;
        let mut spool: Option<PathBuf> = None;
        let mut connect: Option<String> = None;
        let mut threads = 1usize;
        let mut fail_after = None;
        let mut fail_with_partial = false;
        while let Some(flag) = args.next() {
            match flag.as_str() {
                "--bodies" => bodies = Some(parse_value(&flag, args.next())?),
                "--base-seed" => base_seed = Some(parse_value(&flag, args.next())?),
                "--horizon-bits" => horizon_bits = Some(parse_value(&flag, args.next())?),
                "--horizon-s" => {
                    let seconds: f64 = parse_value(&flag, args.next())?;
                    if !(seconds.is_finite() && seconds >= 0.0) {
                        return Err(DriverError::Usage(
                            "--horizon-s must be a finite non-negative duration".into(),
                        ));
                    }
                    horizon_bits = Some(seconds.to_bits());
                }
                "--top-k" => top_k = Some(parse_value(&flag, args.next())?),
                "--population" => {
                    population = Some(PopulationSpec::parse(&require_value(&flag, args.next())?)?);
                }
                "--mac" => {
                    let value = require_value(&flag, args.next())?;
                    mac = Some(parse_mac_tag(&value).map_err(DriverError::Usage)?);
                }
                "--radio" => {
                    let value = require_value(&flag, args.next())?;
                    radio = Some(parse_radio_tag(&value).map_err(DriverError::Usage)?);
                }
                "--traffic-scale" => {
                    let factor: f64 = parse_value(&flag, args.next())?;
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(DriverError::Usage(
                            "--traffic-scale must be a finite positive factor".into(),
                        ));
                    }
                    traffic_scale_bits = Some(factor.to_bits());
                }
                "--traffic-scale-bits" => {
                    let bits: u64 = parse_value(&flag, args.next())?;
                    let factor = f64::from_bits(bits);
                    if !(factor.is_finite() && factor > 0.0) {
                        return Err(DriverError::Usage(
                            "--traffic-scale-bits do not encode a finite positive factor".into(),
                        ));
                    }
                    traffic_scale_bits = Some(bits);
                }
                "--churn" => {
                    let value = require_value(&flag, args.next())?;
                    churn = Some(ChurnSpec::parse_flag(&value).map_err(DriverError::Usage)?);
                }
                "--shard-index" => shard_index = Some(parse_value(&flag, args.next())?),
                "--shard-start" => shard_start = Some(parse_value(&flag, args.next())?),
                "--shard-end" => shard_end = Some(parse_value(&flag, args.next())?),
                "--spool" => spool = Some(PathBuf::from(require_value(&flag, args.next())?)),
                "--connect" => connect = Some(require_value(&flag, args.next())?),
                "--threads" => threads = parse_value::<usize>(&flag, args.next())?.max(1),
                "--fail-after-bodies" => fail_after = Some(parse_value(&flag, args.next())?),
                "--fail-with-partial" => fail_with_partial = true,
                other => {
                    return Err(DriverError::Usage(format!("unknown flag {other:?}")));
                }
            }
        }
        let bodies = bodies.ok_or_else(|| DriverError::Usage("--bodies is required".into()))?;
        let mut spec = DriverFleetSpec::new(bodies);
        if let Some(base_seed) = base_seed {
            spec = spec.with_base_seed(base_seed);
        }
        if let Some(bits) = horizon_bits {
            let seconds = f64::from_bits(bits);
            if !(seconds.is_finite() && seconds >= 0.0) {
                return Err(DriverError::Usage(
                    "--horizon-bits do not encode a finite non-negative duration".into(),
                ));
            }
            spec.horizon_bits = bits;
        }
        if let Some(top_k) = top_k {
            spec = spec.with_top_k(top_k);
        }
        if let Some(population) = population {
            spec = spec.with_population(population);
        }
        if let Some(mac) = mac {
            spec = spec.with_mac(mac);
        }
        if let Some(radio) = radio {
            spec = spec.with_radio(radio);
        }
        if let Some(bits) = traffic_scale_bits {
            spec.traffic_scale_bits = bits;
        }
        if let Some(churn) = churn {
            spec = spec.with_churn(churn);
        }
        let shard = ShardAssignment {
            index: shard_index
                .ok_or_else(|| DriverError::Usage("--shard-index is required".into()))?,
            start: shard_start
                .ok_or_else(|| DriverError::Usage("--shard-start is required".into()))?,
            end: shard_end.ok_or_else(|| DriverError::Usage("--shard-end is required".into()))?,
        };
        if shard.start > shard.end || shard.end > bodies {
            return Err(DriverError::Usage(format!(
                "shard range {}..{} does not fit the {bodies}-body fleet",
                shard.start, shard.end
            )));
        }
        let transport = match (spool, connect) {
            (Some(dir), None) => WorkerTransport::Spool(dir),
            (None, Some(addr)) => WorkerTransport::Connect(addr),
            (None, None) => {
                return Err(DriverError::Usage(
                    "one of --spool or --connect is required".into(),
                ));
            }
            (Some(_), Some(_)) => {
                return Err(DriverError::Usage(
                    "--spool and --connect are mutually exclusive".into(),
                ));
            }
        };
        if fail_with_partial && !matches!(transport, WorkerTransport::Spool(_)) {
            return Err(DriverError::Usage(
                "--fail-with-partial requires --spool".into(),
            ));
        }
        Ok(Self {
            spec,
            shard,
            transport,
            threads,
            fail_after,
            fail_with_partial,
        })
    }

    /// Folds the assigned range and publishes the checkpoint blob.
    ///
    /// # Errors
    /// [`DriverError`] when the spool/socket transport cannot be constructed
    /// or the publish fails.
    pub fn run(&self) -> Result<WorkerOutcome, DriverError> {
        let runner = SweepRunner::with_threads(self.threads);
        let config = self.spec.to_config();
        let links = LinkCache::for_population(config.population());
        let mut partial = FleetAggregator::new(config.horizon(), config.top_k());
        if let Some(fail_after) = self.fail_after {
            // Deterministic stand-in for a mid-shard kill: fold a prefix,
            // publish nothing complete, die with the simulated-crash code.
            let stop = (self.shard.start + fail_after).min(self.shard.end);
            config.fold_range(&runner, &links, &mut partial, self.shard.start..stop);
            if self.fail_with_partial {
                if let WorkerTransport::Spool(dir) = &self.transport {
                    let spool = SpoolTransport::create(dir).map_err(TransportError::Io)?;
                    let blob = FleetCheckpoint::capture(&config, &partial, stop).save();
                    spool
                        .write_partial(self.shard.index, &blob)
                        .map_err(TransportError::Io)?;
                }
            }
            return Ok(WorkerOutcome::SimulatedCrash);
        }
        config.fold_range(&runner, &links, &mut partial, self.shard.range());
        let blob = FleetCheckpoint::capture(&config, &partial, self.shard.end).save();
        match &self.transport {
            WorkerTransport::Spool(dir) => {
                let spool = SpoolTransport::create(dir).map_err(TransportError::Io)?;
                spool.publish(self.shard.index, &blob)?;
            }
            WorkerTransport::Connect(addr) => {
                SocketPublisher::new(addr.clone()).publish(self.shard.index, &blob)?;
            }
        }
        Ok(WorkerOutcome::Completed {
            bodies: self.shard.end - self.shard.start,
            blob_bytes: blob.len(),
        })
    }
}

fn require_value(flag: &str, value: Option<String>) -> Result<String, DriverError> {
    value.ok_or_else(|| DriverError::Usage(format!("{flag} needs a value")))
}

fn parse_value<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, DriverError> {
    let value = require_value(flag, value)?;
    value
        .parse()
        .map_err(|_| DriverError::Usage(format!("{flag} could not parse {value:?}")))
}

/// Ready-made `main` body for worker binaries: parse, run, map outcomes to
/// exit codes (0 success, [`SIMULATED_CRASH_EXIT`] for an injected crash, 2
/// for usage errors, 1 for runtime failures).
///
/// ```no_run
/// fn main() -> std::process::ExitCode {
///     hidwa_core::fleet::driver::worker_main(std::env::args().skip(1))
/// }
/// ```
pub fn worker_main(args: impl IntoIterator<Item = String>) -> std::process::ExitCode {
    let request = match WorkerRequest::parse(args) {
        Ok(request) => request,
        Err(error) => {
            eprintln!("{error}");
            eprintln!("{WORKER_USAGE}");
            return std::process::ExitCode::from(2);
        }
    };
    match request.run() {
        Ok(WorkerOutcome::Completed { bodies, blob_bytes }) => {
            println!(
                "shard {}: folded {bodies} bodies ({}..{}), published {blob_bytes}-byte checkpoint",
                request.shard.index, request.shard.start, request.shard.end
            );
            std::process::ExitCode::SUCCESS
        }
        Ok(WorkerOutcome::SimulatedCrash) => {
            eprintln!(
                "shard {}: simulated crash after {} bodies (fault injection)",
                request.shard.index,
                request.fail_after.unwrap_or(0)
            );
            std::process::ExitCode::from(SIMULATED_CRASH_EXIT)
        }
        Err(error) => {
            eprintln!("{error}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// How the coordinator runs one shard to (attempted) completion.
///
/// The driver calls [`execute`](Self::execute) and then looks for the blob
/// on the transport — an executor's only obligation is to *try* to make the
/// shard's blob appear.  `attempt` counts prior executions of this shard in
/// this run, so executors can vary behaviour across retries (the
/// fault-injecting executors in the tests, [`ProcessExecutor`]'s
/// `--fail-after` injection for recovery demos).
///
/// The driver executes a round's pending shards on concurrent coordinator
/// threads (so worker processes overlap), hence the `Sync` bound —
/// `execute` may be called for *different* shards at the same time.
pub trait ShardExecutor: Sync {
    /// Attempts to fold `shard` of `spec` and publish its blob on
    /// `transport`.
    ///
    /// # Errors
    /// Any [`DriverError`]; the driver records it and may retry.
    fn execute(
        &self,
        spec: &DriverFleetSpec,
        shard: &ShardAssignment,
        attempt: usize,
        transport: &dyn Transport,
    ) -> Result<(), DriverError>;
}

/// Folds shards inside the coordinator process — the baseline the
/// multi-process path is benchmarked against, and the executor the
/// in-process fault tests drive.
#[derive(Debug, Clone)]
pub struct InProcessExecutor {
    threads: usize,
}

impl InProcessExecutor {
    /// Serial in-process execution.
    #[must_use]
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// In-process execution with a `threads`-wide [`SweepRunner`] per shard.
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }
}

impl ShardExecutor for InProcessExecutor {
    fn execute(
        &self,
        spec: &DriverFleetSpec,
        shard: &ShardAssignment,
        _attempt: usize,
        transport: &dyn Transport,
    ) -> Result<(), DriverError> {
        WorkerRequest {
            spec: spec.clone(),
            shard: shard.clone(),
            // The request publishes through `transport` below, not through
            // a parsed transport spec; give it a placeholder it never uses.
            transport: WorkerTransport::Spool(PathBuf::new()),
            threads: self.threads,
            fail_after: None,
            fail_with_partial: false,
        }
        .fold_and_publish_on(transport)
    }
}

impl WorkerRequest {
    /// Folds the range and publishes on an already-constructed transport
    /// (the in-process path; [`run`](Self::run) is the CLI path that builds
    /// the transport from flags).
    fn fold_and_publish_on(&self, transport: &dyn Transport) -> Result<(), DriverError> {
        let runner = SweepRunner::with_threads(self.threads);
        let config = self.spec.to_config();
        let links = LinkCache::for_population(config.population());
        let mut partial = FleetAggregator::new(config.horizon(), config.top_k());
        config.fold_range(&runner, &links, &mut partial, self.shard.range());
        let blob = FleetCheckpoint::capture(&config, &partial, self.shard.end).save();
        transport.publish(self.shard.index, &blob)?;
        Ok(())
    }
}

/// The worker command a [`ProcessExecutor`] spawns: a program plus leading
/// arguments (e.g. a `--worker` subcommand for self-re-invoking binaries);
/// the executor appends the standard per-shard and transport flags.
#[derive(Debug, Clone)]
pub struct WorkerCommand {
    program: PathBuf,
    args: Vec<String>,
}

impl WorkerCommand {
    /// A worker launched as `program` (the bench crate's `shard_worker`
    /// binary, typically).
    #[must_use]
    pub fn new(program: impl Into<PathBuf>) -> Self {
        Self {
            program: program.into(),
            args: Vec::new(),
        }
    }

    /// The current executable re-invoked with a leading `--worker` flag —
    /// the self-contained pattern `fleet_driver`, `bench_netsim` and the
    /// `distributed_fleet` example use.
    ///
    /// # Errors
    /// [`std::io::Error`] when the current executable path is unavailable.
    pub fn current_exe_worker() -> std::io::Result<Self> {
        Ok(Self::new(std::env::current_exe()?).arg("--worker"))
    }

    /// Appends a fixed leading argument.
    #[must_use]
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// The program this command spawns.
    #[must_use]
    pub fn program(&self) -> &Path {
        &self.program
    }
}

/// Spawns one OS process per shard attempt via [`std::process::Command`].
///
/// Worker stdout/stderr are captured; a failing worker's trailing stderr is
/// surfaced in the [`DriverError::Worker`] record so the operator sees why.
#[derive(Debug, Clone)]
pub struct ProcessExecutor {
    worker: WorkerCommand,
    inject_kill: Option<usize>,
}

impl ProcessExecutor {
    /// An executor spawning `worker` for every shard attempt.
    #[must_use]
    pub fn new(worker: WorkerCommand) -> Self {
        Self {
            worker,
            inject_kill: None,
        }
    }

    /// Fault injection for recovery demos: the **first** attempt of `shard`
    /// gets `--fail-after-bodies 1`, so its worker dies mid-shard without
    /// publishing and the driver must detect and re-run it.
    #[must_use]
    pub fn with_injected_kill(mut self, shard: usize) -> Self {
        self.inject_kill = Some(shard);
        self
    }
}

impl ShardExecutor for ProcessExecutor {
    fn execute(
        &self,
        spec: &DriverFleetSpec,
        shard: &ShardAssignment,
        attempt: usize,
        transport: &dyn Transport,
    ) -> Result<(), DriverError> {
        let mut command = Command::new(&self.worker.program);
        command
            .args(&self.worker.args)
            .args(spec.worker_args(shard))
            .args(transport.worker_flags());
        if self.inject_kill == Some(shard.index) && attempt == 0 {
            command.args(["--fail-after-bodies", "1"]);
        }
        let output = command.output().map_err(|error| DriverError::Spawn {
            shard: shard.index,
            message: error.to_string(),
        })?;
        if !output.status.success() {
            let stderr = String::from_utf8_lossy(&output.stderr);
            let tail: String = stderr
                .lines()
                .rev()
                .take(3)
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect::<Vec<_>>()
                .join(" | ");
            return Err(DriverError::Worker {
                shard: shard.index,
                code: output.status.code(),
                stderr: tail,
            });
        }
        Ok(())
    }
}

/// What happened to one shard over a driver run.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The shard's position and body range.
    pub shard: ShardAssignment,
    /// A valid blob already existed on the transport before any execution
    /// this run (i.e. the shard was *resumed*, not re-folded).
    pub reused: bool,
    /// Worker executions attempted for this shard this run.
    pub attempts: usize,
    /// Human-readable records of every fault recovered along the way.
    pub recovered: Vec<String>,
}

/// The result of a completed driver run: the merged fleet report, the
/// merged aggregator state, and the per-shard fault/reuse accounting.
#[derive(Debug, Clone)]
pub struct DriverRun {
    report: FleetReport,
    merged_state: FleetCheckpoint,
    fingerprint: String,
    shards: Vec<ShardOutcome>,
}

impl DriverRun {
    /// The merged fleet report — byte-identical to the single-stream fold.
    #[must_use]
    pub fn report(&self) -> &FleetReport {
        &self.report
    }

    /// The merged aggregator state as a checkpoint over the whole fleet —
    /// what the published blobs combine to, ready for byte-identity checks
    /// against [`FleetConfig::run_until`]'s single-stream capture.
    #[must_use]
    pub fn merged_checkpoint(&self) -> &FleetCheckpoint {
        &self.merged_state
    }

    /// The merged aggregator state serialized — equal, byte for byte, to
    /// `spec.to_config().run_until(runner, bodies).save()` of the same
    /// fleet (asserted by `fleet_driver --verify-single-stream`, the
    /// `distributed_fleet` example and `bench_netsim`'s `driver_fleet`
    /// rows).
    #[must_use]
    pub fn state_bytes(&self) -> Vec<u8> {
        self.merged_state.save().to_vec()
    }

    /// The run fingerprint (names the spool subdirectory).
    #[must_use]
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Per-shard outcomes, in shard order.
    #[must_use]
    pub fn shards(&self) -> &[ShardOutcome] {
        &self.shards
    }

    /// Shards whose existing blob was reused (resume, not re-fold).
    #[must_use]
    pub fn reused_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.reused).count()
    }

    /// Total worker executions across all shards this run.
    #[must_use]
    pub fn total_attempts(&self) -> usize {
        self.shards.iter().map(|s| s.attempts).sum()
    }

    /// Total recovered faults (corrupt blobs discarded, failed workers
    /// retried) across all shards this run.
    #[must_use]
    pub fn recovered_faults(&self) -> usize {
        self.shards.iter().map(|s| s.recovered.len()).sum()
    }
}

/// The run fingerprint: a 16-hex-digit FNV-1a 64 digest of the spec and the
/// shard layout.  Runs that differ in *any* input that could change blob
/// contents (bodies, seed, horizon bits, top-K, population, boundaries) get
/// different fingerprints, so spooling them under
/// `<spool_root>/<fingerprint>/` keeps incompatible blobs apart by
/// construction.
#[must_use]
pub fn run_fingerprint(spec: &DriverFleetSpec, interior_boundaries: &[usize]) -> String {
    let mut bytes = Vec::with_capacity(64);
    bytes.extend_from_slice(&(spec.bodies as u64).to_be_bytes());
    bytes.extend_from_slice(&spec.base_seed.to_be_bytes());
    bytes.extend_from_slice(&spec.horizon_bits.to_be_bytes());
    bytes.extend_from_slice(&(spec.top_k as u64).to_be_bytes());
    bytes.extend_from_slice(spec.population.tag().as_bytes());
    bytes.push(0);
    if let Some(mac) = spec.mac {
        bytes.extend_from_slice(mac_tag(mac).as_bytes());
    }
    bytes.push(0);
    if let Some(radio) = spec.radio {
        bytes.extend_from_slice(radio_tag(radio).as_bytes());
    }
    bytes.push(0);
    bytes.extend_from_slice(&spec.traffic_scale_bits.to_be_bytes());
    if let Some(churn) = &spec.churn {
        bytes.extend_from_slice(churn.flag_value().as_bytes());
    }
    bytes.push(0);
    bytes.extend_from_slice(&(interior_boundaries.len() as u64).to_be_bytes());
    for &boundary in interior_boundaries {
        bytes.extend_from_slice(&(boundary as u64).to_be_bytes());
    }
    format!("{:016x}", fnv1a64(&bytes))
}

/// The coordinator: assigns contiguous shards of a [`DriverFleetSpec`],
/// drives them through an executor/transport pair, recovers faults, and
/// merges the blobs into a [`FleetReport`].
#[derive(Debug, Clone)]
pub struct FleetDriver {
    spec: DriverFleetSpec,
    /// Interior shard boundaries (exclusive of 0 and `bodies`), as
    /// [`ShardPlan::from_boundaries`] takes them.
    boundaries: Vec<usize>,
    max_attempts: usize,
}

impl FleetDriver {
    /// Default worker executions per shard before the run gives up.
    pub const DEFAULT_MAX_ATTEMPTS: usize = 3;

    /// A driver splitting the fleet into `shards` near-equal contiguous
    /// ranges ([`ShardPlan::split`] semantics).
    #[must_use]
    pub fn new(spec: DriverFleetSpec, shards: usize) -> Self {
        let plan = ShardPlan::split(spec.to_config(), shards);
        let boundaries = (0..plan.shard_count().saturating_sub(1))
            .map(|shard| plan.range(shard).end)
            .collect();
        Self {
            spec,
            boundaries,
            max_attempts: Self::DEFAULT_MAX_ATTEMPTS,
        }
    }

    /// A driver over explicit interior boundaries (ragged shards fine).
    ///
    /// # Errors
    /// [`super::ShardError`] for unsorted or out-of-range boundaries.
    pub fn with_boundaries(
        spec: DriverFleetSpec,
        boundaries: &[usize],
    ) -> Result<Self, super::ShardError> {
        // Validate through the same path the run will use.
        ShardPlan::from_boundaries(spec.to_config(), boundaries)?;
        Ok(Self {
            spec,
            boundaries: boundaries.to_vec(),
            max_attempts: Self::DEFAULT_MAX_ATTEMPTS,
        })
    }

    /// Sets the per-shard recovery budget (minimum 1).
    #[must_use]
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts.max(1);
        self
    }

    /// The fleet spec this driver coordinates.
    #[must_use]
    pub fn spec(&self) -> &DriverFleetSpec {
        &self.spec
    }

    /// Number of shards in the plan.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The assignment of shard `shard`.
    ///
    /// # Panics
    /// Panics if `shard >= shard_count()`.
    #[must_use]
    pub fn assignment(&self, shard: usize) -> ShardAssignment {
        assert!(shard < self.shard_count(), "shard out of range");
        let start = if shard == 0 {
            0
        } else {
            self.boundaries[shard - 1]
        };
        let end = self
            .boundaries
            .get(shard)
            .copied()
            .unwrap_or(self.spec.bodies);
        ShardAssignment {
            index: shard,
            start,
            end,
        }
    }

    /// This run's fingerprint (see [`run_fingerprint`]).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        run_fingerprint(&self.spec, &self.boundaries)
    }

    /// Opens the conventional spool transport for this run:
    /// `<root>/<fingerprint>/`.
    ///
    /// # Errors
    /// [`std::io::Error`] when the directory cannot be created.
    pub fn spool_in(&self, root: impl AsRef<Path>) -> std::io::Result<SpoolTransport> {
        SpoolTransport::create(root.as_ref().join(self.fingerprint()))
    }

    /// Validates a fetched blob for `shard`: self-validating load, config
    /// fingerprint, and the implied body range against the assignment (so a
    /// blob from an older layout or foreign run is rejected, not merged).
    fn validate_blob(
        &self,
        config: &FleetConfig,
        shard: &ShardAssignment,
        bytes: &[u8],
    ) -> Result<FleetCheckpoint, CheckpointError> {
        let checkpoint = FleetCheckpoint::load(bytes)?;
        checkpoint.verify_config(config)?;
        if checkpoint.next_body() != shard.end
            || checkpoint.bodies_ingested() != shard.end - shard.start
        {
            return Err(CheckpointError::ConfigMismatch(
                "blob's body range does not match the shard assignment",
            ));
        }
        Ok(checkpoint)
    }

    /// Runs the fleet to completion: reuse valid blobs already on the
    /// transport, execute missing shards, validate and re-run on any fault,
    /// merge.  See the module docs for the recovery model.
    ///
    /// Within each recovery round the pending shards execute
    /// **concurrently** (one coordinator thread per shard, so worker
    /// processes actually overlap); validation and merging stay in shard
    /// order, so concurrency is invisible in the result like every other
    /// execution axis.
    ///
    /// # Errors
    /// [`DriverError::Exhausted`] when a shard stays invalid past the
    /// recovery budget; [`DriverError::Transport`] / [`DriverError::Merge`]
    /// for non-recoverable failures.
    pub fn run(
        &self,
        executor: &dyn ShardExecutor,
        transport: &dyn Transport,
    ) -> Result<DriverRun, DriverError> {
        let config = self.spec.to_config();
        let count = self.shard_count();
        let mut blobs: Vec<Option<FleetCheckpoint>> = (0..count).map(|_| None).collect();
        let mut outcomes: Vec<ShardOutcome> = (0..count)
            .map(|shard| ShardOutcome {
                shard: self.assignment(shard),
                reused: false,
                attempts: 0,
                recovered: Vec::new(),
            })
            .collect();
        let mut last_error: Vec<Option<DriverError>> = (0..count).map(|_| None).collect();
        for _ in 0..self.max_attempts {
            // 1. Reuse whatever the transport already holds, if valid.  (No
            //    blob at all needs no record — a prior failed attempt
            //    already recorded why it is missing.)
            for shard in 0..count {
                if blobs[shard].is_some() {
                    continue;
                }
                let assignment = self.assignment(shard);
                if let Some(bytes) = transport.fetch(shard)? {
                    match self.validate_blob(&config, &assignment, &bytes) {
                        Ok(checkpoint) => {
                            if outcomes[shard].attempts == 0 {
                                outcomes[shard].reused = true;
                            }
                            blobs[shard] = Some(checkpoint);
                        }
                        Err(source) => {
                            let fault = DriverError::Blob { shard, source };
                            outcomes[shard].recovered.push(fault.to_string());
                            transport.discard(shard)?;
                            last_error[shard] = Some(fault);
                        }
                    }
                }
            }
            let pending: Vec<usize> = (0..count).filter(|&s| blobs[s].is_none()).collect();
            if pending.is_empty() {
                break;
            }
            // 2. Execute every still-missing shard, concurrently.
            let spec = &self.spec;
            let results: Vec<(usize, Result<(), DriverError>)> = std::thread::scope(|scope| {
                let handles: Vec<_> = pending
                    .iter()
                    .map(|&shard| {
                        let assignment = self.assignment(shard);
                        let attempt = outcomes[shard].attempts;
                        scope.spawn(move || {
                            (
                                shard,
                                executor.execute(spec, &assignment, attempt, transport),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("shard execution thread panicked"))
                    .collect()
            });
            // 3. Validate what the attempts published, in shard order.
            for (shard, result) in results {
                outcomes[shard].attempts += 1;
                let assignment = self.assignment(shard);
                match result {
                    Ok(()) => match transport.fetch(shard)? {
                        Some(bytes) => match self.validate_blob(&config, &assignment, &bytes) {
                            Ok(checkpoint) => {
                                blobs[shard] = Some(checkpoint);
                            }
                            Err(source) => {
                                let fault = DriverError::Blob { shard, source };
                                outcomes[shard].recovered.push(fault.to_string());
                                transport.discard(shard)?;
                                last_error[shard] = Some(fault);
                            }
                        },
                        None => {
                            let fault = DriverError::Missing { shard };
                            outcomes[shard].recovered.push(fault.to_string());
                            last_error[shard] = Some(fault);
                        }
                    },
                    Err(fault) => {
                        outcomes[shard].recovered.push(fault.to_string());
                        last_error[shard] = Some(fault);
                    }
                }
            }
            if blobs.iter().all(Option::is_some) {
                break;
            }
        }
        for shard in 0..count {
            if blobs[shard].is_none() {
                return Err(DriverError::Exhausted {
                    shard,
                    attempts: outcomes[shard].attempts,
                    last: Box::new(
                        last_error[shard]
                            .take()
                            .unwrap_or(DriverError::Missing { shard }),
                    ),
                });
            }
        }
        // Every recovered fault in `outcomes[_].recovered` was followed by a
        // successful re-run; the merge below is over validated blobs only.
        let parts: Vec<FleetCheckpoint> = blobs.into_iter().flatten().collect();
        let plan = ShardPlan::from_boundaries(config.clone(), &self.boundaries)
            .expect("boundaries validated at construction");
        let report = plan
            .merge_checkpoints(parts.iter().cloned())
            .map_err(DriverError::Merge)?;
        // Keep the merged state around so callers can check byte-identity
        // without re-fetching and re-merging the blobs themselves.
        let mut merged = FleetAggregator::new(config.horizon(), config.top_k());
        for part in parts {
            merged.merge(part.into_parts().0);
        }
        let merged_state = FleetCheckpoint::capture(&config, &merged, self.spec.bodies);
        Ok(DriverRun {
            report,
            merged_state,
            fingerprint: self.fingerprint(),
            shards: outcomes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_args_round_trip_through_the_parser() {
        let spec = DriverFleetSpec::new(100)
            .with_base_seed(42)
            .with_horizon(hidwa_units::TimeSpan::from_seconds(1.25))
            .with_top_k(3)
            .with_population(PopulationSpec::Mixed);
        let shard = ShardAssignment {
            index: 2,
            start: 50,
            end: 75,
        };
        let mut args = spec.worker_args(&shard);
        args.extend(["--spool".to_string(), "/tmp/somewhere".to_string()]);
        let request = WorkerRequest::parse(args).expect("canonical args parse");
        assert_eq!(request.spec, spec);
        assert_eq!(request.shard, shard);
        assert_eq!(
            request.transport,
            WorkerTransport::Spool(PathBuf::from("/tmp/somewhere"))
        );
        assert_eq!(request.threads, 1);
        assert_eq!(request.fail_after, None);
    }

    #[test]
    fn parser_rejects_malformed_invocations() {
        let usage = |args: &[&str]| {
            let parsed = WorkerRequest::parse(args.iter().map(ToString::to_string));
            assert!(
                matches!(parsed, Err(DriverError::Usage(_))),
                "expected usage error for {args:?}, got {parsed:?}"
            );
        };
        usage(&[]); // --bodies missing
        usage(&["--bodies", "10"]); // shard flags missing
        usage(&[
            "--bodies",
            "10",
            "--shard-index",
            "0",
            "--shard-start",
            "0",
            "--shard-end",
            "5",
        ]); // transport missing
        usage(&[
            "--bodies",
            "10",
            "--shard-index",
            "0",
            "--shard-start",
            "6",
            "--shard-end",
            "5",
            "--spool",
            "/tmp/x",
        ]); // inverted range
        usage(&[
            "--bodies",
            "10",
            "--shard-index",
            "0",
            "--shard-start",
            "0",
            "--shard-end",
            "11",
            "--spool",
            "/tmp/x",
        ]); // range past the fleet
        usage(&["--frobnicate"]); // unknown flag
        usage(&["--bodies", "ten"]); // unparsable value
        usage(&[
            "--bodies",
            "10",
            "--shard-index",
            "0",
            "--shard-start",
            "0",
            "--shard-end",
            "5",
            "--spool",
            "/tmp/x",
            "--connect",
            "127.0.0.1:1",
        ]); // both transports
    }

    #[test]
    fn churn_flag_round_trips_through_the_parser() {
        use super::super::placement::PolicyKind;
        use crate::population::ChurnModel;
        let spec = DriverFleetSpec::new(40)
            .with_population(PopulationSpec::Mixed)
            .with_churn(
                ChurnSpec::new(
                    ChurnModel::with_rate(0.42).with_epochs(5),
                    PolicyKind::Hysteresis,
                )
                .with_hysteresis_threshold(0.2),
            );
        let shard = ShardAssignment {
            index: 0,
            start: 0,
            end: 40,
        };
        let mut args = spec.worker_args(&shard);
        args.extend(["--spool".to_string(), "/tmp/somewhere".to_string()]);
        let request = WorkerRequest::parse(args).expect("churn args parse");
        assert_eq!(request.spec, spec);
        assert_eq!(
            request.spec.churn().unwrap().fingerprint(),
            spec.churn().unwrap().fingerprint()
        );
        // A malformed churn value is a usage error, not a panic.
        let bad = WorkerRequest::parse(
            ["--bodies", "4", "--churn", "garbage"]
                .iter()
                .map(ToString::to_string),
        );
        assert!(matches!(bad, Err(DriverError::Usage(_))));
    }

    #[test]
    fn grid_overrides_round_trip_through_the_parser() {
        let spec = DriverFleetSpec::new(24)
            .with_mac(MacPolicy::Tdma)
            .with_radio(RadioTechnology::Ble)
            .with_traffic_scale(1.75);
        let shard = ShardAssignment {
            index: 0,
            start: 0,
            end: 24,
        };
        let mut args = spec.worker_args(&shard);
        args.extend(["--spool".to_string(), "/tmp/somewhere".to_string()]);
        let request = WorkerRequest::parse(args).expect("override args parse");
        assert_eq!(request.spec, spec);
        assert_eq!(request.spec.mac(), Some(MacPolicy::Tdma));
        assert_eq!(request.spec.radio(), Some(RadioTechnology::Ble));
        assert_eq!(request.spec.traffic_scale(), 1.75);
        // The convenience flag lands on the identical bit pattern.
        let convenient = WorkerRequest::parse(
            [
                "--bodies",
                "24",
                "--traffic-scale",
                "1.75",
                "--shard-index",
                "0",
                "--shard-start",
                "0",
                "--shard-end",
                "24",
                "--spool",
                "/tmp/x",
            ]
            .iter()
            .map(ToString::to_string),
        )
        .expect("convenience flag parses");
        assert_eq!(
            convenient.spec.traffic_scale_bits(),
            spec.traffic_scale_bits()
        );
        // Malformed values are usage errors, never panics.
        let nan_bits = f64::NAN.to_bits().to_string();
        for bad in [
            vec!["--bodies", "4", "--mac", "csma"],
            vec!["--bodies", "4", "--radio", "zigbee"],
            vec!["--bodies", "4", "--traffic-scale", "0"],
            vec!["--bodies", "4", "--traffic-scale", "inf"],
            vec!["--bodies", "4", "--traffic-scale-bits", nan_bits.as_str()],
        ] {
            let parsed = WorkerRequest::parse(bad.iter().map(ToString::to_string));
            assert!(
                matches!(parsed, Err(DriverError::Usage(_))),
                "expected usage error for {bad:?}, got {parsed:?}"
            );
        }
    }

    #[test]
    fn fingerprints_separate_incompatible_runs() {
        let spec = DriverFleetSpec::new(64);
        let base = run_fingerprint(&spec, &[32]);
        assert_eq!(base.len(), 16);
        assert_ne!(base, run_fingerprint(&spec, &[31]));
        assert_ne!(
            base,
            run_fingerprint(&spec.clone().with_base_seed(1), &[32])
        );
        assert_ne!(base, run_fingerprint(&spec.clone().with_top_k(2), &[32]));
        assert_ne!(
            base,
            run_fingerprint(&spec.clone().with_population(PopulationSpec::Mixed), &[32])
        );
        assert_ne!(base, run_fingerprint(&DriverFleetSpec::new(65), &[32]));
        // Grid overrides each move the fingerprint.
        assert_ne!(
            base,
            run_fingerprint(&spec.clone().with_mac(MacPolicy::Tdma), &[32])
        );
        assert_ne!(
            base,
            run_fingerprint(&spec.clone().with_radio(RadioTechnology::WiFi), &[32])
        );
        assert_ne!(
            base,
            run_fingerprint(&spec.clone().with_traffic_scale(2.0), &[32])
        );
        // Churned and churn-free runs of the same fleet never share a spool.
        let churned = spec.clone().with_churn(ChurnSpec::new(
            crate::population::ChurnModel::with_rate(0.3),
            super::super::placement::PolicyKind::StaticAtAdmission,
        ));
        assert_ne!(base, run_fingerprint(&churned, &[32]));
        // Same inputs, same fingerprint — resumability depends on it.
        assert_eq!(base, run_fingerprint(&DriverFleetSpec::new(64), &[32]));
    }

    #[test]
    fn driver_assignments_tile_the_fleet() {
        let spec = DriverFleetSpec::new(10);
        let driver = FleetDriver::new(spec.clone(), 3);
        assert_eq!(driver.shard_count(), 3);
        let mut cursor = 0;
        for shard in 0..driver.shard_count() {
            let assignment = driver.assignment(shard);
            assert_eq!(assignment.start, cursor);
            cursor = assignment.end;
        }
        assert_eq!(cursor, 10);
        // Ragged with empty shards is accepted, bad boundaries are not.
        assert!(FleetDriver::with_boundaries(spec.clone(), &[0, 4, 4, 10]).is_ok());
        assert!(FleetDriver::with_boundaries(spec.clone(), &[7, 3]).is_err());
        assert!(FleetDriver::with_boundaries(spec, &[11]).is_err());
    }
}
