//! Fleet-scale configuration search: a resumable experimentation harness
//! over exact fleet folds.
//!
//! PR 4–9 made a fleet fold an *exact, mergeable, checkpointable* value.
//! This module closes the loop (ROADMAP direction 4) and treats each fold
//! as one evaluation of an objective: an [`ObjectiveSpace`] describes a
//! discrete grid over (MAC policy × partition objective × radio class ×
//! traffic scaling × churn policy), an [`Evaluation`] folds one grid point
//! through the existing [`FleetConfig`](crate::fleet::FleetConfig) /
//! [`fleet::driver`](crate::fleet::driver) path and extracts a
//! scalar-vector [`EvaluationOutcome`] (fleet energy, worst-body p95,
//! migration rate), and a [`SearchDriver`] runs an exhaustive-grid or
//! coordinate-descent [`SearchStrategy`] over the
//! [`SweepRunner`].
//!
//! # Determinism and resumability
//!
//! Every evaluation routes through [`FleetDriver`], so a single grid point
//! is already byte-identical across thread widths, shard layouts and
//! process boundaries, and its fleet blobs spool under
//! `<root>/<run_fingerprint>/`.  The search layer adds one more file to
//! that spool root — `search.ckpt`, a versioned, FNV-sealed index of
//! completed evaluations and their fleet-state fingerprints — so a search
//! killed mid-grid resumes by replaying cache hits instead of re-folding
//! fleets, and a coordinate descent that revisits a grid point hits the
//! completed-evaluation index rather than evaluating twice.
//!
//! # Search-checkpoint wire format (`HIDWASRC`, version 1)
//!
//! All integers big-endian; every `f64` crosses as raw IEEE-754 bits.
//!
//! | offset    | size  | field                                             |
//! |-----------|-------|---------------------------------------------------|
//! | 0         | 8     | magic `"HIDWASRC"`                                |
//! | 8         | 2     | format version (`u16`, = 1)                       |
//! | 10        | 8     | search-spec fingerprint (`u64`)                   |
//! | 18        | 8     | grid length (`u64`)                               |
//! | 26        | 8     | completed-evaluation count `n` (`u64`)            |
//! | 34        | 40·n  | records, strictly ascending by grid point         |
//! | 34 + 40·n | 8     | FNV-1a 64 seal over all preceding bytes           |
//!
//! Each 40-byte record is `point u64`, `fleet energy J f64-bits`,
//! `worst-body p95 s f64-bits`, `migration rate f64-bits`,
//! `fleet-state FNV-1a 64` (the digest of the evaluation's merged
//! [`FleetCheckpoint`](crate::fleet::FleetCheckpoint) blob).  The spec
//! fingerprint covers the base fleet spec *and* every grid axis — but not
//! the shard count or thread width, which are execution knobs — so resuming
//! under a different grid or fleet is refused with
//! [`SearchCheckpointError::SpecMismatch`], while resuming under a
//! different parallelism layout replays exactly.
//!
//! [`FleetDriver`]: crate::fleet::driver::FleetDriver

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::{Path, PathBuf};

use hidwa_netsim::mac::MacPolicy;
use hidwa_phy::RadioTechnology;

use crate::fleet::checkpoint::fnv1a64;
use crate::fleet::driver::{
    mac_tag, radio_tag, run_fingerprint, DriverError, DriverFleetSpec, FleetDriver, ShardExecutor,
};
use crate::fleet::placement::{objective_tag, ChurnSpec, PolicyKind};
use crate::fleet::FleetReport;
use crate::partition::Objective;
use crate::sweep::SweepRunner;

/// File name of the search checkpoint inside the spool root.
pub const CHECKPOINT_FILE: &str = "search.ckpt";

const MAGIC: &[u8; 8] = b"HIDWASRC";
const VERSION: u16 = 1;
/// Magic + version + spec fingerprint + grid length + count.
const HEADER: usize = 8 + 2 + 8 + 8 + 8;
/// Point + three f64-bit metrics + fleet-state fingerprint.
const RECORD: usize = 5 * 8;
/// Smallest well-formed blob: an empty index plus the seal.
const ENVELOPE: usize = HEADER + 8;

/// The discrete grid the search walks: one axis per fleet-level knob, the
/// grid being their cartesian product.  Axis values are deduplicated and
/// every axis always holds at least one value, so [`len`](Self::len) is
/// never zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectiveSpace {
    mac: Vec<MacPolicy>,
    objective: Vec<Objective>,
    radio: Vec<RadioTechnology>,
    traffic_scale_bits: Vec<u64>,
    churn_policy: Vec<PolicyKind>,
}

impl ObjectiveSpace {
    /// The single-point space: polling MAC, leaf-energy objective, Wi-R,
    /// unit traffic, static-at-admission placement.
    #[must_use]
    pub fn new() -> Self {
        Self {
            mac: vec![MacPolicy::Polling],
            objective: vec![Objective::LeafEnergy],
            radio: vec![RadioTechnology::WiR],
            traffic_scale_bits: vec![1.0f64.to_bits()],
            churn_policy: vec![PolicyKind::StaticAtAdmission],
        }
    }

    /// The 32-point grid the `fleet_search` bench walks: both MAC policies,
    /// the energy and energy-delay objectives, Wi-R vs BLE, 1× vs 2×
    /// offered load, static vs hysteresis placement.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new()
            .with_mac_axis(&[MacPolicy::Polling, MacPolicy::Tdma])
            .with_objective_axis(&[Objective::LeafEnergy, Objective::EnergyDelayProduct])
            .with_radio_axis(&[RadioTechnology::WiR, RadioTechnology::Ble])
            .with_traffic_scale_axis(&[1.0, 2.0])
            .with_churn_policy_axis(&[PolicyKind::StaticAtAdmission, PolicyKind::Hysteresis])
    }

    /// Replaces the MAC-policy axis.  Duplicates are dropped (first
    /// occurrence wins); an empty slice leaves the axis unchanged.
    #[must_use]
    pub fn with_mac_axis(mut self, values: &[MacPolicy]) -> Self {
        if let Some(axis) = dedup_axis(values) {
            self.mac = axis;
        }
        self
    }

    /// Replaces the partition-objective axis (same slice rules as
    /// [`with_mac_axis`](Self::with_mac_axis)).  The axis only reaches the
    /// fold through the churn re-optimiser, so on a churn-free base spec it
    /// is inert: its points evaluate to identical fleets.
    #[must_use]
    pub fn with_objective_axis(mut self, values: &[Objective]) -> Self {
        if let Some(axis) = dedup_axis(values) {
            self.objective = axis;
        }
        self
    }

    /// Replaces the radio-technology axis (same slice rules as
    /// [`with_mac_axis`](Self::with_mac_axis)).
    #[must_use]
    pub fn with_radio_axis(mut self, values: &[RadioTechnology]) -> Self {
        if let Some(axis) = dedup_axis(values) {
            self.radio = axis;
        }
        self
    }

    /// Replaces the traffic-scaling axis.  Factors that are not finite and
    /// positive are dropped; duplicates (by bit pattern) are dropped; if
    /// nothing survives the axis is unchanged.
    #[must_use]
    pub fn with_traffic_scale_axis(mut self, factors: &[f64]) -> Self {
        let bits: Vec<u64> = factors
            .iter()
            .filter(|f| f.is_finite() && **f > 0.0)
            .map(|f| f.to_bits())
            .collect();
        if let Some(axis) = dedup_axis(&bits) {
            self.traffic_scale_bits = axis;
        }
        self
    }

    /// Replaces the churn-policy axis (same slice rules as
    /// [`with_mac_axis`](Self::with_mac_axis)).  Like the objective axis it
    /// is inert on a churn-free base spec.
    #[must_use]
    pub fn with_churn_policy_axis(mut self, values: &[PolicyKind]) -> Self {
        if let Some(axis) = dedup_axis(values) {
            self.churn_policy = axis;
        }
        self
    }

    /// Number of grid points (product of the axis lengths, never zero).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.dims().iter().map(|&d| d as u64).product()
    }

    /// Whether the space is empty — by construction it never is; provided
    /// because clippy insists every `len` has an `is_empty`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Axis lengths in decode order (MAC outermost, churn policy
    /// innermost).
    #[must_use]
    pub fn dims(&self) -> [usize; 5] {
        [
            self.mac.len(),
            self.objective.len(),
            self.radio.len(),
            self.traffic_scale_bits.len(),
            self.churn_policy.len(),
        ]
    }

    /// The grid point at `index` (mixed-radix decode; MAC is the outermost
    /// digit, churn policy the innermost).
    ///
    /// # Panics
    /// If `index >= self.len()`.
    #[must_use]
    pub fn point(&self, index: u64) -> GridPoint {
        assert!(index < self.len(), "grid index {index} out of range");
        let dims = self.dims();
        let mut rest = index;
        let mut coords = [0usize; 5];
        for axis in (0..5).rev() {
            let radix = dims[axis] as u64;
            coords[axis] = (rest % radix) as usize;
            rest /= radix;
        }
        GridPoint {
            index,
            mac: self.mac[coords[0]],
            objective: self.objective[coords[1]],
            radio: self.radio[coords[2]],
            traffic_scale_bits: self.traffic_scale_bits[coords[3]],
            churn_policy: self.churn_policy[coords[4]],
        }
    }

    /// The grid index of an axis-coordinate tuple (inverse of the decode in
    /// [`point`](Self::point)).
    ///
    /// # Panics
    /// If any coordinate is outside its axis.
    #[must_use]
    pub fn index_of(&self, coords: [usize; 5]) -> u64 {
        let dims = self.dims();
        let mut index = 0u64;
        for axis in 0..5 {
            assert!(
                coords[axis] < dims[axis],
                "coordinate {} out of range on axis {axis}",
                coords[axis]
            );
            index = index * dims[axis] as u64 + coords[axis] as u64;
        }
        index
    }

    /// The axis coordinates of grid point `index`.
    ///
    /// # Panics
    /// If `index >= self.len()`.
    #[must_use]
    pub fn coords(&self, index: u64) -> [usize; 5] {
        assert!(index < self.len(), "grid index {index} out of range");
        let dims = self.dims();
        let mut rest = index;
        let mut coords = [0usize; 5];
        for axis in (0..5).rev() {
            let radix = dims[axis] as u64;
            coords[axis] = (rest % radix) as usize;
            rest /= radix;
        }
        coords
    }

    /// Canonical byte encoding of the axes, fed into the search-spec
    /// fingerprint.
    fn encode_axes(&self, bytes: &mut Vec<u8>) {
        bytes.extend_from_slice(&(self.mac.len() as u64).to_be_bytes());
        for &mac in &self.mac {
            bytes.extend_from_slice(mac_tag(mac).as_bytes());
            bytes.push(0);
        }
        bytes.extend_from_slice(&(self.objective.len() as u64).to_be_bytes());
        for &objective in &self.objective {
            bytes.extend_from_slice(objective_tag(objective).as_bytes());
            bytes.push(0);
        }
        bytes.extend_from_slice(&(self.radio.len() as u64).to_be_bytes());
        for &radio in &self.radio {
            bytes.extend_from_slice(radio_tag(radio).as_bytes());
            bytes.push(0);
        }
        bytes.extend_from_slice(&(self.traffic_scale_bits.len() as u64).to_be_bytes());
        for &bits in &self.traffic_scale_bits {
            bytes.extend_from_slice(&bits.to_be_bytes());
        }
        bytes.extend_from_slice(&(self.churn_policy.len() as u64).to_be_bytes());
        for &policy in &self.churn_policy {
            bytes.extend_from_slice(policy.tag().as_bytes());
            bytes.push(0);
        }
    }
}

impl Default for ObjectiveSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// Deduplicated copy of an axis slice, or `None` when nothing survives.
fn dedup_axis<T: PartialEq + Copy>(values: &[T]) -> Option<Vec<T>> {
    let mut axis: Vec<T> = Vec::with_capacity(values.len());
    for &value in values {
        if !axis.contains(&value) {
            axis.push(value);
        }
    }
    if axis.is_empty() {
        None
    } else {
        Some(axis)
    }
}

/// One point of an [`ObjectiveSpace`]: its grid index plus the concrete
/// value on every axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// Position in the grid's mixed-radix enumeration.
    pub index: u64,
    /// Medium-access policy for every body in the fleet.
    pub mac: MacPolicy,
    /// Partition objective the churn re-optimiser minimises.
    pub objective: Objective,
    /// Leaf radio technology for every body.
    pub radio: RadioTechnology,
    /// Traffic scaling factor as raw `f64` bits (offered-load multiplier).
    pub traffic_scale_bits: u64,
    /// Placement policy under churn.
    pub churn_policy: PolicyKind,
}

impl GridPoint {
    /// The traffic scaling factor as a float.
    #[must_use]
    pub fn traffic_scale(&self) -> f64 {
        f64::from_bits(self.traffic_scale_bits)
    }

    /// A compact human-readable label (`mac/objective/radio/scale/policy`).
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "{}/{}/{}/{}x/{}",
            mac_tag(self.mac),
            objective_tag(self.objective),
            radio_tag(self.radio),
            self.traffic_scale(),
            self.churn_policy.tag()
        )
    }
}

/// A search problem: the base fleet every grid point perturbs, the grid
/// itself, and the shard count each evaluation's [`FleetDriver`] uses.
///
/// The base spec's own MAC/radio/traffic-scale overrides are *replaced* by
/// the grid point's values; its churn spec (if any) is the template whose
/// policy and objective the grid perturbs.  A churn-free base makes the
/// policy and objective axes inert (documented on the axis builders).
#[derive(Debug, Clone)]
pub struct SearchSpec {
    base: DriverFleetSpec,
    space: ObjectiveSpace,
    shards: usize,
}

impl SearchSpec {
    /// A search over `space` rooted at `base`, one shard per evaluation.
    #[must_use]
    pub fn new(base: DriverFleetSpec, space: ObjectiveSpace) -> Self {
        Self {
            base,
            space,
            shards: 1,
        }
    }

    /// Sets the shard count each evaluation's fleet driver splits into
    /// (clamped to at least 1).  An execution knob: not part of the search
    /// fingerprint, invisible in every outcome.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The base fleet spec.
    #[must_use]
    pub fn base(&self) -> &DriverFleetSpec {
        &self.base
    }

    /// The grid.
    #[must_use]
    pub fn space(&self) -> &ObjectiveSpace {
        &self.space
    }

    /// Shard count per evaluation.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Materializes grid point `index` as a runnable [`Evaluation`].
    ///
    /// # Panics
    /// If `index >= self.space().len()`.
    #[must_use]
    pub fn evaluation(&self, index: u64) -> Evaluation {
        let point = self.space.point(index);
        let mut spec = self
            .base
            .clone()
            .with_mac(point.mac)
            .with_radio(point.radio)
            .with_traffic_scale(point.traffic_scale());
        if let Some(template) = self.base.churn() {
            let churn = ChurnSpec::new(template.churn().clone(), point.churn_policy)
                .with_objective(point.objective)
                .with_hysteresis_threshold(template.hysteresis_threshold())
                .with_migration_cost(template.migration_cost());
            spec = spec.with_churn(churn);
        }
        Evaluation { point, spec }
    }

    /// FNV-1a 64 fingerprint of the search identity: the base fleet spec
    /// (via [`run_fingerprint`] with no boundaries) plus every grid axis.
    /// Shard counts and thread widths are excluded — they are execution
    /// knobs, and a checkpoint must resume across them.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = Vec::with_capacity(128);
        bytes.extend_from_slice(run_fingerprint(&self.base, &[]).as_bytes());
        bytes.push(0);
        self.space.encode_axes(&mut bytes);
        fnv1a64(&bytes)
    }
}

/// One grid point bound to the concrete [`DriverFleetSpec`] it folds.
#[derive(Debug, Clone)]
pub struct Evaluation {
    point: GridPoint,
    spec: DriverFleetSpec,
}

impl Evaluation {
    /// The grid point this evaluation realises.
    #[must_use]
    pub fn point(&self) -> GridPoint {
        self.point
    }

    /// The concrete fleet spec (base spec with the point's overrides
    /// applied).
    #[must_use]
    pub fn spec(&self) -> &DriverFleetSpec {
        &self.spec
    }

    /// Folds the fleet in-process on `runner` — the single-stream reference
    /// path the identity tests compare the driver path against.
    #[must_use]
    pub fn run(&self, runner: &SweepRunner) -> EvaluationOutcome {
        let config = self.spec.to_config();
        let checkpoint = config.run_until(runner, config.bodies());
        let state_fp = fnv1a64(&checkpoint.save());
        let (aggregator, _) = checkpoint.into_parts();
        EvaluationOutcome::from_report(self.point.index, &aggregator.finish(), state_fp)
    }

    /// Folds the fleet through a [`FleetDriver`] split into `shards`,
    /// spooling blobs under `<spool_root>/<run_fingerprint>/` — the path
    /// every [`SearchDriver`] evaluation takes, so a search inherits the
    /// driver's fault recovery and blob reuse.
    ///
    /// # Errors
    /// [`SearchError::Spool`] when the spool directory cannot be created;
    /// [`SearchError::Driver`] when the fleet driver exhausts its recovery
    /// budget or hits a non-recoverable fault.
    pub fn run_with_driver(
        &self,
        shards: usize,
        executor: &dyn ShardExecutor,
        spool_root: &Path,
    ) -> Result<EvaluationOutcome, SearchError> {
        let driver = FleetDriver::new(self.spec.clone(), shards);
        let transport = driver.spool_in(spool_root)?;
        let run = driver.run(executor, &transport)?;
        let state_fp = fnv1a64(&run.state_bytes());
        Ok(EvaluationOutcome::from_report(
            self.point.index,
            run.report(),
            state_fp,
        ))
    }
}

/// The scalar-vector outcome of one evaluation, with every float held as
/// raw bits so outcomes compare, order and serialize bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvaluationOutcome {
    point: u64,
    energy_j_bits: u64,
    worst_p95_s_bits: u64,
    migration_rate_bits: u64,
    state_fp: u64,
}

impl EvaluationOutcome {
    /// Extracts the outcome vector from a finished fleet report.
    #[must_use]
    pub fn from_report(point: u64, report: &FleetReport, state_fp: u64) -> Self {
        Self {
            point,
            energy_j_bits: report.total_energy().as_joules().to_bits(),
            worst_p95_s_bits: report.body_worst_p95_quantile(1.0).as_seconds().to_bits(),
            migration_rate_bits: report.migration_rate().to_bits(),
            state_fp,
        }
    }

    /// Grid index of the evaluated point.
    #[must_use]
    pub fn point(&self) -> u64 {
        self.point
    }

    /// Total fleet energy over the horizon, joules.
    #[must_use]
    pub fn energy_j(&self) -> f64 {
        f64::from_bits(self.energy_j_bits)
    }

    /// The worst body's p95 delivery latency, seconds.
    #[must_use]
    pub fn worst_p95_s(&self) -> f64 {
        f64::from_bits(self.worst_p95_s_bits)
    }

    /// Fleet-wide migrations per optimiser re-run.
    #[must_use]
    pub fn migration_rate(&self) -> f64 {
        f64::from_bits(self.migration_rate_bits)
    }

    /// FNV-1a 64 digest of the evaluation's merged fleet-checkpoint blob —
    /// the byte-identity witness the determinism tests compare across
    /// widths, shards and processes.
    #[must_use]
    pub fn state_fp(&self) -> u64 {
        self.state_fp
    }

    /// Pareto dominance on (energy, worst-body p95): no worse on both axes
    /// and strictly better on at least one.
    #[must_use]
    pub fn dominates(&self, other: &Self) -> bool {
        let e = (self.energy_j(), other.energy_j());
        let p = (self.worst_p95_s(), other.worst_p95_s());
        e.0 <= e.1 && p.0 <= p.1 && (e.0 < e.1 || p.0 < p.1)
    }
}

/// Total order coordinate descent uses to pick the best point along an
/// axis: scalarised energy·(p95 + ε), ties broken by energy, then p95,
/// then grid index — all via `total_cmp`, so the order is deterministic
/// for every float pattern.
fn descent_cmp(a: &EvaluationOutcome, b: &EvaluationOutcome) -> std::cmp::Ordering {
    let scalar = |o: &EvaluationOutcome| o.energy_j() * (o.worst_p95_s() + 1e-9);
    scalar(a)
        .total_cmp(&scalar(b))
        .then(a.energy_j().total_cmp(&b.energy_j()))
        .then(a.worst_p95_s().total_cmp(&b.worst_p95_s()))
        .then(a.point.cmp(&b.point))
}

/// The ranked Pareto frontier of `outcomes` on (energy, worst-body p95):
/// non-dominated points, sorted by energy ascending, ties by p95 then grid
/// index.
#[must_use]
pub fn pareto_frontier(outcomes: &[EvaluationOutcome]) -> Vec<EvaluationOutcome> {
    let mut frontier: Vec<EvaluationOutcome> = outcomes
        .iter()
        .filter(|candidate| !outcomes.iter().any(|other| other.dominates(candidate)))
        .copied()
        .collect();
    frontier.sort_by(|a, b| {
        a.energy_j()
            .total_cmp(&b.energy_j())
            .then(a.worst_p95_s().total_cmp(&b.worst_p95_s()))
            .then(a.point.cmp(&b.point))
    });
    frontier
}

/// Typed failures of the search-checkpoint codec, mirroring
/// [`CheckpointError`](crate::fleet::CheckpointError) for the fleet format:
/// corruption decodes to an error, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchCheckpointError {
    /// The blob ends before the envelope or a declared record.
    Truncated,
    /// The first eight bytes are not `"HIDWASRC"`.
    BadMagic,
    /// Written by a different format revision.
    UnsupportedVersion(u16),
    /// The seal or a structural invariant failed.
    Corrupt(&'static str),
    /// The checkpoint belongs to a different search (base fleet or grid).
    SpecMismatch(&'static str),
}

impl fmt::Display for SearchCheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "search checkpoint truncated"),
            Self::BadMagic => write!(f, "not a search checkpoint (bad magic)"),
            Self::UnsupportedVersion(version) => {
                write!(f, "unsupported search checkpoint version {version}")
            }
            Self::Corrupt(reason) => write!(f, "corrupt search checkpoint: {reason}"),
            Self::SpecMismatch(reason) => {
                write!(f, "checkpoint from a different search: {reason}")
            }
        }
    }
}

impl std::error::Error for SearchCheckpointError {}

/// The versioned, FNV-sealed index of completed evaluations — the search
/// layer's unit of resumability (see the module docs for the wire format).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchCheckpoint {
    spec_fp: u64,
    grid_len: u64,
    completed: BTreeMap<u64, EvaluationOutcome>,
}

impl SearchCheckpoint {
    /// An empty index bound to `spec`'s fingerprint and grid length.
    #[must_use]
    pub fn new(spec: &SearchSpec) -> Self {
        Self {
            spec_fp: spec.fingerprint(),
            grid_len: spec.space().len(),
            completed: BTreeMap::new(),
        }
    }

    /// The search-spec fingerprint this index was captured under.
    #[must_use]
    pub fn spec_fp(&self) -> u64 {
        self.spec_fp
    }

    /// The grid length this index was captured under.
    #[must_use]
    pub fn grid_len(&self) -> u64 {
        self.grid_len
    }

    /// Number of completed evaluations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.completed.len()
    }

    /// Whether no evaluation has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.completed.is_empty()
    }

    /// The completed outcome at grid `point`, if any.
    #[must_use]
    pub fn get(&self, point: u64) -> Option<&EvaluationOutcome> {
        self.completed.get(&point)
    }

    /// All completed evaluations, keyed and ordered by grid point.
    #[must_use]
    pub fn completed(&self) -> &BTreeMap<u64, EvaluationOutcome> {
        &self.completed
    }

    /// Records a completed evaluation (idempotent for identical outcomes).
    ///
    /// # Panics
    /// If the outcome's point lies outside the grid.
    pub fn record(&mut self, outcome: EvaluationOutcome) {
        assert!(
            outcome.point < self.grid_len,
            "outcome for point {} outside the {}-point grid",
            outcome.point,
            self.grid_len
        );
        self.completed.insert(outcome.point, outcome);
    }

    /// Refuses a checkpoint captured under a different search identity.
    ///
    /// # Errors
    /// [`SearchCheckpointError::SpecMismatch`] naming the differing field.
    pub fn verify_spec(&self, spec: &SearchSpec) -> Result<(), SearchCheckpointError> {
        if self.grid_len != spec.space().len() {
            return Err(SearchCheckpointError::SpecMismatch("grid length differs"));
        }
        if self.spec_fp != spec.fingerprint() {
            return Err(SearchCheckpointError::SpecMismatch(
                "base fleet or grid axes differ",
            ));
        }
        Ok(())
    }

    /// Serializes the index into a self-validating blob (module docs hold
    /// the layout).
    #[must_use]
    pub fn save(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ENVELOPE + self.completed.len() * RECORD);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_be_bytes());
        out.extend_from_slice(&self.spec_fp.to_be_bytes());
        out.extend_from_slice(&self.grid_len.to_be_bytes());
        out.extend_from_slice(&(self.completed.len() as u64).to_be_bytes());
        for outcome in self.completed.values() {
            out.extend_from_slice(&outcome.point.to_be_bytes());
            out.extend_from_slice(&outcome.energy_j_bits.to_be_bytes());
            out.extend_from_slice(&outcome.worst_p95_s_bits.to_be_bytes());
            out.extend_from_slice(&outcome.migration_rate_bits.to_be_bytes());
            out.extend_from_slice(&outcome.state_fp.to_be_bytes());
        }
        let seal = fnv1a64(&out);
        out.extend_from_slice(&seal.to_be_bytes());
        out
    }

    /// Decodes and validates a blob previously written by
    /// [`save`](Self::save).
    ///
    /// # Errors
    /// * [`SearchCheckpointError::Truncated`] — the blob ends early,
    /// * [`SearchCheckpointError::BadMagic`] — not a search checkpoint,
    /// * [`SearchCheckpointError::UnsupportedVersion`] — a different
    ///   format revision,
    /// * [`SearchCheckpointError::Corrupt`] — seal mismatch, trailing
    ///   bytes, or any violated index invariant (records out of order,
    ///   points outside the grid, non-finite metrics).
    pub fn load(raw: &[u8]) -> Result<Self, SearchCheckpointError> {
        if raw.len() < MAGIC.len() + 2 {
            return Err(SearchCheckpointError::Truncated);
        }
        if &raw[..MAGIC.len()] != MAGIC {
            return Err(SearchCheckpointError::BadMagic);
        }
        let version = u16::from_be_bytes([raw[MAGIC.len()], raw[MAGIC.len() + 1]]);
        if version != VERSION {
            return Err(SearchCheckpointError::UnsupportedVersion(version));
        }
        if raw.len() < ENVELOPE {
            return Err(SearchCheckpointError::Truncated);
        }
        let (body, tail) = raw.split_at(raw.len() - 8);
        let stored = u64::from_be_bytes(tail.try_into().expect("8-byte tail"));
        if fnv1a64(body) != stored {
            return Err(SearchCheckpointError::Corrupt("seal mismatch"));
        }
        let take_u64 = |offset: usize| -> u64 {
            u64::from_be_bytes(body[offset..offset + 8].try_into().expect("8-byte field"))
        };
        let spec_fp = take_u64(MAGIC.len() + 2);
        let grid_len = take_u64(MAGIC.len() + 10);
        let count = take_u64(MAGIC.len() + 18);
        if count > grid_len {
            return Err(SearchCheckpointError::Corrupt(
                "more evaluations than grid points",
            ));
        }
        let records = usize::try_from(count)
            .ok()
            .and_then(|count| count.checked_mul(RECORD))
            .ok_or(SearchCheckpointError::Corrupt("record count overflows"))?;
        match (body.len() - HEADER).cmp(&records) {
            std::cmp::Ordering::Less => return Err(SearchCheckpointError::Truncated),
            std::cmp::Ordering::Greater => {
                return Err(SearchCheckpointError::Corrupt("trailing bytes after index"));
            }
            std::cmp::Ordering::Equal => {}
        }
        let mut completed = BTreeMap::new();
        let mut previous: Option<u64> = None;
        for record in 0..records / RECORD {
            let base = HEADER + record * RECORD;
            let point = take_u64(base);
            if point >= grid_len {
                return Err(SearchCheckpointError::Corrupt("point outside the grid"));
            }
            if previous.is_some_and(|previous| point <= previous) {
                return Err(SearchCheckpointError::Corrupt("records out of order"));
            }
            previous = Some(point);
            let outcome = EvaluationOutcome {
                point,
                energy_j_bits: take_u64(base + 8),
                worst_p95_s_bits: take_u64(base + 16),
                migration_rate_bits: take_u64(base + 24),
                state_fp: take_u64(base + 32),
            };
            for (value, reason) in [
                (outcome.energy_j(), "energy not finite and non-negative"),
                (outcome.worst_p95_s(), "p95 not finite and non-negative"),
                (
                    outcome.migration_rate(),
                    "migration rate not finite and non-negative",
                ),
            ] {
                if !(value.is_finite() && value >= 0.0) {
                    return Err(SearchCheckpointError::Corrupt(reason));
                }
            }
            completed.insert(point, outcome);
        }
        Ok(Self {
            spec_fp,
            grid_len,
            completed,
        })
    }
}

/// How the driver walks the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Every grid point, in index order.
    ExhaustiveGrid,
    /// Greedy coordinate descent from the grid origin: scan one axis at a
    /// time (all values, other coordinates fixed), move to the best point
    /// under the scalarised rank, and stop after a full round without a
    /// move or after `max_rounds` rounds.  Revisited points — the current
    /// point appears in every scan of every axis — hit the
    /// completed-evaluation index instead of re-folding.
    CoordinateDescent {
        /// Upper bound on full axis-sweep rounds.
        max_rounds: usize,
    },
}

/// Failures of a search run.
#[derive(Debug)]
pub enum SearchError {
    /// Spool-root or checkpoint-file I/O failed.
    Spool(std::io::Error),
    /// An evaluation's fleet driver failed past its recovery budget.
    Driver(DriverError),
    /// The on-disk search checkpoint is invalid or from a different search.
    Checkpoint(SearchCheckpointError),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Spool(error) => write!(f, "search spool I/O failed: {error}"),
            Self::Driver(error) => write!(f, "evaluation failed: {error}"),
            Self::Checkpoint(error) => write!(f, "search checkpoint rejected: {error}"),
        }
    }
}

impl std::error::Error for SearchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Spool(error) => Some(error),
            Self::Driver(error) => Some(error),
            Self::Checkpoint(error) => Some(error),
        }
    }
}

impl From<std::io::Error> for SearchError {
    fn from(error: std::io::Error) -> Self {
        Self::Spool(error)
    }
}

impl From<DriverError> for SearchError {
    fn from(error: DriverError) -> Self {
        Self::Driver(error)
    }
}

impl From<SearchCheckpointError> for SearchError {
    fn from(error: SearchCheckpointError) -> Self {
        Self::Checkpoint(error)
    }
}

/// The result of one [`SearchDriver::run`]: the outcomes the strategy
/// requested, their Pareto frontier, and the replay-exact evaluation
/// accounting the cache tests assert on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchRun {
    evaluations: Vec<EvaluationOutcome>,
    frontier: Vec<EvaluationOutcome>,
    requests: usize,
    folds: usize,
    cache_hits: usize,
    resumed: usize,
    complete: bool,
}

impl SearchRun {
    /// Every outcome the strategy requested and the index holds, in grid
    /// order.
    #[must_use]
    pub fn evaluations(&self) -> &[EvaluationOutcome] {
        &self.evaluations
    }

    /// The ranked Pareto frontier (energy ascending) over
    /// [`evaluations`](Self::evaluations).
    #[must_use]
    pub fn frontier(&self) -> &[EvaluationOutcome] {
        &self.frontier
    }

    /// Grid-point requests the strategy issued (revisits included).
    #[must_use]
    pub fn requests(&self) -> usize {
        self.requests
    }

    /// Fleet folds this run actually executed.
    #[must_use]
    pub fn folds(&self) -> usize {
        self.folds
    }

    /// Requests satisfied by the completed-evaluation index without a fold
    /// (revisits within this run plus replays of resumed evaluations).
    #[must_use]
    pub fn cache_hits(&self) -> usize {
        self.cache_hits
    }

    /// Requested evaluations that were already complete when the run
    /// started (the resume case).
    #[must_use]
    pub fn resumed(&self) -> usize {
        self.resumed
    }

    /// Whether the strategy ran to its natural end (false when an
    /// evaluation budget exhausted first).
    #[must_use]
    pub fn complete(&self) -> bool {
        self.complete
    }
}

/// Orchestrates a [`SearchStrategy`] over a [`SearchSpec`]: batches of
/// evaluations fan out over the [`SweepRunner`], every fold goes through a
/// [`FleetDriver`], and the sealed index under
/// `<root>/`[`CHECKPOINT_FILE`] advances after every batch, so killing the
/// coordinator at any point loses at most one in-flight batch.
#[derive(Debug, Clone)]
pub struct SearchDriver {
    spec: SearchSpec,
    strategy: SearchStrategy,
}

impl SearchDriver {
    /// A driver running `strategy` over `spec`.
    #[must_use]
    pub fn new(spec: SearchSpec, strategy: SearchStrategy) -> Self {
        Self { spec, strategy }
    }

    /// The search spec.
    #[must_use]
    pub fn spec(&self) -> &SearchSpec {
        &self.spec
    }

    /// The strategy.
    #[must_use]
    pub fn strategy(&self) -> SearchStrategy {
        self.strategy
    }

    /// Where the search checkpoint lives under `root`.
    #[must_use]
    pub fn checkpoint_path(root: &Path) -> PathBuf {
        root.join(CHECKPOINT_FILE)
    }

    /// Runs the strategy to completion, resuming from `<root>/search.ckpt`
    /// when present.
    ///
    /// # Errors
    /// See [`run_with_budget`](Self::run_with_budget).
    pub fn run(
        &self,
        runner: &SweepRunner,
        executor: &dyn ShardExecutor,
        root: &Path,
    ) -> Result<SearchRun, SearchError> {
        self.run_with_budget(runner, executor, root, None)
    }

    /// Runs the strategy, executing at most `budget` *new* fleet folds
    /// (cache hits are free).  A `Some(k)` budget is the deterministic
    /// stand-in for a coordinator killed after `k` evaluations: the run
    /// returns partial (`complete() == false`) once the budget is spent,
    /// and a later unbudgeted run on the same root resumes from the index
    /// and finishes the identical search.
    ///
    /// # Errors
    /// [`SearchError::Spool`] for root/checkpoint I/O;
    /// [`SearchError::Checkpoint`] for an invalid or foreign on-disk index;
    /// [`SearchError::Driver`] when an evaluation fails past the fleet
    /// driver's recovery budget.
    pub fn run_with_budget(
        &self,
        runner: &SweepRunner,
        executor: &dyn ShardExecutor,
        root: &Path,
        budget: Option<usize>,
    ) -> Result<SearchRun, SearchError> {
        std::fs::create_dir_all(root)?;
        let path = Self::checkpoint_path(root);
        let checkpoint = if path.exists() {
            let raw = std::fs::read(&path)?;
            let checkpoint = SearchCheckpoint::load(&raw)?;
            checkpoint.verify_spec(&self.spec)?;
            checkpoint
        } else {
            SearchCheckpoint::new(&self.spec)
        };
        let mut state = RunState {
            spec: &self.spec,
            runner,
            executor,
            root,
            path,
            resumed_points: checkpoint.completed.keys().copied().collect(),
            checkpoint,
            requested: BTreeSet::new(),
            requests: 0,
            folds: 0,
            cache_hits: 0,
            budget_left: budget,
            exhausted: false,
        };
        match self.strategy {
            SearchStrategy::ExhaustiveGrid => {
                let len = self.spec.space().len();
                let wave = runner.threads().max(1) as u64;
                let mut start = 0u64;
                while start < len && !state.exhausted {
                    let end = (start + wave).min(len);
                    state.wave((start..end).collect())?;
                    start = end;
                }
            }
            SearchStrategy::CoordinateDescent { max_rounds } => {
                let space = self.spec.space();
                let dims = space.dims();
                let mut coords = [0usize; 5];
                state.wave(vec![space.index_of(coords)])?;
                'rounds: for _ in 0..max_rounds {
                    if state.exhausted {
                        break;
                    }
                    let mut moved = false;
                    for axis in 0..5 {
                        let scan: Vec<u64> = (0..dims[axis])
                            .map(|value| {
                                let mut candidate = coords;
                                candidate[axis] = value;
                                space.index_of(candidate)
                            })
                            .collect();
                        state.wave(scan.clone())?;
                        if state.exhausted {
                            break 'rounds;
                        }
                        let best = scan
                            .iter()
                            .filter_map(|&point| state.checkpoint.get(point))
                            .min_by(|a, b| descent_cmp(a, b))
                            .map(EvaluationOutcome::point)
                            .expect("axis scan evaluated at least one point");
                        if best != space.index_of(coords) {
                            coords = space.coords(best);
                            moved = true;
                        }
                    }
                    if !moved {
                        break;
                    }
                }
            }
        }
        let evaluations: Vec<EvaluationOutcome> = state
            .requested
            .iter()
            .filter_map(|&point| state.checkpoint.get(point))
            .copied()
            .collect();
        let frontier = pareto_frontier(&evaluations);
        let resumed = state
            .requested
            .iter()
            .filter(|point| state.resumed_points.contains(point))
            .count();
        Ok(SearchRun {
            evaluations,
            frontier,
            requests: state.requests,
            folds: state.folds,
            cache_hits: state.cache_hits,
            resumed,
            complete: !state.exhausted,
        })
    }
}

/// Mutable bookkeeping of one `run_with_budget` invocation.
struct RunState<'a> {
    spec: &'a SearchSpec,
    runner: &'a SweepRunner,
    executor: &'a dyn ShardExecutor,
    root: &'a Path,
    path: PathBuf,
    checkpoint: SearchCheckpoint,
    resumed_points: BTreeSet<u64>,
    requested: BTreeSet<u64>,
    requests: usize,
    folds: usize,
    cache_hits: usize,
    budget_left: Option<usize>,
    exhausted: bool,
}

impl RunState<'_> {
    /// Requests a batch of grid points: index hits are counted as cache
    /// hits, the rest fold concurrently on the runner (bounded by the
    /// remaining budget), and the advanced index is re-sealed to disk
    /// before returning.
    fn wave(&mut self, points: Vec<u64>) -> Result<(), SearchError> {
        let mut pending: Vec<u64> = Vec::new();
        for point in points {
            if self.checkpoint.get(point).is_some() || pending.contains(&point) {
                self.requests += 1;
                self.cache_hits += 1;
                self.requested.insert(point);
                continue;
            }
            if self.budget_left == Some(0) {
                self.exhausted = true;
                break;
            }
            self.requests += 1;
            self.requested.insert(point);
            pending.push(point);
            if let Some(left) = &mut self.budget_left {
                *left -= 1;
            }
        }
        if pending.is_empty() {
            return Ok(());
        }
        let evaluations: Vec<Evaluation> = pending
            .iter()
            .map(|&point| self.spec.evaluation(point))
            .collect();
        let shards = self.spec.shards();
        let executor = self.executor;
        let root = self.root;
        let results = self.runner.map(&evaluations, |evaluation: &Evaluation| {
            evaluation.run_with_driver(shards, executor, root)
        });
        for result in results {
            let outcome = result?;
            self.checkpoint.record(outcome);
            self.folds += 1;
        }
        let blob = self.checkpoint.save();
        let tmp = self.path.with_extension("ckpt.tmp");
        std::fs::write(&tmp, &blob)?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_2x3() -> ObjectiveSpace {
        ObjectiveSpace::new()
            .with_mac_axis(&[MacPolicy::Polling, MacPolicy::Tdma])
            .with_radio_axis(&[
                RadioTechnology::WiR,
                RadioTechnology::Ble,
                RadioTechnology::WiFi,
            ])
    }

    #[test]
    fn grid_indexing_round_trips() {
        let space = space_2x3();
        assert_eq!(space.len(), 6);
        for index in 0..space.len() {
            let coords = space.coords(index);
            assert_eq!(space.index_of(coords), index);
            assert_eq!(space.point(index).index, index);
        }
        // The innermost axis (here radio, policy axes being singletons)
        // varies fastest.
        assert_eq!(space.point(0).radio, RadioTechnology::WiR);
        assert_eq!(space.point(1).radio, RadioTechnology::Ble);
        assert_eq!(space.point(0).mac, MacPolicy::Polling);
        assert_eq!(space.point(3).mac, MacPolicy::Tdma);
    }

    #[test]
    fn axis_builders_dedup_and_ignore_empty_or_invalid() {
        let space = ObjectiveSpace::new()
            .with_mac_axis(&[MacPolicy::Tdma, MacPolicy::Tdma])
            .with_radio_axis(&[])
            .with_traffic_scale_axis(&[f64::NAN, 0.0, -1.0]);
        assert_eq!(space.dims(), [1, 1, 1, 1, 1]);
        assert_eq!(space.point(0).mac, MacPolicy::Tdma);
        assert_eq!(space.point(0).traffic_scale(), 1.0);
        assert_eq!(ObjectiveSpace::paper_default().len(), 32);
    }

    #[test]
    fn spec_fingerprint_tracks_identity_not_execution() {
        let base = DriverFleetSpec::new(8);
        let spec = SearchSpec::new(base.clone(), space_2x3());
        let fp = spec.fingerprint();
        // Shard count is an execution knob.
        assert_eq!(fp, spec.clone().with_shards(4).fingerprint());
        // Grid and base fleet are identity.
        assert_ne!(
            fp,
            SearchSpec::new(base.clone(), ObjectiveSpace::new()).fingerprint()
        );
        assert_ne!(
            fp,
            SearchSpec::new(base.with_base_seed(9), space_2x3()).fingerprint()
        );
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let spec = SearchSpec::new(DriverFleetSpec::new(4), space_2x3());
        let checkpoint = SearchCheckpoint::new(&spec);
        let blob = checkpoint.save();
        assert_eq!(blob.len(), ENVELOPE);
        let loaded = SearchCheckpoint::load(&blob).expect("empty index loads");
        assert_eq!(loaded, checkpoint);
        assert!(loaded.verify_spec(&spec).is_ok());
    }

    #[test]
    fn frontier_is_non_dominated_and_ranked() {
        let outcome = |point: u64, energy: f64, p95: f64| EvaluationOutcome {
            point,
            energy_j_bits: energy.to_bits(),
            worst_p95_s_bits: p95.to_bits(),
            migration_rate_bits: 0.0f64.to_bits(),
            state_fp: 0,
        };
        let outcomes = [
            outcome(0, 2.0, 1.0),
            outcome(1, 1.0, 2.0),
            outcome(2, 2.0, 2.0), // dominated by both
            outcome(3, 1.0, 2.0), // duplicate of 1: both survive
        ];
        let frontier = pareto_frontier(&outcomes);
        let points: Vec<u64> = frontier.iter().map(EvaluationOutcome::point).collect();
        assert_eq!(points, vec![1, 3, 0]);
    }
}
