//! Plan serving: the partition optimiser as a warm, cacheable TCP service.
//!
//! Everything before this module *folds* — figures, fleets, checkpoints.
//! This is the first piece of the system that *serves traffic*: the paper's
//! per-wearer compute/communication partition decision, answered over a
//! socket instead of a crate link, with all the expensive state held warm
//! across requests:
//!
//! * [`PlanService`] — the I/O-free core.  Holds the [`WearableModel`] zoo
//!   (per-model layer profiles and cut points are construction-time caches),
//!   a warm [`LinkCache`] (every supported
//!   technology × body-site channel derivation precomputed), the Fig. 3
//!   projector, and an interned-key plan cache memoizing
//!   `(model, context-quantized, objective)` with replay-exact hit/miss
//!   counters.  Batches evaluate through the
//!   [`SweepRunner`].
//! * [`codec`] — the versioned, FNV-sealed binary request/response format
//!   ([`PlanRequest`] / [`Response`]); decoding never panics.
//! * [`server`] — the std-only TCP front-end ([`PlanServer`]) over the
//!   shared [`wire`](crate::wire) framing, plus the matching pipelined
//!   [`PlanClient`].  On Linux it defaults to the epoll [`reactor`] (a
//!   small fixed pool of event-loop threads driving every connection);
//!   [`ThreadModel::Legacy`] keeps the original thread-per-connection
//!   path, and the two are equivalence-tested byte-for-byte.
//!
//! # Determinism contract
//!
//! A served answer is a **pure function of the canonical query**: the
//! service resolves link defaults, quantizes continuous context fields
//! ([`codec::quantize_f64`]) and only then consults cache or optimiser — so
//! cached answers are byte-identical to uncached recomputation, and N
//! clients hammering one server receive byte-identical responses to the
//! same requests issued serially against a fresh linked-in optimiser.  The
//! serving tests in `crates/core/tests/serve_*.rs` assert all of this at
//! the encoded-bytes level.
//!
//! # Example
//!
//! ```
//! use hidwa_core::serve::codec::{ModelId, PlanRequest, Request, Response, WireContext, WireLink};
//! use hidwa_core::partition::Objective;
//! use hidwa_core::serve::PlanService;
//!
//! let service = PlanService::new();
//! let query = Request::Plan(PlanRequest {
//!     model: ModelId::EcgArrhythmia,
//!     context: WireContext::of(WireLink::WiR),
//!     objective: Objective::LeafEnergy,
//! });
//! let answers = service.answer_batch(&[query, query]);
//! assert_eq!(answers[0], answers[1]);
//! assert!(matches!(answers[0], Response::Plan(_)));
//! let stats = service.stats();
//! assert_eq!((stats.cache_misses, stats.cache_hits), (1, 1));
//! ```

pub mod cache;
pub mod codec;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
#[cfg(target_os = "linux")]
pub mod sys;

pub use cache::{PlanCache, PlanKey};
pub use codec::{
    PlanRequest, ProjectionRequest, Request, RequestEnvelope, Response, ResponseEnvelope,
    WireCodecError, WireContext, WireLink, WirePlan, WireProjection,
};
pub use server::{ClientError, PlanClient, PlanServer, ServeConfig, ThreadModel};

use crate::partition::{PartitionContext, PartitionOptimizer};
use crate::population::LinkCache;
use crate::projection::Fig3Projector;
use crate::sweep::SweepRunner;
use codec::{quantize_f64, ModelId};
use hidwa_energy::compute::{ComputeClass, ComputeEngine};
use hidwa_isa::models::{self, WearableModel};
use hidwa_phy::ble::BleTransceiver;
use hidwa_phy::wir::WiRTransceiver;
use hidwa_phy::Transceiver;
use hidwa_units::{DataRate, EnergyPerBit};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A snapshot of the service's traffic and cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries answered (plan + projection), across all batches.
    pub requests: u64,
    /// Plan queries among them.
    pub plan_queries: u64,
    /// Projection queries among them.
    pub projection_queries: u64,
    /// Plan queries answered from the memo (serial-replay semantics).
    pub cache_hits: u64,
    /// Plan queries that required a fresh optimisation.
    pub cache_misses: u64,
    /// Memoized plans displaced by CLOCK eviction (0 when unbounded).
    pub cache_evictions: u64,
    /// Distinct plan keys currently memoized.
    pub cached_plans: u64,
}

impl ServeStats {
    /// Cache hit rate over all plan queries (`0.0` when none were served).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A plan query after admission: link defaults resolved through the warm
/// tables and continuous fields quantized.  This — not the raw wire form —
/// is what the cache keys on and the optimiser evaluates.
#[derive(Debug, Clone, Copy)]
struct CanonicalPlan {
    model: ModelId,
    objective: crate::partition::Objective,
    label: LinkLabel,
    energy_per_bit_pj: f64,
    goodput_bps: f64,
    quantize_activations: bool,
}

/// Which human-readable label the evaluated context carries (shows up only
/// in infeasibility diagnostics, but must be deterministic).
#[derive(Debug, Clone, Copy)]
enum LinkLabel {
    WiR,
    Ble,
    Site(hidwa_phy::RadioTechnology, hidwa_eqs::body::BodySite),
}

impl LinkLabel {
    fn to_label(self) -> String {
        match self {
            Self::WiR => "Wi-R".to_string(),
            Self::Ble => "BLE".to_string(),
            Self::Site(technology, site) => format!("{}@{site:?}", technology.name()),
        }
    }
}

/// The warm, I/O-free serving core: model zoo, link tables, projector,
/// plan cache and the sweep runner batches evaluate through.
#[derive(Debug)]
pub struct PlanService {
    /// Models in [`ModelId`] wire order.
    zoo: Vec<WearableModel>,
    links: LinkCache,
    projector: Fig3Projector,
    runner: SweepRunner,
    /// `None` when memoization is disabled.
    cache: Option<Mutex<PlanCache>>,
    /// Default (energy-per-bit pJ, goodput bit/s) of the Wi-R / BLE links,
    /// resolved once at construction.
    wir_default: (f64, f64),
    ble_default: (f64, f64),
    requests: AtomicU64,
    plan_queries: AtomicU64,
    projection_queries: AtomicU64,
}

impl Default for PlanService {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanService {
    /// A service with the cache enabled and a default-width runner.
    ///
    /// Construction is where all the warmth comes from: the zoo's per-model
    /// profile/cut-point caches, the full technology × site link table and
    /// the projector are built here, once, so no request ever re-derives
    /// them.
    #[must_use]
    pub fn new() -> Self {
        let wir = WiRTransceiver::ixana_class();
        let wir_rate = wir.max_data_rate();
        let ble = BleTransceiver::phy_1m();
        let ble_rate = ble.max_data_rate();
        Self {
            zoo: vec![
                models::ecg_arrhythmia_cnn(),
                models::imu_gesture_cnn(),
                models::keyword_spotting_cnn(),
                models::video_feature_extractor(),
                models::vitals_trend_mlp(),
            ],
            links: LinkCache::warm(),
            projector: Fig3Projector::paper_defaults(),
            runner: SweepRunner::new(),
            cache: Some(Mutex::new(PlanCache::new())),
            wir_default: (
                wir.energy_per_bit(wir_rate).as_pico_joules(),
                wir_rate.as_bps(),
            ),
            ble_default: (
                ble.energy_per_bit(ble_rate).as_pico_joules(),
                ble_rate.as_bps(),
            ),
            requests: AtomicU64::new(0),
            plan_queries: AtomicU64::new(0),
            projection_queries: AtomicU64::new(0),
        }
    }

    /// Enables or disables plan memoization (on by default).  Disabling
    /// never changes answers — only whether they are recomputed.
    #[must_use]
    pub fn with_cache(mut self, enabled: bool) -> Self {
        self.cache = enabled.then(|| Mutex::new(PlanCache::new()));
        self
    }

    /// Bounds the plan cache to `capacity` resident entries, evicting by
    /// deterministic CLOCK beyond that (see [`PlanCache::bounded`]).
    /// Eviction never changes answers — an evicted key re-optimises to the
    /// same bytes — only the hit rate.
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Some(Mutex::new(PlanCache::bounded(capacity)));
        self
    }

    /// Replaces the sweep runner batches evaluate through.
    #[must_use]
    pub fn with_runner(mut self, runner: SweepRunner) -> Self {
        self.runner = runner;
        self
    }

    /// Whether plan memoization is enabled.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The model behind a wire id (zoo order is wire order).
    #[must_use]
    pub fn model(&self, id: ModelId) -> &WearableModel {
        &self.zoo[id.index()]
    }

    /// A counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let (cache_hits, cache_misses, cache_evictions, cached_plans) = match &self.cache {
            Some(cache) => {
                let cache = cache.lock().expect("plan cache poisoned");
                (
                    cache.hits(),
                    cache.misses(),
                    cache.evictions(),
                    cache.len() as u64,
                )
            }
            None => (0, 0, 0, 0),
        };
        ServeStats {
            requests: self.requests.load(Ordering::Relaxed),
            plan_queries: self.plan_queries.load(Ordering::Relaxed),
            projection_queries: self.projection_queries.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_evictions,
            cached_plans,
        }
    }

    /// Admission: resolves link defaults and quantizes the continuous
    /// fields.  Everything downstream (cache key, optimiser) sees only this
    /// canonical form.
    fn canonicalize(&self, request: &PlanRequest) -> CanonicalPlan {
        let (label, (default_pj, default_bps)) = match request.context.link {
            WireLink::WiR => (LinkLabel::WiR, self.wir_default),
            WireLink::Ble => (LinkLabel::Ble, self.ble_default),
            WireLink::Site(technology, site) => {
                let params = self.links.get(technology, site);
                (
                    LinkLabel::Site(technology, site),
                    (
                        params.energy_per_bit().as_pico_joules(),
                        params.goodput().as_bps(),
                    ),
                )
            }
        };
        let pick = |override_value: f64, default: f64| {
            if override_value > 0.0 {
                override_value
            } else {
                default
            }
        };
        CanonicalPlan {
            model: request.model,
            objective: request.objective,
            label,
            energy_per_bit_pj: quantize_f64(pick(request.context.energy_per_bit_pj, default_pj)),
            goodput_bps: quantize_f64(pick(request.context.goodput_bps, default_bps)),
            quantize_activations: request.context.quantize_activations,
        }
    }

    fn plan_key(canonical: &CanonicalPlan) -> PlanKey {
        PlanKey {
            model: canonical.model as u8,
            objective: codec::objective_to_u8(canonical.objective),
            energy_per_bit_bits: canonical.energy_per_bit_pj.to_bits(),
            goodput_bits: canonical.goodput_bps.to_bits(),
            quantize_activations: canonical.quantize_activations,
        }
    }

    /// One fresh optimisation of a canonical query (the cache-miss path).
    fn evaluate_plan(&self, canonical: &CanonicalPlan) -> Response {
        let model = &self.zoo[canonical.model.index()];
        let mut context = PartitionContext::new(
            canonical.label.to_label(),
            ComputeEngine::of_class(ComputeClass::IsaAccelerator),
            ComputeEngine::of_class(ComputeClass::EdgeNpu),
            EnergyPerBit::from_pico_joules(canonical.energy_per_bit_pj),
            DataRate::from_kbps(canonical.goodput_bps / 1000.0),
        );
        if !canonical.quantize_activations {
            context = context.without_quantization();
        }
        match PartitionOptimizer::new(context).optimize(model, canonical.objective) {
            Ok(plan) => Response::Plan(WirePlan {
                model: canonical.model,
                objective: canonical.objective,
                cut_index: plan.cut_index as u32,
                leaf_macs: plan.leaf_macs,
                hub_macs: plan.hub_macs,
                transfer_bytes: plan.transfer_bytes,
                leaf_energy_j: plan.leaf_energy.as_joules(),
                hub_energy_j: plan.hub_energy.as_joules(),
                latency_s: plan.latency.as_seconds(),
                leaf_power_w: plan.leaf_power.as_watts(),
            }),
            Err(error) => Response::Infeasible(error.to_string()),
        }
    }

    fn evaluate_projection(&self, request: &ProjectionRequest) -> Response {
        let point = self
            .projector
            .project_rate(DataRate::from_kbps(request.rate_bps / 1000.0));
        Response::Projection(WireProjection {
            rate_bps: request.rate_bps,
            total_power_w: point.total_power.as_watts(),
            battery_life_s: point.battery_life.as_seconds(),
        })
    }

    /// Answers one query (a batch of one).
    #[must_use]
    pub fn answer(&self, request: &Request) -> Response {
        self.answer_batch(std::slice::from_ref(request))
            .pop()
            .expect("one answer per query")
    }

    /// Answers a batch of queries, positionally.
    ///
    /// Compatible queued plan queries are evaluated together through the
    /// sweep runner: with the cache on, the batch's *distinct uncached*
    /// keys are optimised in one parallel map under the cache lock (so the
    /// hit/miss counters keep exact serial-replay semantics no matter how
    /// many connections are served concurrently); with the cache off, every
    /// plan query goes through the runner.  Projections are closed-form and
    /// evaluated inline.
    #[must_use]
    pub fn answer_batch(&self, requests: &[Request]) -> Vec<Response> {
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let mut answers: Vec<Option<Response>> = vec![None; requests.len()];

        // Projections and canonicalization first; plan slots collect for
        // batched evaluation.
        let mut plans: Vec<(usize, CanonicalPlan)> = Vec::new();
        for (slot, request) in requests.iter().enumerate() {
            match request {
                Request::Plan(plan) => {
                    self.plan_queries.fetch_add(1, Ordering::Relaxed);
                    plans.push((slot, self.canonicalize(plan)));
                }
                Request::Projection(projection) => {
                    self.projection_queries.fetch_add(1, Ordering::Relaxed);
                    answers[slot] = Some(self.evaluate_projection(projection));
                }
            }
        }

        match &self.cache {
            Some(cache) => {
                let mut cache = cache.lock().expect("plan cache poisoned");
                // Scan: satisfy hits, dedup the misses.
                let mut pending: Vec<(PlanKey, CanonicalPlan)> = Vec::new();
                let mut pending_index: HashMap<PlanKey, Vec<usize>> = HashMap::new();
                for (slot, canonical) in &plans {
                    let key = Self::plan_key(canonical);
                    if let Some(waiting) = pending_index.get_mut(&key) {
                        // Duplicate of an in-batch miss: a serial replay
                        // would have memoized it by now — count a hit.
                        cache.record_hit();
                        waiting.push(*slot);
                        continue;
                    }
                    match cache.lookup(key) {
                        Some(answer) => answers[*slot] = Some(answer),
                        None => {
                            pending.push((key, *canonical));
                            pending_index.insert(key, vec![*slot]);
                        }
                    }
                }
                // Evaluate the distinct misses in one parallel map.
                let fresh = self
                    .runner
                    .map(&pending, |(_, canonical)| self.evaluate_plan(canonical));
                for ((key, _), answer) in pending.iter().zip(fresh) {
                    for &slot in &pending_index[key] {
                        answers[slot] = Some(answer.clone());
                    }
                    cache.insert(*key, answer);
                }
            }
            None => {
                let fresh = self
                    .runner
                    .map(&plans, |(_, canonical)| self.evaluate_plan(canonical));
                for ((slot, _), answer) in plans.iter().zip(fresh) {
                    answers[*slot] = Some(answer);
                }
            }
        }

        answers
            .into_iter()
            .map(|answer| answer.expect("every slot answered"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Objective;
    use codec::{PlanRequest, Request};
    use hidwa_eqs::body::BodySite;
    use hidwa_phy::RadioTechnology;

    fn plan(model: ModelId, link: WireLink, objective: Objective) -> Request {
        Request::Plan(PlanRequest {
            model,
            context: WireContext::of(link),
            objective,
        })
    }

    #[test]
    fn default_links_match_the_linked_in_optimizer() {
        let service = PlanService::new();
        let answer = service.answer(&plan(
            ModelId::EcgArrhythmia,
            WireLink::WiR,
            Objective::LeafEnergy,
        ));
        let direct = PartitionOptimizer::new(PartitionContext::wir_default())
            .optimize(service.model(ModelId::EcgArrhythmia), Objective::LeafEnergy)
            .unwrap();
        match answer {
            Response::Plan(wire) => {
                assert_eq!(wire.cut_index as usize, direct.cut_index);
                assert_eq!(
                    wire.leaf_energy_j.to_bits(),
                    direct.leaf_energy.as_joules().to_bits()
                );
            }
            other => panic!("expected a plan, got {other:?}"),
        }
    }

    #[test]
    fn infeasible_queries_come_back_typed_not_panicking() {
        let service = PlanService::new();
        // 15 fps video over BLE with an ISA leaf cannot run at all.
        let answer = service.answer(&plan(
            ModelId::VideoFeature,
            WireLink::Ble,
            Objective::LeafEnergy,
        ));
        assert!(matches!(answer, Response::Infeasible(_)), "{answer:?}");
    }

    #[test]
    fn site_links_resolve_through_the_warm_cache() {
        let service = PlanService::new();
        let wrist = service.answer(&plan(
            ModelId::KeywordSpotting,
            WireLink::Site(RadioTechnology::WiR, BodySite::Wrist),
            Objective::LeafEnergy,
        ));
        assert!(matches!(wrist, Response::Plan(_)), "{wrist:?}");
    }

    #[test]
    fn batch_answers_match_singles_and_count_replay_exact() {
        let service = PlanService::new();
        let a = plan(ModelId::ImuGesture, WireLink::WiR, Objective::Latency);
        let b = plan(ModelId::ImuGesture, WireLink::Ble, Objective::Latency);
        let batch = service.answer_batch(&[a, b, a, a]);
        assert_eq!(batch[0], batch[2]);
        assert_eq!(batch[0], batch[3]);
        assert_ne!(batch[0], batch[1]);
        let stats = service.stats();
        // Two distinct keys, four plan queries: 2 misses, 2 hits.
        assert_eq!((stats.cache_misses, stats.cache_hits), (2, 2));
        assert_eq!(stats.plan_queries, 4);
        assert_eq!(stats.cached_plans, 2);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);

        // The same queries against an uncached service are byte-identical.
        let uncached = PlanService::new().with_cache(false);
        assert!(!uncached.cache_enabled());
        assert_eq!(uncached.answer_batch(&[a, b, a, a]), batch);
        assert_eq!(uncached.stats().hit_rate(), 0.0);
    }

    #[test]
    fn projections_are_served_and_counted() {
        let service = PlanService::new();
        let answer = service.answer(&Request::Projection(ProjectionRequest { rate_bps: 4000.0 }));
        match answer {
            Response::Projection(projection) => {
                assert!(projection.battery_life_s > 365.0 * 24.0 * 3600.0);
            }
            other => panic!("expected a projection, got {other:?}"),
        }
        assert_eq!(service.stats().projection_queries, 1);
    }
}
