//! Population models: deterministic sampling of heterogeneous per-body
//! scenarios.
//!
//! The paper's vision is a planet-scale population of body networks, and real
//! populations are not clones: different wearers carry different sensor
//! suites, run different traffic mixes and connect over different radios.  A
//! [`PopulationModel`] captures that spread as weighted [`BodyArchetype`]s
//! (each a distribution over leaf sets, per-leaf [`TrafficMix`]es, radio
//! technology and MAC policy), and [`PopulationModel::sample`] draws one
//! concrete [`BodyScenario`] per body.
//!
//! # Determinism model
//!
//! Body `i`'s scenario is a **pure function of `(base_seed, i)`**: sampling
//! seeds a fresh SplitMix64-backed RNG from the per-body seed (the same
//! [`body_seed`] finaliser the fleet layer uses for simulation seeds, domain-
//! separated by a constant), draws the archetype, per-leaf presence and
//! per-leaf traffic in a fixed order, and never touches shared state.  Two
//! consequences the fleet layer builds on:
//!
//! * a body's scenario is byte-identical no matter which thread **or
//!   machine** materialises it, at any
//!   [`SweepRunner`](crate::sweep::SweepRunner) width — the property the
//!   fleet layer's shard runners ([`ShardPlan`](crate::fleet::ShardPlan))
//!   and checkpoint resume rely on to re-derive any body without
//!   coordination, and
//! * scenarios never need to be stored — any body can be re-derived on
//!   demand, which is what lets a 10k-body stream run with O(1) scenario
//!   memory.
//!
//! Two further guarantees are load-bearing for the fleet algebra (and
//! regression-tested in `tests/population_edges.rs`): an archetype with zero
//! (or clamped-to-zero) weight is **never** sampled while any positive
//! weight exists (the degenerate all-zero population falls back to its first
//! archetype), and a single-archetype population reproduces
//! [`PopulationModel::uniform`]'s output exactly, whatever its weight.
//!
//! # Example
//!
//! ```
//! use hidwa_core::population::PopulationModel;
//!
//! let population = PopulationModel::mixed_default();
//! let a = population.sample(42, 7);
//! let b = population.sample(42, 7);
//! assert_eq!(a.leaves().len(), b.leaves().len());
//! assert_eq!(a.archetype(), b.archetype());
//! // Different bodies draw (statistically) different scenarios.
//! assert!((0..64).any(|i| population.sample(42, i).archetype() != a.archetype()));
//! ```

use crate::scenario::{self, LeafSpec};
use hidwa_eqs::body::BodySite;
use hidwa_netsim::mac::MacPolicy;
use hidwa_netsim::node::{LinkParams, NodeConfig};
use hidwa_netsim::sim::Simulation;
use hidwa_netsim::traffic::{self, TrafficMix, TrafficPattern};
use hidwa_phy::RadioTechnology;
use hidwa_units::{DataRate, Power, TimeSpan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// SplitMix64 finaliser decorrelating per-body seeds: adjacent body indices
/// map to statistically independent streams even for `base_seed = 0`.  The
/// fleet layer feeds the result to each body's simulation; scenario sampling
/// re-finalises it under a domain-separation constant so the two streams
/// never alias.
#[must_use]
pub fn body_seed(base_seed: u64, body_index: u64) -> u64 {
    let mut z =
        base_seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(body_index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Domain-separation constant between a body's simulation RNG stream and its
/// scenario-sampling RNG stream.
const SCENARIO_DOMAIN: u64 = 0x5CE7_A810_D0AB_1E55;

/// Domain-separation constant for a body's churn draws (arrival, dwell, duty
/// cycle, per-epoch link derating).  Distinct from [`SCENARIO_DOMAIN`] so
/// enabling churn never perturbs the scenario stream: a body's leaf set and
/// traffic mix are identical with churn on or off.
const CHURN_DOMAIN: u64 = 0x7D1A_C0DE_5EA5_0A11;

/// One leaf slot of an archetype: the base [`LeafSpec`], how likely the leaf
/// is to be worn at all, and the [`TrafficMix`] its traffic pattern is drawn
/// from.
#[derive(Debug, Clone)]
pub struct LeafArchetype {
    spec: LeafSpec,
    presence: f64,
    traffic: TrafficMix,
}

impl LeafArchetype {
    /// A leaf present on every body of the archetype, always running the
    /// spec's own traffic pattern — the homogeneous building block
    /// [`PopulationModel::uniform`] is made of.
    #[must_use]
    pub fn fixed(spec: LeafSpec) -> Self {
        let traffic = TrafficMix::fixed(spec.traffic.clone());
        Self {
            spec,
            presence: 1.0,
            traffic,
        }
    }

    /// A leaf worn with probability `presence` (clamped to `[0, 1]`) whose
    /// traffic pattern is drawn from `traffic` per body.
    #[must_use]
    pub fn new(spec: LeafSpec, presence: f64, traffic: TrafficMix) -> Self {
        Self {
            spec,
            presence: presence.clamp(0.0, 1.0),
            traffic,
        }
    }

    /// The base leaf specification (site, modality, compute power).
    #[must_use]
    pub fn spec(&self) -> &LeafSpec {
        &self.spec
    }

    /// Probability the leaf is present on a sampled body.
    #[must_use]
    pub fn presence(&self) -> f64 {
        self.presence
    }

    /// The traffic mix the leaf's pattern is drawn from.
    #[must_use]
    pub fn traffic(&self) -> &TrafficMix {
        &self.traffic
    }
}

/// A weighted class of wearers: which leaves they carry (each with a presence
/// probability and a traffic mix), over which radio, under which MAC policy.
#[derive(Debug, Clone)]
pub struct BodyArchetype {
    name: Arc<str>,
    weight: f64,
    technology: RadioTechnology,
    policy: MacPolicy,
    leaves: Vec<LeafArchetype>,
}

impl BodyArchetype {
    /// Creates an archetype.  Non-finite or negative weights are clamped to
    /// zero (a zero-weight archetype is never sampled unless every weight is
    /// zero, in which case the first archetype wins).
    #[must_use]
    pub fn new(
        name: impl AsRef<str>,
        weight: f64,
        technology: RadioTechnology,
        policy: MacPolicy,
        leaves: Vec<LeafArchetype>,
    ) -> Self {
        Self {
            name: Arc::from(name.as_ref()),
            weight: if weight.is_finite() && weight > 0.0 {
                weight
            } else {
                0.0
            },
            technology,
            policy,
            leaves,
        }
    }

    /// Archetype label (interned; shared by every scenario drawn from it).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Relative weight of the archetype in the population.
    #[must_use]
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// Radio technology connecting this archetype's leaves to the hub.
    #[must_use]
    pub fn technology(&self) -> RadioTechnology {
        self.technology
    }

    /// MAC policy on this archetype's shared medium.
    #[must_use]
    pub fn policy(&self) -> MacPolicy {
        self.policy
    }

    /// The leaf slots bodies of this archetype draw from.
    #[must_use]
    pub fn leaves(&self) -> &[LeafArchetype] {
        &self.leaves
    }
}

/// A distribution over body networks: weighted archetypes, sampled per body.
#[derive(Debug, Clone)]
pub struct PopulationModel {
    archetypes: Vec<BodyArchetype>,
}

impl PopulationModel {
    /// Creates a population from explicit archetypes.
    ///
    /// # Panics
    /// Panics if `archetypes` is empty — a population must describe at least
    /// one body class.
    #[must_use]
    pub fn new(archetypes: Vec<BodyArchetype>) -> Self {
        assert!(
            !archetypes.is_empty(),
            "PopulationModel needs at least one archetype"
        );
        Self { archetypes }
    }

    /// The homogeneous population: every body carries exactly `leaves` with
    /// their own traffic patterns over one radio and MAC policy.  This is the
    /// old `FleetConfig` behaviour expressed as a (degenerate) population —
    /// sampling it yields the identical scenario for every body.
    #[must_use]
    pub fn uniform(technology: RadioTechnology, leaves: Vec<LeafSpec>, policy: MacPolicy) -> Self {
        Self::new(vec![BodyArchetype::new(
            "uniform",
            1.0,
            technology,
            policy,
            leaves.into_iter().map(LeafArchetype::fixed).collect(),
        )])
    }

    /// A paper-flavoured heterogeneous default: health-patch wearers
    /// (ECG-centric, Wi-R), AR-assistant wearers (audio + vision heavy,
    /// Wi-R) and a legacy BLE minimal-tracker class.  Used by the
    /// heterogeneous-fleet benches and `examples/fleet.rs`.
    #[must_use]
    pub fn mixed_default() -> Self {
        use hidwa_energy::sensing::SensorModality;
        let leaf = |name: &'static str,
                    site: BodySite,
                    modality: SensorModality,
                    traffic: TrafficPattern,
                    compute_uw: f64| LeafSpec {
            name,
            site,
            modality,
            traffic,
            compute_power: Power::from_micro_watts(compute_uw),
        };
        let health_patch = BodyArchetype::new(
            "health-patch",
            0.5,
            RadioTechnology::WiR,
            MacPolicy::Polling,
            vec![
                LeafArchetype::new(
                    leaf(
                        "ecg-patch",
                        BodySite::Chest,
                        SensorModality::Biopotential,
                        TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 512),
                        5.0,
                    ),
                    1.0,
                    TrafficMix::new(vec![
                        // Routine monitoring vs a high-rate capture mode.
                        (
                            0.7,
                            TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 512),
                        ),
                        (
                            0.3,
                            TrafficPattern::periodic(TimeSpan::from_millis(250.0), 512),
                        ),
                    ]),
                ),
                LeafArchetype::new(
                    leaf(
                        "smart-ring",
                        BodySite::Finger,
                        SensorModality::Environmental,
                        TrafficPattern::periodic(TimeSpan::from_seconds(10.0), 128),
                        1.0,
                    ),
                    0.8,
                    TrafficMix::fixed(TrafficPattern::periodic(TimeSpan::from_seconds(10.0), 128)),
                ),
                LeafArchetype::new(
                    leaf(
                        "imu-wristband",
                        BodySite::Wrist,
                        SensorModality::Inertial,
                        TrafficPattern::streaming(DataRate::from_kbps(13.0), 512),
                        5.0,
                    ),
                    0.9,
                    TrafficMix::new(vec![
                        (
                            0.6,
                            TrafficPattern::streaming(DataRate::from_kbps(13.0), 512),
                        ),
                        (
                            0.4,
                            TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 256),
                        ),
                    ]),
                ),
            ],
        );
        let ar_assistant = BodyArchetype::new(
            "ar-assistant",
            0.3,
            RadioTechnology::WiR,
            MacPolicy::Polling,
            vec![
                LeafArchetype::new(
                    leaf(
                        "earbuds-audio",
                        BodySite::Ear,
                        SensorModality::Audio,
                        TrafficPattern::streaming(DataRate::from_kbps(256.0), 1024),
                        50.0,
                    ),
                    1.0,
                    TrafficMix::new(vec![
                        (
                            0.7,
                            TrafficPattern::streaming(DataRate::from_kbps(256.0), 1024),
                        ),
                        (
                            0.3,
                            TrafficPattern::streaming(DataRate::from_kbps(128.0), 1024),
                        ),
                    ]),
                ),
                LeafArchetype::new(
                    leaf(
                        "camera-glasses",
                        BodySite::Face,
                        SensorModality::Vision,
                        TrafficPattern::streaming(DataRate::from_mbps(2.0), 4096),
                        500.0,
                    ),
                    1.0,
                    TrafficMix::new(vec![
                        (
                            0.5,
                            TrafficPattern::streaming(DataRate::from_mbps(2.0), 4096),
                        ),
                        (
                            0.3,
                            TrafficPattern::streaming(DataRate::from_mbps(1.0), 4096),
                        ),
                        // Event-driven capture (scene changes).
                        (
                            0.2,
                            TrafficPattern::bursty(TimeSpan::from_millis(50.0), 4096),
                        ),
                    ]),
                ),
                LeafArchetype::new(
                    leaf(
                        "imu-wristband",
                        BodySite::Wrist,
                        SensorModality::Inertial,
                        TrafficPattern::streaming(DataRate::from_kbps(13.0), 512),
                        5.0,
                    ),
                    0.7,
                    TrafficMix::fixed(TrafficPattern::streaming(DataRate::from_kbps(13.0), 512)),
                ),
            ],
        );
        let ble_minimal = BodyArchetype::new(
            "ble-minimal",
            0.2,
            RadioTechnology::Ble,
            MacPolicy::Tdma,
            vec![
                LeafArchetype::new(
                    leaf(
                        "smart-ring",
                        BodySite::Finger,
                        SensorModality::Environmental,
                        TrafficPattern::periodic(TimeSpan::from_seconds(10.0), 128),
                        1.0,
                    ),
                    1.0,
                    TrafficMix::new(vec![
                        (
                            0.8,
                            TrafficPattern::periodic(TimeSpan::from_seconds(10.0), 128),
                        ),
                        (
                            0.2,
                            TrafficPattern::periodic(TimeSpan::from_seconds(2.0), 128),
                        ),
                    ]),
                ),
                LeafArchetype::new(
                    leaf(
                        "fitness-band",
                        BodySite::Wrist,
                        SensorModality::Inertial,
                        TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 256),
                        2.0,
                    ),
                    0.9,
                    TrafficMix::new(vec![
                        (
                            0.6,
                            TrafficPattern::periodic(TimeSpan::from_seconds(1.0), 256),
                        ),
                        (
                            0.4,
                            TrafficPattern::streaming(DataRate::from_kbps(13.0), 512),
                        ),
                    ]),
                ),
            ],
        );
        Self::new(vec![health_patch, ar_assistant, ble_minimal])
    }

    /// The archetypes of the population.
    #[must_use]
    pub fn archetypes(&self) -> &[BodyArchetype] {
        &self.archetypes
    }

    /// Sets the radio technology on **every** archetype — the homogeneous
    /// `FleetConfig::with_technology` knob expressed against a population.
    #[must_use]
    pub fn with_technology(mut self, technology: RadioTechnology) -> Self {
        for archetype in &mut self.archetypes {
            archetype.technology = technology;
        }
        self
    }

    /// Sets the MAC policy on **every** archetype.
    #[must_use]
    pub fn with_policy(mut self, policy: MacPolicy) -> Self {
        for archetype in &mut self.archetypes {
            archetype.policy = policy;
        }
        self
    }

    /// Replaces **every** archetype's leaf set with the given always-present,
    /// fixed-traffic leaves — the homogeneous `FleetConfig::with_leaves` knob.
    #[must_use]
    pub fn with_leaves(mut self, leaves: Vec<LeafSpec>) -> Self {
        for archetype in &mut self.archetypes {
            archetype.leaves = leaves.iter().cloned().map(LeafArchetype::fixed).collect();
        }
        self
    }

    /// Scales the offered load of **every** leaf's traffic — both the base
    /// spec pattern and every entry of the per-body [`TrafficMix`] — by
    /// `factor` (see [`TrafficPattern::scaled`]).  This is the search layer's
    /// traffic-scaling axis: weights and draw order are untouched, so a
    /// scaled population samples the scaled counterpart of exactly the
    /// scenario the unscaled population would have produced, body for body.
    /// Non-finite or non-positive factors are ignored.
    #[must_use]
    pub fn with_traffic_scale(mut self, factor: f64) -> Self {
        for archetype in &mut self.archetypes {
            for slot in &mut archetype.leaves {
                slot.spec.traffic = slot.spec.traffic.scaled(factor);
                slot.traffic = slot.traffic.scaled(factor);
            }
        }
        self
    }

    /// Samples body `body_index`'s scenario — a pure function of
    /// `(base_seed, body_index)` (see the module docs), so the result is
    /// byte-identical wherever and whenever it is materialised.
    #[must_use]
    pub fn sample(&self, base_seed: u64, body_index: u64) -> BodyScenario {
        let sim_seed = body_seed(base_seed, body_index);
        let mut rng = StdRng::seed_from_u64(sim_seed ^ SCENARIO_DOMAIN);
        // Archetype draw: one uniform over cumulative weights (the shared
        // `weighted_index` helper, so mix and archetype draws stay in sync).
        // A degenerate all-zero-weight population still consumes its draw
        // and falls back to the first archetype.
        let archetype =
            &self.archetypes[traffic::weighted_index(&mut rng, self.archetypes.len(), |i| {
                self.archetypes[i].weight
            })
            .unwrap_or(0)];
        // Per-leaf draws, in leaf order: presence, then traffic.  Every leaf
        // consumes exactly two draws whether or not it is present, so adding
        // a leaf to an archetype never perturbs the draws of later leaves'
        // siblings on *other* archetypes (each body re-seeds, so cross-body
        // alignment is moot, but keeping draw counts shape-independent makes
        // scenarios stable under presence-probability tweaks).
        let mut leaves = Vec::with_capacity(archetype.leaves.len());
        for slot in &archetype.leaves {
            let present = rng.gen_bool(slot.presence);
            let traffic = slot.traffic.sample(&mut rng).clone();
            if present {
                let mut spec = slot.spec.clone();
                spec.traffic = traffic;
                leaves.push(spec);
            }
        }
        BodyScenario {
            body_index,
            seed: sim_seed,
            archetype: Arc::clone(&archetype.name),
            technology: archetype.technology,
            policy: archetype.policy,
            leaves,
        }
    }

    /// The distinct `(technology, body site)` pairs any scenario sampled from
    /// this population can require — the domain a [`LinkCache`] precomputes.
    #[must_use]
    pub fn link_domain(&self) -> Vec<(RadioTechnology, BodySite)> {
        let mut pairs: Vec<(RadioTechnology, BodySite)> = Vec::new();
        for archetype in &self.archetypes {
            for slot in &archetype.leaves {
                let pair = (archetype.technology, slot.spec.site);
                if !pairs.contains(&pair) {
                    pairs.push(pair);
                }
            }
        }
        pairs
    }
}

/// One concrete body drawn from a population: the leaf set (with sampled
/// traffic patterns), radio, MAC policy and the seed its simulation runs
/// under.
#[derive(Debug, Clone)]
pub struct BodyScenario {
    body_index: u64,
    seed: u64,
    archetype: Arc<str>,
    technology: RadioTechnology,
    policy: MacPolicy,
    leaves: Vec<LeafSpec>,
}

impl BodyScenario {
    /// Position of the body in the fleet.
    #[must_use]
    pub fn body_index(&self) -> u64 {
        self.body_index
    }

    /// Seed the body's simulation runs under.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Name of the archetype the body was drawn from.
    #[must_use]
    pub fn archetype(&self) -> &str {
        &self.archetype
    }

    /// Interned archetype label (cheap to propagate into summaries).
    #[must_use]
    pub fn archetype_label(&self) -> &Arc<str> {
        &self.archetype
    }

    /// Radio technology of the body's star network.
    #[must_use]
    pub fn technology(&self) -> RadioTechnology {
        self.technology
    }

    /// MAC policy of the body's shared medium.
    #[must_use]
    pub fn policy(&self) -> MacPolicy {
        self.policy
    }

    /// The body's sampled leaves (traffic patterns already drawn).
    #[must_use]
    pub fn leaves(&self) -> &[LeafSpec] {
        &self.leaves
    }

    /// Materialises the scenario as a ready-to-run [`Simulation`], resolving
    /// each leaf's link through `links` (so the expensive channel-model
    /// derivation is shared across every body of the fleet).
    #[must_use]
    pub fn build_simulation(&self, links: &LinkCache) -> Simulation {
        let nodes: Vec<NodeConfig> = self
            .leaves
            .iter()
            .map(|leaf| scenario::leaf_node(leaf, links.get(self.technology, leaf.site)))
            .collect();
        Simulation::with_nodes(self.policy, nodes).with_seed(self.seed)
    }
}

/// Memoised channel-model link derivation per `(technology, body site)`.
///
/// Deriving [`LinkParams`] walks the EQS channel/capacity stack — by far the
/// most expensive part of constructing a body.  A fleet run derives each
/// distinct pair **once** up front and every body resolves its leaves with a
/// (tiny) linear lookup, so heterogeneous fleets pay the channel model
/// O(distinct pairs), not O(bodies × leaves).
#[derive(Debug, Clone)]
pub struct LinkCache {
    hub_site: BodySite,
    entries: Vec<((RadioTechnology, BodySite), LinkParams)>,
}

impl LinkCache {
    /// Precomputes the cache for every pair `population` can sample.
    #[must_use]
    pub fn for_population(population: &PopulationModel) -> Self {
        let hub_site = BodySite::Waist;
        let entries = population
            .link_domain()
            .into_iter()
            .map(|(technology, site)| {
                (
                    (technology, site),
                    scenario::link_params_for(technology, site, hub_site),
                )
            })
            .collect();
        Self { hub_site, entries }
    }

    /// Precomputes the cache for every (supported technology × body site)
    /// pair — the warm link table the [`serve`](crate::serve) front-end
    /// holds so site-resolved plan queries never walk the EQS channel stack
    /// at request time.  ([`RadioTechnology::Nfmi`] / [`RadioTechnology::WiFi`]
    /// fall back to BLE-class parameters inside the channel model, so Wi-R
    /// and BLE cover the distinct derivations.)
    #[must_use]
    pub fn warm() -> Self {
        let hub_site = BodySite::Waist;
        let entries = [RadioTechnology::WiR, RadioTechnology::Ble]
            .into_iter()
            .flat_map(|technology| {
                BodySite::ALL
                    .into_iter()
                    .map(move |site| (technology, site))
            })
            .map(|(technology, site)| {
                (
                    (technology, site),
                    scenario::link_params_for(technology, site, hub_site),
                )
            })
            .collect();
        Self { hub_site, entries }
    }

    /// Link parameters for a leaf at `site` over `technology`; pairs outside
    /// the precomputed domain are derived on the fly (correct, just not
    /// cached).
    #[must_use]
    pub fn get(&self, technology: RadioTechnology, site: BodySite) -> LinkParams {
        self.entries
            .iter()
            .find(|((t, s), _)| *t == technology && *s == site)
            .map_or_else(
                || scenario::link_params_for(technology, site, self.hub_site),
                |(_, link)| *link,
            )
    }
}

/// When bodies come and go: per-body arrival/departure times and diurnal
/// duty cycles over the fleet horizon, plus per-epoch link fading.
///
/// The paper's fleet is *alive* — wearers put devices on in the morning,
/// take them off at night, and walk through changing RF environments.  A
/// `ChurnModel` captures that as four knobs:
///
/// * **rate** `r ∈ [0, 1]` — the fraction of the horizon churned away: a
///   body arrives uniformly inside the first `r·H` seconds and dwells for
///   `(1-r)·H + U(0,1)·r·H`, so `r = 0` reproduces the always-present fleet
///   exactly and larger `r` shortens and staggers residencies;
/// * **duty cycle** `u ∈ [duty_min, duty_max]` — the diurnal on-fraction of
///   the residency actually spent generating traffic (screen-on time, worn
///   time);
/// * **epochs** — how many context windows the residency is divided into
///   (each a candidate migration point for a placement policy);
/// * **link fade** — the per-epoch link derating draw: each epoch's
///   leaf→hub link runs at `1 - U(0, fade)` of nominal goodput (and
///   correspondingly worse energy per bit), which is what makes online
///   re-planning worthwhile.
///
/// # Determinism
///
/// [`ChurnModel::sample`] is a **pure function of
/// `(base_seed, body_index, horizon)`**, like every other per-body draw: it
/// seeds a fresh RNG from [`body_seed`] under its own domain constant
/// (distinct from the scenario stream, so enabling churn never changes which
/// leaves a body carries) and consumes a fixed number of draws per body.
/// Arrivals, departures, duty cycles and epoch deratings are therefore
/// byte-identical at any thread width, chunk size, shard layout or process
/// boundary — the property the fleet identity tests extend to churn.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnModel {
    rate: f64,
    duty_min: f64,
    duty_max: f64,
    epochs: u32,
    link_fade: f64,
}

impl ChurnModel {
    /// A churn model at `rate` with the default diurnal duty cycle
    /// (`0.55..=0.95`), 4 context epochs and 60 % maximum link fade.
    #[must_use]
    pub fn with_rate(rate: f64) -> Self {
        Self {
            rate: if rate.is_finite() {
                rate.clamp(0.0, 1.0)
            } else {
                0.0
            },
            duty_min: 0.55,
            duty_max: 0.95,
            epochs: 4,
            link_fade: 0.6,
        }
    }

    /// Sets the diurnal duty-cycle range (both clamped to `(0, 1]`, kept
    /// ordered).
    #[must_use]
    pub fn with_duty_cycle(mut self, min: f64, max: f64) -> Self {
        let clamp = |v: f64| {
            if v.is_finite() {
                v.clamp(1e-3, 1.0)
            } else {
                1.0
            }
        };
        let (min, max) = (clamp(min), clamp(max));
        self.duty_min = min.min(max);
        self.duty_max = min.max(max);
        self
    }

    /// Sets how many context epochs a residency is divided into (minimum 1).
    #[must_use]
    pub fn with_epochs(mut self, epochs: u32) -> Self {
        self.epochs = epochs.max(1);
        self
    }

    /// Sets the maximum per-epoch link derating (clamped to `[0, 0.95]`).
    #[must_use]
    pub fn with_link_fade(mut self, fade: f64) -> Self {
        self.link_fade = if fade.is_finite() {
            fade.clamp(0.0, 0.95)
        } else {
            0.0
        };
        self
    }

    /// Fraction of the horizon churned away.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Diurnal duty-cycle range `(min, max)`.
    #[must_use]
    pub fn duty_cycle(&self) -> (f64, f64) {
        (self.duty_min, self.duty_max)
    }

    /// Context epochs per residency.
    #[must_use]
    pub fn epochs(&self) -> u32 {
        self.epochs
    }

    /// Maximum per-epoch link derating.
    #[must_use]
    pub fn link_fade(&self) -> f64 {
        self.link_fade
    }

    /// Samples body `body_index`'s churn — a pure function of
    /// `(base_seed, body_index, horizon)` (see the type docs).  Draw order
    /// (arrival, dwell, duty, then one derating per epoch) is fixed, so every
    /// body consumes exactly `3 + epochs` draws.
    #[must_use]
    pub fn sample(&self, base_seed: u64, body_index: u64, horizon: TimeSpan) -> ChurnSample {
        let mut rng = StdRng::seed_from_u64(body_seed(base_seed, body_index) ^ CHURN_DOMAIN);
        let arrival_frac: f64 = rng.gen_range(0.0..=1.0);
        let dwell_frac: f64 = rng.gen_range(0.0..=1.0);
        let duty: f64 = rng.gen_range(self.duty_min..=self.duty_max);
        let mut link_derate = Vec::with_capacity(self.epochs as usize);
        for _ in 0..self.epochs {
            let fade: f64 = rng.gen_range(0.0..=self.link_fade.max(0.0));
            link_derate.push(1.0 - fade);
        }
        let h = horizon.as_seconds();
        let arrival = arrival_frac * self.rate * h;
        let dwell = (1.0 - self.rate) * h + dwell_frac * self.rate * h;
        let departure = (arrival + dwell).min(h);
        ChurnSample {
            arrival: TimeSpan::from_seconds(arrival),
            departure: TimeSpan::from_seconds(departure),
            duty,
            link_derate,
        }
    }
}

/// One body's sampled churn: when it is present, how hard it runs while
/// present, and how its link fades across context epochs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSample {
    /// When the body joins the fleet (seconds into the horizon).
    pub arrival: TimeSpan,
    /// When the body leaves again (`arrival <= departure <= horizon`).
    pub departure: TimeSpan,
    /// Diurnal duty cycle: the on-fraction of the residency.
    pub duty: f64,
    /// Per-epoch link goodput factors in `(0, 1]`, one per context epoch —
    /// the signal placement policies react to.
    pub link_derate: Vec<f64>,
}

impl ChurnSample {
    /// Wall-clock residency span (departure − arrival).
    #[must_use]
    pub fn residency(&self) -> TimeSpan {
        TimeSpan::from_seconds(self.departure.as_seconds() - self.arrival.as_seconds())
    }

    /// Duty-weighted active span — the simulated horizon of the body and
    /// the occupancy the fleet aggregator accounts.
    #[must_use]
    pub fn active(&self) -> TimeSpan {
        TimeSpan::from_seconds(self.residency().as_seconds() * self.duty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_population_reproduces_the_homogeneous_scenario() {
        let leaves = scenario::standard_leaf_set();
        let population =
            PopulationModel::uniform(RadioTechnology::WiR, leaves.clone(), MacPolicy::Polling);
        for body in [0u64, 1, 1000] {
            let scenario = population.sample(0xF1EE7, body);
            assert_eq!(scenario.archetype(), "uniform");
            assert_eq!(scenario.technology(), RadioTechnology::WiR);
            assert_eq!(scenario.policy(), MacPolicy::Polling);
            assert_eq!(scenario.leaves().len(), leaves.len());
            for (sampled, original) in scenario.leaves().iter().zip(&leaves) {
                assert_eq!(sampled.name, original.name);
                assert_eq!(sampled.traffic, original.traffic);
            }
            // The simulation seed matches the fleet layer's per-body seed.
            assert_eq!(scenario.seed(), body_seed(0xF1EE7, body));
        }
    }

    #[test]
    fn sampling_is_a_pure_function_of_seed_and_index() {
        let population = PopulationModel::mixed_default();
        for body in 0..32u64 {
            let a = population.sample(99, body);
            let b = population.sample(99, body);
            assert_eq!(a.archetype(), b.archetype());
            assert_eq!(a.seed(), b.seed());
            assert_eq!(a.technology(), b.technology());
            assert_eq!(a.policy(), b.policy());
            assert_eq!(a.leaves().len(), b.leaves().len());
            for (x, y) in a.leaves().iter().zip(b.leaves()) {
                assert_eq!(x.name, y.name);
                assert_eq!(x.site, y.site);
                assert_eq!(x.traffic, y.traffic);
            }
        }
    }

    #[test]
    fn mixed_population_actually_mixes() {
        let population = PopulationModel::mixed_default();
        let mut archetype_names = Vec::new();
        let mut node_counts = Vec::new();
        for body in 0..256u64 {
            let s = population.sample(7, body);
            if !archetype_names.contains(&s.archetype().to_string()) {
                archetype_names.push(s.archetype().to_string());
            }
            if !node_counts.contains(&s.leaves().len()) {
                node_counts.push(s.leaves().len());
            }
            assert!(!s.leaves().is_empty(), "body {body} sampled zero leaves");
        }
        assert_eq!(archetype_names.len(), 3, "saw {archetype_names:?}");
        assert!(node_counts.len() >= 2, "node counts never varied");
        // Archetype frequencies roughly track the 0.5 / 0.3 / 0.2 weights.
        let health = (0..2000u64)
            .filter(|&i| population.sample(7, i).archetype() == "health-patch")
            .count();
        let fraction = health as f64 / 2000.0;
        assert!((fraction - 0.5).abs() < 0.05, "health fraction {fraction}");
    }

    #[test]
    fn scenarios_build_runnable_simulations() {
        let population = PopulationModel::mixed_default();
        let links = LinkCache::for_population(&population);
        for body in 0..8u64 {
            let scenario = population.sample(3, body);
            let mut sim = scenario.build_simulation(&links);
            assert_eq!(sim.nodes().len(), scenario.leaves().len());
            let report = sim.run(TimeSpan::from_seconds(1.0));
            assert!(report.delivery_ratio() > 0.5);
        }
    }

    #[test]
    fn link_cache_matches_direct_derivation() {
        let population = PopulationModel::mixed_default();
        let links = LinkCache::for_population(&population);
        for (technology, site) in population.link_domain() {
            let direct = scenario::link_params_for(technology, site, BodySite::Waist);
            assert_eq!(links.get(technology, site), direct);
        }
        // Out-of-domain pairs fall back to on-the-fly derivation.
        let fallback = links.get(RadioTechnology::WiR, BodySite::Ankle);
        assert_eq!(
            fallback,
            scenario::link_params_for(RadioTechnology::WiR, BodySite::Ankle, BodySite::Waist)
        );
    }

    #[test]
    fn churn_sampling_is_pure_and_bounded() {
        let churn = ChurnModel::with_rate(0.4);
        let horizon = TimeSpan::from_seconds(10.0);
        for body in 0..64u64 {
            let a = churn.sample(2024, body, horizon);
            let b = churn.sample(2024, body, horizon);
            assert_eq!(a, b, "churn draw not pure for body {body}");
            assert!(a.arrival >= TimeSpan::ZERO);
            assert!(a.arrival <= a.departure);
            assert!(a.departure <= horizon);
            assert!((0.55..=0.95).contains(&a.duty), "duty {}", a.duty);
            assert_eq!(a.link_derate.len(), 4);
            for &derate in &a.link_derate {
                assert!((0.4 - 1e-12..=1.0).contains(&derate), "derate {derate}");
            }
            assert!(a.active() <= a.residency());
        }
    }

    #[test]
    fn zero_churn_rate_keeps_every_body_for_the_whole_horizon() {
        let churn = ChurnModel::with_rate(0.0).with_duty_cycle(1.0, 1.0);
        let horizon = TimeSpan::from_seconds(5.0);
        for body in 0..16u64 {
            let sample = churn.sample(7, body, horizon);
            assert_eq!(sample.arrival, TimeSpan::ZERO);
            assert_eq!(sample.departure, horizon);
            assert_eq!(sample.active(), horizon);
        }
    }

    #[test]
    fn churn_draws_do_not_perturb_scenario_draws() {
        // Enabling churn must never change which leaves a body carries: the
        // two streams are domain-separated.
        let population = PopulationModel::mixed_default();
        let before: Vec<String> = (0..32)
            .map(|i| population.sample(11, i).archetype().to_string())
            .collect();
        let churn = ChurnModel::with_rate(0.8);
        let _samples: Vec<ChurnSample> = (0..32)
            .map(|i| churn.sample(11, i, TimeSpan::from_seconds(3.0)))
            .collect();
        let after: Vec<String> = (0..32)
            .map(|i| population.sample(11, i).archetype().to_string())
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn higher_churn_rates_shorten_residencies_on_average() {
        let horizon = TimeSpan::from_seconds(10.0);
        let mean_residency = |rate: f64| {
            let churn = ChurnModel::with_rate(rate);
            (0..256u64)
                .map(|i| churn.sample(3, i, horizon).residency().as_seconds())
                .sum::<f64>()
                / 256.0
        };
        let calm = mean_residency(0.1);
        let stormy = mean_residency(0.8);
        assert!(
            stormy < calm,
            "residency did not shrink with churn: {calm} -> {stormy}"
        );
    }

    #[test]
    fn population_knobs_apply_to_every_archetype() {
        let population = PopulationModel::mixed_default()
            .with_technology(RadioTechnology::WiR)
            .with_policy(MacPolicy::Tdma);
        for archetype in population.archetypes() {
            assert_eq!(archetype.technology(), RadioTechnology::WiR);
            assert_eq!(archetype.policy(), MacPolicy::Tdma);
        }
        let releaved = population.with_leaves(scenario::standard_leaf_set());
        for archetype in releaved.archetypes() {
            assert_eq!(archetype.leaves().len(), 5);
            assert!(archetype
                .leaves()
                .iter()
                .all(|l| (l.presence() - 1.0).abs() < 1e-12));
        }
    }
}
