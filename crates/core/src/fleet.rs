//! Streaming fleet simulation: populations of independent body networks
//! ingested through a bounded-memory aggregator.
//!
//! The paper's north star is serving millions of users, and each user is one
//! star-topology body network — fully independent of every other body, which
//! makes fleet simulation embarrassingly parallel.  [`FleetConfig`] is a thin
//! wrapper over a [`PopulationModel`]: each body's scenario (leaf set,
//! traffic mix, radio, MAC policy) is sampled deterministically from
//! `(base_seed, body_index)`, simulated on the streaming netsim engine, and
//! reduced to a compact [`BodySummary`] inside the parallel map.
//!
//! # Bounded-memory aggregation
//!
//! Summaries are **not** materialised per body.  [`FleetConfig::run`] streams
//! the fleet in body-order chunks over a
//! [`SweepRunner`] and folds each chunk into a [`FleetAggregator`]: merged
//! latency sketches, running counters, and a top-K list of the worst bodies
//! by p95 latency.  Aggregation state is `O(K + sketch buckets)` —
//! independent of fleet size — so a 10k-body (or 10M-body) stream runs in
//! the memory of a single chunk.
//!
//! # Determinism and the merge algebra
//!
//! Scenario sampling is a pure per-body function, chunks are folded in body
//! order, and the fold itself is deterministic, so the final [`FleetReport`]
//! is byte-identical at any thread width and any chunk size (asserted by the
//! tests below and, at ≥1000 heterogeneous bodies, by `bench_netsim`).
//!
//! PR 4 extends the determinism contract with a third axis: **shard
//! layout**.  [`FleetAggregator`] is a commutative monoid under
//! [`FleetAggregator::merge`] — every non-associative piece of state (the
//! f64 running sums) is kept in an [`ExactSum`] fixed-point accumulator, the
//! sketches merge bucket-wise, and the exact top-K worst list merges
//! union-then-truncate under the total order (p95 desc, body index asc).
//! Consequently any partition of `0..bodies` into contiguous shards (see
//! [`ShardPlan`]), folded independently — on other threads, processes or
//! machines — and merged in any grouping, finishes byte-identical to the
//! single-stream fold.  [`FleetCheckpoint`] serializes a partial fold so an
//! interrupted ingestion resumes mid-stream ([`FleetConfig::run_until`] /
//! [`FleetConfig::resume`]) with the same guarantee.
//!
//! PR 5 adds the fourth axis: the **process boundary**.  [`driver`] is a
//! coordinator/worker runtime that spawns shard worker *processes*, ships
//! their partials as checkpoint blobs over a spool directory or local
//! socket, re-runs killed or corrupted shards, and merges — byte-identical
//! to the single-stream fold through every recovery path.
//!
//! PR 9 makes the fleet *live*: [`FleetConfig::with_churn`] attaches a
//! [`ChurnSpec`] — a per-body arrival/departure/duty-cycle model
//! ([`ChurnModel`](crate::population::ChurnModel)) plus an online
//! [`placement`] policy that re-plans each body's partition point as its
//! link context shifts.  Churn draws are a pure function of
//! `(base_seed, body_index)` under their own seed domain, so churned fleets
//! keep every determinism axis above; migration and occupancy statistics
//! flow through the same commutative merge monoid and the (version-bumped)
//! checkpoint format.
//!
//! # Example
//!
//! ```
//! use hidwa_core::fleet::FleetConfig;
//! use hidwa_core::sweep::SweepRunner;
//! use hidwa_units::TimeSpan;
//!
//! let fleet = FleetConfig::new(8).with_horizon(TimeSpan::from_seconds(2.0));
//! let report = fleet.run(&SweepRunner::serial());
//! assert_eq!(report.bodies(), 8);
//! assert!(report.delivery_ratio() > 0.9);
//! assert!(report.fleet_latency().quantile(0.95) > TimeSpan::ZERO);
//! ```

use crate::population::{BodyScenario, LinkCache, PopulationModel};
use crate::scenario;
use crate::sweep::SweepRunner;
use hidwa_netsim::mac::MacPolicy;
use hidwa_netsim::sketch::{self, ExactSum, LatencySketch};
use hidwa_phy::RadioTechnology;
use hidwa_units::{DataRate, DataVolume, Energy, TimeSpan};
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::Arc;

pub mod checkpoint;
pub mod driver;
pub mod placement;
pub mod shard;

pub use crate::population::body_seed;
pub use checkpoint::{CheckpointError, FleetCheckpoint};
pub use driver::{DriverError, DriverFleetSpec, FleetDriver};
pub use placement::{
    ChurnSpec, Hysteresis, PlacementDecision, PlacementPolicy, PolicyKind, ReoptimizeOnChange,
    StaticAtAdmission,
};
pub use shard::{ShardError, ShardPlan, ShardRunner};

/// A fleet of body networks drawn from a population model.
///
/// [`FleetConfig::new`] starts homogeneous (every body the standard five-leaf
/// Wi-R network — a [`PopulationModel::uniform`]); [`FleetConfig::with_population`]
/// swaps in a heterogeneous population.  The legacy homogeneous knobs
/// ([`with_technology`](FleetConfig::with_technology),
/// [`with_policy`](FleetConfig::with_policy),
/// [`with_leaves`](FleetConfig::with_leaves)) apply across every archetype.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    bodies: usize,
    base_seed: u64,
    horizon: TimeSpan,
    population: PopulationModel,
    top_k: usize,
    chunk_size: Option<usize>,
    churn: Option<ChurnSpec>,
}

impl FleetConfig {
    /// Default number of worst bodies retained exactly by the aggregator.
    pub const DEFAULT_TOP_K: usize = 8;

    /// A fleet of `bodies` copies of the standard five-leaf body network
    /// (Wi-R, polling MAC, 60 s horizon).
    #[must_use]
    pub fn new(bodies: usize) -> Self {
        Self {
            bodies,
            base_seed: 0xF1EE7,
            horizon: TimeSpan::from_seconds(60.0),
            population: PopulationModel::uniform(
                RadioTechnology::WiR,
                scenario::standard_leaf_set(),
                MacPolicy::Polling,
            ),
            top_k: Self::DEFAULT_TOP_K,
            chunk_size: None,
            churn: None,
        }
    }

    /// Sets the base seed; per-body seeds are derived from it via SplitMix64.
    #[must_use]
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the simulated horizon per body.
    #[must_use]
    pub fn with_horizon(mut self, horizon: TimeSpan) -> Self {
        self.horizon = horizon;
        self
    }

    /// Replaces the population the fleet draws bodies from.
    #[must_use]
    pub fn with_population(mut self, population: PopulationModel) -> Self {
        self.population = population;
        self
    }

    /// Sets the radio technology on every archetype of the population.
    #[must_use]
    pub fn with_technology(mut self, technology: RadioTechnology) -> Self {
        self.population = self.population.with_technology(technology);
        self
    }

    /// Sets the MAC policy on every archetype of the population.
    #[must_use]
    pub fn with_policy(mut self, policy: MacPolicy) -> Self {
        self.population = self.population.with_policy(policy);
        self
    }

    /// Replaces every archetype's leaf set with the given fixed leaves.
    #[must_use]
    pub fn with_leaves(mut self, leaves: Vec<scenario::LeafSpec>) -> Self {
        self.population = self.population.with_leaves(leaves);
        self
    }

    /// Sets how many worst bodies (by p95 latency) the aggregator keeps
    /// exactly (minimum 1).
    #[must_use]
    pub fn with_top_k(mut self, top_k: usize) -> Self {
        self.top_k = top_k.max(1);
        self
    }

    /// Sets the streaming chunk size (bodies materialised per fold step).
    /// Defaults to `max(64, 4 × runner threads)`.
    #[must_use]
    pub fn with_chunk_size(mut self, chunk_size: usize) -> Self {
        self.chunk_size = Some(chunk_size.max(1));
        self
    }

    /// Attaches a churn-and-placement layer: bodies arrive, depart and duty
    /// cycle per the spec's [`ChurnModel`](crate::population::ChurnModel)
    /// (each body simulates only its active span), and the spec's
    /// [`PlacementPolicy`] re-plans partition points as link context shifts,
    /// charging migrations into the per-body summaries.
    #[must_use]
    pub fn with_churn(mut self, churn: ChurnSpec) -> Self {
        self.churn = Some(churn);
        self
    }

    /// The churn-and-placement spec, if the fleet is churned.
    #[must_use]
    pub fn churn(&self) -> Option<&ChurnSpec> {
        self.churn.as_ref()
    }

    /// Fingerprint of the churn spec (0 for a churn-free fleet) — part of
    /// the checkpoint config identity, so partials folded under different
    /// churn configurations never merge or resume into each other.
    #[must_use]
    pub fn churn_fingerprint(&self) -> u64 {
        self.churn.as_ref().map_or(0, ChurnSpec::fingerprint)
    }

    /// Number of bodies in the fleet.
    #[must_use]
    pub fn bodies(&self) -> usize {
        self.bodies
    }

    /// Base seed per-body seeds and scenarios derive from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// How many worst bodies the aggregator keeps exactly.
    #[must_use]
    pub fn top_k(&self) -> usize {
        self.top_k
    }

    /// Simulated horizon per body.
    #[must_use]
    pub fn horizon(&self) -> TimeSpan {
        self.horizon
    }

    /// The population bodies are drawn from.
    #[must_use]
    pub fn population(&self) -> &PopulationModel {
        &self.population
    }

    /// The seed the simulation of `body_index` runs under.
    #[must_use]
    pub fn seed_for_body(&self, body_index: usize) -> u64 {
        body_seed(self.base_seed, body_index as u64)
    }

    /// The scenario body `body_index` would run — a pure function of
    /// `(base_seed, body_index)`, derivable without running anything.
    #[must_use]
    pub fn scenario_for_body(&self, body_index: usize) -> BodyScenario {
        self.population.sample(self.base_seed, body_index as u64)
    }

    /// Simulates one body end to end: sample scenario (and, for a churned
    /// fleet, the body's residency and placement trajectory), build, run the
    /// active span, reduce.
    fn simulate_body(&self, body_index: usize, links: &LinkCache) -> BodySummary {
        let scenario = self.scenario_for_body(body_index);
        let (active_span, migrations, replans, placement_energy) = match &self.churn {
            None => (self.horizon, 0, 0, Energy::ZERO),
            Some(spec) => {
                let sample = spec
                    .churn()
                    .sample(self.base_seed, body_index as u64, self.horizon);
                let outcome = placement::simulate_placement(spec, &scenario, &sample);
                (
                    sample.active(),
                    outcome.migrations,
                    outcome.replans,
                    outcome.energy,
                )
            }
        };
        let mut sim = scenario.build_simulation(links);
        let report = sim.run(active_span);
        let mut latency = LatencySketch::new();
        let mut worst_p95 = TimeSpan::ZERO;
        for (stats, sketch) in report.node_stats().iter().zip(report.latency_sketches()) {
            latency.merge(sketch);
            worst_p95 = worst_p95.max(stats.p95_latency);
        }
        BodySummary {
            body_index,
            seed: scenario.seed(),
            archetype: Arc::clone(scenario.archetype_label()),
            nodes: scenario.leaves().len(),
            generated_frames: report.node_stats().iter().map(|s| s.generated_frames).sum(),
            delivered_frames: report.node_stats().iter().map(|s| s.delivered_frames).sum(),
            delivered_bytes: report.node_stats().iter().map(|s| s.delivered_bytes).sum(),
            events_processed: report.events_processed(),
            delivery_ratio: report.delivery_ratio(),
            total_energy: report.total_energy(),
            worst_p95_latency: worst_p95,
            latency,
            active_span,
            migrations,
            replans,
            placement_energy,
        }
    }

    /// Streams the whole fleet over `runner` in body-order chunks and folds
    /// every [`BodySummary`] into a bounded [`FleetAggregator`].
    ///
    /// The expensive channel-model link derivation runs once per distinct
    /// `(technology, site)` pair of the population; each chunk materialises
    /// at most `chunk_size` summaries before they are folded and dropped, so
    /// peak memory is `O(chunk + K + sketch)` — independent of `bodies`.
    /// Chunks are folded in body order and sampling is per-body pure, so the
    /// report is byte-identical at any thread width and chunk size.
    #[must_use]
    pub fn run(&self, runner: &SweepRunner) -> FleetReport {
        let links = LinkCache::for_population(&self.population);
        let mut aggregator = FleetAggregator::new(self.horizon, self.top_k);
        self.fold_range(runner, &links, &mut aggregator, 0..self.bodies);
        aggregator.finish()
    }

    /// Folds bodies `range` (in body order) into `aggregator` — the one
    /// streaming loop behind [`run`](Self::run), the shard runners and
    /// checkpoint resume.  Chunk boundaries are an execution detail: the
    /// fold ingests per body in index order, so the resulting state depends
    /// only on which bodies were folded, never on how they were chunked or
    /// which thread simulated them.
    fn fold_range(
        &self,
        runner: &SweepRunner,
        links: &LinkCache,
        aggregator: &mut FleetAggregator,
        range: Range<usize>,
    ) {
        let chunk_size = self
            .chunk_size
            .unwrap_or_else(|| (runner.threads() * 4).max(64));
        let mut chunk: Vec<usize> = Vec::with_capacity(chunk_size.min(range.len()));
        let mut start = range.start;
        while start < range.end {
            let end = (start + chunk_size).min(range.end);
            chunk.clear();
            chunk.extend(start..end);
            for summary in runner.map(&chunk, |&body_index| self.simulate_body(body_index, links)) {
                aggregator.ingest(summary);
            }
            start = end;
        }
    }

    /// Runs the fold for bodies `0..stop` (clamped to the fleet size) and
    /// captures the partial state as a resumable [`FleetCheckpoint`] — the
    /// "interrupted mid-stream" half of fault-tolerant ingestion.
    #[must_use]
    pub fn run_until(&self, runner: &SweepRunner, stop: usize) -> FleetCheckpoint {
        let stop = stop.min(self.bodies);
        let links = LinkCache::for_population(&self.population);
        let mut aggregator = FleetAggregator::new(self.horizon, self.top_k);
        self.fold_range(runner, &links, &mut aggregator, 0..stop);
        FleetCheckpoint::capture(self, &aggregator, stop)
    }

    /// Resumes an interrupted fold from `checkpoint` and finishes the fleet:
    /// the result is byte-identical to an uninterrupted [`run`](Self::run)
    /// (property-tested at every body boundary in
    /// `tests/fleet_checkpoint.rs`).
    ///
    /// # Errors
    /// [`CheckpointError::ConfigMismatch`] if the checkpoint was captured
    /// under a different fleet configuration (bodies, base seed, horizon or
    /// top-K); [`CheckpointError::NotResumable`] if it is a shard partial
    /// (its aggregator did not ingest the full `0..next_body` prefix — such
    /// partials merge via [`ShardPlan::merge_checkpoints`], they do not
    /// resume).
    pub fn resume(
        &self,
        runner: &SweepRunner,
        checkpoint: FleetCheckpoint,
    ) -> Result<FleetReport, CheckpointError> {
        checkpoint.verify_config(self)?;
        if checkpoint.bodies_ingested() != checkpoint.next_body() {
            return Err(CheckpointError::NotResumable);
        }
        let (mut aggregator, next_body) = checkpoint.into_parts();
        let links = LinkCache::for_population(&self.population);
        self.fold_range(runner, &links, &mut aggregator, next_body..self.bodies);
        Ok(aggregator.finish())
    }
}

/// The bounded-size reduction of one body's simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BodySummary {
    /// Position of the body in the fleet (aggregation order).
    pub body_index: usize,
    /// Seed the body's traffic sources ran under.
    pub seed: u64,
    /// Name of the population archetype the body was drawn from (interned).
    pub archetype: Arc<str>,
    /// Number of leaf nodes the body carried.
    pub nodes: usize,
    /// Frames generated across the body's nodes.
    pub generated_frames: usize,
    /// Frames delivered to the body's hub.
    pub delivered_frames: usize,
    /// Application bytes delivered to the body's hub.
    pub delivered_bytes: usize,
    /// Discrete events the body's simulation processed.
    pub events_processed: u64,
    /// Delivered / generated frames for this body.
    pub delivery_ratio: f64,
    /// Radio + baseline energy across the body's nodes.
    pub total_energy: Energy,
    /// Worst per-node p95 delivery latency on this body.
    pub worst_p95_latency: TimeSpan,
    /// Merged latency sketch over every node of this body.
    pub latency: LatencySketch,
    /// Span the body actually simulated: the full horizon for a static
    /// fleet, the duty-weighted residency for a churned one.
    pub active_span: TimeSpan,
    /// Placement migrations adopted over the body's residency.
    pub migrations: u64,
    /// Optimiser re-runs after admission (a superset of migrations).
    pub replans: u64,
    /// Inference + migration energy charged by the placement layer
    /// ([`Energy::ZERO`] for a churn-free fleet).
    pub placement_energy: Energy,
}

/// Bounded-memory, body-order fold of a fleet stream.
///
/// State per aggregator, independent of how many bodies are ingested:
///
/// * one fleet-wide merged [`LatencySketch`] (every delivered frame),
/// * one [`LatencySketch`] over per-body worst-p95 values (the cross-body
///   SLO distribution, queryable to the sketch's documented 1/64 bound,
///   with exact min/max),
/// * running scalar totals (energy, frames, bytes, events, delivery),
/// * the top-K worst bodies by p95, kept exactly (worst first, ties broken
///   toward the earlier body).
///
/// Ingestion order is **no longer** load-bearing: every piece of state
/// merges through an associative, commutative operation (integer adds,
/// [`ExactSum`] fixed-point sums, bucket-wise sketch merges, min/max
/// lattices, and a top-K union ordered by `(p95 desc, body index asc)`), so
/// the aggregator is a commutative monoid under [`merge`](Self::merge) with
/// [`FleetAggregator::new`] as the identity.  Fold any contiguous shards
/// independently, merge the partials in any grouping, and the state is
/// byte-identical to the single-stream body-order fold — the contract the
/// shard and checkpoint layers are built on (property-tested in
/// `tests/fleet_shards.rs`).
#[derive(Debug, Clone)]
pub struct FleetAggregator {
    horizon: TimeSpan,
    top_k: usize,
    bodies: usize,
    fleet_latency: LatencySketch,
    body_p95: LatencySketch,
    /// Fleet-wide energy in joules, accumulated exactly so merging partial
    /// folds reproduces the single-stream low bits.
    total_energy: ExactSum,
    total_generated: usize,
    total_delivered: usize,
    total_delivered_bytes: usize,
    total_events: u64,
    min_body_delivery_ratio: f64,
    /// Placement migrations adopted across the fleet (0 without churn).
    total_migrations: u64,
    /// Optimiser re-runs across the fleet (0 without churn).
    total_replans: u64,
    /// Sum of per-body active spans in seconds, accumulated exactly.
    active_span: ExactSum,
    /// Placement-layer energy in joules, accumulated exactly.
    placement_energy: ExactSum,
    worst: Vec<BodySummary>,
}

impl FleetAggregator {
    /// Creates an empty aggregator keeping the `top_k` worst bodies exactly.
    #[must_use]
    pub fn new(horizon: TimeSpan, top_k: usize) -> Self {
        Self {
            horizon,
            top_k: top_k.max(1),
            bodies: 0,
            fleet_latency: LatencySketch::new(),
            body_p95: LatencySketch::new(),
            total_energy: ExactSum::new(),
            total_generated: 0,
            total_delivered: 0,
            total_delivered_bytes: 0,
            total_events: 0,
            min_body_delivery_ratio: 1.0,
            total_migrations: 0,
            total_replans: 0,
            active_span: ExactSum::new(),
            placement_energy: ExactSum::new(),
            worst: Vec::new(),
        }
    }

    /// Number of bodies ingested so far.
    #[must_use]
    pub fn bodies(&self) -> usize {
        self.bodies
    }

    /// Folds one body into the aggregate.  Call in body order for
    /// thread-width-independent results.
    pub fn ingest(&mut self, summary: BodySummary) {
        self.bodies += 1;
        self.fleet_latency.merge(&summary.latency);
        self.body_p95.record(summary.worst_p95_latency);
        self.total_energy.add(summary.total_energy.as_joules());
        self.total_generated += summary.generated_frames;
        self.total_delivered += summary.delivered_frames;
        self.total_delivered_bytes += summary.delivered_bytes;
        self.total_events += summary.events_processed;
        self.min_body_delivery_ratio = self.min_body_delivery_ratio.min(summary.delivery_ratio);
        self.total_migrations += summary.migrations;
        self.total_replans += summary.replans;
        self.active_span.add(summary.active_span.as_seconds());
        self.placement_energy
            .add(summary.placement_energy.as_joules());
        // Keep `worst` sorted worst-first (p95 descending, earlier body
        // first on ties): find the first slot whose p95 is strictly smaller
        // and insert there, so in-order ingestion is fully deterministic.
        if self.worst.len() == self.top_k
            && summary.worst_p95_latency
                <= self
                    .worst
                    .last()
                    .map_or(TimeSpan::ZERO, |s| s.worst_p95_latency)
        {
            return;
        }
        let position = self
            .worst
            .iter()
            .position(|s| s.worst_p95_latency < summary.worst_p95_latency)
            .unwrap_or(self.worst.len());
        self.worst.insert(position, summary);
        self.worst.truncate(self.top_k);
    }

    /// Memory-footprint proxy of the aggregation state: live sketch buckets
    /// (fleet + body-p95 + the top-K bodies' sketches) plus retained
    /// summaries.  Bounded by value ranges and K — **not** by body count —
    /// which `bench_netsim` asserts across a 10× fleet-size spread.
    #[must_use]
    pub fn state_buckets(&self) -> usize {
        state_buckets_of(&self.fleet_latency, &self.body_p95, &self.worst)
    }

    /// Merges another partial fold into this one — the commutative-monoid
    /// operation of the fleet algebra.
    ///
    /// Every field combines through an associative, commutative operation:
    /// counts and totals are integer additions, the latency and per-body-p95
    /// sketches merge bucket-wise with [`ExactSum`] sums, the minimum
    /// delivery ratio is a lattice meet, and the exact worst-body lists
    /// merge union-then-truncate under the total order `(p95 descending,
    /// body index ascending)` — the same order single-stream ingestion
    /// maintains, and a total order because body indices are unique.  Hence
    /// for any partition of the fleet into contiguous shards, folding each
    /// shard independently and merging the partials (in **any** grouping or
    /// order) is byte-identical to the single-stream fold.
    ///
    /// Truncation loses nothing: a body in the merged top-K is in the top-K
    /// of whichever partial ingested it, so per-shard truncation before the
    /// merge preserves the global top-K — which is what makes the operation
    /// associative despite the bound.
    ///
    /// # Panics
    /// Panics if the two partials disagree on the horizon or top-K — merging
    /// folds of different fleet configurations is a programming error.
    pub fn merge(&mut self, other: FleetAggregator) {
        assert_eq!(
            self.horizon.as_seconds().to_bits(),
            other.horizon.as_seconds().to_bits(),
            "merging fleet partials with different horizons"
        );
        assert_eq!(
            self.top_k, other.top_k,
            "merging fleet partials with different top-K"
        );
        self.bodies += other.bodies;
        self.fleet_latency.merge(&other.fleet_latency);
        self.body_p95.merge(&other.body_p95);
        self.total_energy.add_sum(&other.total_energy);
        self.total_generated += other.total_generated;
        self.total_delivered += other.total_delivered;
        self.total_delivered_bytes += other.total_delivered_bytes;
        self.total_events += other.total_events;
        self.min_body_delivery_ratio = self
            .min_body_delivery_ratio
            .min(other.min_body_delivery_ratio);
        self.total_migrations += other.total_migrations;
        self.total_replans += other.total_replans;
        self.active_span.add_sum(&other.active_span);
        self.placement_energy.add_sum(&other.placement_energy);
        let mut left = std::mem::take(&mut self.worst).into_iter().peekable();
        let mut right = other.worst.into_iter().peekable();
        let mut merged = Vec::with_capacity(self.top_k.min(left.len() + right.len()));
        while merged.len() < self.top_k {
            let take_left = match (left.peek(), right.peek()) {
                (Some(a), Some(b)) => ranks_before(a, b),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let next = if take_left { left.next() } else { right.next() };
            merged.extend(next);
        }
        self.worst = merged;
    }

    /// Finalises the fold into a [`FleetReport`].
    #[must_use]
    pub fn finish(self) -> FleetReport {
        FleetReport {
            horizon: self.horizon,
            top_k: self.top_k,
            bodies: self.bodies,
            fleet_latency: self.fleet_latency,
            body_p95: self.body_p95,
            total_energy: Energy::from_joules(self.total_energy.to_f64()),
            total_generated: self.total_generated,
            total_delivered: self.total_delivered,
            total_delivered_bytes: self.total_delivered_bytes,
            total_events: self.total_events,
            min_body_delivery_ratio: self.min_body_delivery_ratio,
            total_migrations: self.total_migrations,
            total_replans: self.total_replans,
            active_span: TimeSpan::from_seconds(self.active_span.to_f64()),
            placement_energy: Energy::from_joules(self.placement_energy.to_f64()),
            worst: self.worst,
        }
    }
}

/// The total order the worst-body lists are kept and merged in: p95 latency
/// descending, ties broken toward the earlier body index.  Body indices are
/// unique across a fleet, so this is a strict total order — which is what
/// makes the top-K union in [`FleetAggregator::merge`] order-insensitive.
fn ranks_before(a: &BodySummary, b: &BodySummary) -> bool {
    a.worst_p95_latency > b.worst_p95_latency
        || (a.worst_p95_latency == b.worst_p95_latency && a.body_index < b.body_index)
}

/// The one definition of the aggregation-state memory proxy: live sketch
/// buckets (fleet + per-body-p95 + each retained body's sketch) plus one
/// unit per retained summary.  Shared by [`FleetAggregator::state_buckets`]
/// and [`FleetReport::aggregation_state_buckets`] so the bench's
/// bounded-memory guard and the aggregator always measure the same quantity.
fn state_buckets_of(
    fleet_latency: &LatencySketch,
    body_p95: &LatencySketch,
    worst: &[BodySummary],
) -> usize {
    fleet_latency.bucket_count()
        + body_p95.bucket_count()
        + worst
            .iter()
            .map(|s| s.latency.bucket_count() + 1)
            .sum::<usize>()
}

/// Deterministic aggregate of a fleet stream — everything the old
/// materialised report answered, from `O(K + sketch)` state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    horizon: TimeSpan,
    top_k: usize,
    bodies: usize,
    fleet_latency: LatencySketch,
    body_p95: LatencySketch,
    total_energy: Energy,
    total_generated: usize,
    total_delivered: usize,
    total_delivered_bytes: usize,
    total_events: u64,
    min_body_delivery_ratio: f64,
    total_migrations: u64,
    total_replans: u64,
    active_span: TimeSpan,
    placement_energy: Energy,
    worst: Vec<BodySummary>,
}

impl FleetReport {
    /// Number of bodies aggregated.
    #[must_use]
    pub fn bodies(&self) -> usize {
        self.bodies
    }

    /// Simulated horizon per body.
    #[must_use]
    pub fn horizon(&self) -> TimeSpan {
        self.horizon
    }

    /// The worst bodies by p95 latency (worst first), kept exactly — at most
    /// the configured top-K, fewer when the fleet is smaller.
    #[must_use]
    pub fn worst_bodies(&self) -> &[BodySummary] {
        &self.worst
    }

    /// Fleet-wide delivery-latency distribution (every delivered frame on
    /// every body), queryable to the sketch's documented error bound.
    #[must_use]
    pub fn fleet_latency(&self) -> &LatencySketch {
        &self.fleet_latency
    }

    /// Distribution of per-body worst p95 latency across the fleet (exact
    /// count/min/max, quantiles within the sketch bound).
    #[must_use]
    pub fn body_p95_distribution(&self) -> &LatencySketch {
        &self.body_p95
    }

    /// Total discrete events processed across the fleet.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.total_events
    }

    /// Total application bytes delivered across the fleet.
    #[must_use]
    pub fn delivered_bytes(&self) -> usize {
        self.total_delivered_bytes
    }

    /// Fleet-wide delivered / generated frame ratio.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.total_generated == 0 {
            return 1.0;
        }
        self.total_delivered as f64 / self.total_generated as f64
    }

    /// Total (radio + baseline) energy across the fleet.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }

    /// Aggregate delivered throughput across the fleet.
    #[must_use]
    pub fn aggregate_throughput(&self) -> DataRate {
        if self.horizon.as_seconds() <= 0.0 {
            return DataRate::ZERO;
        }
        DataVolume::from_bytes(self.total_delivered_bytes as f64) / self.horizon
    }

    /// Memory-footprint proxy of the retained aggregation state (see
    /// [`FleetAggregator::state_buckets`]).
    #[must_use]
    pub fn aggregation_state_buckets(&self) -> usize {
        state_buckets_of(&self.fleet_latency, &self.body_p95, &self.worst)
    }

    /// The `q`-quantile (nearest-rank, `q` clamped to `[0, 1]`) across bodies
    /// of the per-body worst p95 latency — the "how bad is the unluckiest
    /// body" fleet SLO curve.
    ///
    /// Exactness follows the bounded aggregation state: ranks that land in
    /// the retained top-K tail (always including `q = 1.0`) and `q = 0.0`
    /// (the sketch's exact minimum) are **exact**; interior quantiles come
    /// from the per-body p95 sketch and may over-report by at most
    /// [`hidwa_netsim::sketch::RELATIVE_ERROR_BOUND`], never under-report.
    /// The curve is monotone in `q`: interior results are capped by the
    /// smallest retained tail value (a valid upper bound for every interior
    /// rank), so the sketch's overshoot can never lift an interior point
    /// above the exact tail that follows it.
    #[must_use]
    pub fn body_worst_p95_quantile(&self, q: f64) -> TimeSpan {
        if self.bodies == 0 {
            return TimeSpan::ZERO;
        }
        // Rank in the ascending per-body ordering.
        let index = sketch::nearest_rank_index(self.bodies, q);
        if index == 0 {
            return self.body_p95.min();
        }
        // `worst` holds the top `worst.len()` ascending positions
        // `bodies - worst.len() ..= bodies - 1`, worst first.
        if index >= self.bodies - self.worst.len() {
            return self.worst[self.bodies - 1 - index].worst_p95_latency;
        }
        let interior = self.body_p95.quantile(q);
        self.worst
            .last()
            .map_or(interior, |tail| interior.min(tail.worst_p95_latency))
    }

    /// Smallest per-body delivery ratio in the fleet (1.0 for an empty
    /// fleet).
    #[must_use]
    pub fn min_body_delivery_ratio(&self) -> f64 {
        self.min_body_delivery_ratio
    }

    /// Placement migrations adopted across the fleet (0 without churn).
    #[must_use]
    pub fn migrations(&self) -> u64 {
        self.total_migrations
    }

    /// Optimiser re-runs across the fleet after admission (0 without churn).
    #[must_use]
    pub fn replans(&self) -> u64 {
        self.total_replans
    }

    /// Total active (duty-weighted resident) simulated time across bodies.
    #[must_use]
    pub fn active_span(&self) -> TimeSpan {
        self.active_span
    }

    /// Inference + migration energy charged by the placement layer
    /// ([`Energy::ZERO`] without churn).
    #[must_use]
    pub fn placement_energy(&self) -> Energy {
        self.placement_energy
    }

    /// Migrations per active body-hour — the headline policy-comparison
    /// metric (ccicconetti/stateful-faas-sim's `migration_rate` at fleet
    /// scale).  Zero when no body was ever active.
    #[must_use]
    pub fn migration_rate(&self) -> f64 {
        let hours = self.active_span.as_seconds() / 3600.0;
        if hours <= 0.0 {
            return 0.0;
        }
        self.total_migrations as f64 / hours
    }

    /// Mean fraction of the horizon bodies spent active — 1.0 for a static
    /// fleet, lower under churn (arrival/departure clipping × duty cycle).
    /// Zero for an empty fleet.
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        let denominator = self.bodies as f64 * self.horizon.as_seconds();
        if denominator <= 0.0 {
            return 0.0;
        }
        self.active_span.as_seconds() / denominator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_body_seeds_are_decorrelated() {
        let fleet = FleetConfig::new(4);
        let seeds: Vec<u64> = (0..4).map(|i| fleet.seed_for_body(i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Derivation is pure: same index, same seed.
        assert_eq!(fleet.seed_for_body(2), fleet.seed_for_body(2));
        // And the scenario layer agrees with the fleet layer.
        assert_eq!(fleet.scenario_for_body(2).seed(), fleet.seed_for_body(2));
    }

    #[test]
    fn fleet_aggregates_are_identical_across_thread_widths_and_chunks() {
        let fleet = FleetConfig::new(32)
            .with_base_seed(99)
            .with_horizon(TimeSpan::from_seconds(2.0));
        let serial = fleet.run(&SweepRunner::serial());
        let wide = fleet.run(&SweepRunner::with_threads(4));
        assert_eq!(serial, wide);
        assert_eq!(serial.bodies(), 32);
        // Chunk size is an execution detail, not an output knob.
        let chunked = fleet
            .clone()
            .with_chunk_size(5)
            .run(&SweepRunner::with_threads(3));
        assert_eq!(serial, chunked);
    }

    #[test]
    fn heterogeneous_fleet_is_deterministic_and_bounded() {
        let fleet = FleetConfig::new(48)
            .with_population(PopulationModel::mixed_default())
            .with_base_seed(2024)
            .with_horizon(TimeSpan::from_seconds(1.0))
            .with_top_k(4);
        let serial = fleet.run(&SweepRunner::serial());
        let wide = fleet
            .clone()
            .with_chunk_size(7)
            .run(&SweepRunner::with_threads(4));
        assert_eq!(serial, wide);
        assert_eq!(serial.bodies(), 48);
        assert_eq!(serial.worst_bodies().len(), 4);
        // Worst-first ordering with deterministic tie-breaks.
        for pair in serial.worst_bodies().windows(2) {
            assert!(pair[0].worst_p95_latency >= pair[1].worst_p95_latency);
        }
        // Multiple archetypes actually showed up in the stream.
        let sampled: Vec<&str> = (0..48)
            .map(|i| fleet.scenario_for_body(i))
            .map(|s| {
                if s.archetype() == "health-patch" {
                    "h"
                } else {
                    "o"
                }
            })
            .collect();
        assert!(sampled.contains(&"h") && sampled.contains(&"o"));
    }

    #[test]
    fn fleet_totals_match_a_manual_fold() {
        let fleet = FleetConfig::new(5).with_horizon(TimeSpan::from_seconds(3.0));
        let report = fleet.run(&SweepRunner::serial());
        // Re-derive the same totals by folding the five bodies by hand.
        let links = LinkCache::for_population(fleet.population());
        let mut aggregator = FleetAggregator::new(fleet.horizon(), FleetConfig::DEFAULT_TOP_K);
        for i in 0..5 {
            aggregator.ingest(fleet.simulate_body(i, &links));
        }
        let manual = aggregator.finish();
        assert_eq!(report, manual);
        assert!(report.delivery_ratio() > 0.9);
        assert!(report.total_energy() > Energy::ZERO);
        assert!(report.aggregate_throughput() > DataRate::ZERO);
        // With K ≥ bodies, every body is retained and the sketch merged all
        // delivered frames.
        assert_eq!(report.worst_bodies().len(), 5);
        let delivered: u64 = report
            .worst_bodies()
            .iter()
            .map(|s| s.delivered_frames as u64)
            .sum();
        assert_eq!(report.fleet_latency().count(), delivered);
        assert_eq!(report.body_p95_distribution().count(), 5);
    }

    #[test]
    fn slo_quantiles_are_monotone_and_bounded_by_the_worst_body() {
        let fleet = FleetConfig::new(9).with_horizon(TimeSpan::from_seconds(2.0));
        let report = fleet.run(&SweepRunner::serial());
        let p50 = report.body_worst_p95_quantile(0.5);
        let p95 = report.body_worst_p95_quantile(0.95);
        let worst = report.body_worst_p95_quantile(1.0);
        assert!(p50 <= p95 && p95 <= worst);
        assert!(worst > TimeSpan::ZERO);
        // q = 1.0 is exact: it is the retained worst body.
        assert_eq!(worst, report.worst_bodies()[0].worst_p95_latency);
        assert!(report.min_body_delivery_ratio() > 0.5);
    }

    #[test]
    fn zero_body_fleet_reports_identities() {
        let report = FleetConfig::new(0).run(&SweepRunner::serial());
        assert_eq!(report.bodies(), 0);
        assert!(report.worst_bodies().is_empty());
        assert_eq!(report.events_processed(), 0);
        assert_eq!(report.delivered_bytes(), 0);
        assert_eq!(report.delivery_ratio(), 1.0);
        assert_eq!(report.total_energy(), Energy::ZERO);
        assert_eq!(report.aggregate_throughput(), DataRate::ZERO);
        assert_eq!(report.min_body_delivery_ratio(), 1.0);
        assert_eq!(report.body_worst_p95_quantile(0.0), TimeSpan::ZERO);
        assert_eq!(report.body_worst_p95_quantile(0.5), TimeSpan::ZERO);
        assert_eq!(report.body_worst_p95_quantile(1.0), TimeSpan::ZERO);
        assert_eq!(report.fleet_latency().count(), 0);
    }

    #[test]
    fn single_body_fleet_is_its_own_quantile() {
        let fleet = FleetConfig::new(1).with_horizon(TimeSpan::from_seconds(2.0));
        let report = fleet.run(&SweepRunner::serial());
        assert_eq!(report.bodies(), 1);
        assert_eq!(report.worst_bodies().len(), 1);
        let only = report.worst_bodies()[0].worst_p95_latency;
        // With one body every quantile is that body — and exact, because the
        // single ascending position is inside the retained tail.
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(report.body_worst_p95_quantile(q), only);
        }
        assert!(only > TimeSpan::ZERO);
    }

    #[test]
    fn boundary_quantiles_are_exact_even_beyond_top_k() {
        // 12 bodies, top-K of 2: interior quantiles go through the sketch,
        // but q = 0.0 (exact min) and q = 1.0 (retained worst) stay exact.
        let fleet = FleetConfig::new(12)
            .with_population(PopulationModel::mixed_default())
            .with_horizon(TimeSpan::from_seconds(1.0))
            .with_top_k(2);
        let report = fleet.run(&SweepRunner::serial());
        assert_eq!(report.worst_bodies().len(), 2);
        // Exact per-body p95 values, recomputed independently.
        let links = LinkCache::for_population(fleet.population());
        let mut p95s: Vec<TimeSpan> = (0..12)
            .map(|i| fleet.simulate_body(i, &links).worst_p95_latency)
            .collect();
        p95s.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        assert_eq!(report.body_worst_p95_quantile(0.0), p95s[0]);
        assert_eq!(report.body_worst_p95_quantile(1.0), p95s[11]);
        // The second-worst is also in the retained tail, hence exact.
        let q_second = 10.0 / 11.0;
        assert_eq!(report.body_worst_p95_quantile(q_second), p95s[10]);
        // Interior quantiles respect the sketch bound relative to exact.
        for q in [0.25, 0.5, 0.75] {
            let exact = p95s[sketch::nearest_rank_index(12, q)];
            let got = report.body_worst_p95_quantile(q);
            assert!(got >= exact);
            assert!(
                got.as_seconds()
                    <= exact.as_seconds() * (1.0 + sketch::RELATIVE_ERROR_BOUND) + 1e-15
            );
        }
        // The SLO curve is monotone in q — including across the
        // sketch-interior → exact-tail boundary, where the interior result
        // is capped by the smallest retained tail value.
        let curve: Vec<TimeSpan> = (0..=100)
            .map(|i| report.body_worst_p95_quantile(i as f64 / 100.0))
            .collect();
        for pair in curve.windows(2) {
            assert!(pair[0] <= pair[1], "SLO curve dipped: {pair:?}");
        }
    }

    #[test]
    fn churned_fleet_reports_migrations_and_occupancy() {
        use crate::population::ChurnModel;
        let base = FleetConfig::new(24)
            .with_population(PopulationModel::mixed_default())
            .with_base_seed(77)
            .with_horizon(TimeSpan::from_seconds(1.5));
        let static_report = base.clone().run(&SweepRunner::serial());
        assert_eq!(static_report.migrations(), 0);
        assert_eq!(static_report.replans(), 0);
        assert_eq!(static_report.placement_energy(), Energy::ZERO);
        assert!((static_report.mean_occupancy() - 1.0).abs() < 1e-12);

        let spec = ChurnSpec::new(
            ChurnModel::with_rate(0.5).with_link_fade(0.9),
            PolicyKind::ReoptimizeOnChange,
        );
        let churned = base.clone().with_churn(spec.clone());
        let report = churned.run(&SweepRunner::serial());
        // Churn shrinks occupancy below the static fleet's.
        assert!(report.mean_occupancy() < 1.0);
        assert!(report.mean_occupancy() > 0.0);
        assert!(report.active_span() > TimeSpan::ZERO);
        // The eager policy re-plans every context epoch of every body.
        let epochs = u64::from(spec.churn().epochs());
        assert_eq!(report.replans(), 24 * (epochs - 1));
        assert!(report.placement_energy() > Energy::ZERO);
        assert!(report.migration_rate() >= 0.0);

        // Determinism: thread width and chunk size still invisible.
        let wide = churned
            .clone()
            .with_chunk_size(5)
            .run(&SweepRunner::with_threads(4));
        let serial = churned.run(&SweepRunner::serial());
        assert_eq!(serial, wide);
        assert_eq!(serial, report);
    }

    #[test]
    fn enabling_churn_does_not_change_scenario_sampling() {
        use crate::population::ChurnModel;
        let base = FleetConfig::new(8).with_population(PopulationModel::mixed_default());
        let churned = base.clone().with_churn(ChurnSpec::new(
            ChurnModel::with_rate(0.8),
            PolicyKind::Hysteresis,
        ));
        for i in 0..8 {
            let a = base.scenario_for_body(i);
            let b = churned.scenario_for_body(i);
            assert_eq!(a.seed(), b.seed());
            assert_eq!(a.archetype(), b.archetype());
            assert_eq!(a.leaves().len(), b.leaves().len());
        }
        assert_eq!(base.churn_fingerprint(), 0);
        assert_ne!(churned.churn_fingerprint(), 0);
    }

    #[test]
    fn aggregator_state_is_independent_of_body_count() {
        let run = |bodies: usize| {
            FleetConfig::new(bodies)
                .with_population(PopulationModel::mixed_default())
                .with_horizon(TimeSpan::from_seconds(1.0))
                .run(&SweepRunner::serial())
        };
        let small = run(20);
        let large = run(200);
        // 10× the bodies must not grow retained state 10×: the sketch window
        // may widen a little as rarer latencies appear, but stays in the
        // same O(K + buckets) class.
        assert!(
            large.aggregation_state_buckets() <= small.aggregation_state_buckets() * 2 + 64,
            "state grew with fleet size: {} -> {}",
            small.aggregation_state_buckets(),
            large.aggregation_state_buckets()
        );
        assert_eq!(large.worst_bodies().len(), FleetConfig::DEFAULT_TOP_K);
    }
}
