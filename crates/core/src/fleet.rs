//! Fleet-scale batching of independent body networks.
//!
//! The paper's north star is serving millions of users, and each user is one
//! star-topology body network — fully independent of every other body, which
//! makes fleet simulation embarrassingly parallel.  [`FleetConfig`] describes
//! a batch of `N` identical bodies with decorrelated per-body seeds;
//! [`FleetConfig::run`] fans the bodies across a
//! [`SweepRunner`] and folds the per-body results
//! **in body order**, so the aggregate [`FleetReport`] is byte-identical at
//! any thread width (asserted by the tests below and by `bench_netsim`).
//!
//! Memory stays bounded at fleet scale: each body reduces to a compact
//! [`BodySummary`] — counters, energy and a merged
//! [`LatencySketch`] — inside the parallel map, so a million-body fleet holds
//! a million summaries, never a million full event logs.
//!
//! # Example
//!
//! ```
//! use hidwa_core::fleet::FleetConfig;
//! use hidwa_core::sweep::SweepRunner;
//! use hidwa_units::TimeSpan;
//!
//! let fleet = FleetConfig::new(8).with_horizon(TimeSpan::from_seconds(2.0));
//! let report = fleet.run(&SweepRunner::serial());
//! assert_eq!(report.bodies(), 8);
//! assert!(report.delivery_ratio() > 0.9);
//! assert!(report.fleet_latency().quantile(0.95) > TimeSpan::ZERO);
//! ```

use crate::scenario::{self, LeafSpec};
use crate::sweep::SweepRunner;
use hidwa_netsim::mac::MacPolicy;
use hidwa_netsim::sim::Simulation;
use hidwa_netsim::sketch::LatencySketch;
use hidwa_phy::RadioTechnology;
use hidwa_units::{DataRate, DataVolume, Energy, TimeSpan};
use serde::{Deserialize, Serialize};

/// SplitMix64 finaliser decorrelating per-body seeds: adjacent body indices
/// map to statistically independent streams even for `base_seed = 0`.
fn body_seed(base_seed: u64, body_index: u64) -> u64 {
    let mut z =
        base_seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(body_index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// A batch of independent, identically configured body networks.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    bodies: usize,
    base_seed: u64,
    horizon: TimeSpan,
    technology: RadioTechnology,
    policy: MacPolicy,
    leaves: Vec<LeafSpec>,
}

impl FleetConfig {
    /// A fleet of `bodies` copies of the standard five-leaf body network
    /// (Wi-R, polling MAC, 60 s horizon).
    #[must_use]
    pub fn new(bodies: usize) -> Self {
        Self {
            bodies,
            base_seed: 0xF1EE7,
            horizon: TimeSpan::from_seconds(60.0),
            technology: RadioTechnology::WiR,
            policy: MacPolicy::Polling,
            leaves: scenario::standard_leaf_set(),
        }
    }

    /// Sets the base seed; per-body seeds are derived from it via SplitMix64.
    #[must_use]
    pub fn with_base_seed(mut self, base_seed: u64) -> Self {
        self.base_seed = base_seed;
        self
    }

    /// Sets the simulated horizon per body.
    #[must_use]
    pub fn with_horizon(mut self, horizon: TimeSpan) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the radio technology connecting every body's leaves to its hub.
    #[must_use]
    pub fn with_technology(mut self, technology: RadioTechnology) -> Self {
        self.technology = technology;
        self
    }

    /// Sets the MAC policy used on every body.
    #[must_use]
    pub fn with_policy(mut self, policy: MacPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the per-body leaf set.
    #[must_use]
    pub fn with_leaves(mut self, leaves: Vec<LeafSpec>) -> Self {
        self.leaves = leaves;
        self
    }

    /// Number of bodies in the fleet.
    #[must_use]
    pub fn bodies(&self) -> usize {
        self.bodies
    }

    /// Simulated horizon per body.
    #[must_use]
    pub fn horizon(&self) -> TimeSpan {
        self.horizon
    }

    /// The seed the simulation of `body_index` runs under.
    #[must_use]
    pub fn seed_for_body(&self, body_index: usize) -> u64 {
        body_seed(self.base_seed, body_index as u64)
    }

    /// Simulates the whole fleet over `runner` and aggregates in body order.
    ///
    /// The expensive part — channel-model link derivation for each leaf —
    /// runs once; every body reuses the resulting node configurations with
    /// its own seed.  Each body runs on the streaming netsim engine, reduces
    /// to a [`BodySummary`] inside the parallel map, and the summaries are
    /// folded serially in body order, so the report is independent of the
    /// runner's thread width.
    #[must_use]
    pub fn run(&self, runner: &SweepRunner) -> FleetReport {
        let template = scenario::body_network(self.technology, &self.leaves, self.policy);
        let nodes = template.nodes().to_vec();
        let bodies: Vec<usize> = (0..self.bodies).collect();
        let summaries = runner.map(&bodies, |&body_index| {
            let mut sim = Simulation::new(self.policy).with_seed(self.seed_for_body(body_index));
            for node in &nodes {
                sim.add_node(node.clone());
            }
            let report = sim.run(self.horizon);
            let mut latency = LatencySketch::new();
            let mut worst_p95 = TimeSpan::ZERO;
            for (stats, sketch) in report.node_stats().iter().zip(report.latency_sketches()) {
                latency.merge(sketch);
                worst_p95 = worst_p95.max(stats.p95_latency);
            }
            BodySummary {
                body_index,
                seed: self.seed_for_body(body_index),
                generated_frames: report.node_stats().iter().map(|s| s.generated_frames).sum(),
                delivered_frames: report.node_stats().iter().map(|s| s.delivered_frames).sum(),
                delivered_bytes: report.node_stats().iter().map(|s| s.delivered_bytes).sum(),
                events_processed: report.events_processed(),
                delivery_ratio: report.delivery_ratio(),
                total_energy: report.total_energy(),
                worst_p95_latency: worst_p95,
                latency,
            }
        });
        FleetReport::aggregate(self.horizon, summaries)
    }
}

/// The bounded-size reduction of one body's simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BodySummary {
    /// Position of the body in the fleet (aggregation order).
    pub body_index: usize,
    /// Seed the body's traffic sources ran under.
    pub seed: u64,
    /// Frames generated across the body's nodes.
    pub generated_frames: usize,
    /// Frames delivered to the body's hub.
    pub delivered_frames: usize,
    /// Application bytes delivered to the body's hub.
    pub delivered_bytes: usize,
    /// Discrete events the body's simulation processed.
    pub events_processed: u64,
    /// Delivered / generated frames for this body.
    pub delivery_ratio: f64,
    /// Radio + baseline energy across the body's nodes.
    pub total_energy: Energy,
    /// Worst per-node p95 delivery latency on this body.
    pub worst_p95_latency: TimeSpan,
    /// Merged latency sketch over every node of this body.
    pub latency: LatencySketch,
}

/// Deterministic, body-order aggregation of a fleet run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    horizon: TimeSpan,
    summaries: Vec<BodySummary>,
    fleet_latency: LatencySketch,
    total_energy: Energy,
    total_generated: usize,
    total_delivered: usize,
    total_delivered_bytes: usize,
    total_events: u64,
}

impl FleetReport {
    fn aggregate(horizon: TimeSpan, summaries: Vec<BodySummary>) -> Self {
        let mut fleet_latency = LatencySketch::new();
        let mut total_energy = Energy::ZERO;
        let mut total_generated = 0usize;
        let mut total_delivered = 0usize;
        let mut total_delivered_bytes = 0usize;
        let mut total_events = 0u64;
        for summary in &summaries {
            fleet_latency.merge(&summary.latency);
            total_energy += summary.total_energy;
            total_generated += summary.generated_frames;
            total_delivered += summary.delivered_frames;
            total_delivered_bytes += summary.delivered_bytes;
            total_events += summary.events_processed;
        }
        Self {
            horizon,
            summaries,
            fleet_latency,
            total_energy,
            total_generated,
            total_delivered,
            total_delivered_bytes,
            total_events,
        }
    }

    /// Number of bodies aggregated.
    #[must_use]
    pub fn bodies(&self) -> usize {
        self.summaries.len()
    }

    /// Simulated horizon per body.
    #[must_use]
    pub fn horizon(&self) -> TimeSpan {
        self.horizon
    }

    /// Per-body summaries, in body order.
    #[must_use]
    pub fn summaries(&self) -> &[BodySummary] {
        &self.summaries
    }

    /// Fleet-wide delivery-latency distribution (every delivered frame on
    /// every body), queryable to the sketch's documented error bound.
    #[must_use]
    pub fn fleet_latency(&self) -> &LatencySketch {
        &self.fleet_latency
    }

    /// Total discrete events processed across the fleet.
    #[must_use]
    pub fn events_processed(&self) -> u64 {
        self.total_events
    }

    /// Total application bytes delivered across the fleet.
    #[must_use]
    pub fn delivered_bytes(&self) -> usize {
        self.total_delivered_bytes
    }

    /// Fleet-wide delivered / generated frame ratio.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.total_generated == 0 {
            return 1.0;
        }
        self.total_delivered as f64 / self.total_generated as f64
    }

    /// Total (radio + baseline) energy across the fleet.
    #[must_use]
    pub fn total_energy(&self) -> Energy {
        self.total_energy
    }

    /// Aggregate delivered throughput across the fleet.
    #[must_use]
    pub fn aggregate_throughput(&self) -> DataRate {
        if self.horizon.as_seconds() <= 0.0 {
            return DataRate::ZERO;
        }
        DataVolume::from_bytes(self.total_delivered_bytes as f64) / self.horizon
    }

    /// Exact `q`-quantile (nearest-rank) across bodies of the per-body worst
    /// p95 latency — the "how bad is the unluckiest body" fleet SLO curve.
    #[must_use]
    pub fn body_worst_p95_quantile(&self, q: f64) -> TimeSpan {
        let mut values: Vec<TimeSpan> =
            self.summaries.iter().map(|s| s.worst_p95_latency).collect();
        if values.is_empty() {
            return TimeSpan::ZERO;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
        values[hidwa_netsim::sketch::nearest_rank_index(values.len(), q)]
    }

    /// Smallest per-body delivery ratio in the fleet.
    #[must_use]
    pub fn min_body_delivery_ratio(&self) -> f64 {
        self.summaries
            .iter()
            .map(|s| s.delivery_ratio)
            .fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_body_seeds_are_decorrelated() {
        let fleet = FleetConfig::new(4);
        let seeds: Vec<u64> = (0..4).map(|i| fleet.seed_for_body(i)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Derivation is pure: same index, same seed.
        assert_eq!(fleet.seed_for_body(2), fleet.seed_for_body(2));
    }

    #[test]
    fn fleet_aggregates_are_identical_across_thread_widths() {
        let fleet = FleetConfig::new(32)
            .with_base_seed(99)
            .with_horizon(TimeSpan::from_seconds(2.0));
        let serial = fleet.run(&SweepRunner::serial());
        let wide = fleet.run(&SweepRunner::with_threads(4));
        assert_eq!(serial, wide);
        assert_eq!(serial.bodies(), 32);
    }

    #[test]
    fn fleet_totals_match_the_sum_of_bodies() {
        let fleet = FleetConfig::new(5).with_horizon(TimeSpan::from_seconds(3.0));
        let report = fleet.run(&SweepRunner::serial());
        let bytes: usize = report.summaries().iter().map(|s| s.delivered_bytes).sum();
        assert_eq!(report.delivered_bytes(), bytes);
        let events: u64 = report.summaries().iter().map(|s| s.events_processed).sum();
        assert_eq!(report.events_processed(), events);
        assert!(report.delivery_ratio() > 0.9);
        assert!(report.total_energy() > Energy::ZERO);
        assert!(report.aggregate_throughput() > DataRate::ZERO);
        // Each body saw different traffic (bursty-free bodies still differ in
        // nothing, so compare sketch counts only loosely): every body did work.
        assert!(report.summaries().iter().all(|s| s.delivered_frames > 0));
        // The fleet sketch merges every body's samples.
        let sample_count: u64 = report.summaries().iter().map(|s| s.latency.count()).sum();
        assert_eq!(report.fleet_latency().count(), sample_count);
        assert_eq!(
            report.fleet_latency().count(),
            report
                .summaries()
                .iter()
                .map(|s| s.delivered_frames as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn slo_quantiles_are_monotone_and_bounded_by_the_worst_body() {
        let fleet = FleetConfig::new(9).with_horizon(TimeSpan::from_seconds(2.0));
        let report = fleet.run(&SweepRunner::serial());
        let p50 = report.body_worst_p95_quantile(0.5);
        let p95 = report.body_worst_p95_quantile(0.95);
        let worst = report.body_worst_p95_quantile(1.0);
        assert!(p50 <= p95 && p95 <= worst);
        assert!(worst > TimeSpan::ZERO);
        assert!(report.min_body_delivery_ratio() > 0.5);
        assert_eq!(FleetConfig::new(0).run(&SweepRunner::serial()).bodies(), 0);
    }
}
