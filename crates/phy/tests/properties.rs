//! Property-based tests for the PHY layer.

use hidwa_phy::ble::BleTransceiver;
use hidwa_phy::link::Link;
use hidwa_phy::modulation::{q_function, Modulation};
use hidwa_phy::packet::{crc16, Frame, FrameCodec};
use hidwa_phy::wir::WiRTransceiver;
use hidwa_phy::Transceiver;
use hidwa_units::{DataRate, DataVolume};
use proptest::prelude::*;

proptest! {
    /// Frame encode/decode round-trips for arbitrary payloads and headers.
    #[test]
    fn frame_round_trip(
        src in 0u8..=255,
        dst in 0u8..=255,
        seq in 0u8..=255,
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let frame = Frame::data(src, dst, seq, payload).unwrap();
        let codec = FrameCodec::new();
        let decoded = codec.decode(codec.encode(&frame)).unwrap();
        prop_assert_eq!(decoded, frame);
    }

    /// Single-byte corruption anywhere in the frame is detected by the CRC.
    #[test]
    fn corruption_detected(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        flip_bit in 0usize..64,
    ) {
        let frame = Frame::data(1, 2, 3, payload).unwrap();
        let codec = FrameCodec::new();
        let mut bytes = codec.encode(&frame).to_vec();
        let idx = flip_bit % (bytes.len() * 8);
        bytes[idx / 8] ^= 1 << (idx % 8);
        let result = codec.decode(bytes::Bytes::from(bytes));
        // Either the CRC catches it, or (if the corrupted field is decoded
        // into header fields covered by the CRC) decoding must not silently
        // return the original frame.
        match result {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, frame),
        }
    }

    /// CRC differs for different inputs with overwhelming probability
    /// (smoke-check determinism: same input, same CRC).
    #[test]
    fn crc_deterministic(data in prop::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(crc16(&data), crc16(&data));
    }

    /// BER is within [0, 0.5] and monotone in SNR for all modulations.
    #[test]
    fn ber_bounded_and_monotone(db1 in -10.0..30.0f64, db2 in -10.0..30.0f64) {
        for m in [Modulation::Ook, Modulation::Bpsk, Modulation::Gfsk] {
            let (lo, hi) = if db1 < db2 { (db1, db2) } else { (db2, db1) };
            let b_lo = m.bit_error_rate(hidwa_units::db_to_ratio(lo));
            let b_hi = m.bit_error_rate(hidwa_units::db_to_ratio(hi));
            prop_assert!((0.0..=0.5).contains(&b_lo));
            prop_assert!(b_hi <= b_lo + 1e-12);
        }
    }

    /// The Q-function is a decreasing probability.
    #[test]
    fn q_function_is_probability(x in -5.0..8.0f64, y in -5.0..8.0f64) {
        let (lo, hi) = if x < y { (x, y) } else { (y, x) };
        prop_assert!(q_function(lo) >= q_function(hi) - 1e-12);
        prop_assert!((0.0..=1.0).contains(&q_function(x)));
    }

    /// Wi-R active power is monotone in rate; average power is bounded by
    /// idle and active.
    #[test]
    fn wir_power_monotone(r1 in 1.0..4000.0f64, r2 in 1.0..4000.0f64) {
        let wir = WiRTransceiver::ixana_class();
        let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
        prop_assert!(
            wir.active_tx_power(DataRate::from_kbps(lo))
                <= wir.active_tx_power(DataRate::from_kbps(hi))
        );
        let avg = wir.average_power(DataRate::from_kbps(lo));
        prop_assert!(avg >= wir.idle_power());
        prop_assert!(avg <= wir.active_tx_power(wir.max_data_rate()));
    }

    /// BLE is never more efficient per delivered bit than Wi-R at any common
    /// application rate (the paper's central energy claim).
    #[test]
    fn wir_always_beats_ble_per_bit(kbps in 1.0..700.0f64) {
        let wir = WiRTransceiver::ixana_class();
        let ble = BleTransceiver::phy_1m();
        let rate = DataRate::from_kbps(kbps);
        prop_assert!(wir.average_power(rate) < ble.average_power(rate));
    }

    /// Link goodput never exceeds the link rate, and transfer energy scales
    /// monotonically with volume.
    #[test]
    fn link_goodput_bounded(ebn0_db in 0.0..40.0f64, kb in 1.0..1000.0f64) {
        let link = Link::new(
            WiRTransceiver::ixana_class(),
            DataRate::from_mbps(4.0),
            ebn0_db,
            Modulation::Ook,
        )
        .unwrap();
        prop_assert!(link.goodput() <= link.link_rate());
        let e1 = link.transfer_energy(DataVolume::from_kilo_bytes(kb));
        let e2 = link.transfer_energy(DataVolume::from_kilo_bytes(kb * 2.0));
        prop_assert!(e2 >= e1);
    }
}
