//! Wi-R (electro-quasistatic human body communication) transceiver model.
//!
//! Calibration anchors taken from the paper and the EQS-HBC literature it
//! cites:
//!
//! | operating point | source |
//! |---|---|
//! | 4 Mbps at ≈100 pJ/bit | Wi-R commercial implementation (Ixana white paper) |
//! | 30 Mbps at 6.3 pJ/bit | BodyWire transceiver (JSSC 2019) |
//! | 1–10 kbps at 415 nW | Sub-µWrComm authentication node (JSSC 2021) |
//!
//! The model is a parametric transceiver: a rate-proportional dynamic energy
//! (the energy-per-bit figure of merit) plus a small static/bias power that
//! dominates at very low rates, plus a sleep/idle power.  The named
//! constructors reproduce the three published design points.

use crate::transceiver::{RadioTechnology, Transceiver};
use crate::PhyError;
use hidwa_units::{DataRate, EnergyPerBit, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// Parametric Wi-R transceiver.
///
/// # Example
/// ```
/// use hidwa_phy::{Transceiver, wir::WiRTransceiver};
/// use hidwa_units::DataRate;
/// let wir = WiRTransceiver::ixana_class();
/// // Streaming 4 Mbps costs ~100 pJ/bit → ~400–500 µW.
/// let p = wir.average_power(DataRate::from_mbps(4.0));
/// assert!(p.as_micro_watts() < 600.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WiRTransceiver {
    name: String,
    max_rate: DataRate,
    dynamic_energy_per_bit: EnergyPerBit,
    static_power: Power,
    sleep_power: Power,
    wakeup: TimeSpan,
    rx_power_factor: f64,
}

impl WiRTransceiver {
    /// Creates a Wi-R transceiver from explicit parameters.
    ///
    /// # Errors
    /// Returns [`PhyError`] if the maximum rate is zero or the receive power
    /// factor is not positive.
    pub fn new(
        name: impl Into<String>,
        max_rate: DataRate,
        dynamic_energy_per_bit: EnergyPerBit,
        static_power: Power,
        sleep_power: Power,
        wakeup: TimeSpan,
        rx_power_factor: f64,
    ) -> Result<Self, PhyError> {
        if max_rate.as_bps() <= 0.0 {
            return Err(PhyError::invalid("max_rate", "must be positive"));
        }
        if rx_power_factor <= 0.0 {
            return Err(PhyError::invalid("rx_power_factor", "must be positive"));
        }
        Ok(Self {
            name: name.into(),
            max_rate,
            dynamic_energy_per_bit,
            static_power,
            sleep_power,
            wakeup,
            rx_power_factor,
        })
    }

    /// The commercial Wi-R operating point the paper uses for its Fig. 3
    /// projection: 4 Mbps, ~100 pJ/bit, ~20 µW static power, 1 µW sleep.
    #[must_use]
    pub fn ixana_class() -> Self {
        Self::new(
            "Wi-R (commercial, 4 Mbps class)",
            DataRate::from_mbps(4.0),
            EnergyPerBit::from_pico_joules(100.0),
            Power::from_micro_watts(20.0),
            Power::from_micro_watts(1.0),
            TimeSpan::from_micros(100.0),
            0.9,
        )
        .expect("reference parameters are valid")
    }

    /// The BodyWire-class research transceiver: 30 Mbps at 6.3 pJ/bit.
    #[must_use]
    pub fn bodywire_class() -> Self {
        Self::new(
            "BodyWire (30 Mbps research)",
            DataRate::from_mbps(30.0),
            EnergyPerBit::from_pico_joules(6.3),
            Power::from_micro_watts(10.0),
            Power::from_micro_watts(1.0),
            TimeSpan::from_micros(50.0),
            0.9,
        )
        .expect("reference parameters are valid")
    }

    /// The Sub-µWrComm-class authentication node: 415 nW total at 1–10 kbps.
    #[must_use]
    pub fn sub_microwatt_class() -> Self {
        // At 10 kbps: 415 nW total = 115 nW static + 30 pJ/bit × 10 kbps.
        Self::new(
            "Sub-µWrComm (authentication node)",
            DataRate::from_kbps(10.0),
            EnergyPerBit::from_pico_joules(30.0),
            Power::from_nano_watts(115.0),
            Power::from_nano_watts(10.0),
            TimeSpan::from_millis(1.0),
            1.0,
        )
        .expect("reference parameters are valid")
    }

    /// Dynamic (per-bit) energy.
    #[must_use]
    pub fn dynamic_energy_per_bit(&self) -> EnergyPerBit {
        self.dynamic_energy_per_bit
    }

    /// Static (rate-independent) power while the link is up.
    #[must_use]
    pub fn static_power(&self) -> Power {
        self.static_power
    }
}

impl Transceiver for WiRTransceiver {
    fn technology(&self) -> RadioTechnology {
        RadioTechnology::WiR
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn max_data_rate(&self) -> DataRate {
        self.max_rate
    }

    fn active_tx_power(&self, rate: DataRate) -> Power {
        let r = rate.min(self.max_rate);
        self.static_power + self.dynamic_energy_per_bit * r
    }

    fn active_rx_power(&self, rate: DataRate) -> Power {
        let r = rate.min(self.max_rate);
        self.static_power + (self.dynamic_energy_per_bit * r) * self.rx_power_factor
    }

    fn idle_power(&self) -> Power {
        self.sleep_power
    }

    fn wakeup_time(&self) -> TimeSpan {
        self.wakeup
    }

    fn energy_per_bit(&self, rate: DataRate) -> EnergyPerBit {
        let r = rate.min(self.max_rate);
        self.active_tx_power(r).per_bit_at(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ixana_operating_point() {
        let wir = WiRTransceiver::ixana_class();
        let p = wir.active_tx_power(DataRate::from_mbps(4.0));
        // 100 pJ/bit × 4 Mbps + 20 µW static = 420 µW.
        assert!((p.as_micro_watts() - 420.0).abs() < 1.0);
        // Delivered efficiency stays within ~10 % of the headline 100 pJ/bit.
        let epb = wir.energy_per_bit(DataRate::from_mbps(4.0));
        assert!(epb.as_pico_joules() < 110.0);
    }

    #[test]
    fn bodywire_operating_point() {
        let bw = WiRTransceiver::bodywire_class();
        let epb = bw.energy_per_bit(DataRate::from_mbps(30.0));
        assert!(epb.as_pico_joules() < 7.0, "epb {}", epb.as_pico_joules());
    }

    #[test]
    fn sub_microwatt_operating_point() {
        let n = WiRTransceiver::sub_microwatt_class();
        let p = n.active_tx_power(DataRate::from_kbps(10.0));
        assert!(
            (p.as_nano_watts() - 415.0).abs() < 1.0,
            "{}",
            p.as_nano_watts()
        );
    }

    #[test]
    fn power_is_monotone_in_rate_and_clamped_at_max() {
        let wir = WiRTransceiver::ixana_class();
        let mut prev = Power::ZERO;
        for kbps in [1.0, 10.0, 100.0, 1000.0, 4000.0] {
            let p = wir.active_tx_power(DataRate::from_kbps(kbps));
            assert!(p > prev);
            prev = p;
        }
        assert_eq!(
            wir.active_tx_power(DataRate::from_mbps(4.0)),
            wir.active_tx_power(DataRate::from_mbps(40.0))
        );
    }

    #[test]
    fn rx_power_close_to_tx_power() {
        let wir = WiRTransceiver::ixana_class();
        let rate = DataRate::from_mbps(1.0);
        let tx = wir.active_tx_power(rate);
        let rx = wir.active_rx_power(rate);
        assert!(rx <= tx);
        assert!(rx > wir.static_power());
    }

    #[test]
    fn headline_vs_ble_power_ratio() {
        // Paper: Wi-R is "<100X lower power than BLE" for comparable traffic.
        // BLE radios burn ~5–15 mW active; Wi-R at full rate burns ~0.42 mW.
        let wir = WiRTransceiver::ixana_class();
        let wir_p = wir.active_tx_power(DataRate::from_mbps(1.0));
        assert!(Power::from_milli_watts(10.0).as_watts() / wir_p.as_watts() > 80.0);
    }

    #[test]
    fn average_power_at_low_duty_approaches_sleep() {
        let wir = WiRTransceiver::ixana_class();
        let p = wir.average_power(DataRate::from_bps(100.0));
        assert!(p.as_micro_watts() < 2.0);
    }

    #[test]
    fn constructor_validation() {
        assert!(WiRTransceiver::new(
            "bad",
            DataRate::ZERO,
            EnergyPerBit::from_pico_joules(100.0),
            Power::ZERO,
            Power::ZERO,
            TimeSpan::ZERO,
            1.0
        )
        .is_err());
        assert!(WiRTransceiver::new(
            "bad",
            DataRate::from_kbps(1.0),
            EnergyPerBit::from_pico_joules(100.0),
            Power::ZERO,
            Power::ZERO,
            TimeSpan::ZERO,
            0.0
        )
        .is_err());
    }

    #[test]
    fn accessors() {
        let wir = WiRTransceiver::ixana_class();
        assert_eq!(wir.technology(), RadioTechnology::WiR);
        assert!(wir.name().contains("Wi-R"));
        assert_eq!(wir.max_data_rate(), DataRate::from_mbps(4.0));
        assert_eq!(
            wir.dynamic_energy_per_bit(),
            EnergyPerBit::from_pico_joules(100.0)
        );
        assert!(wir.wakeup_time() > TimeSpan::ZERO);
    }
}
