//! Bluetooth Low Energy baseline transceiver model.
//!
//! BLE is the radio every commercial wearable uses today and the baseline the
//! paper compares Wi-R against.  The model captures the protocol structure
//! that dominates BLE's delivered efficiency:
//!
//! * a 1 Mbps or 2 Mbps physical layer, of which only a fraction is useful
//!   payload once connection events, inter-frame spaces, headers and empty
//!   polls are accounted for;
//! * milliwatt-class active radio power (radio + PLL + PA);
//! * a connection-maintenance cost that is paid even when no data flows
//!   (connection events at the configured interval).

use crate::transceiver::{RadioTechnology, Transceiver};
use crate::PhyError;
use hidwa_units::{DataRate, Energy, Power, TimeSpan};
use serde::{Deserialize, Serialize};

/// BLE physical-layer variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlePhy {
    /// 1 Mbps uncoded PHY.
    Phy1M,
    /// 2 Mbps uncoded PHY.
    Phy2M,
    /// 125 kbps coded PHY (long range).
    CodedS8,
}

impl BlePhy {
    /// Raw over-the-air bit rate.
    #[must_use]
    pub fn raw_rate(self) -> DataRate {
        match self {
            BlePhy::Phy1M => DataRate::from_mbps(1.0),
            BlePhy::Phy2M => DataRate::from_mbps(2.0),
            BlePhy::CodedS8 => DataRate::from_kbps(125.0),
        }
    }

    /// Fraction of airtime that ends up as application payload under a
    /// well-tuned connection (data-length extension, 251-byte PDUs): protocol
    /// analysis puts sustained goodput at roughly 70–80 % of the raw rate for
    /// the uncoded PHYs.
    #[must_use]
    pub fn goodput_efficiency(self) -> f64 {
        match self {
            BlePhy::Phy1M => 0.78,
            BlePhy::Phy2M => 0.70,
            BlePhy::CodedS8 => 0.55,
        }
    }
}

/// BLE transceiver / protocol energy model.
///
/// # Example
/// ```
/// use hidwa_phy::{Transceiver, ble::BleTransceiver};
/// use hidwa_units::DataRate;
/// let ble = BleTransceiver::phy_1m();
/// // Streaming 500 kbps keeps the radio awake most of the time: mW class.
/// assert!(ble.average_power(DataRate::from_kbps(500.0)).as_milli_watts() > 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BleTransceiver {
    name: String,
    phy: BlePhy,
    active_tx: Power,
    active_rx: Power,
    sleep_power: Power,
    connection_interval: TimeSpan,
    connection_event_overhead: Energy,
    wakeup: TimeSpan,
}

impl BleTransceiver {
    /// Creates a BLE model from explicit parameters.
    ///
    /// # Errors
    /// Returns [`PhyError`] if the connection interval is not positive.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        phy: BlePhy,
        active_tx: Power,
        active_rx: Power,
        sleep_power: Power,
        connection_interval: TimeSpan,
        connection_event_overhead: Energy,
        wakeup: TimeSpan,
    ) -> Result<Self, PhyError> {
        if connection_interval.as_seconds() <= 0.0 {
            return Err(PhyError::invalid("connection_interval", "must be positive"));
        }
        Ok(Self {
            name: name.into(),
            phy,
            active_tx,
            active_rx,
            sleep_power,
            connection_interval,
            connection_event_overhead,
            wakeup,
        })
    }

    /// A representative 1M-PHY wearable BLE radio: 8 mW TX, 7 mW RX, 2 µW
    /// sleep, 30 ms connection interval, 15 µJ per connection event.
    #[must_use]
    pub fn phy_1m() -> Self {
        Self::new(
            "BLE 1M PHY (wearable SoC)",
            BlePhy::Phy1M,
            Power::from_milli_watts(8.0),
            Power::from_milli_watts(7.0),
            Power::from_micro_watts(2.0),
            TimeSpan::from_millis(30.0),
            Energy::from_micro_joules(15.0),
            TimeSpan::from_millis(2.0),
        )
        .expect("reference parameters are valid")
    }

    /// A representative 2M-PHY wearable BLE radio.
    #[must_use]
    pub fn phy_2m() -> Self {
        Self::new(
            "BLE 2M PHY (wearable SoC)",
            BlePhy::Phy2M,
            Power::from_milli_watts(9.0),
            Power::from_milli_watts(7.5),
            Power::from_micro_watts(2.0),
            TimeSpan::from_millis(30.0),
            Energy::from_micro_joules(15.0),
            TimeSpan::from_millis(2.0),
        )
        .expect("reference parameters are valid")
    }

    /// The PHY variant in use.
    #[must_use]
    pub fn phy(&self) -> BlePhy {
        self.phy
    }

    /// Power cost of keeping the connection alive with no application data
    /// (connection events at the configured interval).
    #[must_use]
    pub fn connection_maintenance_power(&self) -> Power {
        self.connection_event_overhead / self.connection_interval + self.sleep_power
    }
}

impl Transceiver for BleTransceiver {
    fn technology(&self) -> RadioTechnology {
        RadioTechnology::Ble
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn max_data_rate(&self) -> DataRate {
        self.phy.raw_rate() * self.phy.goodput_efficiency()
    }

    fn active_tx_power(&self, _rate: DataRate) -> Power {
        self.active_tx
    }

    fn active_rx_power(&self, _rate: DataRate) -> Power {
        self.active_rx
    }

    fn idle_power(&self) -> Power {
        self.connection_maintenance_power()
    }

    fn wakeup_time(&self) -> TimeSpan {
        self.wakeup
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wir::WiRTransceiver;
    use hidwa_units::EnergyPerBit;

    #[test]
    fn goodput_is_below_raw_rate() {
        for phy in [BlePhy::Phy1M, BlePhy::Phy2M, BlePhy::CodedS8] {
            let ble = BleTransceiver::new(
                "test",
                phy,
                Power::from_milli_watts(8.0),
                Power::from_milli_watts(7.0),
                Power::from_micro_watts(2.0),
                TimeSpan::from_millis(30.0),
                Energy::from_micro_joules(15.0),
                TimeSpan::from_millis(2.0),
            )
            .unwrap();
            assert!(ble.max_data_rate() < phy.raw_rate());
        }
    }

    #[test]
    fn paper_rate_claim_wir_10x_faster() {
        // Wi-R 4 Mbps delivered vs BLE ≤ ~1.4 Mbps delivered on 2M PHY, and
        // ~0.78 Mbps on the ubiquitous 1M PHY → >10× against deployed BLE
        // links running at typical application rates, and ≥2.8× against the
        // best case. The structural claim tested here: Wi-R's delivered rate
        // exceeds BLE 1M's by >5×.
        let wir = WiRTransceiver::ixana_class();
        let ble = BleTransceiver::phy_1m();
        assert!(wir.max_data_rate().as_bps() / ble.max_data_rate().as_bps() > 5.0);
    }

    #[test]
    fn paper_power_claim_100x_lower() {
        // At a 100 kbps application stream (audio class), BLE's average power
        // is dominated by mW-class active windows; Wi-R stays ~µW class.
        let wir = WiRTransceiver::ixana_class();
        let ble = BleTransceiver::phy_1m();
        let rate = DataRate::from_kbps(100.0);
        let ratio = ble.average_power(rate).as_watts() / wir.average_power(rate).as_watts();
        assert!(ratio > 100.0, "power ratio {ratio}");
    }

    #[test]
    fn ble_energy_per_bit_is_nj_class() {
        let ble = BleTransceiver::phy_1m();
        let epb = ble.energy_per_bit(ble.max_data_rate());
        assert!(epb > EnergyPerBit::from_nano_joules(1.0));
        assert!(epb < EnergyPerBit::from_nano_joules(100.0));
    }

    #[test]
    fn connection_maintenance_dominates_idle() {
        let ble = BleTransceiver::phy_1m();
        // 15 µJ / 30 ms = 500 µW: keeping a BLE connection alive already costs
        // more than an entire Wi-R leaf node.
        let idle = ble.connection_maintenance_power();
        assert!((idle.as_micro_watts() - 502.0).abs() < 1.0);
        assert_eq!(ble.idle_power(), idle);
    }

    #[test]
    fn active_powers_are_milliwatt_class() {
        let ble = BleTransceiver::phy_2m();
        assert!(
            ble.active_tx_power(DataRate::from_kbps(1.0))
                .as_milli_watts()
                >= 1.0
        );
        assert!(
            ble.active_rx_power(DataRate::from_kbps(1.0))
                .as_milli_watts()
                >= 1.0
        );
        assert_eq!(ble.phy(), BlePhy::Phy2M);
        assert_eq!(ble.technology(), RadioTechnology::Ble);
        assert!(ble.wakeup_time() > TimeSpan::ZERO);
        assert!(ble.name().contains("BLE"));
    }

    #[test]
    fn constructor_rejects_zero_interval() {
        assert!(BleTransceiver::new(
            "bad",
            BlePhy::Phy1M,
            Power::from_milli_watts(8.0),
            Power::from_milli_watts(7.0),
            Power::from_micro_watts(2.0),
            TimeSpan::ZERO,
            Energy::from_micro_joules(15.0),
            TimeSpan::from_millis(2.0),
        )
        .is_err());
    }
}
