//! The [`Transceiver`] trait: the common surface of Wi-R, BLE and any other
//! body-area radio the stack compares.

use hidwa_units::{DataRate, DataVolume, Energy, EnergyPerBit, Power, TimeSpan};

/// Radio technology families compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RadioTechnology {
    /// Electro-quasistatic human body communication ("Body as a Wire").
    WiR,
    /// Bluetooth Low Energy (radiative 2.4 GHz).
    Ble,
    /// Near-field magnetic induction.
    Nfmi,
    /// Wi-Fi class radiative link (hub uplink).
    WiFi,
}

impl RadioTechnology {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RadioTechnology::WiR => "Wi-R (EQS-HBC)",
            RadioTechnology::Ble => "BLE",
            RadioTechnology::Nfmi => "NFMI",
            RadioTechnology::WiFi => "Wi-Fi",
        }
    }
}

impl core::fmt::Display for RadioTechnology {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A body-area transceiver energy/throughput model.
///
/// Implementations provide the technology-specific numbers; the provided
/// methods derive the composite quantities (energy for a transfer, average
/// power at a duty-cycled rate) that the rest of the stack consumes.
pub trait Transceiver {
    /// Technology family.
    fn technology(&self) -> RadioTechnology;

    /// Descriptive name of the specific transceiver model.
    fn name(&self) -> &str;

    /// Maximum sustainable physical-layer data rate.
    fn max_data_rate(&self) -> DataRate;

    /// Power drawn while actively transmitting at the given link rate.
    fn active_tx_power(&self, rate: DataRate) -> Power;

    /// Power drawn while actively receiving at the given link rate.
    fn active_rx_power(&self, rate: DataRate) -> Power;

    /// Power drawn while idle but connected (sniffing / keep-alive).
    fn idle_power(&self) -> Power;

    /// Time to wake the radio from sleep and (re)acquire the link.
    fn wakeup_time(&self) -> TimeSpan;

    /// Delivered energy per useful bit when streaming continuously at `rate`
    /// (protocol overhead included by the implementation).
    fn energy_per_bit(&self, rate: DataRate) -> EnergyPerBit {
        self.active_tx_power(rate).per_bit_at(rate)
    }

    /// Whether the transceiver can sustain an application rate.
    fn supports_rate(&self, rate: DataRate) -> bool {
        rate <= self.max_data_rate()
    }

    /// Energy to move a volume of data at a given application rate
    /// (transmit side), assuming ideal duty-cycling between bursts.
    fn energy_for_transfer(&self, volume: DataVolume, rate: DataRate) -> Energy {
        let link_rate = rate.min(self.max_data_rate());
        if link_rate.as_bps() <= 0.0 {
            return Energy::ZERO;
        }
        let airtime = volume / self.max_data_rate().min(link_rate.max(link_rate));
        self.active_tx_power(link_rate) * airtime
    }

    /// Average transmit-side power when the application produces data at
    /// `app_rate` and the radio bursts it at its maximum link rate, sleeping
    /// in between (idle power fills the gaps).
    fn average_power(&self, app_rate: DataRate) -> Power {
        let link_rate = self.max_data_rate();
        if link_rate.as_bps() <= 0.0 {
            return self.idle_power();
        }
        let duty = (app_rate.as_bps() / link_rate.as_bps()).clamp(0.0, 1.0);
        self.active_tx_power(link_rate) * duty + self.idle_power() * (1.0 - duty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial transceiver to exercise the provided methods.
    struct Fixed;

    impl Transceiver for Fixed {
        fn technology(&self) -> RadioTechnology {
            RadioTechnology::Nfmi
        }
        fn name(&self) -> &str {
            "fixed"
        }
        fn max_data_rate(&self) -> DataRate {
            DataRate::from_kbps(100.0)
        }
        fn active_tx_power(&self, _rate: DataRate) -> Power {
            Power::from_milli_watts(1.0)
        }
        fn active_rx_power(&self, _rate: DataRate) -> Power {
            Power::from_micro_watts(800.0)
        }
        fn idle_power(&self) -> Power {
            Power::from_micro_watts(1.0)
        }
        fn wakeup_time(&self) -> TimeSpan {
            TimeSpan::from_millis(1.0)
        }
    }

    #[test]
    fn default_energy_per_bit() {
        let t = Fixed;
        let epb = t.energy_per_bit(DataRate::from_kbps(100.0));
        assert!((epb.as_nano_joules() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn supports_rate_boundary() {
        let t = Fixed;
        assert!(t.supports_rate(DataRate::from_kbps(100.0)));
        assert!(!t.supports_rate(DataRate::from_kbps(100.1)));
    }

    #[test]
    fn average_power_interpolates_between_idle_and_active() {
        let t = Fixed;
        let idle = t.average_power(DataRate::ZERO);
        assert_eq!(idle, t.idle_power());
        let full = t.average_power(DataRate::from_kbps(100.0));
        assert_eq!(full, t.active_tx_power(DataRate::from_kbps(100.0)));
        let half = t.average_power(DataRate::from_kbps(50.0));
        assert!(half > idle && half < full);
    }

    #[test]
    fn energy_for_transfer_uses_airtime() {
        let t = Fixed;
        // 100 kb at 100 kbps = 1 s of airtime at 1 mW = 1 mJ.
        let e = t.energy_for_transfer(DataVolume::from_bits(100_000.0), DataRate::from_kbps(100.0));
        assert!((e.as_milli_joules() - 1.0).abs() < 1e-9);
        assert_eq!(
            t.energy_for_transfer(DataVolume::from_bits(1000.0), DataRate::ZERO),
            Energy::ZERO
        );
    }

    #[test]
    fn technology_names() {
        assert_eq!(RadioTechnology::WiR.to_string(), "Wi-R (EQS-HBC)");
        assert_eq!(RadioTechnology::Ble.name(), "BLE");
        assert_eq!(RadioTechnology::WiFi.name(), "Wi-Fi");
    }
}
