//! Link/PHY models for body-area communication.
//!
//! The paper's quantitative comparisons all reduce to two radios:
//!
//! * **Wi-R** — the commercial electro-quasistatic human-body-communication
//!   transceiver ("Body as a Wire"), operating at ~100 pJ/bit up to 4 Mbps,
//!   with literature points down to 6.3 pJ/bit at 30 Mbps and 415 nW at
//!   10 kbps ([`wir`]).
//! * **BLE** — the radiative baseline every of-the-shelf wearable uses today,
//!   milliwatt-class active power and nJ/bit-class delivered efficiency
//!   ([`ble`]).
//!
//! Both implement the [`Transceiver`] trait so higher layers (network
//! simulator, partition optimiser, benches) can swap them freely.  The
//! [`link`] module combines a transceiver with a channel/noise model into a
//! [`link::Link`] that accounts for bit errors, retransmissions, goodput and
//! delivered energy per useful bit; [`packet`] provides the framing used by
//! the network simulator.
//!
//! # Example
//!
//! ```
//! use hidwa_phy::{Transceiver, wir::WiRTransceiver, ble::BleTransceiver};
//! use hidwa_units::DataRate;
//!
//! let wir = WiRTransceiver::ixana_class();
//! let ble = BleTransceiver::phy_1m();
//! let rate = DataRate::from_kbps(500.0);
//! let p_wir = wir.average_power(rate);
//! let p_ble = ble.average_power(rate);
//! // The paper's headline: >10× data rate at <1/100th the power is only
//! // possible because the per-bit energy gap is ~100×.
//! assert!(p_ble.as_watts() / p_wir.as_watts() > 20.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ble;
mod error;
pub mod link;
pub mod modulation;
pub mod packet;
mod transceiver;
pub mod wir;

pub use error::PhyError;
pub use transceiver::{RadioTechnology, Transceiver};
