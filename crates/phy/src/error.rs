//! Error type for the PHY layer.

use core::fmt;
use hidwa_units::DataRate;

/// Errors produced by PHY-layer models.
#[derive(Debug, Clone, PartialEq)]
pub enum PhyError {
    /// The requested data rate exceeds what the transceiver can sustain.
    RateUnsupported {
        /// Requested data rate.
        requested: DataRate,
        /// Maximum supported data rate.
        supported: DataRate,
    },
    /// A model parameter was outside its valid range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: String,
    },
    /// A packet payload exceeded the maximum transfer unit.
    PayloadTooLarge {
        /// Payload size in bytes.
        payload_bytes: usize,
        /// Maximum payload size in bytes.
        mtu_bytes: usize,
    },
}

impl PhyError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        PhyError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for PhyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhyError::RateUnsupported {
                requested,
                supported,
            } => write!(
                f,
                "requested rate {requested} exceeds supported maximum {supported}"
            ),
            PhyError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            PhyError::PayloadTooLarge {
                payload_bytes,
                mtu_bytes,
            } => write!(
                f,
                "payload of {payload_bytes} bytes exceeds MTU of {mtu_bytes} bytes"
            ),
        }
    }
}

impl std::error::Error for PhyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = PhyError::RateUnsupported {
            requested: DataRate::from_mbps(10.0),
            supported: DataRate::from_mbps(4.0),
        };
        assert!(e.to_string().contains("exceeds supported"));
        assert!(PhyError::invalid("x", "y")
            .to_string()
            .contains("invalid parameter"));
        let e = PhyError::PayloadTooLarge {
            payload_bytes: 500,
            mtu_bytes: 251,
        };
        assert!(e.to_string().contains("MTU"));
    }
}
