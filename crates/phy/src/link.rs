//! Link-level model: bit errors, packet errors, retransmissions, goodput and
//! delivered energy per useful bit.
//!
//! A [`Link`] binds a [`Transceiver`] to an operating point (link rate and
//! per-bit SNR) and a [`Modulation`].  From these it derives the quantities
//! the network simulator and the partition optimiser need: how long a
//! transfer really takes and how much energy it really costs once framing
//! overhead, bit errors and ARQ retransmissions are included.

use crate::modulation::Modulation;
use crate::packet::Frame;
use crate::transceiver::Transceiver;
use crate::PhyError;
use hidwa_eqs::capacity::CapacityEstimator;
use hidwa_eqs::rf::RfLink;
use hidwa_units::{
    DataRate, DataVolume, Distance, Energy, EnergyPerBit, Frequency, Power, TimeSpan, Voltage,
};

/// Maximum number of transmissions (1 original + retries) the ARQ model
/// allows before declaring the transfer failed.
pub const MAX_TRANSMISSIONS: u32 = 8;

/// A unidirectional link from a transmitting node to a receiving node.
#[derive(Debug, Clone)]
pub struct Link<T> {
    transceiver: T,
    link_rate: DataRate,
    ebn0_db: f64,
    modulation: Modulation,
    payload_bytes_per_frame: usize,
}

impl<T: Transceiver> Link<T> {
    /// Creates a link at an explicit per-bit SNR operating point.
    ///
    /// # Errors
    /// Returns [`PhyError::RateUnsupported`] if `link_rate` exceeds the
    /// transceiver's maximum.
    pub fn new(
        transceiver: T,
        link_rate: DataRate,
        ebn0_db: f64,
        modulation: Modulation,
    ) -> Result<Self, PhyError> {
        if !transceiver.supports_rate(link_rate) {
            return Err(PhyError::RateUnsupported {
                requested: link_rate,
                supported: transceiver.max_data_rate(),
            });
        }
        Ok(Self {
            transceiver,
            link_rate,
            ebn0_db,
            modulation,
            payload_bytes_per_frame: 256,
        })
    }

    /// Creates an on-body Wi-R link, deriving the per-bit SNR from the EQS
    /// channel model.
    ///
    /// # Errors
    /// Returns [`PhyError::RateUnsupported`] if `link_rate` exceeds the
    /// transceiver's maximum.
    pub fn wir_on_body(
        transceiver: T,
        estimator: &CapacityEstimator,
        tx_swing: Voltage,
        channel_length: Distance,
        link_rate: DataRate,
    ) -> Result<Self, PhyError> {
        // Per-bit SNR: SNR measured in a bandwidth equal to the bit rate.
        let bandwidth = Frequency::from_hertz(link_rate.as_bps().max(1.0));
        let snr = estimator.snr(tx_swing, channel_length, bandwidth);
        Self::new(
            transceiver,
            link_rate,
            hidwa_units::ratio_to_db(snr),
            Modulation::Ook,
        )
    }

    /// Creates an on/around-body BLE link, deriving the per-bit SNR from the
    /// radiative path-loss model.
    ///
    /// # Errors
    /// Returns [`PhyError::RateUnsupported`] if `link_rate` exceeds the
    /// transceiver's maximum.
    pub fn ble_around_body(
        transceiver: T,
        rf: &RfLink,
        tx_power: Power,
        distance: Distance,
        link_rate: DataRate,
    ) -> Result<Self, PhyError> {
        let received = rf.received_power(tx_power, distance);
        // Eb/N0 = received power / (noise density × bit rate); use kT·NF with
        // a 10 dB noise figure.
        let noise_density = 1.380_649e-23 * 290.0 * hidwa_units::db_to_ratio(10.0);
        let ebn0 = received.as_watts() / (noise_density * link_rate.as_bps().max(1.0));
        Self::new(
            transceiver,
            link_rate,
            hidwa_units::ratio_to_db(ebn0),
            Modulation::Gfsk,
        )
    }

    /// Overrides the per-frame payload size used for packet-error estimates.
    ///
    /// # Errors
    /// Returns [`PhyError`] if `bytes` is zero or exceeds the frame MTU.
    pub fn with_frame_payload(mut self, bytes: usize) -> Result<Self, PhyError> {
        if bytes == 0 || bytes > Frame::MAX_PAYLOAD_BYTES {
            return Err(PhyError::invalid(
                "payload_bytes_per_frame",
                format!("must be in 1..={}", Frame::MAX_PAYLOAD_BYTES),
            ));
        }
        self.payload_bytes_per_frame = bytes;
        Ok(self)
    }

    /// The underlying transceiver.
    #[must_use]
    pub fn transceiver(&self) -> &T {
        &self.transceiver
    }

    /// Link (physical-layer) rate.
    #[must_use]
    pub fn link_rate(&self) -> DataRate {
        self.link_rate
    }

    /// Per-bit SNR in dB.
    #[must_use]
    pub fn ebn0_db(&self) -> f64 {
        self.ebn0_db
    }

    /// Modulation scheme.
    #[must_use]
    pub fn modulation(&self) -> Modulation {
        self.modulation
    }

    /// Bit-error rate at the operating point.
    #[must_use]
    pub fn bit_error_rate(&self) -> f64 {
        self.modulation
            .bit_error_rate(hidwa_units::db_to_ratio(self.ebn0_db))
    }

    /// Frame-error rate for the configured frame payload.
    #[must_use]
    pub fn frame_error_rate(&self) -> f64 {
        let bits = (self.payload_bytes_per_frame + Frame::HEADER_BYTES + Frame::TRAILER_BYTES) * 8;
        1.0 - (1.0 - self.bit_error_rate()).powi(bits as i32)
    }

    /// Expected number of transmissions per frame under stop-and-wait ARQ,
    /// capped at [`MAX_TRANSMISSIONS`].
    #[must_use]
    pub fn expected_transmissions(&self) -> f64 {
        let fer = self.frame_error_rate();
        if fer >= 1.0 {
            return f64::from(MAX_TRANSMISSIONS);
        }
        (1.0 / (1.0 - fer)).min(f64::from(MAX_TRANSMISSIONS))
    }

    /// `true` when the link closes: the residual frame loss after
    /// [`MAX_TRANSMISSIONS`] attempts is below 1 %.
    #[must_use]
    pub fn is_viable(&self) -> bool {
        self.frame_error_rate().powi(MAX_TRANSMISSIONS as i32) < 0.01
    }

    /// Delivered application goodput when streaming continuously, after
    /// framing overhead and retransmissions.
    #[must_use]
    pub fn goodput(&self) -> DataRate {
        let overhead = Frame::overhead_factor(self.payload_bytes_per_frame);
        self.link_rate / (overhead * self.expected_transmissions())
    }

    /// Delivered energy per *useful* (application) bit: transceiver energy per
    /// wire bit, multiplied by framing overhead and expected transmissions.
    #[must_use]
    pub fn delivered_energy_per_bit(&self) -> EnergyPerBit {
        let per_wire_bit = self.transceiver.energy_per_bit(self.link_rate);
        let overhead = Frame::overhead_factor(self.payload_bytes_per_frame);
        per_wire_bit * (overhead * self.expected_transmissions())
    }

    /// Time to deliver `volume` of application data, including framing and
    /// retransmissions, plus one radio wake-up.
    #[must_use]
    pub fn transfer_time(&self, volume: DataVolume) -> TimeSpan {
        if volume.as_bits() <= 0.0 {
            return TimeSpan::ZERO;
        }
        self.transceiver.wakeup_time() + volume / self.goodput()
    }

    /// Transmit-side energy to deliver `volume` of application data.
    #[must_use]
    pub fn transfer_energy(&self, volume: DataVolume) -> Energy {
        self.delivered_energy_per_bit() * volume
    }

    /// Average transmit-side power when the application produces data at
    /// `app_rate` (the radio bursts at the link rate and idles in between).
    #[must_use]
    pub fn average_power(&self, app_rate: DataRate) -> Power {
        let effective_rate = self.goodput();
        if effective_rate.as_bps() <= 0.0 {
            return self.transceiver.idle_power();
        }
        let duty = (app_rate.as_bps() / effective_rate.as_bps()).clamp(0.0, 1.0);
        self.transceiver.active_tx_power(self.link_rate) * duty
            + self.transceiver.idle_power() * (1.0 - duty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ble::BleTransceiver;
    use crate::wir::WiRTransceiver;
    use hidwa_eqs::body::BodyModel;
    use hidwa_eqs::channel::{EqsChannel, Termination};
    use hidwa_eqs::noise::NoiseModel;
    use hidwa_units::dbm_to_power;

    fn wir_estimator() -> CapacityEstimator {
        CapacityEstimator::new(
            EqsChannel::new(BodyModel::adult(), Termination::HighImpedance),
            NoiseModel::wearable_receiver(),
        )
    }

    fn wir_link() -> Link<WiRTransceiver> {
        Link::wir_on_body(
            WiRTransceiver::ixana_class(),
            &wir_estimator(),
            Voltage::from_volts(1.0),
            Distance::from_meters(1.4),
            DataRate::from_mbps(4.0),
        )
        .unwrap()
    }

    fn ble_link() -> Link<BleTransceiver> {
        let t = BleTransceiver::phy_1m();
        let max = t.max_data_rate();
        Link::ble_around_body(
            t,
            &RfLink::ble_1m(),
            dbm_to_power(0.0),
            Distance::from_meters(1.4),
            max,
        )
        .unwrap()
    }

    #[test]
    fn wir_link_closes_at_full_rate() {
        let link = wir_link();
        assert!(link.ebn0_db() > 10.0, "Eb/N0 {}", link.ebn0_db());
        assert!(link.bit_error_rate() < 1e-6);
        assert!(link.is_viable());
        assert!(link.goodput().as_mbps() > 3.0);
    }

    #[test]
    fn ble_link_closes_on_body() {
        let link = ble_link();
        assert!(link.is_viable());
        assert!(link.goodput().as_kbps() > 500.0);
    }

    #[test]
    fn delivered_efficiency_gap_matches_paper() {
        // The >100× energy-per-bit gap between Wi-R and BLE survives framing
        // and retransmission accounting.
        let wir = wir_link();
        let ble = ble_link();
        let ratio = ble.delivered_energy_per_bit().as_joules_per_bit()
            / wir.delivered_energy_per_bit().as_joules_per_bit();
        assert!(ratio > 50.0, "delivered energy/bit ratio {ratio}");
    }

    #[test]
    fn rate_validation() {
        let err = Link::new(
            WiRTransceiver::ixana_class(),
            DataRate::from_mbps(40.0),
            20.0,
            Modulation::Ook,
        );
        assert!(matches!(err, Err(PhyError::RateUnsupported { .. })));
    }

    #[test]
    fn low_snr_link_degrades_gracefully() {
        let link = Link::new(
            WiRTransceiver::ixana_class(),
            DataRate::from_mbps(4.0),
            -3.0,
            Modulation::Ook,
        )
        .unwrap();
        assert!(link.frame_error_rate() > 0.99);
        assert!(!link.is_viable());
        assert!((link.expected_transmissions() - f64::from(MAX_TRANSMISSIONS)).abs() < 1e-9);
        // Goodput collapses but stays finite.
        assert!(link.goodput().as_bps() > 0.0);
        assert!(link.goodput() < link.link_rate());
    }

    #[test]
    fn transfer_time_and_energy_scale_with_volume() {
        let link = wir_link();
        let small = DataVolume::from_kilo_bytes(1.0);
        let large = DataVolume::from_kilo_bytes(100.0);
        assert!(link.transfer_time(large) > link.transfer_time(small));
        assert!(link.transfer_energy(large) > link.transfer_energy(small));
        assert_eq!(link.transfer_time(DataVolume::ZERO), TimeSpan::ZERO);
        // 1 MB over Wi-R at ~100 pJ/bit ≈ 0.8–1.0 mJ.
        let e = link.transfer_energy(DataVolume::from_mega_bytes(1.0));
        assert!(
            e.as_milli_joules() > 0.5 && e.as_milli_joules() < 2.0,
            "{e}"
        );
    }

    #[test]
    fn average_power_bounds() {
        let link = wir_link();
        let idle = link.average_power(DataRate::ZERO);
        assert_eq!(idle, link.transceiver().idle_power());
        let full = link.average_power(link.goodput());
        assert!(full >= link.average_power(DataRate::from_kbps(10.0)));
        assert!(
            full <= link.transceiver().active_tx_power(link.link_rate())
                + Power::from_nano_watts(1.0)
        );
    }

    #[test]
    fn frame_payload_override() {
        let link = wir_link().with_frame_payload(32).unwrap();
        // Smaller frames → more header overhead → lower goodput.
        assert!(link.goodput() < wir_link().goodput());
        assert!(wir_link().with_frame_payload(0).is_err());
        assert!(wir_link().with_frame_payload(4096).is_err());
        assert_eq!(link.modulation(), Modulation::Ook);
        assert_eq!(link.link_rate(), DataRate::from_mbps(4.0));
    }
}
