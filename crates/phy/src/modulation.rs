//! Modulation schemes and their bit-error-rate models.
//!
//! EQS-HBC transceivers keep modulation simple — on-off keying or BPSK driven
//! directly by a digital pad — because simplicity is where the picojoule
//! energy figures come from.  The BER curves here feed the link model's
//! packet-error and retransmission estimates.

use serde::{Deserialize, Serialize};

/// Modulation schemes used by body-area transceivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Modulation {
    /// On-off keying (non-coherent detection).
    Ook,
    /// Binary phase-shift keying (coherent detection).
    Bpsk,
    /// Gaussian frequency-shift keying (BLE's modulation, non-coherent).
    Gfsk,
}

impl Modulation {
    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Modulation::Ook => "OOK",
            Modulation::Bpsk => "BPSK",
            Modulation::Gfsk => "GFSK",
        }
    }

    /// Bit-error rate at a given per-bit SNR (`Eb/N0`, linear).
    ///
    /// Standard textbook expressions: BPSK `Q(sqrt(2·γ))`, non-coherent OOK
    /// `0.5·exp(−γ/2)`, and GFSK approximated as non-coherent FSK
    /// `0.5·exp(−γ/2)` with a 1 dB implementation penalty.
    #[must_use]
    pub fn bit_error_rate(self, ebn0: f64) -> f64 {
        if ebn0 <= 0.0 {
            return 0.5;
        }
        let ber = match self {
            Modulation::Bpsk => q_function((2.0 * ebn0).sqrt()),
            Modulation::Ook => 0.5 * (-ebn0 / 2.0).exp(),
            Modulation::Gfsk => {
                let penalised = ebn0 / 10f64.powf(0.1);
                0.5 * (-penalised / 2.0).exp()
            }
        };
        ber.clamp(0.0, 0.5)
    }

    /// Required `Eb/N0` (linear) to achieve a target BER, found by bisection.
    ///
    /// # Panics
    /// Panics if `target_ber` is not in `(0, 0.5)`.
    #[must_use]
    pub fn required_ebn0(self, target_ber: f64) -> f64 {
        assert!(
            target_ber > 0.0 && target_ber < 0.5,
            "target BER must be in (0, 0.5)"
        );
        let mut lo = 1e-6f64;
        let mut hi = 1e6f64;
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.bit_error_rate(mid) > target_ber {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        (lo * hi).sqrt()
    }
}

impl core::fmt::Display for Modulation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The Gaussian Q-function `Q(x) = 0.5·erfc(x/√2)`.
///
/// Uses the Abramowitz–Stegun rational approximation of `erfc`, accurate to
/// better than 1.5e-7 — ample for BER curves.
#[must_use]
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / core::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 approximation).
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-5);
        assert!(erfc(5.0) < 1e-10);
    }

    #[test]
    fn q_function_reference_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        assert!((q_function(1.0) - 0.158_655_3).abs() < 1e-5);
        assert!((q_function(3.0) - 1.349_898e-3).abs() < 1e-6);
    }

    #[test]
    fn bpsk_reference_ber() {
        // BPSK at Eb/N0 = 9.6 dB gives BER ≈ 1e-5.
        let ebn0 = hidwa_units::db_to_ratio(9.6);
        let ber = Modulation::Bpsk.bit_error_rate(ebn0);
        assert!(ber > 1e-6 && ber < 2e-5, "ber {ber}");
    }

    #[test]
    fn ber_monotone_decreasing_in_snr() {
        for m in [Modulation::Ook, Modulation::Bpsk, Modulation::Gfsk] {
            let mut prev = 0.6;
            for db in [-10.0, 0.0, 5.0, 10.0, 15.0, 20.0] {
                let ber = m.bit_error_rate(hidwa_units::db_to_ratio(db));
                assert!(ber <= prev, "{m} BER not monotone");
                assert!(ber <= 0.5);
                prev = ber;
            }
        }
    }

    #[test]
    fn bpsk_outperforms_ook_and_gfsk() {
        let ebn0 = hidwa_units::db_to_ratio(10.0);
        let bpsk = Modulation::Bpsk.bit_error_rate(ebn0);
        let ook = Modulation::Ook.bit_error_rate(ebn0);
        let gfsk = Modulation::Gfsk.bit_error_rate(ebn0);
        assert!(bpsk < ook);
        assert!(ook < gfsk);
    }

    #[test]
    fn required_ebn0_inverts_ber() {
        for m in [Modulation::Ook, Modulation::Bpsk, Modulation::Gfsk] {
            for target in [1e-3, 1e-5, 1e-7] {
                let ebn0 = m.required_ebn0(target);
                let achieved = m.bit_error_rate(ebn0);
                assert!(
                    (achieved.log10() - target.log10()).abs() < 0.05,
                    "{m}: target {target}, achieved {achieved}"
                );
            }
        }
    }

    #[test]
    fn zero_snr_gives_coin_flip() {
        assert_eq!(Modulation::Bpsk.bit_error_rate(0.0), 0.5);
        assert_eq!(Modulation::Ook.bit_error_rate(-1.0), 0.5);
    }

    #[test]
    #[should_panic(expected = "target BER")]
    fn required_ebn0_rejects_invalid_target() {
        let _ = Modulation::Bpsk.required_ebn0(0.7);
    }

    #[test]
    fn display_names() {
        assert_eq!(Modulation::Ook.to_string(), "OOK");
        assert_eq!(Modulation::Gfsk.name(), "GFSK");
    }
}
