//! Packet framing for the body-area link layer.
//!
//! The network simulator exchanges [`Frame`]s between leaf nodes and the hub.
//! Frames carry a small fixed header (addresses, sequence number, type), a
//! payload, and a CRC-16; [`FrameCodec`] turns them into bytes and back so
//! the framing overhead accounted by the link model is the real overhead of
//! this format.

use crate::PhyError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hidwa_units::DataVolume;
use serde::{Deserialize, Serialize};

/// Link-layer frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameKind {
    /// Application data.
    Data,
    /// Acknowledgement.
    Ack,
    /// Polling / scheduling beacon from the hub.
    Beacon,
    /// Network management (join, leave, schedule update).
    Management,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Data => 0,
            FrameKind::Ack => 1,
            FrameKind::Beacon => 2,
            FrameKind::Management => 3,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(FrameKind::Data),
            1 => Some(FrameKind::Ack),
            2 => Some(FrameKind::Beacon),
            3 => Some(FrameKind::Management),
            _ => None,
        }
    }
}

/// A link-layer frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    /// Source node address.
    pub source: u8,
    /// Destination node address.
    pub destination: u8,
    /// Sequence number (wraps at 255).
    pub sequence: u8,
    /// Frame type.
    pub kind: FrameKind,
    /// Application payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Header size in bytes: source, destination, sequence, kind, 2-byte
    /// length field.
    pub const HEADER_BYTES: usize = 6;
    /// Trailer size in bytes (CRC-16).
    pub const TRAILER_BYTES: usize = 2;
    /// Maximum payload per frame.
    pub const MAX_PAYLOAD_BYTES: usize = 1024;

    /// Creates a data frame.
    ///
    /// # Errors
    /// Returns [`PhyError::PayloadTooLarge`] if the payload exceeds
    /// [`Frame::MAX_PAYLOAD_BYTES`].
    pub fn data(
        source: u8,
        destination: u8,
        sequence: u8,
        payload: Vec<u8>,
    ) -> Result<Self, PhyError> {
        if payload.len() > Self::MAX_PAYLOAD_BYTES {
            return Err(PhyError::PayloadTooLarge {
                payload_bytes: payload.len(),
                mtu_bytes: Self::MAX_PAYLOAD_BYTES,
            });
        }
        Ok(Self {
            source,
            destination,
            sequence,
            kind: FrameKind::Data,
            payload,
        })
    }

    /// Creates an acknowledgement for a received frame.
    #[must_use]
    pub fn ack_for(frame: &Frame) -> Self {
        Self {
            source: frame.destination,
            destination: frame.source,
            sequence: frame.sequence,
            kind: FrameKind::Ack,
            payload: Vec::new(),
        }
    }

    /// Total on-air size of the frame, including header and CRC.
    #[must_use]
    pub fn wire_size(&self) -> DataVolume {
        DataVolume::from_bytes(
            (Self::HEADER_BYTES + self.payload.len() + Self::TRAILER_BYTES) as f64,
        )
    }

    /// Number of frames needed to carry `payload_bytes` of application data.
    #[must_use]
    pub fn frames_for(payload_bytes: usize) -> usize {
        if payload_bytes == 0 {
            return 0;
        }
        payload_bytes.div_ceil(Self::MAX_PAYLOAD_BYTES)
    }

    /// Framing overhead factor: wire bits per payload bit for a payload of
    /// the given size (≥ 1.0).
    #[must_use]
    pub fn overhead_factor(payload_bytes: usize) -> f64 {
        if payload_bytes == 0 {
            return 1.0;
        }
        let frames = Self::frames_for(payload_bytes);
        let wire = payload_bytes + frames * (Self::HEADER_BYTES + Self::TRAILER_BYTES);
        wire as f64 / payload_bytes as f64
    }
}

/// Encoder/decoder between [`Frame`]s and raw bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameCodec;

impl FrameCodec {
    /// Creates a codec.
    #[must_use]
    pub fn new() -> Self {
        Self
    }

    /// Encodes a frame into bytes (header, payload, CRC-16).
    #[must_use]
    pub fn encode(&self, frame: &Frame) -> Bytes {
        let mut buf = BytesMut::with_capacity(
            Frame::HEADER_BYTES + frame.payload.len() + Frame::TRAILER_BYTES,
        );
        buf.put_u8(frame.source);
        buf.put_u8(frame.destination);
        buf.put_u8(frame.sequence);
        buf.put_u8(frame.kind.to_byte());
        buf.put_u16(frame.payload.len() as u16);
        buf.put_slice(&frame.payload);
        let crc = crc16(&buf);
        buf.put_u16(crc);
        buf.freeze()
    }

    /// Decodes a frame from bytes, verifying length and CRC.
    ///
    /// # Errors
    /// Returns [`PhyError`] if the buffer is truncated, the kind byte is
    /// unknown, or the CRC does not match.
    pub fn decode(&self, mut bytes: Bytes) -> Result<Frame, PhyError> {
        if bytes.len() < Frame::HEADER_BYTES + Frame::TRAILER_BYTES {
            return Err(PhyError::invalid("frame", "truncated header"));
        }
        let body_len = bytes.len() - Frame::TRAILER_BYTES;
        let crc_expected = {
            let mut tail = bytes.clone();
            tail.advance(body_len);
            tail.get_u16()
        };
        let crc_actual = crc16(&bytes[..body_len]);
        if crc_expected != crc_actual {
            return Err(PhyError::invalid("frame", "CRC mismatch"));
        }
        let source = bytes.get_u8();
        let destination = bytes.get_u8();
        let sequence = bytes.get_u8();
        let kind = FrameKind::from_byte(bytes.get_u8())
            .ok_or_else(|| PhyError::invalid("frame", "unknown frame kind"))?;
        let len = bytes.get_u16() as usize;
        if bytes.remaining() < len + Frame::TRAILER_BYTES {
            return Err(PhyError::invalid("frame", "truncated payload"));
        }
        let payload = bytes.split_to(len).to_vec();
        Ok(Frame {
            source,
            destination,
            sequence,
            kind,
            payload,
        })
    }
}

/// CRC-16/CCITT-FALSE over a byte slice.
#[must_use]
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_reference_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert_eq!(crc16(b"123456789"), 0x29B1);
        assert_eq!(crc16(b""), 0xFFFF);
    }

    #[test]
    fn encode_decode_round_trip() {
        let codec = FrameCodec::new();
        let frame = Frame::data(3, 1, 42, vec![1, 2, 3, 4, 5]).unwrap();
        let bytes = codec.encode(&frame);
        assert_eq!(bytes.len(), Frame::HEADER_BYTES + 5 + Frame::TRAILER_BYTES);
        let decoded = codec.decode(bytes).unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn decode_detects_corruption() {
        let codec = FrameCodec::new();
        let frame = Frame::data(3, 1, 42, vec![9; 64]).unwrap();
        let mut bytes = codec.encode(&frame).to_vec();
        bytes[10] ^= 0xFF;
        assert!(codec.decode(Bytes::from(bytes)).is_err());
    }

    #[test]
    fn decode_rejects_truncated_and_unknown_kind() {
        let codec = FrameCodec::new();
        assert!(codec.decode(Bytes::from_static(&[1, 2, 3])).is_err());
        // Build a frame with an invalid kind byte but a valid CRC.
        let mut buf = BytesMut::new();
        buf.put_u8(1);
        buf.put_u8(2);
        buf.put_u8(3);
        buf.put_u8(9); // unknown kind
        buf.put_u16(0);
        let crc = crc16(&buf);
        buf.put_u16(crc);
        assert!(codec.decode(buf.freeze()).is_err());
    }

    #[test]
    fn payload_size_limit() {
        assert!(Frame::data(0, 1, 0, vec![0; Frame::MAX_PAYLOAD_BYTES]).is_ok());
        assert!(Frame::data(0, 1, 0, vec![0; Frame::MAX_PAYLOAD_BYTES + 1]).is_err());
    }

    #[test]
    fn ack_swaps_addresses_and_keeps_sequence() {
        let frame = Frame::data(7, 1, 9, vec![1]).unwrap();
        let ack = Frame::ack_for(&frame);
        assert_eq!(ack.source, 1);
        assert_eq!(ack.destination, 7);
        assert_eq!(ack.sequence, 9);
        assert_eq!(ack.kind, FrameKind::Ack);
        assert!(ack.payload.is_empty());
    }

    #[test]
    fn wire_size_and_overhead() {
        let frame = Frame::data(0, 1, 0, vec![0; 100]).unwrap();
        assert_eq!(frame.wire_size().as_bytes() as usize, 108);
        assert_eq!(Frame::frames_for(0), 0);
        assert_eq!(Frame::frames_for(1024), 1);
        assert_eq!(Frame::frames_for(1025), 2);
        assert!((Frame::overhead_factor(0) - 1.0).abs() < 1e-12);
        // Large payloads amortise the header: overhead < 1 %.
        assert!(Frame::overhead_factor(100 * 1024) < 1.01);
        // Tiny payloads are dominated by the header.
        assert!(Frame::overhead_factor(1) > 8.0);
    }
}
