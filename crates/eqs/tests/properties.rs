//! Property-based tests for the EQS channel models.

use hidwa_eqs::body::{BodyModel, BodySite};
use hidwa_eqs::capacity::CapacityEstimator;
use hidwa_eqs::channel::{EqsChannel, Termination};
use hidwa_eqs::noise::NoiseModel;
use hidwa_eqs::rf::{free_space_path_loss_db, RfLink};
use hidwa_eqs::security::EqsLeakage;
use hidwa_units::{dbm_to_power, Distance, Frequency, Voltage};
use proptest::prelude::*;

fn site() -> impl Strategy<Value = BodySite> {
    prop::sample::select(BodySite::ALL.to_vec())
}

proptest! {
    /// Channel gain is always a loss (< 0 dB) and finite within the EQS band.
    #[test]
    fn gain_is_a_finite_loss(meters in 0.05..2.0f64, mhz in 0.1..30.0f64) {
        let ch = EqsChannel::new(BodyModel::adult(), Termination::HighImpedance);
        let g = ch.gain_db(Distance::from_meters(meters), Frequency::from_mega_hertz(mhz));
        prop_assert!(g.is_finite());
        prop_assert!(g < 0.0);
        prop_assert!(g > -120.0);
    }

    /// Gain is monotone non-increasing in on-body distance.
    #[test]
    fn gain_monotone_in_distance(d1 in 0.05..2.0f64, d2 in 0.05..2.0f64, mhz in 0.1..30.0f64) {
        let ch = EqsChannel::new(BodyModel::adult(), Termination::HighImpedance);
        let f = Frequency::from_mega_hertz(mhz);
        let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(ch.gain_db(Distance::from_meters(lo), f) >= ch.gain_db(Distance::from_meters(hi), f));
    }

    /// 50 Ω termination never beats high-impedance termination.
    #[test]
    fn high_impedance_dominates(meters in 0.05..2.0f64, mhz in 0.1..30.0f64) {
        let hi = EqsChannel::new(BodyModel::adult(), Termination::HighImpedance);
        let lo = EqsChannel::new(BodyModel::adult(), Termination::FiftyOhm);
        let d = Distance::from_meters(meters);
        let f = Frequency::from_mega_hertz(mhz);
        prop_assert!(hi.gain_db(d, f) >= lo.gain_db(d, f));
    }

    /// Site-to-site paths are symmetric and bounded by the body size.
    #[test]
    fn site_paths_symmetric(a in site(), b in site()) {
        prop_assert_eq!(a.path_to(b), b.path_to(a));
        prop_assert!(a.path_to(b).as_meters() <= 2.5);
    }

    /// EQS leakage never exceeds the on-body amplitude and is monotone in distance.
    #[test]
    fn leakage_monotone(mv in 0.001..10.0f64, d1 in 0.01..10.0f64, d2 in 0.01..10.0f64) {
        let l = EqsLeakage::measured();
        let v0 = Voltage::from_milli_volts(mv);
        let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        let near = l.leaked_amplitude(v0, Distance::from_meters(lo));
        let far = l.leaked_amplitude(v0, Distance::from_meters(hi));
        prop_assert!(near <= v0);
        prop_assert!(far <= near);
    }

    /// Free-space path loss is monotone in distance.
    #[test]
    fn fspl_monotone(d1 in 0.02..50.0f64, d2 in 0.02..50.0f64) {
        let f = Frequency::from_giga_hertz(2.44);
        let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(
            free_space_path_loss_db(Distance::from_meters(lo), f)
                <= free_space_path_loss_db(Distance::from_meters(hi), f) + 1e-9
        );
    }

    /// RF detection range grows with transmit power.
    #[test]
    fn detection_range_monotone_in_tx(dbm1 in -20.0..10.0f64, dbm2 in -20.0..10.0f64) {
        let link = RfLink::ble_1m();
        let (lo, hi) = if dbm1 < dbm2 { (dbm1, dbm2) } else { (dbm2, dbm1) };
        prop_assert!(link.detection_range(dbm_to_power(lo)) <= link.detection_range(dbm_to_power(hi)));
    }

    /// Shannon capacity is monotone in bandwidth and transmit swing.
    #[test]
    fn capacity_monotone(bw1 in 0.5..30.0f64, bw2 in 0.5..30.0f64, swing in 0.1..3.0f64) {
        let est = CapacityEstimator::new(
            EqsChannel::new(BodyModel::adult(), Termination::HighImpedance),
            NoiseModel::wearable_receiver(),
        );
        let d = Distance::from_meters(1.4);
        let (lo, hi) = if bw1 < bw2 { (bw1, bw2) } else { (bw2, bw1) };
        let v = Voltage::from_volts(swing);
        let c_lo = est.capacity(v, d, Frequency::from_mega_hertz(lo));
        let c_hi = est.capacity(v, d, Frequency::from_mega_hertz(hi));
        prop_assert!(c_hi >= c_lo);
    }
}
