//! Error type for the channel models.

use core::fmt;

/// Errors produced by channel-model constructors and evaluators.
#[derive(Debug, Clone, PartialEq)]
pub enum EqsError {
    /// A model parameter was outside its physically meaningful range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Constraint that was violated.
        reason: String,
    },
    /// The requested carrier frequency lies outside the electro-quasistatic
    /// band, so the EQS channel model does not apply.
    OutsideEqsBand {
        /// Requested frequency in MHz.
        frequency_mhz: f64,
    },
}

impl EqsError {
    pub(crate) fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        EqsError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for EqsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EqsError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            EqsError::OutsideEqsBand { frequency_mhz } => {
                write!(
                    f,
                    "frequency {frequency_mhz} MHz is outside the EQS band (≤ 30 MHz)"
                )
            }
        }
    }
}

impl std::error::Error for EqsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EqsError::invalid("x", "y")
            .to_string()
            .contains("invalid parameter x"));
        let e = EqsError::OutsideEqsBand {
            frequency_mhz: 2400.0,
        };
        assert!(e.to_string().contains("2400"));
    }
}
