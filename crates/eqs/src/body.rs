//! Geometric and electrical model of the human body as a communication medium.
//!
//! For EQS-HBC the body acts as one node of a capacitively closed circuit:
//! the transmitter couples a potential onto the conductive body volume, the
//! receiver senses the body potential against its own floating ground, and
//! the circuit closes through the parasitic capacitances of transmitter and
//! receiver ground plates back to earth ground.  The numbers that matter are
//! therefore electrode/ground-plate capacitances, the body's self-capacitance
//! to earth, and which locations on the body host the devices.

use hidwa_units::Distance;
use serde::{Deserialize, Serialize};

/// Named on-body device locations, used to derive channel lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BodySite {
    /// Head / ear (earbuds, glasses temple).
    Ear,
    /// Eyes / face front (smart glasses, MR headset).
    Face,
    /// Chest (ECG patch, pendant, AI pin).
    Chest,
    /// Upper arm.
    UpperArm,
    /// Wrist (watch, band).
    Wrist,
    /// Finger (smart ring).
    Finger,
    /// Waist / pocket (phone, pocket assistant).
    Waist,
    /// Thigh.
    Thigh,
    /// Ankle / foot.
    Ankle,
}

impl BodySite {
    /// All sites.
    pub const ALL: [BodySite; 9] = [
        BodySite::Ear,
        BodySite::Face,
        BodySite::Chest,
        BodySite::UpperArm,
        BodySite::Wrist,
        BodySite::Finger,
        BodySite::Waist,
        BodySite::Thigh,
        BodySite::Ankle,
    ];

    /// Approximate position of the site on a standing adult, in metres, with
    /// the origin at the feet: `[x lateral, y anterior, z height]`.
    #[must_use]
    pub fn position(self) -> [f64; 3] {
        match self {
            BodySite::Ear => [0.08, 0.0, 1.65],
            BodySite::Face => [0.0, 0.10, 1.62],
            BodySite::Chest => [0.0, 0.12, 1.35],
            BodySite::UpperArm => [0.22, 0.0, 1.30],
            BodySite::Wrist => [0.28, 0.05, 0.95],
            BodySite::Finger => [0.30, 0.10, 0.85],
            BodySite::Waist => [0.12, 0.10, 1.00],
            BodySite::Thigh => [0.10, 0.05, 0.70],
            BodySite::Ankle => [0.08, 0.0, 0.10],
        }
    }

    /// Human-readable name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BodySite::Ear => "ear",
            BodySite::Face => "face",
            BodySite::Chest => "chest",
            BodySite::UpperArm => "upper arm",
            BodySite::Wrist => "wrist",
            BodySite::Finger => "finger",
            BodySite::Waist => "waist",
            BodySite::Thigh => "thigh",
            BodySite::Ankle => "ankle",
        }
    }

    /// On-body path length between two sites.
    ///
    /// The Euclidean distance is inflated by 30 % to approximate the path
    /// along the body surface (signals do not cut through free space).
    #[must_use]
    pub fn path_to(self, other: BodySite) -> Distance {
        let d = Distance::between(self.position(), other.position());
        d * 1.3
    }
}

impl core::fmt::Display for BodySite {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Electrical body model for EQS-HBC.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BodyModel {
    /// Body self-capacitance to earth ground, farads (~100–200 pF for adults).
    body_to_ground_capacitance_f: f64,
    /// Transmitter ground-plate return-path capacitance, farads (~0.1–1 pF).
    tx_return_capacitance_f: f64,
    /// Receiver ground-plate return-path capacitance, farads (~0.1–1 pF).
    rx_return_capacitance_f: f64,
    /// Extra on-body attenuation per metre of channel length, dB/m (small:
    /// the EQS channel is nearly distance-independent; ~1–2 dB/m captures the
    /// residual trend reported in measurement campaigns).
    per_meter_loss_db: f64,
    /// Maximum usable on-body channel length.
    max_channel_length: Distance,
}

impl BodyModel {
    /// Creates a body model from explicit electrical parameters.
    ///
    /// # Errors
    /// Returns [`crate::EqsError`] if any capacitance is non-positive or the
    /// per-metre loss is negative.
    pub fn new(
        body_to_ground_capacitance_f: f64,
        tx_return_capacitance_f: f64,
        rx_return_capacitance_f: f64,
        per_meter_loss_db: f64,
        max_channel_length: Distance,
    ) -> Result<Self, crate::EqsError> {
        if body_to_ground_capacitance_f <= 0.0 {
            return Err(crate::EqsError::invalid(
                "body_to_ground_capacitance_f",
                "must be positive",
            ));
        }
        if tx_return_capacitance_f <= 0.0 || rx_return_capacitance_f <= 0.0 {
            return Err(crate::EqsError::invalid(
                "return_capacitance",
                "must be positive",
            ));
        }
        if per_meter_loss_db < 0.0 {
            return Err(crate::EqsError::invalid(
                "per_meter_loss_db",
                "must be non-negative",
            ));
        }
        Ok(Self {
            body_to_ground_capacitance_f,
            tx_return_capacitance_f,
            rx_return_capacitance_f,
            per_meter_loss_db,
            max_channel_length,
        })
    }

    /// A standing adult with wearable-size devices: 150 pF body capacitance,
    /// 0.6 pF return-path capacitances, 2 dB/m residual distance loss,
    /// channels up to 2 m (head-to-ankle).
    #[must_use]
    pub fn adult() -> Self {
        Self::new(150e-12, 0.6e-12, 0.6e-12, 2.0, Distance::from_meters(2.0))
            .expect("reference body parameters are valid")
    }

    /// A smaller body (child or small adult): lower body capacitance and
    /// shorter maximum channel.
    #[must_use]
    pub fn small_adult() -> Self {
        Self::new(110e-12, 0.5e-12, 0.5e-12, 2.0, Distance::from_meters(1.6))
            .expect("reference body parameters are valid")
    }

    /// Body-to-earth capacitance in farads.
    #[must_use]
    pub fn body_to_ground_capacitance_f(&self) -> f64 {
        self.body_to_ground_capacitance_f
    }

    /// Transmitter return-path capacitance in farads.
    #[must_use]
    pub fn tx_return_capacitance_f(&self) -> f64 {
        self.tx_return_capacitance_f
    }

    /// Receiver return-path capacitance in farads.
    #[must_use]
    pub fn rx_return_capacitance_f(&self) -> f64 {
        self.rx_return_capacitance_f
    }

    /// Residual on-body loss per metre, in dB.
    #[must_use]
    pub fn per_meter_loss_db(&self) -> f64 {
        self.per_meter_loss_db
    }

    /// Longest supported on-body channel.
    #[must_use]
    pub fn max_channel_length(&self) -> Distance {
        self.max_channel_length
    }
}

impl Default for BodyModel {
    fn default() -> Self {
        Self::adult()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_paths_are_in_expected_range() {
        // Paper: IoB channel lengths are typically 1–2 m for the longest
        // paths; wrist-to-chest is well under a metre.
        let long = BodySite::Ear.path_to(BodySite::Ankle);
        assert!(long.as_meters() > 1.5 && long.as_meters() < 2.3, "{long}");
        let short = BodySite::Wrist.path_to(BodySite::Chest);
        assert!(short.as_meters() < 1.0);
    }

    #[test]
    fn path_is_symmetric_and_zero_to_self() {
        for a in BodySite::ALL {
            assert_eq!(a.path_to(a), Distance::ZERO);
            for b in BodySite::ALL {
                assert_eq!(a.path_to(b), b.path_to(a));
            }
        }
    }

    #[test]
    fn adult_model_reference_values() {
        let body = BodyModel::adult();
        assert!((body.body_to_ground_capacitance_f() - 150e-12).abs() < 1e-15);
        assert!(body.max_channel_length().as_meters() >= 2.0);
        assert!(BodyModel::small_adult().max_channel_length() < body.max_channel_length());
        assert_eq!(BodyModel::default(), BodyModel::adult());
    }

    #[test]
    fn constructor_rejects_nonphysical_parameters() {
        let d = Distance::from_meters(2.0);
        assert!(BodyModel::new(0.0, 1e-12, 1e-12, 1.0, d).is_err());
        assert!(BodyModel::new(100e-12, 0.0, 1e-12, 1.0, d).is_err());
        assert!(BodyModel::new(100e-12, 1e-12, -1e-12, 1.0, d).is_err());
        assert!(BodyModel::new(100e-12, 1e-12, 1e-12, -1.0, d).is_err());
        assert!(BodyModel::new(100e-12, 1e-12, 1e-12, 1.0, d).is_ok());
    }

    #[test]
    fn site_names_unique() {
        let mut names: Vec<&str> = BodySite::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BodySite::ALL.len());
        assert_eq!(BodySite::Wrist.to_string(), "wrist");
    }
}
