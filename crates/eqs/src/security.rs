//! Physical-layer security: signal leakage away from the body.
//!
//! Quasistatic fields around the body decay like a static dipole — the leaked
//! potential falls off roughly with the cube of distance once an eavesdropper
//! is more than a few centimetres away from the skin (Das 2019 measured the
//! EQS-HBC "personal bubble" at ≲ 0.15 m).  Radiative RF instead falls off as
//! 1/d in amplitude, so a BLE packet is decodable across the room.  This
//! module quantifies both so the bench can regenerate the containment
//! comparison the paper makes in §I and §III-B.

use crate::channel::EqsChannel;
use crate::noise::NoiseModel;
use crate::rf::RfLink;
use hidwa_units::{Distance, Frequency, Power, Voltage};
use serde::{Deserialize, Serialize};

/// Leakage model for EQS-HBC signals off the body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EqsLeakage {
    /// Reference distance at which the off-body amplitude equals the on-body
    /// received amplitude (electrode-to-air transition region), metres.
    reference_distance_m: f64,
    /// Amplitude decay exponent beyond the reference distance (≈3 for a
    /// quasistatic dipole).
    decay_exponent: f64,
}

impl EqsLeakage {
    /// Creates a leakage model.
    #[must_use]
    pub fn new(reference_distance_m: f64, decay_exponent: f64) -> Self {
        Self {
            reference_distance_m: reference_distance_m.max(1e-3),
            decay_exponent: decay_exponent.max(1.0),
        }
    }

    /// Default model fitted to published containment measurements: 5 cm
    /// transition region, cubic amplitude decay.
    #[must_use]
    pub fn measured() -> Self {
        Self::new(0.05, 3.0)
    }

    /// Off-body amplitude at `distance` from the body surface, given the
    /// amplitude available at the body surface.
    #[must_use]
    pub fn leaked_amplitude(&self, on_body: Voltage, distance: Distance) -> Voltage {
        let d = distance.as_meters();
        if d <= self.reference_distance_m {
            return on_body;
        }
        on_body * (self.reference_distance_m / d).powf(self.decay_exponent)
    }

    /// Distance at which the leaked amplitude drops below an attacker's
    /// receiver sensitivity (expressed as a minimum detectable amplitude).
    #[must_use]
    pub fn containment_radius(&self, on_body: Voltage, min_detectable: Voltage) -> Distance {
        if min_detectable.as_volts() <= 0.0 {
            return Distance::from_meters(f64::INFINITY);
        }
        if on_body <= min_detectable {
            return Distance::from_meters(self.reference_distance_m);
        }
        let ratio = on_body.as_volts() / min_detectable.as_volts();
        Distance::from_meters(self.reference_distance_m * ratio.powf(1.0 / self.decay_exponent))
    }
}

impl Default for EqsLeakage {
    fn default() -> Self {
        Self::measured()
    }
}

/// One row of the EQS-vs-RF interception comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterceptionPoint {
    /// Eavesdropper distance from the body.
    pub distance: Distance,
    /// Eavesdropper SNR on the EQS signal, dB.
    pub eqs_snr_db: f64,
    /// Eavesdropper SNR on the RF (BLE) signal, dB.
    pub rf_snr_db: f64,
    /// Whether the EQS signal is decodable (SNR above threshold).
    pub eqs_decodable: bool,
    /// Whether the RF signal is decodable.
    pub rf_decodable: bool,
}

/// Compares attacker visibility of an EQS-HBC link and a BLE link versus
/// distance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SecurityComparison {
    eqs_channel: EqsChannel,
    leakage: EqsLeakage,
    rf_link: RfLink,
    attacker_noise: NoiseModel,
    /// SNR (dB) an attacker needs to decode either signal.
    decode_threshold_db: f64,
}

impl SecurityComparison {
    /// Creates a comparison with a 10 dB decode threshold and a wearable-class
    /// attacker receiver.
    #[must_use]
    pub fn new(eqs_channel: EqsChannel, rf_link: RfLink) -> Self {
        Self {
            eqs_channel,
            leakage: EqsLeakage::measured(),
            rf_link,
            attacker_noise: NoiseModel::wearable_receiver(),
            decode_threshold_db: 10.0,
        }
    }

    /// Overrides the leakage model.
    #[must_use]
    pub fn with_leakage(mut self, leakage: EqsLeakage) -> Self {
        self.leakage = leakage;
        self
    }

    /// Evaluates both links at a set of attacker distances.
    ///
    /// `tx_swing` is the EQS transmit swing, `tx_rf` the BLE transmit power,
    /// `on_body_distance` the legitimate on-body channel length, `bandwidth`
    /// the signal bandwidth used for the SNR calculation.
    #[must_use]
    pub fn sweep(
        &self,
        tx_swing: Voltage,
        tx_rf: Power,
        on_body_distance: Distance,
        bandwidth: Frequency,
        distances: &[Distance],
    ) -> Vec<InterceptionPoint> {
        let carrier = Frequency::from_mega_hertz(21.0);
        let on_body_amplitude =
            self.eqs_channel
                .received_amplitude(tx_swing, on_body_distance, carrier);
        distances
            .iter()
            .map(|&d| {
                let leaked = self.leakage.leaked_amplitude(on_body_amplitude, d);
                // The attacker probes the leaked field with a high-impedance
                // front end: voltage-domain SNR against its input noise.
                let eqs_snr_db = self.attacker_noise.snr_amplitude_db(leaked, bandwidth);
                let rf_rx = self.rf_link.received_power(tx_rf, d);
                let rf_snr_db = self.attacker_noise.snr_db(rf_rx, bandwidth);
                InterceptionPoint {
                    distance: d,
                    eqs_snr_db,
                    rf_snr_db,
                    eqs_decodable: eqs_snr_db >= self.decode_threshold_db,
                    rf_decodable: rf_snr_db >= self.decode_threshold_db,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyModel;
    use crate::channel::Termination;
    use hidwa_units::dbm_to_power;

    fn comparison() -> SecurityComparison {
        SecurityComparison::new(
            EqsChannel::new(BodyModel::adult(), Termination::HighImpedance),
            RfLink::ble_1m(),
        )
    }

    #[test]
    fn leakage_decays_steeply() {
        let l = EqsLeakage::measured();
        let v0 = Voltage::from_milli_volts(1.0);
        let near = l.leaked_amplitude(v0, Distance::from_centimeters(5.0));
        let half_m = l.leaked_amplitude(v0, Distance::from_meters(0.5));
        let one_m = l.leaked_amplitude(v0, Distance::from_meters(1.0));
        assert_eq!(near, v0);
        assert!(half_m < v0 * 0.01);
        // Cubic decay: doubling distance costs 8×.
        assert!((half_m.as_volts() / one_m.as_volts() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn containment_radius_is_personal_bubble_scale() {
        let l = EqsLeakage::measured();
        // 1 mV on-body signal, attacker needs 10 µV: contained within ~25 cm.
        let r = l.containment_radius(
            Voltage::from_milli_volts(1.0),
            Voltage::from_micro_volts(10.0),
        );
        assert!(r.as_meters() < 0.5, "containment {r}");
        // Degenerate cases.
        assert!(l
            .containment_radius(Voltage::from_milli_volts(1.0), Voltage::ZERO)
            .as_meters()
            .is_infinite());
        assert_eq!(
            l.containment_radius(
                Voltage::from_micro_volts(1.0),
                Voltage::from_milli_volts(1.0)
            ),
            Distance::from_meters(0.05)
        );
    }

    #[test]
    fn eqs_contained_but_rf_decodable_at_room_scale() {
        // The paper's core security claim: at 5 m the BLE signal is decodable
        // but the EQS signal is not; the EQS signal is only visible in the
        // personal bubble.
        let cmp = comparison();
        let distances = [
            Distance::from_centimeters(10.0),
            Distance::from_meters(1.0),
            Distance::from_meters(5.0),
            Distance::from_meters(10.0),
        ];
        let points = cmp.sweep(
            Voltage::from_volts(1.0),
            dbm_to_power(0.0),
            Distance::from_meters(1.4),
            Frequency::from_mega_hertz(4.0),
            &distances,
        );
        assert_eq!(points.len(), 4);
        // RF decodable at 5 m, EQS not decodable beyond the bubble.
        let at_5m = &points[2];
        assert!(at_5m.rf_decodable, "RF should be decodable at 5 m");
        assert!(!at_5m.eqs_decodable, "EQS must not be decodable at 5 m");
        // Within 10 cm the EQS signal is observable (that is the legitimate
        // receiver's regime).
        assert!(points[0].eqs_snr_db > points[2].eqs_snr_db + 40.0);
        // SNRs decrease monotonically with distance for both technologies.
        for w in points.windows(2) {
            assert!(w[0].eqs_snr_db >= w[1].eqs_snr_db);
            assert!(w[0].rf_snr_db >= w[1].rf_snr_db);
        }
    }

    #[test]
    fn custom_leakage_changes_containment() {
        let loose = EqsLeakage::new(0.5, 2.0);
        let cmp = comparison().with_leakage(loose);
        let points = cmp.sweep(
            Voltage::from_volts(1.0),
            dbm_to_power(0.0),
            Distance::from_meters(1.0),
            Frequency::from_mega_hertz(4.0),
            &[Distance::from_meters(1.0)],
        );
        let tight_points = comparison().sweep(
            Voltage::from_volts(1.0),
            dbm_to_power(0.0),
            Distance::from_meters(1.0),
            Frequency::from_mega_hertz(4.0),
            &[Distance::from_meters(1.0)],
        );
        assert!(points[0].eqs_snr_db > tight_points[0].eqs_snr_db);
    }

    #[test]
    fn leakage_constructor_clamps() {
        let l = EqsLeakage::new(-1.0, 0.5);
        let v = l.leaked_amplitude(Voltage::from_volts(1.0), Distance::from_meters(1.0));
        assert!(v.as_volts() > 0.0 && v.as_volts() < 1.0);
        assert_eq!(EqsLeakage::default(), EqsLeakage::measured());
    }
}
