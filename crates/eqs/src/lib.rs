//! Electro-quasistatic human body communication (EQS-HBC) channel models.
//!
//! The paper's "Body as a Wire" (Wi-R) argument rests on three physical
//! observations about the conductive human body:
//!
//! 1. Below ~30 MHz (the electro-quasistatic band) the body behaves as a
//!    lossy conductor rather than an antenna, so an externally coupled
//!    electric-field signal travels across the whole body with a loss that is
//!    nearly independent of on-body distance ([`channel`]).
//! 2. The same quasistatic fields decay extremely steeply *away* from the
//!    body, confining the signal to a centimetre-scale "personal bubble" and
//!    giving physical-layer security; radiative RF instead illuminates a
//!    5–10 m room-scale bubble ([`security`], [`rf`]).
//! 3. The resulting channel supports Mbps-class data rates at ultra-low
//!    power, quantified with a Shannon-capacity bound ([`capacity`]).
//!
//! Models are first-order and parametric, calibrated against the trends in
//! the cited EQS-HBC literature (Maity 2018, Das 2019, Nath 2021): capacitive
//! return path division for voltage-mode termination, frequency-flat response
//! in the EQS band with high-impedance termination, and dipole-like
//! quasistatic field decay off the body.
//!
//! # Example
//! ```
//! use hidwa_eqs::channel::{EqsChannel, Termination};
//! use hidwa_eqs::body::BodyModel;
//! use hidwa_units::{Distance, Frequency};
//!
//! let body = BodyModel::adult();
//! let channel = EqsChannel::new(body, Termination::HighImpedance);
//! let gain_db = channel.gain_db(Distance::from_meters(1.4), Frequency::from_mega_hertz(21.0));
//! assert!(gain_db < -50.0 && gain_db > -90.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod body;
pub mod capacity;
pub mod channel;
mod error;
pub mod noise;
pub mod rf;
pub mod security;

pub use error::EqsError;
