//! EQS-HBC channel gain model.
//!
//! In capacitive voltage-mode EQS-HBC the transmitter couples its signal onto
//! the body and the receiver observes the body potential relative to its own
//! floating ground plate.  The dominant loss mechanism is the capacitive
//! divider between the tiny return-path capacitances of the wearable ground
//! plates (~0.1–1 pF) and the much larger body-to-earth capacitance
//! (~150 pF):
//!
//! `gain ≈ (C_ret_tx / C_body) · (C_ret_rx / (C_ret_rx + C_load))`
//!
//! With a high-impedance (capacitive, ~fF–pF load) termination the divider is
//! nearly frequency-independent across the EQS band, which is what makes the
//! whole-body "wire" behave like a wire: the measured channel loss sits in
//! the −55 to −80 dB window largely independent of where the devices sit on
//! the body (Maity 2018).  With a 50 Ω termination the response becomes
//! high-pass and considerably lossier at low EQS frequencies — which is why
//! early HBC work at low frequency under-performed and why termination is a
//! first-class parameter here.

use crate::body::{BodyModel, BodySite};
use crate::EqsError;
use hidwa_units::{db_to_ratio, Distance, Frequency, Voltage};
use serde::{Deserialize, Serialize};

/// Receiver termination style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Termination {
    /// High-impedance capacitive termination (voltage-mode EQS-HBC): flat,
    /// low-loss response across the EQS band.
    HighImpedance,
    /// Conventional 50 Ω termination: high-pass response, lossy at low
    /// frequency.
    FiftyOhm,
}

/// Capacitive voltage-mode EQS-HBC channel.
///
/// # Example
/// ```
/// use hidwa_eqs::channel::{EqsChannel, Termination};
/// use hidwa_eqs::body::BodyModel;
/// use hidwa_units::{Distance, Frequency};
/// let ch = EqsChannel::new(BodyModel::adult(), Termination::HighImpedance);
/// let g = ch.gain_db(Distance::from_meters(1.0), Frequency::from_mega_hertz(21.0));
/// assert!(g < -50.0 && g > -90.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EqsChannel {
    body: BodyModel,
    termination: Termination,
    /// Receiver load capacitance for high-impedance termination, farads.
    load_capacitance_f: f64,
}

impl EqsChannel {
    /// Creates a channel over `body` with the given termination.
    #[must_use]
    pub fn new(body: BodyModel, termination: Termination) -> Self {
        Self {
            body,
            termination,
            load_capacitance_f: 1.0e-12,
        }
    }

    /// Overrides the receiver load capacitance (high-impedance termination).
    ///
    /// # Errors
    /// Returns [`EqsError`] if `farads` is not positive.
    pub fn with_load_capacitance(mut self, farads: f64) -> Result<Self, EqsError> {
        if farads <= 0.0 {
            return Err(EqsError::invalid("load_capacitance_f", "must be positive"));
        }
        self.load_capacitance_f = farads;
        Ok(self)
    }

    /// The body model underlying this channel.
    #[must_use]
    pub fn body(&self) -> &BodyModel {
        &self.body
    }

    /// The termination style.
    #[must_use]
    pub fn termination(&self) -> Termination {
        self.termination
    }

    /// Channel voltage gain (linear) for a given on-body distance and carrier
    /// frequency.
    ///
    /// Frequencies above the EQS band are rejected by [`EqsChannel::try_gain_db`];
    /// this infallible variant clamps them to the band edge.
    #[must_use]
    pub fn gain(&self, distance: Distance, frequency: Frequency) -> f64 {
        let f = if frequency.is_eqs() {
            frequency
        } else {
            Frequency::from_mega_hertz(30.0)
        };
        self.gain_inner(distance, f)
    }

    /// Channel gain in dB (20·log10 of the voltage gain).
    #[must_use]
    pub fn gain_db(&self, distance: Distance, frequency: Frequency) -> f64 {
        20.0 * self.gain(distance, frequency).log10()
    }

    /// Channel gain in dB, returning an error outside the EQS band.
    ///
    /// # Errors
    /// Returns [`EqsError::OutsideEqsBand`] when `frequency` exceeds 30 MHz.
    pub fn try_gain_db(&self, distance: Distance, frequency: Frequency) -> Result<f64, EqsError> {
        if !frequency.is_eqs() {
            return Err(EqsError::OutsideEqsBand {
                frequency_mhz: frequency.as_mega_hertz(),
            });
        }
        Ok(20.0 * self.gain_inner(distance, frequency).log10())
    }

    fn gain_inner(&self, distance: Distance, frequency: Frequency) -> f64 {
        let body = &self.body;
        // Forward coupling: the transmitter lifts the body potential through
        // the divider between its return capacitance and the body-to-earth
        // capacitance.
        let forward = body.tx_return_capacitance_f()
            / (body.tx_return_capacitance_f() + body.body_to_ground_capacitance_f());
        // Receive side depends on termination.
        let receive = match self.termination {
            Termination::HighImpedance => {
                // Capacitive divider between the receiver return capacitance
                // and its load capacitance: frequency-independent.
                body.rx_return_capacitance_f()
                    / (body.rx_return_capacitance_f() + self.load_capacitance_f)
            }
            Termination::FiftyOhm => {
                // R·C high-pass: |H| = ωRC / sqrt(1 + (ωRC)²) with
                // C = receiver return capacitance, R = 50 Ω.
                let omega = 2.0 * core::f64::consts::PI * frequency.as_hertz();
                let wrc = omega * 50.0 * body.rx_return_capacitance_f();
                wrc / (1.0 + wrc * wrc).sqrt()
                    * (body.rx_return_capacitance_f()
                        / (body.rx_return_capacitance_f() + self.load_capacitance_f))
            }
        };
        // Residual distance dependence (small for EQS).
        let distance_m = distance
            .as_meters()
            .min(body.max_channel_length().as_meters());
        let residual = db_to_ratio(-body.per_meter_loss_db() * distance_m / 2.0).sqrt();
        // The factor of 2 and sqrt keep the residual expressed as a voltage
        // ratio: per_meter_loss_db is specified as a power loss per metre.
        forward * receive * residual
    }

    /// Channel gain between two named body sites.
    #[must_use]
    pub fn gain_db_between(&self, a: BodySite, b: BodySite, frequency: Frequency) -> f64 {
        self.gain_db(a.path_to(b), frequency)
    }

    /// Received amplitude for a given transmit swing.
    #[must_use]
    pub fn received_amplitude(
        &self,
        tx_swing: Voltage,
        distance: Distance,
        frequency: Frequency,
    ) -> Voltage {
        tx_swing * self.gain(distance, frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adult_hi_z() -> EqsChannel {
        EqsChannel::new(BodyModel::adult(), Termination::HighImpedance)
    }

    #[test]
    fn whole_body_loss_in_measured_window() {
        // EQS-HBC measurement campaigns report −55 to −85 dB whole-body loss.
        let ch = adult_hi_z();
        for meters in [0.2, 0.5, 1.0, 1.5, 2.0] {
            let g = ch.gain_db(
                Distance::from_meters(meters),
                Frequency::from_mega_hertz(21.0),
            );
            assert!(g < -50.0 && g > -90.0, "gain at {meters} m = {g} dB");
        }
    }

    #[test]
    fn high_impedance_response_is_flat_across_eqs_band() {
        let ch = adult_hi_z();
        let d = Distance::from_meters(1.2);
        let g_low = ch.gain_db(d, Frequency::from_kilo_hertz(100.0));
        let g_high = ch.gain_db(d, Frequency::from_mega_hertz(30.0));
        assert!(
            (g_low - g_high).abs() < 1.0,
            "flatness violated: {g_low} vs {g_high}"
        );
    }

    #[test]
    fn fifty_ohm_termination_is_high_pass_and_lossier() {
        let hi_z = adult_hi_z();
        let r50 = EqsChannel::new(BodyModel::adult(), Termination::FiftyOhm);
        let d = Distance::from_meters(1.0);
        let f_low = Frequency::from_kilo_hertz(100.0);
        let f_high = Frequency::from_mega_hertz(30.0);
        // 50 Ω is worse than high-impedance everywhere in the band…
        assert!(r50.gain_db(d, f_low) < hi_z.gain_db(d, f_low));
        // …and improves with frequency (high-pass behaviour).
        assert!(r50.gain_db(d, f_high) > r50.gain_db(d, f_low) + 20.0);
    }

    #[test]
    fn gain_decreases_slowly_with_distance() {
        let ch = adult_hi_z();
        let f = Frequency::from_mega_hertz(10.0);
        let g_short = ch.gain_db(Distance::from_meters(0.3), f);
        let g_long = ch.gain_db(Distance::from_meters(1.8), f);
        assert!(g_short > g_long);
        // The whole-body spread is a few dB, not tens of dB — "body as a wire".
        assert!(g_short - g_long < 5.0);
    }

    #[test]
    fn out_of_band_is_rejected_or_clamped() {
        let ch = adult_hi_z();
        let d = Distance::from_meters(1.0);
        assert!(ch
            .try_gain_db(d, Frequency::from_mega_hertz(2400.0))
            .is_err());
        // Infallible variant clamps: equal to the band edge value.
        let clamped = ch.gain_db(d, Frequency::from_mega_hertz(2400.0));
        let edge = ch.gain_db(d, Frequency::from_mega_hertz(30.0));
        assert!((clamped - edge).abs() < 1e-9);
    }

    #[test]
    fn site_to_site_gain_uses_path_length() {
        let ch = adult_hi_z();
        let f = Frequency::from_mega_hertz(21.0);
        let g_sites = ch.gain_db_between(BodySite::Wrist, BodySite::Chest, f);
        let g_manual = ch.gain_db(BodySite::Wrist.path_to(BodySite::Chest), f);
        assert!((g_sites - g_manual).abs() < 1e-12);
    }

    #[test]
    fn received_amplitude_scales_with_swing() {
        let ch = adult_hi_z();
        let d = Distance::from_meters(1.0);
        let f = Frequency::from_mega_hertz(21.0);
        let v1 = ch.received_amplitude(Voltage::from_volts(1.0), d, f);
        let v2 = ch.received_amplitude(Voltage::from_volts(2.0), d, f);
        assert!((v2.as_volts() / v1.as_volts() - 2.0).abs() < 1e-12);
        // 1 V swing over a ~−65 dB channel lands in the 100 µV – 3 mV window.
        assert!(v1.as_micro_volts() > 50.0 && v1.as_micro_volts() < 3000.0);
    }

    #[test]
    fn load_capacitance_validation_and_effect() {
        let base = adult_hi_z();
        let heavy_load = EqsChannel::new(BodyModel::adult(), Termination::HighImpedance)
            .with_load_capacitance(10e-12)
            .unwrap();
        let d = Distance::from_meters(1.0);
        let f = Frequency::from_mega_hertz(21.0);
        assert!(heavy_load.gain_db(d, f) < base.gain_db(d, f));
        assert!(
            EqsChannel::new(BodyModel::adult(), Termination::HighImpedance)
                .with_load_capacitance(0.0)
                .is_err()
        );
        assert_eq!(base.termination(), Termination::HighImpedance);
        assert_eq!(base.body(), &BodyModel::adult());
    }
}
