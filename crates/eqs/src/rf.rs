//! Radiative RF path-loss model (the baseline the paper argues against).
//!
//! A 2.4 GHz BLE radio on the body radiates into the room: free-space (Friis)
//! path loss plus a body-shadowing term when the direct path crosses the
//! torso.  Two consequences drive the paper's argument:
//!
//! * energy: the radio must close a link budget over a room-scale bubble even
//!   though the intended receiver is 1–2 m away on the same body, and
//! * security: an eavesdropper 5–10 m away still receives a usable signal.

use hidwa_units::{power_to_dbm, Distance, Frequency, Power};
use serde::{Deserialize, Serialize};

/// Free-space path loss in dB at distance `d` and frequency `f`.
///
/// `FSPL = 20·log10(4π·d/λ)`; returns 0 dB for distances below 1 cm to avoid
/// the near-field singularity.
#[must_use]
pub fn free_space_path_loss_db(distance: Distance, frequency: Frequency) -> f64 {
    let d = distance.as_meters().max(0.01);
    let lambda = frequency.wavelength_m();
    20.0 * (4.0 * core::f64::consts::PI * d / lambda).log10()
}

/// Radiative RF link model (BLE-class).
///
/// # Example
/// ```
/// use hidwa_eqs::rf::RfLink;
/// use hidwa_units::{dbm_to_power, Distance};
/// let link = RfLink::ble_2m();
/// let rx = link.received_power(dbm_to_power(0.0), Distance::from_meters(5.0));
/// assert!(hidwa_units::power_to_dbm(rx) > -90.0); // still comfortably decodable at 5 m
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RfLink {
    carrier: Frequency,
    /// Combined TX+RX antenna gain, dB (small, body-worn antennas are poor).
    antenna_gain_db: f64,
    /// Additional loss when the body shadows the path, dB.
    body_shadow_db: f64,
    /// Receiver sensitivity.
    sensitivity: Power,
}

impl RfLink {
    /// Creates an RF link model.
    #[must_use]
    pub fn new(
        carrier: Frequency,
        antenna_gain_db: f64,
        body_shadow_db: f64,
        sensitivity: Power,
    ) -> Self {
        Self {
            carrier,
            antenna_gain_db,
            body_shadow_db,
            sensitivity,
        }
    }

    /// BLE 1M PHY reference link: 2.44 GHz, −4 dB net antenna gain, 15 dB
    /// average body shadowing, −95 dBm sensitivity.
    #[must_use]
    pub fn ble_1m() -> Self {
        Self::new(
            Frequency::from_giga_hertz(2.44),
            -4.0,
            15.0,
            hidwa_units::dbm_to_power(-95.0),
        )
    }

    /// BLE 2M PHY reference link: same radio, ~3 dB worse sensitivity.
    #[must_use]
    pub fn ble_2m() -> Self {
        Self::new(
            Frequency::from_giga_hertz(2.44),
            -4.0,
            15.0,
            hidwa_units::dbm_to_power(-92.0),
        )
    }

    /// Carrier frequency.
    #[must_use]
    pub fn carrier(&self) -> Frequency {
        self.carrier
    }

    /// Receiver sensitivity.
    #[must_use]
    pub fn sensitivity(&self) -> Power {
        self.sensitivity
    }

    /// Total path loss in dB at a given distance (free space + shadowing −
    /// antenna gains).
    #[must_use]
    pub fn path_loss_db(&self, distance: Distance) -> f64 {
        free_space_path_loss_db(distance, self.carrier) + self.body_shadow_db - self.antenna_gain_db
    }

    /// Received power for a given transmit power and distance.
    #[must_use]
    pub fn received_power(&self, tx_power: Power, distance: Distance) -> Power {
        let rx_dbm = power_to_dbm(tx_power) - self.path_loss_db(distance);
        hidwa_units::dbm_to_power(rx_dbm)
    }

    /// Maximum distance at which the received power still meets the receiver
    /// sensitivity — the "radiation bubble" radius for an eavesdropper with
    /// the same receiver.
    #[must_use]
    pub fn detection_range(&self, tx_power: Power) -> Distance {
        // Invert FSPL: allowed loss = TX(dBm) − sensitivity(dBm).
        let allowed_db = power_to_dbm(tx_power) - power_to_dbm(self.sensitivity)
            + self.antenna_gain_db
            - self.body_shadow_db;
        if allowed_db <= 0.0 {
            return Distance::ZERO;
        }
        let lambda = self.carrier.wavelength_m();
        let d =
            lambda / (4.0 * core::f64::consts::PI) * hidwa_units::db_to_ratio(allowed_db).sqrt();
        Distance::from_meters(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hidwa_units::dbm_to_power;

    #[test]
    fn fspl_reference_point() {
        // 2.4 GHz at 1 m ≈ 40 dB.
        let loss =
            free_space_path_loss_db(Distance::from_meters(1.0), Frequency::from_giga_hertz(2.4));
        assert!((loss - 40.0).abs() < 0.5, "loss {loss}");
    }

    #[test]
    fn fspl_increases_with_distance_and_frequency() {
        let f = Frequency::from_giga_hertz(2.4);
        assert!(
            free_space_path_loss_db(Distance::from_meters(10.0), f)
                > free_space_path_loss_db(Distance::from_meters(1.0), f)
        );
        assert!(
            free_space_path_loss_db(Distance::from_meters(1.0), Frequency::from_giga_hertz(5.0))
                > free_space_path_loss_db(Distance::from_meters(1.0), f)
        );
        // Near-field clamp.
        let tiny = free_space_path_loss_db(Distance::ZERO, f);
        assert!(tiny.is_finite());
    }

    #[test]
    fn ble_reaches_room_scale() {
        // Paper: "the data is radiated 5−10 meters away from the device".
        // A 0 dBm BLE transmitter must remain decodable at ≥ 5 m even with
        // body shadowing.
        let link = RfLink::ble_1m();
        let range = link.detection_range(dbm_to_power(0.0));
        assert!(range.as_meters() > 5.0, "range {range}");
        // And the received power at 2 m (across-body via reflection) is far
        // above sensitivity.
        let rx = link.received_power(dbm_to_power(0.0), Distance::from_meters(2.0));
        assert!(rx > link.sensitivity());
    }

    #[test]
    fn received_power_monotone_decreasing() {
        let link = RfLink::ble_2m();
        let tx = dbm_to_power(0.0);
        let mut prev = Power::from_watts(f64::MAX);
        for m in [0.5, 1.0, 2.0, 5.0, 10.0] {
            let p = link.received_power(tx, Distance::from_meters(m));
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn detection_range_zero_when_link_cannot_close() {
        let deaf = RfLink::new(
            Frequency::from_giga_hertz(2.44),
            -4.0,
            15.0,
            dbm_to_power(20.0),
        );
        assert_eq!(deaf.detection_range(dbm_to_power(0.0)), Distance::ZERO);
    }

    #[test]
    fn accessors() {
        let link = RfLink::ble_1m();
        assert!((link.carrier().as_giga_hertz() - 2.44).abs() < 1e-9);
        assert!(link.sensitivity() < dbm_to_power(-90.0));
        assert!(link.path_loss_db(Distance::from_meters(1.0)) > 40.0);
    }
}
