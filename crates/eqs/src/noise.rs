//! Receiver noise model: thermal noise floor, noise figure and interference,
//! yielding the SNR that the capacity and BER models consume.

use hidwa_units::{power_to_dbm, Frequency, Power};
use serde::{Deserialize, Serialize};

/// Boltzmann constant, J/K.
const BOLTZMANN: f64 = 1.380_649e-23;
/// Reference temperature for noise calculations, kelvin.
const T0_KELVIN: f64 = 290.0;

/// Receiver noise model.
///
/// # Example
/// ```
/// use hidwa_eqs::noise::NoiseModel;
/// use hidwa_units::Frequency;
/// let rx = NoiseModel::wearable_receiver();
/// let floor = rx.noise_floor(Frequency::from_mega_hertz(4.0));
/// // kTB over 4 MHz with a 10 dB NF plus 1 pW interference lands near −89 dBm.
/// assert!(hidwa_units::power_to_dbm(floor) < -85.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Receiver noise figure in dB.
    noise_figure_db: f64,
    /// In-band interference power picked up by the body (the body is a large
    /// antenna for ambient 50/60 Hz and broadcast interference).
    interference: Power,
    /// Input-referred voltage-noise density of the high-impedance front end,
    /// in nV/√Hz. Used for the voltage-domain SNR of EQS receivers.
    input_noise_density_nv_rthz: f64,
}

impl NoiseModel {
    /// Creates a noise model from a noise figure (dB) and an interference
    /// power. The input-referred voltage-noise density defaults to
    /// 30 nV/√Hz (a good wearable LNA); see
    /// [`NoiseModel::with_input_noise_density`].
    #[must_use]
    pub fn new(noise_figure_db: f64, interference: Power) -> Self {
        Self {
            noise_figure_db: noise_figure_db.max(0.0),
            interference,
            input_noise_density_nv_rthz: 30.0,
        }
    }

    /// Overrides the input-referred voltage-noise density (nV/√Hz).
    #[must_use]
    pub fn with_input_noise_density(mut self, nv_per_rt_hz: f64) -> Self {
        self.input_noise_density_nv_rthz = nv_per_rt_hz.max(0.0);
        self
    }

    /// A wearable-class EQS receiver: 10 dB noise figure, 1 pW residual
    /// in-band interference after the interference-rejection front end,
    /// 30 nV/√Hz input-referred noise.
    #[must_use]
    pub fn wearable_receiver() -> Self {
        Self::new(10.0, Power::from_watts(1e-12))
    }

    /// An ideal receiver (0 dB NF, no interference, noiseless front end) —
    /// upper-bound studies.
    #[must_use]
    pub fn ideal() -> Self {
        Self::new(0.0, Power::ZERO).with_input_noise_density(0.0)
    }

    /// Receiver noise figure in dB.
    #[must_use]
    pub fn noise_figure_db(&self) -> f64 {
        self.noise_figure_db
    }

    /// Interference power.
    #[must_use]
    pub fn interference(&self) -> Power {
        self.interference
    }

    /// Total noise-plus-interference power in a given bandwidth.
    #[must_use]
    pub fn noise_floor(&self, bandwidth: Frequency) -> Power {
        let thermal = BOLTZMANN * T0_KELVIN * bandwidth.as_hertz();
        let nf = hidwa_units::db_to_ratio(self.noise_figure_db);
        Power::from_watts(thermal * nf) + self.interference
    }

    /// Signal-to-noise ratio (linear) for a received signal power in a given
    /// bandwidth.
    #[must_use]
    pub fn snr(&self, received: Power, bandwidth: Frequency) -> f64 {
        let floor = self.noise_floor(bandwidth);
        if floor.as_watts() <= 0.0 {
            return f64::INFINITY;
        }
        received / floor
    }

    /// SNR in dB.
    #[must_use]
    pub fn snr_db(&self, received: Power, bandwidth: Frequency) -> f64 {
        hidwa_units::ratio_to_db(self.snr(received, bandwidth))
    }

    /// Noise floor expressed in dBm (convenience for link budgets).
    #[must_use]
    pub fn noise_floor_dbm(&self, bandwidth: Frequency) -> f64 {
        power_to_dbm(self.noise_floor(bandwidth))
    }

    /// Input-referred RMS noise voltage integrated over `bandwidth`.
    #[must_use]
    pub fn input_referred_noise(&self, bandwidth: Frequency) -> hidwa_units::Voltage {
        hidwa_units::Voltage::from_volts(
            self.input_noise_density_nv_rthz * 1e-9 * bandwidth.as_hertz().sqrt(),
        )
    }

    /// Voltage-domain SNR (linear) for a received amplitude at a
    /// high-impedance EQS front end.
    #[must_use]
    pub fn snr_amplitude(&self, received: hidwa_units::Voltage, bandwidth: Frequency) -> f64 {
        let noise = self.input_referred_noise(bandwidth);
        if noise.as_volts() <= 0.0 {
            return f64::INFINITY;
        }
        (received.as_volts() / noise.as_volts()).powi(2)
    }

    /// Voltage-domain SNR in dB.
    #[must_use]
    pub fn snr_amplitude_db(&self, received: hidwa_units::Voltage, bandwidth: Frequency) -> f64 {
        hidwa_units::ratio_to_db(self.snr_amplitude(received, bandwidth))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_floor_reference() {
        // kTB at 290 K over 1 MHz = −114 dBm; with 10 dB NF ≈ −104 dBm
        // (interference of 1 pW = −90 dBm dominates slightly in this model).
        let ideal = NoiseModel::ideal();
        let dbm = ideal.noise_floor_dbm(Frequency::from_mega_hertz(1.0));
        assert!((dbm + 114.0).abs() < 0.5, "floor {dbm} dBm");
    }

    #[test]
    fn noise_floor_scales_with_bandwidth() {
        let rx = NoiseModel::ideal();
        let narrow = rx.noise_floor(Frequency::from_kilo_hertz(10.0));
        let wide = rx.noise_floor(Frequency::from_mega_hertz(10.0));
        assert!((wide.as_watts() / narrow.as_watts() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn snr_decreases_with_bandwidth() {
        let rx = NoiseModel::wearable_receiver();
        let rcv = Power::from_nano_watts(1.0);
        let s1 = rx.snr(rcv, Frequency::from_kilo_hertz(100.0));
        let s2 = rx.snr(rcv, Frequency::from_mega_hertz(10.0));
        assert!(s1 > s2);
    }

    #[test]
    fn interference_adds_to_floor() {
        let quiet = NoiseModel::new(10.0, Power::ZERO);
        let noisy = NoiseModel::new(10.0, Power::from_nano_watts(1.0));
        let bw = Frequency::from_mega_hertz(4.0);
        assert!(noisy.noise_floor(bw) > quiet.noise_floor(bw));
        assert_eq!(noisy.interference(), Power::from_nano_watts(1.0));
        assert!((noisy.noise_figure_db() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ideal_receiver_with_zero_bandwidth_has_infinite_snr() {
        let rx = NoiseModel::ideal();
        assert!(rx
            .snr(Power::from_nano_watts(1.0), Frequency::ZERO)
            .is_infinite());
    }

    #[test]
    fn negative_noise_figure_clamped() {
        let rx = NoiseModel::new(-5.0, Power::ZERO);
        assert_eq!(rx.noise_figure_db(), 0.0);
    }
}
