//! Shannon-capacity bound of the EQS-HBC channel.
//!
//! The paper claims Wi-R reaches multi-Mbps rates (4 Mbps demonstrated,
//! 30 Mbps in the literature) within a ≤ 30 MHz band.  The capacity module
//! checks that those operating points sit comfortably below the
//! information-theoretic bound of the modelled channel, and provides the
//! achievable-rate estimate the PHY layer uses when picking modulation.

use crate::channel::EqsChannel;
use crate::noise::NoiseModel;
use hidwa_units::{DataRate, Distance, Frequency, Voltage};
use serde::{Deserialize, Serialize};

/// Channel-capacity estimator combining the EQS channel with a receiver noise
/// model.
///
/// # Example
/// ```
/// use hidwa_eqs::{capacity::CapacityEstimator, channel::{EqsChannel, Termination}, body::BodyModel, noise::NoiseModel};
/// use hidwa_units::{Distance, Frequency, Voltage};
/// let est = CapacityEstimator::new(
///     EqsChannel::new(BodyModel::adult(), Termination::HighImpedance),
///     NoiseModel::wearable_receiver(),
/// );
/// let c = est.capacity(Voltage::from_volts(1.0), Distance::from_meters(1.4), Frequency::from_mega_hertz(4.0));
/// assert!(c.as_mbps() > 4.0); // the demonstrated 4 Mbps operating point is feasible
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityEstimator {
    channel: EqsChannel,
    noise: NoiseModel,
    /// Implementation gap from Shannon capacity, dB (modulation, coding,
    /// synchronisation losses). Typical simple OOK/BPSK transceivers sit
    /// ~10 dB off capacity.
    implementation_gap_db: f64,
}

impl CapacityEstimator {
    /// Creates an estimator with a 10 dB implementation gap.
    #[must_use]
    pub fn new(channel: EqsChannel, noise: NoiseModel) -> Self {
        Self {
            channel,
            noise,
            implementation_gap_db: 10.0,
        }
    }

    /// Overrides the implementation gap.
    #[must_use]
    pub fn with_implementation_gap_db(mut self, gap_db: f64) -> Self {
        self.implementation_gap_db = gap_db.max(0.0);
        self
    }

    /// Receiver SNR (linear) for a given transmit swing, channel length and
    /// signal bandwidth.
    #[must_use]
    pub fn snr(&self, tx_swing: Voltage, distance: Distance, bandwidth: Frequency) -> f64 {
        let carrier = Frequency::from_mega_hertz(21.0);
        let rx = self.channel.received_amplitude(tx_swing, distance, carrier);
        // High-impedance voltage-mode sensing: compare the received amplitude
        // against the front end's input-referred noise.
        self.noise.snr_amplitude(rx, bandwidth)
    }

    /// Shannon capacity `B·log2(1 + SNR)` of the channel.
    #[must_use]
    pub fn capacity(
        &self,
        tx_swing: Voltage,
        distance: Distance,
        bandwidth: Frequency,
    ) -> DataRate {
        let snr = self.snr(tx_swing, distance, bandwidth);
        DataRate::from_bps(bandwidth.as_hertz() * (1.0 + snr).log2())
    }

    /// Achievable rate after the implementation gap is applied to the SNR.
    #[must_use]
    pub fn achievable_rate(
        &self,
        tx_swing: Voltage,
        distance: Distance,
        bandwidth: Frequency,
    ) -> DataRate {
        let snr = self.snr(tx_swing, distance, bandwidth)
            / hidwa_units::db_to_ratio(self.implementation_gap_db);
        DataRate::from_bps(bandwidth.as_hertz() * (1.0 + snr).log2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::BodyModel;
    use crate::channel::Termination;

    fn estimator() -> CapacityEstimator {
        CapacityEstimator::new(
            EqsChannel::new(BodyModel::adult(), Termination::HighImpedance),
            NoiseModel::wearable_receiver(),
        )
    }

    #[test]
    fn demonstrated_operating_points_are_feasible() {
        let est = estimator();
        let d = Distance::from_meters(1.4);
        // 4 Mbps in a 4 MHz band.
        let c4 = est.achievable_rate(Voltage::from_volts(1.0), d, Frequency::from_mega_hertz(4.0));
        assert!(c4.as_mbps() > 4.0, "achievable {c4}");
        // 30 Mbps (BodyWire-class) in the full 30 MHz EQS band.
        let c30 = est.achievable_rate(
            Voltage::from_volts(1.0),
            d,
            Frequency::from_mega_hertz(30.0),
        );
        assert!(c30.as_mbps() > 30.0, "achievable {c30}");
    }

    #[test]
    fn capacity_exceeds_achievable_rate() {
        let est = estimator();
        let d = Distance::from_meters(1.0);
        let bw = Frequency::from_mega_hertz(4.0);
        let swing = Voltage::from_volts(1.0);
        assert!(est.capacity(swing, d, bw) > est.achievable_rate(swing, d, bw));
    }

    #[test]
    fn capacity_increases_with_swing_and_bandwidth() {
        let est = estimator();
        let d = Distance::from_meters(1.5);
        let bw = Frequency::from_mega_hertz(4.0);
        assert!(
            est.capacity(Voltage::from_volts(2.0), d, bw)
                > est.capacity(Voltage::from_volts(0.5), d, bw)
        );
        assert!(
            est.capacity(
                Voltage::from_volts(1.0),
                d,
                Frequency::from_mega_hertz(20.0)
            ) > est.capacity(Voltage::from_volts(1.0), d, bw)
        );
    }

    #[test]
    fn capacity_decreases_with_distance() {
        let est = estimator();
        let bw = Frequency::from_mega_hertz(4.0);
        let swing = Voltage::from_volts(1.0);
        assert!(
            est.capacity(swing, Distance::from_meters(0.3), bw)
                >= est.capacity(swing, Distance::from_meters(1.9), bw)
        );
    }

    #[test]
    fn zero_gap_matches_capacity() {
        let est = estimator().with_implementation_gap_db(0.0);
        let d = Distance::from_meters(1.0);
        let bw = Frequency::from_mega_hertz(4.0);
        let swing = Voltage::from_volts(1.0);
        assert!(
            (est.capacity(swing, d, bw).as_bps() - est.achievable_rate(swing, d, bw).as_bps())
                .abs()
                < 1.0
        );
    }
}
