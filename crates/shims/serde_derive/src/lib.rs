//! No-op derive macros standing in for `serde_derive` in offline builds.
//!
//! The HIDWA crates annotate their data types with
//! `#[derive(Serialize, Deserialize)]` so the real serde can be dropped in
//! when a registry is reachable. This shim accepts the same syntax (including
//! `#[serde(...)]` helper attributes) and expands to nothing: the blanket
//! trait impls in the sibling `serde` shim satisfy any bounds.
//!
//! # Example
//!
//! ```
//! use serde_derive::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, Clone)]
//! #[serde(rename_all = "snake_case")] // helper attributes are accepted too
//! enum Role { Leaf, Hub }
//!
//! let _ = Role::Leaf.clone();
//! ```

#![warn(missing_docs)]

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
