//! Offline std-only stand-in for the subset of the `criterion` API the HIDWA
//! benches use. Unlike the serde/proptest shims this one really measures:
//! each benchmark is warmed up, sampled `sample_size` times with an
//! auto-scaled iteration count, and the median/min/mean ns-per-iteration are
//! printed (and optionally appended as JSON lines to `$HIDWA_BENCH_JSON`).
//!
//! Knobs (environment variables):
//! * `HIDWA_BENCH_MS` — per-benchmark measurement budget in milliseconds
//!   (default 100).
//! * `HIDWA_BENCH_JSON` — path of a JSON-lines file to append results to.
//!
//! # Example
//!
//! ```
//! use criterion::{black_box, BenchmarkId, Criterion};
//!
//! let mut c = Criterion::default();
//! c.bench_function("sum", |b| b.iter(|| (0..100u64).map(black_box).sum::<u64>()));
//! assert_eq!(c.results().len(), 1);
//! let _ = BenchmarkId::new("sum", 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Throughput annotation (recorded, displayed alongside results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    #[must_use]
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    sample_size: usize,
    /// Per-iteration nanoseconds for each sample of the last `iter` call.
    samples_ns: Vec<f64>,
}

impl Bencher {
    fn new(budget: Duration, sample_size: usize) -> Self {
        Self {
            budget,
            sample_size,
            samples_ns: Vec::new(),
        }
    }

    /// Measures the closure: warmup, then `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + per-iteration estimate: run until ~10% of the budget.
        let warmup_budget = self.budget.mul_f64(0.1).max(Duration::from_micros(200));
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < warmup_budget {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);

        // Aim each sample at budget / sample_size.
        let sample_budget_ns = self.budget.as_nanos() as f64 * 0.9 / self.sample_size as f64;
        let iters_per_sample = (sample_budget_ns / est_ns).max(1.0) as u64;

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / iters_per_sample as f64);
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median ns per iteration.
    pub median_ns: f64,
    /// Minimum ns per iteration.
    pub min_ns: f64,
    /// Mean ns per iteration.
    pub mean_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Optional throughput annotation.
    pub throughput: Option<Throughput>,
}

fn median(sorted: &[f64]) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
    default_sample_size: usize,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("HIDWA_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(100u64);
        Self {
            budget: Duration::from_millis(ms),
            default_sample_size: 20,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    fn run_one(
        &mut self,
        id: String,
        throughput: Option<Throughput>,
        sample_size: usize,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        let mut bencher = Bencher::new(self.budget, sample_size.max(2));
        f(&mut bencher);
        let mut sorted = bencher.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let measurement = Measurement {
            id,
            median_ns: median(&sorted),
            min_ns: sorted.first().copied().unwrap_or(0.0),
            mean_ns: sorted.iter().sum::<f64>() / sorted.len().max(1) as f64,
            samples: sorted.len(),
            throughput,
        };
        report(&measurement);
        self.results.push(measurement);
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        self.run_one(id.to_string(), None, self.default_sample_size, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// All measurements taken so far (used by wrapper binaries).
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

fn report(m: &Measurement) {
    let mut line = format!(
        "bench {:<56} median {:>12}   min {:>12}   mean {:>12}   ({} samples)",
        m.id,
        fmt_ns(m.median_ns),
        fmt_ns(m.min_ns),
        fmt_ns(m.mean_ns),
        m.samples
    );
    if let Some(tp) = m.throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        let per_sec = count as f64 / (m.median_ns / 1e9);
        let _ = write!(line, "   {per_sec:.3e} {unit}/s");
    }
    println!("{line}");
    if let Ok(path) = std::env::var("HIDWA_BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
        {
            let _ = writeln!(
                file,
                "{{\"id\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"mean_ns\":{},\"samples\":{}}}",
                m.id.replace('"', "'"),
                m.median_ns,
                m.min_ns,
                m.mean_ns,
                m.samples
            );
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = Some(samples);
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(id, self.throughput, samples, &mut f);
        self
    }

    /// Runs a benchmark that borrows an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion
            .run_one(id, self.throughput, samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; no summary state).
    pub fn finish(self) {}
}

/// Mirrors `criterion::black_box`; prefer `std::hint::black_box` in new code.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            default_sample_size: 5,
            results: Vec::new(),
        };
        c.bench_function("smoke/noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_with_input(BenchmarkId::new("sum", "n"), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].median_ns >= 0.0);
        assert_eq!(c.results()[1].id, "grouped/sum/n");
        assert_eq!(c.results()[1].samples, 3);
    }

    #[test]
    fn median_of_even_and_odd() {
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[1.0, 2.0, 9.0]), 2.0);
        assert_eq!(median(&[]), 0.0);
    }
}
