//! Offline stand-in for the `serde` facade.
//!
//! The container this repo builds in has no registry access, so the real
//! serde cannot be fetched. The HIDWA sources keep their
//! `#[derive(Serialize, Deserialize)]` annotations (the derives come from the
//! sibling `serde_derive` shim and expand to nothing), and the marker traits
//! below are blanket-implemented so generic bounds like `T: Serialize` remain
//! satisfiable. Machine-readable output in this workspace goes through
//! `hidwa_bench::json` instead, which has explicit `ToJson` impls.
//!
//! # Example
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, Debug, PartialEq)]
//! struct Frame { bytes: usize }
//!
//! // The derives expand to nothing; the marker bounds stay satisfiable.
//! fn needs_serialize<T: serde::SerializeMarker>(_: &T) {}
//! needs_serialize(&Frame { bytes: 512 });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented.
pub trait SerializeMarker {}
impl<T: ?Sized> SerializeMarker for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`; blanket-implemented.
pub trait DeserializeMarker {}
impl<T: ?Sized> DeserializeMarker for T {}
