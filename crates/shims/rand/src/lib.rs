//! Offline std-only stand-in for the subset of the `rand` API the HIDWA
//! stack uses: `Rng::{gen_range, gen_bool}`, `rngs::StdRng` and
//! `SeedableRng::seed_from_u64`.
//!
//! The generator is SplitMix64 — not cryptographic, but statistically solid
//! for Monte-Carlo harvesting draws and exponential traffic gaps, and fully
//! deterministic for a given seed (which the simulator's reproducibility
//! tests depend on).
//!
//! # Example
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.gen_range(0.0..1.0);
//! assert!((0.0..1.0).contains(&x));
//! // Same seed, same stream.
//! assert_eq!(StdRng::seed_from_u64(7).gen_range(0..100u32),
//!            StdRng::seed_from_u64(7).gen_range(0..100u32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform `f64` in `[0, 1)` (53-bit precision).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a bounded range.
///
/// The single blanket [`SampleRange`] impl per range shape (mirroring the
/// real rand's structure) is what lets `gen_range(-1.0..=1.0)` infer `f64`
/// from surrounding arithmetic instead of reporting an ambiguity.
pub trait SampleUniform: Sized {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            // For floats the half-open/closed distinction is immaterial at
            // 53-bit resolution; both use the same lerp.
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                lo + (hi - lo) * rng.next_f64() as $t
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_between<R: RngCore + ?Sized>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&x));
            let y: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&y));
            let n: i16 = rng.gen_range(-5i16..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn mean_of_unit_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn works_through_unsized_rng() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..10.0)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let x = sample(&mut rng);
        assert!((0.0..10.0).contains(&x));
    }
}
