//! Offline std-only stand-in for the subset of the `bytes` crate used by the
//! HIDWA link-layer framing: [`Bytes`], [`BytesMut`], and the [`Buf`] /
//! [`BufMut`] cursor traits. Multi-byte integers use network (big-endian)
//! order, matching the real crate.
//!
//! # Example
//!
//! ```
//! use bytes::{Buf, BufMut, BytesMut};
//!
//! let mut frame = BytesMut::new();
//! frame.put_u16(0xB0D7);
//! frame.put_u8(42);
//! let mut bytes = frame.freeze();
//! assert_eq!(bytes.get_u16(), 0xB0D7); // network byte order
//! assert_eq!(bytes.get_u8(), 42);
//! assert_eq!(bytes.remaining(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable, sliceable immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Wraps a static byte slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Number of readable bytes remaining.
    #[must_use]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no readable bytes remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits off and returns the first `n` bytes, advancing `self` past them.
    ///
    /// # Panics
    /// Panics if `n` exceeds the remaining length.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        head
    }

    /// Copies the remaining bytes into a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self {
            data: data.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of written bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte buffer (big-endian integer accessors).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8;

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let hi = self.get_u8();
        let lo = self.get_u8();
        u16::from_be_bytes([hi, lo])
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        for byte in &mut raw {
            *byte = self.get_u8();
        }
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        for byte in &mut raw {
            *byte = self.get_u8();
        }
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `f64` (IEEE-754 bit pattern, so every value —
    /// infinities and NaN payloads included — round-trips exactly).
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of bounds");
        self.start += n;
    }

    fn get_u8(&mut self) -> u8 {
        assert!(!self.is_empty(), "get_u8 on empty buffer");
        let b = self.data[self.start];
        self.start += 1;
        b
    }
}

/// Write cursor over a growable byte buffer (big-endian integer accessors).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a byte slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, value: u16) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64) {
        self.put_slice(&value.to_be_bytes());
    }

    /// Appends a big-endian `f64` (IEEE-754 bit pattern; lossless for every
    /// value).
    fn put_f64(&mut self, value: f64) {
        self.put_u64(value.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.push(value);
    }

    fn put_slice(&mut self, slice: &[u8]) {
        self.data.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut buf = BytesMut::with_capacity(8);
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_slice(&[1, 2, 3]);
        assert_eq!(&buf[..], &[0xAB, 0x12, 0x34, 1, 2, 3]);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 6);
        assert_eq!(bytes.get_u8(), 0xAB);
        assert_eq!(bytes.get_u16(), 0x1234);
        assert_eq!(bytes.remaining(), 3);
        let head = bytes.split_to(2);
        assert_eq!(head.to_vec(), vec![1, 2]);
        assert_eq!(bytes.to_vec(), vec![3]);
    }

    #[test]
    fn wide_integers_and_floats_round_trip() {
        let mut buf = BytesMut::new();
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f64(-1234.5678e-12);
        buf.put_f64(f64::INFINITY);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 4 + 8 + 8 + 8);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(bytes.get_f64().to_bits(), (-1234.5678e-12f64).to_bits());
        assert_eq!(bytes.get_f64(), f64::INFINITY);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn advance_and_slicing() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        b.advance(1);
        assert_eq!(&b[..2], &[8, 7]);
        assert_eq!(b.len(), 3);
        let clone = b.clone();
        assert_eq!(clone.to_vec(), vec![8, 7, 6]);
    }
}
