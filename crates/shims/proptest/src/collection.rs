//! `prop::collection` — collection-valued strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::Range;

/// Length specification for [`vec()`]: an exact size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "vec: empty size range");
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// Strategy producing vectors of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Vector strategy, mirroring `prop::collection::vec`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.min + 1 == self.size.max_exclusive {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max_exclusive)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
