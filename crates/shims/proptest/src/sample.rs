//! `prop::sample` — strategies over explicit value sets.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy choosing uniformly from a fixed set.
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Uniform choice from a non-empty vector, mirroring `prop::sample::select`.
///
/// # Panics
/// Panics (at generation time) if `options` is empty.
#[must_use]
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select: empty option set");
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].clone()
    }
}
