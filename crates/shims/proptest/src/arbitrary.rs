//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, well-conditioned domain: proptest's any::<f64>() includes
        // NaN/inf, but no HIDWA test relies on those.
        rng.next_f64() * 2.0 - 1.0
    }
}

impl Arbitrary for f32 {
    #[allow(clippy::cast_possible_truncation)]
    fn arbitrary(rng: &mut TestRng) -> f32 {
        (rng.next_f64() * 2.0 - 1.0) as f32
    }
}
