//! Offline std-only stand-in for the subset of `proptest` the HIDWA property
//! tests use: the `proptest!` macro, range/select/collection/`any` strategies
//! and the `prop_assert*` family.
//!
//! Unlike the real proptest there is no shrinking — a failing case reports
//! the case number and the stringified assertion instead of a minimal
//! counterexample. Generation is deterministic per test (the RNG is seeded
//! from the test's name), so failures reproduce across runs.
//!
//! # Example
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes(); // doc tests invoke the generated fn directly
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

/// Module mirror matching proptest's `prop::` path layout.
pub mod prop {
    /// `prop::sample` — choose from explicit value sets.
    pub mod sample {
        pub use crate::sample::select;
    }
    /// `prop::collection` — collection-valued strategies.
    pub mod collection {
        pub use crate::collection::vec;
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // `if c {} else { .. }` rather than `if !c` keeps clippy's
        // partial-ord lints quiet for float comparisons in test bodies.
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {}",
                ::core::stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} ({})",
                ::core::stringify!($cond),
                ::std::format!($($fmt)*)
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                ::core::stringify!($left),
                ::core::stringify!($right),
                left
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) when the assumption
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if $cond {
        } else {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn my_property(x in 0.0..1.0f64, v in prop::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items!(($cfg) $($items)*);
    };
    ($($items:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($items)*);
    };
}

/// Internal: expands each `fn` item of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(::core::stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(16).max(64);
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "proptest '{}': too many rejected cases ({} attempts for {} target cases)",
                    ::core::stringify!($name),
                    attempts,
                    config.cases
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        ::core::panic!(
                            "proptest '{}' failed on case {}: {}",
                            ::core::stringify!($name),
                            passed,
                            message
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 1e-3..1.0f64, n in -5i16..5, k in 0u8..=255) {
            prop_assert!((1e-3..1.0).contains(&x));
            prop_assert!((-5..5).contains(&n));
            let _ = k; // full u8 domain: nothing to check beyond type
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(any::<u8>(), 3..7), w in prop::collection::vec(0.0f32..1.0, 4)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(w.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn select_only_yields_members(x in prop::sample::select(vec![2usize, 4, 8])) {
            prop_assert!(x == 2 || x == 4 || x == 8);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// Assumption rejections retry rather than fail.
        #[test]
        fn assume_rejects(x in 0.0..1.0f64) {
            prop_assume!(x > 0.2);
            prop_assert!(x > 0.2);
        }
    }

    proptest! {
        /// A deliberately failing property: the panic message carries the
        /// test name and case number.
        #[test]
        #[should_panic(expected = "proptest 'failing' failed")]
        fn failing(x in 0.0..1.0f64) {
            prop_assert!(x > 2.0, "x was {}", x);
        }
    }
}
