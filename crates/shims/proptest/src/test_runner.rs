//! Test configuration and the deterministic per-test RNG.

pub use rand::rngs::StdRng as InnerRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration; only `cases` is modelled.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of passing cases required per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Deterministic generator seeded from the test's name, so a failure in test
/// `foo` reproduces on every run without recording a seed file.
#[derive(Debug)]
pub struct TestRng {
    inner: InnerRng,
}

impl TestRng {
    /// Creates the RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, mixed with a fixed workspace constant.
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: InnerRng::seed_from_u64(hash ^ 0x41D0_4A11_DAC0_2024u64),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
