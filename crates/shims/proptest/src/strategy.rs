//! The [`Strategy`] trait and its implementations for ranges.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
