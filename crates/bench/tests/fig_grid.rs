//! Serial-vs-parallel equivalence for the Fig. 3 projection grids ported
//! onto the `SweepRunner` (the ROADMAP "SweepRunner adoption" contract,
//! mirroring `tests/harvest_grid.rs`).

use hidwa_bench::figs::{fig3_curve_grid, fig3_marker_grid, fig3_rate_axis};
use hidwa_bench::json;
use hidwa_core::projection::Fig3Projector;
use hidwa_core::sweep::SweepRunner;
use hidwa_units::DataRate;

#[test]
fn fig3_curve_is_byte_identical_serial_vs_parallel() {
    let projector = Fig3Projector::paper_defaults();
    let (lo, hi) = (DataRate::from_bps(10.0), DataRate::from_mbps(10.0));
    let serial = fig3_curve_grid(&SweepRunner::serial(), &projector, lo, hi, 4);
    let parallel = fig3_curve_grid(&SweepRunner::with_threads(4), &projector, lo, hi, 4);
    assert!(!serial.is_empty());
    assert_eq!(serial.len(), fig3_rate_axis(lo, hi, 4).len());
    // Byte-identical: the machine-readable encodings compare equal, row for
    // row and bit for bit.
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
    // Total power is monotone in rate (communication grows, sensing never
    // shrinks), so battery life never improves with rate.
    for pair in serial.windows(2) {
        assert!(pair[0].rate_bps < pair[1].rate_bps);
        assert!(pair[0].battery_life_days >= pair[1].battery_life_days);
    }
}

#[test]
fn fig3_markers_are_byte_identical_serial_vs_parallel() {
    let projector = Fig3Projector::paper_defaults();
    let serial = fig3_marker_grid(&SweepRunner::serial(), &projector);
    let parallel = fig3_marker_grid(&SweepRunner::with_threads(3), &projector);
    assert!(!serial.is_empty());
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
    // Marker projections agree with projecting the marker rate directly.
    for row in &serial {
        let direct = projector.project_rate(DataRate::from_bps(row.rate_bps));
        assert_eq!(direct.battery_life.as_days(), row.projected_life_days);
        assert_eq!(direct.band.label(), row.projected_band);
    }
}
