//! Serial-vs-parallel equivalence for the figure grids ported onto the
//! `SweepRunner` (the ROADMAP "SweepRunner adoption" contract, mirroring
//! `tests/harvest_grid.rs`): the Fig. 3 projection grids plus the Fig. 1,
//! Fig. 2, security-leakage and Wi-R-vs-BLE bins.

use hidwa_bench::figs::{
    fig1_power_grid, fig2_battery_grid, fig2_era_name, fig3_curve_grid, fig3_marker_grid,
    fig3_rate_axis, security_distance_axis, security_leakage_grid, security_paper_comparison,
    wir_vs_ble_grid, wir_vs_ble_rate_axis,
};
use hidwa_bench::json;
use hidwa_core::devices::DeviceEra;
use hidwa_core::projection::Fig3Projector;
use hidwa_core::sweep::SweepRunner;
use hidwa_units::DataRate;

#[test]
fn fig3_curve_is_byte_identical_serial_vs_parallel() {
    let projector = Fig3Projector::paper_defaults();
    let (lo, hi) = (DataRate::from_bps(10.0), DataRate::from_mbps(10.0));
    let serial = fig3_curve_grid(&SweepRunner::serial(), &projector, lo, hi, 4);
    let parallel = fig3_curve_grid(&SweepRunner::with_threads(4), &projector, lo, hi, 4);
    assert!(!serial.is_empty());
    assert_eq!(serial.len(), fig3_rate_axis(lo, hi, 4).len());
    // Byte-identical: the machine-readable encodings compare equal, row for
    // row and bit for bit.
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
    // Total power is monotone in rate (communication grows, sensing never
    // shrinks), so battery life never improves with rate.
    for pair in serial.windows(2) {
        assert!(pair[0].rate_bps < pair[1].rate_bps);
        assert!(pair[0].battery_life_days >= pair[1].battery_life_days);
    }
}

#[test]
fn fig3_markers_are_byte_identical_serial_vs_parallel() {
    let projector = Fig3Projector::paper_defaults();
    let serial = fig3_marker_grid(&SweepRunner::serial(), &projector);
    let parallel = fig3_marker_grid(&SweepRunner::with_threads(3), &projector);
    assert!(!serial.is_empty());
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
    // Marker projections agree with projecting the marker rate directly.
    for row in &serial {
        let direct = projector.project_rate(DataRate::from_bps(row.rate_bps));
        assert_eq!(direct.battery_life.as_days(), row.projected_life_days);
        assert_eq!(direct.band.label(), row.projected_band);
    }
}

#[test]
fn fig1_power_matrix_is_byte_identical_serial_vs_parallel() {
    let serial = fig1_power_grid(&SweepRunner::serial());
    let parallel = fig1_power_grid(&SweepRunner::with_threads(4));
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
    // Workload-major pairs: conventional first, then human-inspired, with a
    // shared reduction factor that the totals actually realise.
    assert_eq!(serial.len() % 2, 0);
    assert!(!serial.is_empty());
    for pair in serial.chunks(2) {
        assert_eq!(pair[0].workload, pair[1].workload);
        assert_ne!(pair[0].architecture, pair[1].architecture);
        assert_eq!(pair[0].reduction_factor, pair[1].reduction_factor);
        let realized = pair[0].total_uw / pair[1].total_uw;
        assert!(
            (realized - pair[0].reduction_factor).abs() / pair[0].reduction_factor < 1e-9,
            "{}: realized {realized} vs recorded {}",
            pair[0].workload,
            pair[0].reduction_factor
        );
    }
}

#[test]
fn fig2_battery_table_is_byte_identical_serial_vs_parallel() {
    let serial = fig2_battery_grid(&SweepRunner::serial());
    let parallel = fig2_battery_grid(&SweepRunner::with_threads(3));
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
    // Era-major: every pre-2024 class precedes every wearable-AI class.
    let boundary = serial
        .iter()
        .position(|row| row.era == fig2_era_name(DeviceEra::WearableAi2024))
        .expect("both eras present");
    assert!(boundary > 0);
    assert!(serial[..boundary]
        .iter()
        .all(|row| row.era == fig2_era_name(DeviceEra::Pre2024)));
    assert!(serial[boundary..]
        .iter()
        .all(|row| row.era == fig2_era_name(DeviceEra::WearableAi2024)));
}

#[test]
fn security_sweep_is_byte_identical_serial_vs_parallel() {
    let comparison = security_paper_comparison();
    let distances = security_distance_axis();
    let serial = security_leakage_grid(&SweepRunner::serial(), &comparison, &distances);
    let parallel = security_leakage_grid(&SweepRunner::with_threads(4), &comparison, &distances);
    assert_eq!(serial.len(), distances.len());
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
    // The paper's containment claim: the EQS signal dies within the personal
    // bubble while BLE stays decodable metres away.
    assert!(!serial.last().unwrap().eqs_decodable);
    assert!(serial.last().unwrap().ble_decodable);
}

#[test]
fn wir_vs_ble_table_is_byte_identical_serial_vs_parallel() {
    let rates = wir_vs_ble_rate_axis();
    let serial = wir_vs_ble_grid(&SweepRunner::serial(), &rates);
    let parallel = wir_vs_ble_grid(&SweepRunner::with_threads(4), &rates);
    assert_eq!(serial.len(), rates.len());
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
    // The paper's headline power claim holds at every matched rate.
    for row in &serial {
        assert!(row.power_ratio > 10.0, "rate {}", row.app_rate_kbps);
    }
}
