//! Serial-vs-parallel equivalence for the E7 harvesting Monte-Carlo grid:
//! the `SweepRunner` port must produce byte-identical rows to the serial
//! loop (the ROADMAP "SweepRunner adoption" contract).

use hidwa_bench::harvest::monte_carlo_grid;
use hidwa_bench::json;
use hidwa_core::sweep::SweepRunner;

#[test]
fn harvest_grid_is_byte_identical_serial_vs_parallel() {
    let serial = monte_carlo_grid(&SweepRunner::serial(), 2024, 4, 200);
    let parallel = monte_carlo_grid(&SweepRunner::with_threads(4), 2024, 4, 200);
    assert!(!serial.is_empty());
    // Byte-identical: the machine-readable encodings compare equal, row for
    // row and bit for bit (coverage probabilities included).
    assert_eq!(
        json::to_string_pretty(&serial),
        json::to_string_pretty(&parallel)
    );
}

#[test]
fn harvest_grid_covers_the_full_cell_product_and_is_seed_stable() {
    let rows = monte_carlo_grid(&SweepRunner::serial(), 7, 2, 100);
    // 3 profiles × paper workloads × 2 architectures, profile-major order.
    assert_eq!(rows.len() % (3 * 2), 0);
    let per_profile = rows.len() / 3;
    assert!(rows[..per_profile]
        .iter()
        .all(|r| r.profile == rows[0].profile));
    // Same inputs, same rows; different base seed, different Monte-Carlo.
    let again = monte_carlo_grid(&SweepRunner::serial(), 7, 2, 100);
    assert_eq!(
        json::to_string_pretty(&rows),
        json::to_string_pretty(&again)
    );
    let other_seed = monte_carlo_grid(&SweepRunner::serial(), 8, 2, 100);
    assert_ne!(
        json::to_string_pretty(&rows),
        json::to_string_pretty(&other_seed)
    );
    // Coverage is a probability and harvesting never hurts: sanity bounds.
    for row in &rows {
        assert!((0.0..=1.0).contains(&row.coverage_probability));
        assert!(row.harvested_uw > 0.0);
        assert_eq!(row.seeds, 2);
    }
}
