//! Multi-**process** search tests: the `hidwa_core::search` layer driven
//! by real `shard_worker` processes.  The deterministic in-process
//! versions of these properties live in
//! `crates/core/tests/search_determinism.rs`; here every evaluation spawns
//! actual workers — including one that is killed mid-shard — and the
//! frontier, outcomes and sealed search checkpoint must still be
//! byte-identical to the in-process fold.

use hidwa_core::fleet::driver::{
    DriverFleetSpec, InProcessExecutor, PopulationSpec, ProcessExecutor, WorkerCommand,
};
use hidwa_core::fleet::{ChurnSpec, PolicyKind};
use hidwa_core::population::ChurnModel;
use hidwa_core::search::{ObjectiveSpace, SearchDriver, SearchSpec, SearchStrategy};
use hidwa_core::sweep::SweepRunner;
use hidwa_netsim::mac::MacPolicy;
use hidwa_phy::RadioTechnology;
use hidwa_units::TimeSpan;
use std::path::{Path, PathBuf};

/// The release-agnostic path of the worker binary under test.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_shard_worker")
}

fn spool_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hidwa-procsearch-{tag}-{}", std::process::id()))
}

/// A 4-point grid (MAC × radio) over a churned 8-body fleet — small enough
/// that spawning 2 worker processes per evaluation stays fast.
fn search_spec() -> SearchSpec {
    let base = DriverFleetSpec::new(8)
        .with_base_seed(21)
        .with_horizon(TimeSpan::from_seconds(0.1))
        .with_population(PopulationSpec::Mixed)
        .with_churn(ChurnSpec::new(
            ChurnModel::with_rate(0.4).with_epochs(2),
            PolicyKind::Hysteresis,
        ));
    let space = ObjectiveSpace::new()
        .with_mac_axis(&[MacPolicy::Polling, MacPolicy::Tdma])
        .with_radio_axis(&[RadioTechnology::WiR, RadioTechnology::Ble]);
    SearchSpec::new(base, space).with_shards(2)
}

fn checkpoint_bytes(root: &Path) -> Vec<u8> {
    std::fs::read(SearchDriver::checkpoint_path(root)).expect("search checkpoint exists")
}

#[test]
fn process_search_matches_in_process_byte_for_byte() {
    let driver = SearchDriver::new(search_spec(), SearchStrategy::ExhaustiveGrid);
    let runner = SweepRunner::serial();

    let in_root = spool_dir("inproc");
    let in_process = driver
        .run(&runner, &InProcessExecutor::serial(), &in_root)
        .expect("in-process search");

    let proc_root = spool_dir("proc");
    let executor = ProcessExecutor::new(WorkerCommand::new(worker_bin()));
    let process = driver
        .run(&runner, &executor, &proc_root)
        .expect("multi-process search");

    assert_eq!(in_process.evaluations(), process.evaluations());
    assert_eq!(in_process.frontier(), process.frontier());
    assert_eq!(checkpoint_bytes(&in_root), checkpoint_bytes(&proc_root));
    assert_eq!(process.folds(), process.evaluations().len());

    let _ = std::fs::remove_dir_all(&in_root);
    let _ = std::fs::remove_dir_all(&proc_root);
}

#[test]
fn process_search_resumes_after_budget_kill() {
    let driver = SearchDriver::new(search_spec(), SearchStrategy::ExhaustiveGrid);
    let runner = SweepRunner::serial();
    let executor = ProcessExecutor::new(WorkerCommand::new(worker_bin()));

    let baseline_root = spool_dir("baseline");
    let baseline = driver
        .run(&runner, &executor, &baseline_root)
        .expect("baseline search");

    let killed_root = spool_dir("killed");
    let partial = driver
        .run_with_budget(&runner, &executor, &killed_root, Some(2))
        .expect("budgeted search");
    assert!(!partial.complete());
    assert_eq!(partial.folds(), 2);

    let resumed = driver
        .run(&runner, &executor, &killed_root)
        .expect("resumed search");
    assert!(resumed.complete());
    assert_eq!(resumed.resumed(), 2);
    assert_eq!(resumed.folds(), baseline.folds() - 2);
    assert_eq!(resumed.evaluations(), baseline.evaluations());
    assert_eq!(resumed.frontier(), baseline.frontier());
    assert_eq!(
        checkpoint_bytes(&killed_root),
        checkpoint_bytes(&baseline_root)
    );

    let _ = std::fs::remove_dir_all(&baseline_root);
    let _ = std::fs::remove_dir_all(&killed_root);
}

#[test]
fn worker_crash_is_invisible_in_the_frontier() {
    let driver = SearchDriver::new(search_spec(), SearchStrategy::ExhaustiveGrid);
    let runner = SweepRunner::serial();

    let clean_root = spool_dir("clean");
    let clean = driver
        .run(
            &runner,
            &ProcessExecutor::new(WorkerCommand::new(worker_bin())),
            &clean_root,
        )
        .expect("clean search");

    // Every evaluation's first attempt at shard 1 dies mid-fold
    // (`--fail-after-bodies` injection); the fleet driver detects the
    // death and re-runs, so the search result must not change.
    let faulty_root = spool_dir("faulty");
    let faulty_executor =
        ProcessExecutor::new(WorkerCommand::new(worker_bin())).with_injected_kill(1);
    let faulty = driver
        .run(&runner, &faulty_executor, &faulty_root)
        .expect("search with injected worker crashes");

    assert_eq!(clean.evaluations(), faulty.evaluations());
    assert_eq!(clean.frontier(), faulty.frontier());
    assert_eq!(
        checkpoint_bytes(&clean_root),
        checkpoint_bytes(&faulty_root)
    );

    let _ = std::fs::remove_dir_all(&clean_root);
    let _ = std::fs::remove_dir_all(&faulty_root);
}
